"""A2 — ablation: result forwarding (§3.2).

"This limitation is mitigated by forwarding of recently calculated
results, which is also handled by the register file controller."
Forwarding only affects *port pressure* in this design (values are in
the register file either way), so its benefit shows up as avoided
port-stall cycles on wide-issue code.
"""

import pytest

from benchmarks.conftest import CompiledEpic


@pytest.mark.parametrize("name", ["SHA", "DCT"])
def test_forwarding_benefit(benchmark, specs, name):
    spec = specs[name]
    with_forwarding = CompiledEpic(spec, 4)
    without = CompiledEpic(spec, 4, forwarding=False)

    def run():
        return with_forwarding.simulate(), without.simulate()

    fwd, no_fwd = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cycles_with_forwarding"] = fwd.cycles
    benchmark.extra_info["cycles_without"] = no_fwd.cycles
    benchmark.extra_info["port_stalls_with"] = fwd.stats.port_stall_cycles
    benchmark.extra_info["port_stalls_without"] = \
        no_fwd.stats.port_stall_cycles
    assert fwd.cycles <= no_fwd.cycles
    assert fwd.stats.port_stall_cycles <= no_fwd.stats.port_stall_cycles


def test_forwarding_and_bandwidth_sharing_interact(benchmark, specs):
    """Combines A2 with the §3.2 memory-bandwidth sharing switch: the
    fetch-bandwidth stall model penalises every memory operation."""
    spec = specs["DCT"]
    plain = CompiledEpic(spec, 4)
    shared = CompiledEpic(spec, 4, lsu_shares_fetch_bandwidth=True)

    def run():
        return plain.simulate(), shared.simulate()

    base, with_sharing = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cycles_dedicated_port"] = base.cycles
    benchmark.extra_info["cycles_shared_bandwidth"] = with_sharing.cycles
    benchmark.extra_info["fetch_stalls"] = \
        with_sharing.stats.fetch_stall_cycles
    assert with_sharing.cycles > base.cycles
    assert with_sharing.stats.fetch_stall_cycles > 0
