"""Shared benchmark infrastructure.

Each benchmark compiles its workload once (at fixture scope) and times
the *simulation*; the architectural metric — the paper's clock-cycle
count — is attached to the report as ``extra_info`` so a benchmark run
regenerates the evaluation tables alongside host-time measurements.

Benchmark input sizes are reduced relative to the paper (recorded in
each workload's ``scale_note`` and in EXPERIMENTS.md); relative cycle
counts, not absolute ones, carry the paper's conclusions.
"""

from __future__ import annotations

import pytest

from repro.backend import compile_minic_to_epic
from repro.baseline import Sa110Simulator, compile_minic_to_armlet
from repro.config import epic_with_alus
from repro.core import EpicProcessor
from repro.workloads import (
    aes_workload, dct_workload, dijkstra_workload, sha_workload,
)

#: Benchmark-scale instances (paper scale in parentheses):
#: SHA 16x16 PPM (256x256), AES 5 iterations (1000), DCT 16x16
#: (256x256), Dijkstra 12 nodes ("large graph").
BENCH_SPECS = {
    "SHA": lambda: sha_workload(16, 16),
    "AES": lambda: aes_workload(5),
    "DCT": lambda: dct_workload(16, 16),
    "Dijkstra": lambda: dijkstra_workload(12),
}

EPIC_CLOCK_MHZ = 41.8
SA110_CLOCK_MHZ = 100.0


@pytest.fixture(scope="session")
def specs():
    return {name: build() for name, build in BENCH_SPECS.items()}


class CompiledEpic:
    def __init__(self, spec, n_alus, **config_overrides):
        self.spec = spec
        self.config = epic_with_alus(n_alus, **config_overrides)
        self.compilation = compile_minic_to_epic(spec.source, self.config)

    def simulate(self):
        cpu = EpicProcessor(self.config, self.compilation.program,
                            mem_words=self.spec.mem_words)
        result = cpu.run()
        self._check(cpu)
        return result

    def _check(self, cpu):
        for name, expected in self.spec.expected.items():
            base = self.compilation.symbols[name]
            got = [cpu.memory.read(base + i) for i in range(len(expected))]
            assert got == expected, f"{self.spec.name}: {name} mismatch"


class CompiledBaseline:
    def __init__(self, spec):
        self.spec = spec
        self.compilation = compile_minic_to_armlet(spec.source)

    def simulate(self):
        simulator = Sa110Simulator(
            self.compilation.program, self.compilation.labels,
            self.compilation.data, mem_words=self.spec.mem_words,
        )
        result = simulator.run()
        for name, expected in self.spec.expected.items():
            base = self.compilation.symbols[name]
            got = simulator.memory[base:base + len(expected)]
            assert got == expected, f"{self.spec.name}: {name} mismatch"
        return result


@pytest.fixture(scope="session")
def epic_compilations(specs):
    """All (benchmark, ALU-count) compilations, shared by the session."""
    cache = {}
    for name, spec in specs.items():
        for n_alus in (1, 2, 3, 4):
            cache[(name, n_alus)] = CompiledEpic(spec, n_alus)
    return cache


@pytest.fixture(scope="session")
def baseline_compilations(specs):
    return {name: CompiledBaseline(spec) for name, spec in specs.items()}


def bench_simulation(benchmark, compiled, clock_mhz, machine):
    """Benchmark one simulator run; report cycles and modelled time."""
    result = benchmark.pedantic(compiled.simulate, rounds=1, iterations=1)
    benchmark.extra_info["machine"] = machine
    benchmark.extra_info["cycles"] = result.cycles
    benchmark.extra_info["clock_mhz"] = clock_mhz
    benchmark.extra_info["modelled_ms"] = round(
        result.cycles / (clock_mhz * 1e3), 4
    )
    return result
