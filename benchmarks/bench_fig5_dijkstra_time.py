"""E5 — Figure 5: Dijkstra execution time across the five processors.

The paper's counterpoint: Dijkstra's modest 1.7x cycle advantage cannot
overcome the 100 / 41.8 MHz clock gap, so the SA-110 wins in time and
adding ALUs barely moves the EPIC bars."""

from benchmarks.conftest import EPIC_CLOCK_MHZ, SA110_CLOCK_MHZ


def test_fig5_dijkstra_execution_time(benchmark, epic_compilations,
                                      baseline_compilations):
    def run():
        seconds = {}
        cycles = baseline_compilations["Dijkstra"].simulate().cycles
        seconds["SA-110"] = cycles / (SA110_CLOCK_MHZ * 1e6)
        for n_alus in (1, 2, 3, 4):
            cycles = epic_compilations[("Dijkstra", n_alus)].simulate().cycles
            seconds[f"EPIC-{n_alus}ALU"] = cycles / (EPIC_CLOCK_MHZ * 1e6)
        return seconds

    seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["series_ms"] = {
        machine: round(value * 1e3, 4) for machine, value in seconds.items()
    }
    benchmark.extra_info["epic4_speedup_over_sa110"] = round(
        seconds["SA-110"] / seconds["EPIC-4ALU"], 2
    )
    # Figure 5's shape: the SA-110 wins, and the EPIC bars are flat in
    # the number of ALUs.
    for n_alus in (1, 2, 3, 4):
        assert seconds[f"EPIC-{n_alus}ALU"] > seconds["SA-110"]
    series = [seconds[f"EPIC-{n}ALU"] for n in (1, 2, 3, 4)]
    assert max(series) < min(series) * 1.15
