"""A6 — extension: pipeline-depth trade-off (paper §6 future work).

"Current and future work includes parameterising the level of
pipelining..."  With the depth implemented as a configuration knob, this
benchmark quantifies the trade the paper anticipated: each extra front-
end stage buys clock rate (FPGA timing model) but costs one bubble per
taken branch.  Straight-line DCT tolerates depth; branchy Dijkstra does
not.
"""

import pytest

from benchmarks.conftest import CompiledEpic
from repro.fpga import estimate_clock_mhz


@pytest.mark.parametrize("name", ["DCT", "Dijkstra"])
def test_pipeline_depth_tradeoff(benchmark, specs, name):
    spec = specs[name]

    def run():
        outcome = {}
        for stages in (2, 3, 4):
            compiled = CompiledEpic(spec, 4, pipeline_stages=stages)
            cycles = compiled.simulate().cycles
            mhz = estimate_clock_mhz(compiled.config)
            outcome[stages] = (cycles, mhz, cycles / (mhz * 1e6))
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    for stages, (cycles, mhz, seconds) in outcome.items():
        benchmark.extra_info[f"stages{stages}_cycles"] = cycles
        benchmark.extra_info[f"stages{stages}_mhz"] = mhz
        benchmark.extra_info[f"stages{stages}_ms"] = round(seconds * 1e3, 4)

    # Cycles never decrease with depth; the *time* ordering depends on
    # branch density.
    assert outcome[2][0] <= outcome[3][0] <= outcome[4][0]
    if name == "DCT":
        # Straight-line code: clock gain wins.
        assert outcome[3][2] < outcome[2][2]
    benchmark.extra_info["best_depth_by_time"] = min(
        outcome, key=lambda stages: outcome[stages][2]
    )
