"""A7 — extension: automatic custom-instruction generation (§6).

Runs the implemented profile→discover→synthesize→rewrite loop on the
SHA workload and reports the cycles/slices trade-off of the top-k
auto-generated fused operations, for k in {1, 2, 4}.
"""

import pytest

from repro.backend import compile_ir_to_epic
from repro.config import epic_with_alus
from repro.core import EpicProcessor
from repro.explore import discover_and_apply
from repro.fpga import estimate_resources
from repro.lang import compile_minic


def _run(module, config, spec):
    compilation = compile_ir_to_epic(module, config)
    cpu = EpicProcessor(config, compilation.program,
                        mem_words=spec.mem_words)
    result = cpu.run()
    base = compilation.symbols["hash"]
    got = [cpu.memory.read(base + i) for i in range(8)]
    assert got == spec.expected["hash"], "SHA output mismatch"
    return result.cycles


@pytest.mark.parametrize("top_k", [1, 2, 4])
def test_auto_customisation_on_sha(benchmark, specs, top_k):
    spec = specs["SHA"]

    def run():
        plain_config = epic_with_alus(4)
        plain_cycles = _run(compile_minic(spec.source), plain_config, spec)

        module = compile_minic(spec.source)
        generated = discover_and_apply(module, top_k=top_k)
        custom_config = epic_with_alus(4, custom_ops=tuple(generated))
        custom_cycles = _run(module, custom_config, spec)
        return plain_cycles, custom_cycles, generated, custom_config

    plain_cycles, custom_cycles, generated, custom_config = \
        benchmark.pedantic(run, rounds=1, iterations=1)

    plain_slices = estimate_resources(epic_with_alus(4)).slices
    custom_slices = estimate_resources(custom_config).slices
    benchmark.extra_info["generated_ops"] = [
        spec_.mnemonic for spec_ in generated
    ]
    benchmark.extra_info["cycles_plain"] = plain_cycles
    benchmark.extra_info["cycles_customised"] = custom_cycles
    benchmark.extra_info["speedup"] = round(plain_cycles / custom_cycles, 3)
    benchmark.extra_info["extra_slices"] = custom_slices - plain_slices
    assert custom_cycles <= plain_cycles
    assert len(generated) <= top_k
