"""A5 — ablation: compiler loop unrolling (the elcor-side ILP lever).

EPIC moves parallelism discovery to the compiler (§2, §4.1); unrolling
is the transformation that exposes it.  This ablation compiles DCT and
SHA with and without the unroll annotations and measures how much of
the EPIC advantage the *compiler* is responsible for.
"""

import pytest

from repro.backend import compile_minic_to_epic
from repro.config import epic_with_alus
from repro.core import EpicProcessor


def _cycles(spec, config, unroll):
    compilation = compile_minic_to_epic(spec.source, config, unroll=unroll)
    cpu = EpicProcessor(config, compilation.program,
                        mem_words=spec.mem_words)
    result = cpu.run()
    for name, expected in spec.expected.items():
        base = compilation.symbols[name]
        got = [cpu.memory.read(base + i) for i in range(len(expected))]
        assert got == expected
    return result


@pytest.mark.parametrize("name", ["DCT", "SHA"])
def test_unroll_contribution(benchmark, specs, name):
    spec = specs[name]
    config = epic_with_alus(4)

    def run():
        return (_cycles(spec, config, unroll=True),
                _cycles(spec, config, unroll=False))

    unrolled, rolled = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cycles_unrolled"] = unrolled.cycles
    benchmark.extra_info["cycles_rolled"] = rolled.cycles
    benchmark.extra_info["speedup_from_unrolling"] = round(
        rolled.cycles / unrolled.cycles, 3
    )
    benchmark.extra_info["ilp_unrolled"] = round(unrolled.stats.ilp, 3)
    benchmark.extra_info["ilp_rolled"] = round(rolled.stats.ilp, 3)
    assert unrolled.cycles < rolled.cycles
    assert unrolled.stats.ilp > rolled.stats.ilp


def test_unrolling_matters_more_with_more_alus(benchmark, specs):
    """Unrolling and ALU count are complementary: the wide machine gains
    more from unrolling than the single-ALU machine."""
    spec = specs["DCT"]

    def run():
        gains = {}
        for n_alus in (1, 4):
            config = epic_with_alus(n_alus)
            rolled = _cycles(spec, config, unroll=False).cycles
            unrolled = _cycles(spec, config, unroll=True).cycles
            gains[n_alus] = rolled / unrolled
        return gains

    gains = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["unroll_gain_1alu"] = round(gains[1], 3)
    benchmark.extra_info["unroll_gain_4alu"] = round(gains[4], 3)
    assert gains[4] > gains[1]
