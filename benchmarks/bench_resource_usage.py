"""E1 — §5.1 resource usage: slices / BRAM / multipliers / clock for
EPIC designs with 1-4 ALUs, checked against the published numbers."""

import pytest

from repro.config import epic_config, epic_with_alus
from repro.fpga import estimate_clock_mhz, estimate_resources
from repro.harness.tables import PAPER_SLICES


@pytest.mark.parametrize("n_alus", [1, 2, 3, 4])
def test_resource_estimate(benchmark, n_alus):
    config = epic_with_alus(n_alus)
    estimate = benchmark(estimate_resources, config)
    benchmark.extra_info["slices"] = estimate.slices
    benchmark.extra_info["paper_slices"] = PAPER_SLICES[n_alus]
    benchmark.extra_info["block_rams"] = estimate.block_rams
    benchmark.extra_info["mult18x18"] = estimate.mult18x18
    benchmark.extra_info["clock_mhz"] = estimate_clock_mhz(config)
    assert estimate.slices == pytest.approx(PAPER_SLICES[n_alus], rel=0.01)


def test_register_file_scaling(benchmark):
    """§5.1: growing the register file costs block RAM, not slices."""

    def sweep():
        return [
            estimate_resources(
                epic_config(n_gprs=n, regs_per_instruction=n)
            )
            for n in (32, 64, 128, 256)
        ]

    estimates = benchmark(sweep)
    benchmark.extra_info["slices_by_gprs"] = [e.slices for e in estimates]
    benchmark.extra_info["brams_by_gprs"] = [e.block_rams for e in estimates]
    assert len({e.slices for e in estimates}) == 1
    assert estimates[-1].block_rams >= estimates[0].block_rams


def test_clock_across_designs(benchmark):
    """§5.1: 'varying the number of ALUs has little impact on the
    critical path'."""

    def sweep():
        return [estimate_clock_mhz(epic_with_alus(n)) for n in (1, 2, 3, 4)]

    clocks = benchmark(sweep)
    benchmark.extra_info["clock_mhz_by_alus"] = clocks
    assert max(clocks) - min(clocks) < 0.5
