"""A4 — ablation: application-specific custom instructions (§3.3).

"Customisable instruction processors offer the potential advantage of
improved performance with reduced resource usage ... by creating a new
custom instruction to replace a group of frequently-used instructions."

This benchmark adds the two SHA-256 message-schedule sigma operations
(each folding two rotates and a shift-xor tree into one ALU op) and
measures cycles saved vs Virtex-II slices spent, on the SHA workload
rewritten to call the intrinsics.
"""

import pytest

from repro.backend import compile_minic_to_epic
from repro.config import epic_with_alus
from repro.core import EpicProcessor
from repro.fpga import estimate_resources
from repro.isa import CustomOpSpec
from repro.workloads import sha_workload


def _ror(x, n):
    return ((x >> n) | (x << (32 - n))) & 0xFFFFFFFF


SIGMA_OPS = (
    CustomOpSpec(
        "XSIG0",
        func=lambda a, b, m: (_ror(a, 7) ^ _ror(a, 18) ^ (a >> 3)) & m,
        latency=1, slices=170,
        description="SHA-256 message-schedule sigma0",
    ),
    CustomOpSpec(
        "XSIG1",
        func=lambda a, b, m: (_ror(a, 17) ^ _ror(a, 19) ^ (a >> 10)) & m,
        latency=1, slices=170,
        description="SHA-256 message-schedule sigma1",
    ),
)

#: Software fallbacks the intrinsics replace (same source runs on any
#: configuration and on the baseline).
_INTRINSIC_FUNCS = """
int xsig0(int x, int unused) {
  return ((x >>> 7) | (x << 25)) ^ ((x >>> 18) | (x << 14)) ^ (x >>> 3);
}
int xsig1(int x, int unused) {
  return ((x >>> 17) | (x << 15)) ^ ((x >>> 19) | (x << 13)) ^ (x >>> 10);
}
"""


def _sha_with_intrinsics():
    spec = sha_workload(16, 16)
    source = spec.source.replace(
        "void sha_block(int base) {",
        _INTRINSIC_FUNCS + "\nvoid sha_block(int base) {",
    )
    # Rewrite the message-schedule body to call the sigma helpers.
    old = """    s0 = ((w15 >>> 7) | (w15 << 25)) ^ ((w15 >>> 18) | (w15 << 14))
       ^ (w15 >>> 3);
    s1 = ((w2 >>> 17) | (w2 << 15)) ^ ((w2 >>> 19) | (w2 << 13))
       ^ (w2 >>> 10);"""
    new = """    s0 = xsig0(w15, 0);
    s1 = xsig1(w2, 0);"""
    assert old in source
    spec.source = source.replace(old, new)
    return spec


def _cycles(spec, config):
    compilation = compile_minic_to_epic(spec.source, config)
    cpu = EpicProcessor(config, compilation.program,
                        mem_words=spec.mem_words)
    result = cpu.run()
    base = compilation.symbols["hash"]
    got = [cpu.memory.read(base + i) for i in range(8)]
    assert got == spec.expected["hash"], "SHA output mismatch"
    return result.cycles, compilation


def test_custom_sigma_instructions(benchmark):
    spec = _sha_with_intrinsics()
    custom_config = epic_with_alus(4, custom_ops=SIGMA_OPS)
    plain_config = epic_with_alus(4)

    def run():
        custom_cycles, custom_comp = _cycles(spec, custom_config)
        plain_cycles, _ = _cycles(spec, plain_config)
        return custom_cycles, plain_cycles, custom_comp

    custom_cycles, plain_cycles, custom_comp = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert "XSIG0" in custom_comp.assembly

    custom_area = estimate_resources(custom_config).slices
    plain_area = estimate_resources(plain_config).slices
    benchmark.extra_info["cycles_with_custom_ops"] = custom_cycles
    benchmark.extra_info["cycles_without"] = plain_cycles
    benchmark.extra_info["speedup"] = round(plain_cycles / custom_cycles, 3)
    benchmark.extra_info["slice_cost"] = custom_area - plain_area
    assert custom_cycles < plain_cycles
    assert custom_area > plain_area


def test_baseline_sha_unchanged_by_intrinsic_rewrite(benchmark):
    """The intrinsic-shaped source still runs (as calls) on the plain
    baseline — customisation never forks the application source."""
    from repro.baseline import Sa110Simulator, compile_minic_to_armlet

    spec = _sha_with_intrinsics()

    def run():
        compilation = compile_minic_to_armlet(spec.source)
        simulator = Sa110Simulator(
            compilation.program, compilation.labels, compilation.data,
            mem_words=spec.mem_words,
        )
        result = simulator.run()
        base = compilation.symbols["hash"]
        assert simulator.memory[base:base + 8] == spec.expected["hash"]
        return result.cycles

    cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["sa110_cycles"] = cycles
