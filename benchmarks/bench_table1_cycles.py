"""E2 — Table 1: clock cycles for SHA/AES/DCT/Dijkstra on the SA-110
and on EPIC designs with 1-4 ALUs.

Every benchmark case regenerates one Table 1 cell (the cycle count is
attached as ``extra_info``); the final case re-derives the paper's
headline same-clock ratios and asserts the result shape.
"""

import pytest

from benchmarks.conftest import (
    EPIC_CLOCK_MHZ, SA110_CLOCK_MHZ, bench_simulation,
)

BENCHMARKS = ("SHA", "AES", "DCT", "Dijkstra")


@pytest.mark.parametrize("name", BENCHMARKS)
def test_table1_sa110(benchmark, baseline_compilations, name):
    bench_simulation(benchmark, baseline_compilations[name],
                     SA110_CLOCK_MHZ, "SA-110")


@pytest.mark.parametrize("name", BENCHMARKS)
@pytest.mark.parametrize("n_alus", [1, 2, 3, 4])
def test_table1_epic(benchmark, epic_compilations, name, n_alus):
    bench_simulation(benchmark, epic_compilations[(name, n_alus)],
                     EPIC_CLOCK_MHZ, f"EPIC-{n_alus}ALU")


def test_table1_shape(benchmark, epic_compilations, baseline_compilations):
    """Re-derives the §5.2 ratios and prints the regenerated table."""

    def run():
        cycles = {"SA-110": {}}
        for name in BENCHMARKS:
            cycles["SA-110"][name] = \
                baseline_compilations[name].simulate().cycles
        for n_alus in (1, 4):
            machine = f"EPIC-{n_alus}ALU"
            cycles[machine] = {}
            for name in BENCHMARKS:
                cycles[machine][name] = \
                    epic_compilations[(name, n_alus)].simulate().cycles
        return cycles

    cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    ratios = {
        name: cycles["SA-110"][name] / cycles["EPIC-4ALU"][name]
        for name in BENCHMARKS
    }
    benchmark.extra_info["same_clock_ratios_epic4"] = {
        name: round(value, 2) for name, value in ratios.items()
    }
    benchmark.extra_info["paper_ratios"] = {
        "SHA": 3.8, "DCT": 12.3, "Dijkstra": 1.7,
    }
    # Paper shape: DCT the biggest win, SHA substantial, AES and
    # Dijkstra modest; EPIC ahead in cycles everywhere evaluated here.
    assert ratios["DCT"] == max(ratios.values())
    assert ratios["SHA"] > 2.0
    assert 1.0 < ratios["Dijkstra"] < 3.0
    assert ratios["AES"] < ratios["SHA"]
    # ALU scaling: SHA/DCT gain from 1 -> 4 ALUs, AES/Dijkstra do not.
    for name, scales in (("SHA", True), ("DCT", True),
                         ("AES", False), ("Dijkstra", False)):
        gain = cycles["EPIC-1ALU"][name] / cycles["EPIC-4ALU"][name]
        assert (gain >= 1.3) == scales, (name, gain)
