"""A3 — ablation: instructions per issue (§3.3).

"Due to limited memory bandwidth, the number of instructions per issue
is constrained between one and four."  This sweep fixes 4 ALUs and
varies the issue width, separating the fetch-width bottleneck from the
functional-unit count.
"""

import pytest

from benchmarks.conftest import CompiledEpic, bench_simulation, EPIC_CLOCK_MHZ


@pytest.mark.parametrize("issue_width", [1, 2, 3, 4])
def test_issue_width_sweep(benchmark, specs, issue_width):
    compiled = CompiledEpic(specs["DCT"], 4, issue_width=issue_width)
    result = bench_simulation(
        benchmark, compiled, EPIC_CLOCK_MHZ,
        f"EPIC-4ALU/issue{issue_width}",
    )
    benchmark.extra_info["issue_width"] = issue_width
    benchmark.extra_info["achieved_ilp"] = round(
        result.stats.ops_executed / result.cycles, 3
    )


def test_issue_width_dominates_alu_count(benchmark, specs):
    """A 4-ALU machine throttled to single issue performs like a 1-ALU
    machine: the issue width, not the ALU count, is the first-order
    limit (which is why the paper pins it at 4)."""
    spec = specs["DCT"]
    throttled = CompiledEpic(spec, 4, issue_width=1)
    one_alu = CompiledEpic(spec, 1)

    def run():
        return throttled.simulate().cycles, one_alu.simulate().cycles

    throttled_cycles, one_alu_cycles = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    benchmark.extra_info["throttled_4alu_cycles"] = throttled_cycles
    benchmark.extra_info["one_alu_cycles"] = one_alu_cycles
    assert throttled_cycles >= one_alu_cycles * 0.9
