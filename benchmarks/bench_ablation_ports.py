"""A1 — ablation: the register-file port budget (§3.2).

The dual-port block-RAM register file behind a 4x-clock controller
allows 8 read/write operations per processor cycle.  This ablation
measures how many cycles that budget costs on the ILP-heavy benchmarks,
and how the budget itself (4/8/16 ops per cycle) moves the number.
"""

import pytest

from benchmarks.conftest import CompiledEpic, bench_simulation, EPIC_CLOCK_MHZ


@pytest.mark.parametrize("name", ["SHA", "DCT"])
def test_port_limit_cost(benchmark, specs, name):
    spec = specs[name]
    with_limit = CompiledEpic(spec, 4)
    without = CompiledEpic(spec, 4, model_port_limit=False)

    def run():
        return with_limit.simulate().cycles, without.simulate().cycles

    limited, unlimited = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cycles_with_port_limit"] = limited
    benchmark.extra_info["cycles_without"] = unlimited
    benchmark.extra_info["overhead_percent"] = round(
        100.0 * (limited - unlimited) / unlimited, 2
    )
    assert limited >= unlimited


@pytest.mark.parametrize("budget", [4, 8, 16])
def test_port_budget_sweep(benchmark, specs, budget):
    compiled = CompiledEpic(specs["DCT"], 4, regfile_ops_per_cycle=budget)
    result = bench_simulation(benchmark, compiled, EPIC_CLOCK_MHZ,
                              f"EPIC-4ALU/{budget}ports")
    benchmark.extra_info["port_budget"] = budget
    benchmark.extra_info["port_stalls"] = result.stats.port_stall_cycles
