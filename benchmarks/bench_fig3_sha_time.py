"""E3 — Figure 3: SHA execution time across the five processors.

"Execution time is calculated as a product of clock length and the
number of clock cycles taken" (SA-110 @ 100 MHz, EPIC @ 41.8 MHz).
The paper's claim: the 4-ALU EPIC runs SHA ~60 % faster than the
SA-110 despite the slower clock, and time falls as ALUs are added.
"""

from benchmarks.conftest import EPIC_CLOCK_MHZ, SA110_CLOCK_MHZ


def test_fig3_sha_execution_time(benchmark, epic_compilations,
                                 baseline_compilations):
    def run():
        seconds = {}
        cycles = baseline_compilations["SHA"].simulate().cycles
        seconds["SA-110"] = cycles / (SA110_CLOCK_MHZ * 1e6)
        for n_alus in (1, 2, 3, 4):
            cycles = epic_compilations[("SHA", n_alus)].simulate().cycles
            seconds[f"EPIC-{n_alus}ALU"] = cycles / (EPIC_CLOCK_MHZ * 1e6)
        return seconds

    seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["series_ms"] = {
        machine: round(value * 1e3, 4) for machine, value in seconds.items()
    }
    benchmark.extra_info["epic4_speedup_over_sa110"] = round(
        seconds["SA-110"] / seconds["EPIC-4ALU"], 2
    )
    # Figure 3's shape: EPIC-4 beats the SA-110 in wall-clock time, and
    # time decreases monotonically with ALU count.
    assert seconds["EPIC-4ALU"] < seconds["SA-110"]
    series = [seconds[f"EPIC-{n}ALU"] for n in (1, 2, 3, 4)]
    assert all(a >= b * 0.98 for a, b in zip(series, series[1:]))
