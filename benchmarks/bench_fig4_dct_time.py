"""E4 — Figure 4: DCT execution time across the five processors.

The paper's biggest win: the 4-ALU EPIC is "515% faster" than the
SA-110 on DCT in wall-clock time (ours lands in the same multiple-x
regime; EXPERIMENTS.md records both numbers)."""

from benchmarks.conftest import EPIC_CLOCK_MHZ, SA110_CLOCK_MHZ


def test_fig4_dct_execution_time(benchmark, epic_compilations,
                                 baseline_compilations):
    def run():
        seconds = {}
        cycles = baseline_compilations["DCT"].simulate().cycles
        seconds["SA-110"] = cycles / (SA110_CLOCK_MHZ * 1e6)
        for n_alus in (1, 2, 3, 4):
            cycles = epic_compilations[("DCT", n_alus)].simulate().cycles
            seconds[f"EPIC-{n_alus}ALU"] = cycles / (EPIC_CLOCK_MHZ * 1e6)
        return seconds

    seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = seconds["SA-110"] / seconds["EPIC-4ALU"]
    benchmark.extra_info["series_ms"] = {
        machine: round(value * 1e3, 4) for machine, value in seconds.items()
    }
    benchmark.extra_info["epic4_speedup_over_sa110"] = round(speedup, 2)
    benchmark.extra_info["paper_speedup"] = 5.15
    # Figure 4's shape: every EPIC design beats the SA-110 in time, the
    # 4-ALU one by a comfortable multiple.
    for n_alus in (1, 2, 3, 4):
        assert seconds[f"EPIC-{n_alus}ALU"] < seconds["SA-110"]
    assert speedup > 2.0
