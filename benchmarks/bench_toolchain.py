"""Host-side toolchain throughput: compiler, assembler, encoder.

These are conventional pytest-benchmarks (multiple rounds) — useful for
tracking the reproduction's own performance over time.
"""

import pytest

from repro.asm import assemble, disassemble
from repro.backend import compile_minic_to_epic
from repro.config import epic_config
from repro.isa.encoding import InstructionFormat
from repro.lang import compile_minic

_SOURCE = """
int table[16] = {1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16};
int out[16];
int scale(int x, int k) { return x * k + (x >>> 3); }
int main() {
  int i; int acc;
  acc = 0;
  unroll(4) for (i = 0; i < 16; i += 1) {
    out[i] = scale(table[i], i + 1);
    acc ^= out[i];
  }
  return acc;
}
"""


@pytest.fixture(scope="module")
def config():
    return epic_config()


@pytest.fixture(scope="module")
def compiled(config):
    return compile_minic_to_epic(_SOURCE, config)


def test_frontend_throughput(benchmark):
    module = benchmark(compile_minic, _SOURCE)
    assert "main" in module.functions


def test_full_compilation_throughput(benchmark, config):
    compilation = benchmark(compile_minic_to_epic, _SOURCE, config)
    assert compilation.code_bundles > 0


def test_assembler_throughput(benchmark, config, compiled):
    program = benchmark(assemble, compiled.assembly, config)
    assert len(program) == len(compiled.program)


def test_encoder_throughput(benchmark, config, compiled):
    fmt = InstructionFormat(config)
    words = benchmark(fmt.encode_program, compiled.program)
    assert len(words) == compiled.program.n_slots


def test_disassembler_throughput(benchmark, compiled):
    text = benchmark(disassemble, compiled.program)
    assert "main" in text
