"""The chaos harness: deterministic infrastructure fault injection and
the differential gate proving it can never change an outcome table.
"""

import json
import os
import threading

import pytest

from repro.errors import ServeError
from repro.serve import JobSpec
from repro.serve.chaos import (
    ChaosLog,
    ChaosMonkey,
    ChaosResultCache,
    chaos_smoke_jobs,
    outcome_table,
    run_chaos_differential,
)
from repro.serve.supervisor import CHAOS_HANG, CHAOS_KILL


def probe(seed=0, seconds=0.0):
    behavior = "sleep" if seconds else "ok"
    return JobSpec(kind="probe", behavior=behavior, seed=seed,
                   seconds=seconds)


class TestChaosMonkey:
    def test_decisions_are_pure_functions_of_seed(self):
        digests = [probe(seed=n).digest() for n in range(20)]
        first = [ChaosMonkey(seed=9, kill_rate=0.4, hang_rate=0.3)
                 .worker_directive(digest, 1) for digest in digests]
        second = [ChaosMonkey(seed=9, kill_rate=0.4, hang_rate=0.3)
                  .worker_directive(digest, 1) for digest in digests]
        assert first == second
        assert CHAOS_KILL in first or CHAOS_HANG in first

    def test_different_seeds_diverge(self):
        digests = [probe(seed=n).digest() for n in range(40)]

        def plan(seed):
            monkey = ChaosMonkey(seed=seed, kill_rate=0.5)
            return [monkey.worker_directive(digest, 1)
                    for digest in digests]

        assert plan(1) != plan(2)

    def test_fault_budget_caps_attempts(self):
        monkey = ChaosMonkey(seed=1, kill_rate=1.0, max_faults_per_job=2)
        digest = probe().digest()
        assert monkey.worker_directive(digest, 1) == CHAOS_KILL
        assert monkey.worker_directive(digest, 2) == CHAOS_KILL
        assert monkey.worker_directive(digest, 3) is None

    def test_corruption_fires_once_per_digest(self):
        monkey = ChaosMonkey(seed=1, corrupt_rate=1.0)
        digest = probe().digest()
        assert monkey.should_corrupt(digest)
        assert not monkey.should_corrupt(digest)

    def test_rates_validated(self):
        with pytest.raises(ServeError):
            ChaosMonkey(kill_rate=1.5)
        with pytest.raises(ServeError):
            ChaosMonkey(kill_rate=0.7, hang_rate=0.7)
        with pytest.raises(ServeError):
            ChaosMonkey(max_faults_per_job=-1)

    def test_log_records_and_serialises(self, tmp_path):
        log = ChaosLog()
        monkey = ChaosMonkey(seed=1, kill_rate=1.0, log=log)
        monkey.worker_directive(probe().digest(), 1)
        assert log.counts() == {"kill-worker": 1}
        path = str(tmp_path / "chaos-log.json")
        log.write(path)
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["counts"] == {"kill-worker": 1}
        assert payload["events"][0]["event"] == "kill-worker"


class TestChaosResultCache:
    def test_corrupted_record_detected_and_recomputed(self, tmp_path):
        monkey = ChaosMonkey(seed=1, corrupt_rate=1.0)
        cache = ChaosResultCache(str(tmp_path / "cache"), monkey,
                                 salt="s1")
        spec = probe(seed=3)
        cache.put(spec, {"value": 3})
        # The record on disk is torn; the read must be a clean miss.
        assert cache.get(spec) is None
        assert cache.stats.corrupt == 1
        # Recompute-and-put succeeds: corruption fired its one shot.
        cache.put(spec, {"value": 3})
        assert cache.get(spec) == {"value": 3}


class TestOutcomeTable:
    def test_canonical_and_order_sensitive(self):
        from repro.serve import SerialExecutor

        specs = [probe(seed=n) for n in (2, 1)]
        outcomes = SerialExecutor().run(specs)
        table = outcome_table(outcomes)
        assert table == outcome_table(SerialExecutor().run(specs))
        assert table != outcome_table(
            SerialExecutor().run(list(reversed(specs))))


class TestDifferentialGate:
    def run_bounded(self, target, max_seconds):
        """Run ``target`` under a hard wall-clock bound.

        The acceptance bar: no chaos scenario may hang the harness, so
        the differential runs on a worker thread and the test fails —
        rather than hanging CI — if it overruns.
        """
        box = {}

        def call():
            try:
                box["report"] = target()
            except BaseException as error:  # noqa: BLE001 - re-raised
                box["error"] = error

        thread = threading.Thread(target=call, daemon=True)
        thread.start()
        thread.join(timeout=max_seconds)
        assert not thread.is_alive(), \
            f"chaos differential exceeded the {max_seconds}s bound"
        if "error" in box:
            raise box["error"]
        return box["report"]

    def test_probe_differential_is_byte_identical(self, tmp_path):
        specs = [probe(seed=n, seconds=0.05) for n in range(6)]
        report = self.run_bounded(
            lambda: run_chaos_differential(
                specs, str(tmp_path / "cache"), seed=11,
                kill_rate=0.4, hang_rate=0.3, corrupt_rate=0.6,
                heartbeat=0.05, watchdog=0.5),
            max_seconds=60)
        assert report["identical"]
        assert report["jobs"] == 6
        hashes = set(report["tables_sha256"].values())
        assert len(hashes) == 1  # serial == chaos == replay

    def test_smoke_jobs_differential_gate(self, tmp_path):
        # The real acceptance gate at test scale: sweeps, a sharded
        # campaign and a bench cell, all under injected worker faults
        # and cache corruption, must reproduce the serial tables.
        log = ChaosLog()
        specs = chaos_smoke_jobs(alus=(1,), campaign_n=4,
                                 campaign_shards=2, seed=1)
        report = self.run_bounded(
            lambda: run_chaos_differential(
                specs, str(tmp_path / "cache"), seed=7,
                kill_rate=0.5, hang_rate=0.25, corrupt_rate=0.5,
                heartbeat=0.05, watchdog=1.0, log=log),
            max_seconds=180)
        assert report["identical"]
        assert report["faulted_jobs"] > 0, \
            "chaos rates injected no faults; the gate proved nothing"
        assert report["replay_hits"] > 0
        assert sum(log.counts().values()) > 0

    def test_cli_writes_report_and_log(self, tmp_path):
        from repro.serve.chaos import main

        out = str(tmp_path / "report.json")
        log_path = str(tmp_path / "log.json")
        code = self.run_bounded(
            lambda: main(["--seed", "5", "--campaign-n", "2",
                          "--shards", "1", "--alus", "1",
                          "--cache", str(tmp_path / "cache"),
                          "--out", out, "--log", log_path,
                          "--max-seconds", "300"]),
            max_seconds=180)
        assert code == 0
        with open(out) as handle:
            report = json.load(handle)
        assert report["identical"]
        assert os.path.exists(log_path)
