"""Executor contracts: ordering, failure modes, cache integration.

Probe jobs keep these tests independent of the simulator: every
behaviour (ok / fail / crash / hang / sleep) is exercised without
compiling a single benchmark.
"""

import pytest

from repro.errors import ServeError
from repro.serve import (
    JobSpec,
    PoolExecutor,
    ResultCache,
    SerialExecutor,
    raise_for_failures,
    run_jobs,
)


def probe(behavior="ok", seed=0, seconds=0.0):
    return JobSpec(kind="probe", behavior=behavior, seed=seed,
                   seconds=seconds)


class TestSerialExecutor:
    def test_results_in_input_order(self):
        specs = [probe(seed=n) for n in (5, 3, 9)]
        outcomes = SerialExecutor().run(specs)
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert [o.payload["value"] for o in outcomes] == [5, 3, 9]
        assert all(o.ok for o in outcomes)

    def test_failure_is_structured_not_raised(self):
        outcomes = SerialExecutor().run([probe("fail")])
        assert outcomes[0].status == "error"
        assert "asked to fail" in outcomes[0].error

    def test_refuses_crash_and_hang_probes(self):
        for behavior in ("crash", "hang", "stubborn"):
            with pytest.raises(ServeError, match="PoolExecutor"):
                SerialExecutor().run([probe(behavior)])

    def test_on_result_sees_every_job(self):
        seen = []
        SerialExecutor().run([probe(seed=n) for n in range(4)],
                             on_result=lambda o: seen.append(o.index))
        assert seen == [0, 1, 2, 3]


class TestPoolExecutor:
    def test_results_in_input_order_despite_scheduling(self):
        # Earlier jobs sleep longer, so completion order is reversed —
        # the returned list must not be.
        specs = [probe("sleep", seed=n, seconds=0.3 - 0.1 * n)
                 for n in range(3)]
        outcomes = PoolExecutor(jobs=3).run(specs)
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert [o.payload["value"] for o in outcomes] == [0, 1, 2]

    def test_error_probe_reports_error(self):
        outcomes = PoolExecutor(jobs=2).run([probe("fail"), probe()])
        assert [o.status for o in outcomes] == ["error", "ok"]

    def test_crash_retried_then_surfaced(self):
        outcomes = PoolExecutor(jobs=2, retries=2).run([probe("crash")])
        outcome = outcomes[0]
        assert outcome.status == "crashed"
        assert outcome.attempts == 3  # first try + 2 retries
        assert "exit code 13" in outcome.error

    def test_zero_retries_honoured(self):
        outcome = PoolExecutor(jobs=1, retries=0).run([probe("crash")])[0]
        assert outcome.status == "crashed"
        assert outcome.attempts == 1

    def test_crash_does_not_poison_neighbours(self):
        specs = [probe(seed=1), probe("crash"), probe(seed=2)]
        outcomes = PoolExecutor(jobs=2, retries=0).run(specs)
        assert [o.status for o in outcomes] == ["ok", "crashed", "ok"]
        assert outcomes[0].payload["value"] == 1
        assert outcomes[2].payload["value"] == 2

    def test_hang_reaped_by_timeout(self):
        outcomes = PoolExecutor(jobs=2, timeout=0.5).run(
            [probe("hang"), probe(seed=4)])
        assert outcomes[0].status == "timeout"
        assert "0.5s" in outcomes[0].error
        assert outcomes[1].ok and outcomes[1].payload["value"] == 4

    def test_hang_reap_names_the_ending_signal(self):
        outcome = PoolExecutor(jobs=1, timeout=0.4).run(
            [probe("hang")])[0]
        assert outcome.status == "timeout"
        assert "worker ended by SIG" in outcome.error

    def test_sigterm_ignoring_child_escalated_to_sigkill(self):
        # A "stubborn" probe masks SIGTERM and spins; the reap ladder
        # must escalate to SIGKILL instead of blocking in join().
        outcome = PoolExecutor(jobs=1, timeout=0.4,
                               term_grace=0.3).run([probe("stubborn")])[0]
        assert outcome.status == "timeout"
        assert "SIGKILL" in outcome.error

    def test_bad_construction_rejected(self):
        with pytest.raises(ServeError):
            PoolExecutor(jobs=0)
        with pytest.raises(ServeError):
            PoolExecutor(timeout=-1.0)
        with pytest.raises(ServeError):
            PoolExecutor(retries=-1)
        with pytest.raises(ServeError):
            PoolExecutor(term_grace=0.0)


class TestRunJobs:
    def test_cache_short_circuits_second_run(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"), salt="s1")
        specs = [probe(seed=n) for n in range(3)]
        first = run_jobs(specs, cache=cache)
        assert not any(o.cached for o in first)
        assert cache.stats.puts == 3
        second = run_jobs(specs, cache=cache)
        assert all(o.cached for o in second)
        assert [o.payload for o in second] == [o.payload for o in first]

    def test_partial_hits_merge_in_input_order(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"), salt="s1")
        run_jobs([probe(seed=1)], cache=cache)
        outcomes = run_jobs([probe(seed=0), probe(seed=1), probe(seed=2)],
                            cache=cache)
        assert [o.payload["value"] for o in outcomes] == [0, 1, 2]
        assert [o.cached for o in outcomes] == [False, True, False]

    def test_failures_never_cached(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"), salt="s1")
        run_jobs([probe("fail")], cache=cache)
        assert cache.stats.puts == 0
        assert len(cache) == 0

    def test_on_result_fires_for_hits_and_misses(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"), salt="s1")
        run_jobs([probe(seed=1)], cache=cache)
        seen = []
        run_jobs([probe(seed=1), probe(seed=2)], cache=cache,
                 on_result=lambda o: seen.append((o.index, o.cached)))
        assert sorted(seen) == [(0, True), (1, False)]

    def test_defaults_to_serial_executor(self):
        assert run_jobs([probe(seed=7)])[0].payload == {"value": 7}


class TestRaiseForFailures:
    def test_quiet_when_all_ok(self):
        raise_for_failures(SerialExecutor().run([probe()]))

    def test_failures_named_in_the_error(self):
        outcomes = SerialExecutor().run([probe(), probe("fail")])
        with pytest.raises(ServeError, match="1 of 2.*probe:fail"):
            raise_for_failures(outcomes)

    def test_message_carries_counts_and_first_digest(self):
        outcomes = SerialExecutor().run(
            [probe("fail", seed=1), probe(), probe("fail", seed=2)])
        failing_digest = probe("fail", seed=1).digest()
        with pytest.raises(ServeError) as excinfo:
            raise_for_failures(outcomes)
        message = str(excinfo.value)
        assert "2 of 3 jobs failed" in message
        assert "error=2" in message
        assert f"digest {failing_digest}" in message
