"""The serving contract, differentially enforced.

For every workload the same evaluation runs three ways — in-process
serial, through a two-worker :class:`PoolExecutor`, and replayed from a
warm :class:`ResultCache` — and the deterministic results must be
byte-identical.  Scheduling, process boundaries and caching are never
allowed to show through.
"""

import json

import pytest

from repro.config import epic_with_alus
from repro.explore import sweep_configs
from repro.explore.reliability import reliability_sweep
from repro.harness.faultcampaign import campaign_payload, run_campaign
from repro.perf.bench import deterministic_report, run_bench
from repro.serve import PoolExecutor, ResultCache
from repro.workloads import (
    aes_workload,
    dct_workload,
    dijkstra_workload,
    sha_workload,
)

#: Smallest valid instance of each paper benchmark.
TINY_WORKLOADS = {
    "SHA": lambda: sha_workload(8, 8),
    "AES": lambda: aes_workload(1),
    "DCT": lambda: dct_workload(8, 8),
    "Dijkstra": lambda: dijkstra_workload(6),
}

WORKLOAD_NAMES = sorted(TINY_WORKLOADS)


def pool():
    return PoolExecutor(jobs=2)


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestSweepDifferential:
    def test_serial_pool_and_cache_agree(self, name, tmp_path):
        spec = TINY_WORKLOADS[name]()
        configs = [epic_with_alus(1), epic_with_alus(2)]
        cache = ResultCache(str(tmp_path / "cache"))

        serial = sweep_configs(spec, configs)
        parallel = sweep_configs(spec, configs, executor=pool(),
                                 cache=cache)
        replayed = sweep_configs(spec, configs, cache=cache)

        assert parallel == serial  # DesignPoint equality is field-wise
        assert replayed == serial
        assert cache.stats.hits == len(configs)  # replay was all hits


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestCampaignDifferential:
    def test_sharded_pool_and_cache_agree(self, name, tmp_path):
        spec = TINY_WORKLOADS[name]()
        config = epic_with_alus(2)
        cache = ResultCache(str(tmp_path / "cache"))

        serial = run_campaign(spec, config, n=3, seed=11)
        sharded = run_campaign(spec, config, n=3, seed=11,
                               executor=pool(), cache=cache, shards=2)
        # Replay with the same shard layout: every slice is a hit.
        replayed = run_campaign(spec, config, n=3, seed=11, cache=cache,
                                shards=2)

        rendered = [json.dumps(campaign_payload([report]), sort_keys=True)
                    for report in (serial, sharded, replayed)]
        assert rendered[1] == rendered[0]
        assert rendered[2] == rendered[0]
        assert cache.stats.hits > 0


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestBenchDifferential:
    def test_deterministic_report_identical(self, name):
        spec = TINY_WORKLOADS[name]()
        serial = run_bench([spec], alu_counts=[2], quick=True)
        parallel = run_bench([spec], alu_counts=[2], quick=True,
                             executor=pool())
        assert json.dumps(deterministic_report(parallel),
                          sort_keys=True) == \
            json.dumps(deterministic_report(serial), sort_keys=True)


class TestReliabilitySweepDifferential:
    def test_pool_matches_serial(self):
        spec = dijkstra_workload(6)
        configs = [epic_with_alus(1), epic_with_alus(2)]
        serial = reliability_sweep(spec, configs, n=3, seed=5)
        parallel = reliability_sweep(spec, configs, n=3, seed=5,
                                     executor=pool())
        for a, b in zip(serial, parallel):
            assert a.config == b.config
            assert a.slices == b.slices
            assert a.cycles == b.cycles
            assert a.report.counts == b.report.counts
            assert a.report.outcome_table() == b.report.outcome_table()


class TestSchedulingInvariance:
    def test_shard_layout_cannot_show_through(self, tmp_path):
        """2-way and 3-way sharding of one campaign merge identically."""
        spec = dijkstra_workload(6)
        config = epic_with_alus(2)
        two = run_campaign(spec, config, n=5, seed=9,
                           executor=pool(), shards=2)
        three = run_campaign(spec, config, n=5, seed=9,
                             executor=pool(), shards=3)
        assert json.dumps(campaign_payload([two]), sort_keys=True) == \
            json.dumps(campaign_payload([three]), sort_keys=True)
