"""The content-addressed result cache: hits, misses, invalidation."""

import json
import os

import pytest

from repro.errors import ServeError
from repro.serve import JobSpec, ResultCache, code_salt


def probe(seed=0):
    return JobSpec(kind="probe", behavior="ok", seed=seed)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path / "cache"), salt="test-salt")


class TestPutGet:
    def test_round_trip(self, cache):
        cache.put(probe(1), {"value": 1})
        assert cache.get(probe(1)) == {"value": 1}
        assert cache.stats.hits == 1 and cache.stats.puts == 1

    def test_miss_on_unknown_spec(self, cache):
        assert cache.get(probe(99)) is None
        assert cache.stats.misses == 1

    def test_records_shard_by_digest_prefix(self, cache):
        spec = probe(1)
        cache.put(spec, {"value": 1})
        digest = spec.digest()
        expected = os.path.join(cache.root, digest[:2], digest + ".json")
        assert os.path.exists(expected)

    def test_empty_payload_refused(self, cache):
        with pytest.raises(ServeError):
            cache.put(probe(1), None)

    def test_len_and_digests(self, cache):
        for seed in range(3):
            cache.put(probe(seed), {"value": seed})
        assert len(cache) == 3
        assert probe(0).digest() in set(cache.digests())


class TestInvalidation:
    def test_salt_mismatch_invalidates_and_deletes(self, tmp_path):
        root = str(tmp_path / "cache")
        old = ResultCache(root, salt="old-code")
        old.put(probe(1), {"value": 1})
        new = ResultCache(root, salt="new-code")
        assert new.get(probe(1)) is None
        assert new.stats.invalidations == 1
        assert new.stats.misses == 1
        assert len(new) == 0  # stale record physically removed

    def test_corrupt_record_invalidated(self, cache):
        spec = probe(1)
        cache.put(spec, {"value": 1})
        with open(cache.path_for(spec.digest()), "w") as handle:
            handle.write("{truncated")
        assert cache.get(spec) is None
        assert cache.stats.invalidations == 1
        assert cache.stats.corrupt == 1

    def test_truncated_record_counted_as_corrupt(self, cache):
        # Simulate a torn write (power loss mid-record): keep the first
        # half of the bytes.  Must read as a miss, not an exception.
        spec = probe(1)
        cache.put(spec, {"value": 1})
        path = cache.path_for(spec.digest())
        size = os.path.getsize(path)
        with open(path, "r+") as handle:
            handle.truncate(size // 2)
        assert cache.get(spec) is None
        assert cache.stats.corrupt == 1
        assert not os.path.exists(path)  # quarantined record removed
        # A recompute-and-put round-trips cleanly afterwards.
        cache.put(spec, {"value": 1})
        assert cache.get(spec) == {"value": 1}

    def test_non_dict_record_counted_as_corrupt(self, cache):
        spec = probe(1)
        cache.put(spec, {"value": 1})
        with open(cache.path_for(spec.digest()), "w") as handle:
            json.dump(["not", "a", "record"], handle)
        assert cache.get(spec) is None
        assert cache.stats.corrupt == 1

    def test_salt_mismatch_is_not_corruption(self, tmp_path):
        root = str(tmp_path / "cache")
        old = ResultCache(root, salt="old-code")
        old.put(probe(1), {"value": 1})
        new = ResultCache(root, salt="new-code")
        assert new.get(probe(1)) is None
        assert new.stats.invalidations == 1
        assert new.stats.corrupt == 0  # well-formed, just stale

    def test_digest_mismatch_invalidated(self, cache):
        # A record renamed onto the wrong key must not be served.
        cache.put(probe(1), {"value": 1})
        wrong = cache.path_for(probe(2).digest())
        os.makedirs(os.path.dirname(wrong), exist_ok=True)
        os.replace(cache.path_for(probe(1).digest()), wrong)
        assert cache.get(probe(2)) is None
        assert cache.stats.invalidations == 1

    def test_schema_bump_invalidates(self, cache):
        spec = probe(1)
        cache.put(spec, {"value": 1})
        path = cache.path_for(spec.digest())
        with open(path) as handle:
            record = json.load(handle)
        record["schema"] = 0
        with open(path, "w") as handle:
            json.dump(record, handle)
        assert cache.get(spec) is None


class TestPeek:
    def test_peek_by_raw_digest(self, cache):
        spec = probe(1)
        cache.put(spec, {"value": 1})
        assert cache.peek(spec.digest()) == {"value": 1}
        assert cache.stats.hits == 1

    def test_peek_unknown_digest_is_a_miss(self, cache):
        assert cache.peek("0" * 64) is None
        assert cache.stats.misses == 1


class TestAtomicPut:
    def test_no_temp_droppings_after_put(self, cache):
        cache.put(probe(1), {"value": 1})
        leftovers = [name for _, _, names in os.walk(cache.root)
                     for name in names if not name.endswith(".json")]
        assert leftovers == []

    def test_failed_put_leaves_no_partial_record(self, cache):
        spec = probe(1)

        class Unserialisable:
            pass

        with pytest.raises(TypeError):
            cache.put(spec, {"value": Unserialisable()})
        assert not os.path.exists(cache.path_for(spec.digest()))
        shard = os.path.dirname(cache.path_for(spec.digest()))
        if os.path.isdir(shard):
            assert os.listdir(shard) == []  # temp file cleaned up
        assert cache.get(spec) is None


class TestStats:
    def test_hit_rate(self, cache):
        cache.put(probe(1), {"value": 1})
        cache.get(probe(1))
        cache.get(probe(2))
        assert cache.stats.hit_rate == pytest.approx(0.5)
        rendered = cache.stats.as_dict()
        assert rendered["hits"] == 1 and rendered["misses"] == 1

    def test_empty_stats_do_not_divide_by_zero(self, cache):
        assert cache.stats.hit_rate == 0.0


class TestCodeSalt:
    def test_memoised_and_hexadecimal(self):
        salt = code_salt()
        assert salt == code_salt()
        assert len(salt) == 64
        int(salt, 16)

    def test_default_cache_salt_is_code_salt(self, tmp_path):
        assert ResultCache(str(tmp_path / "c")).salt == code_salt()
