"""Warm persistent worker pool: byte-identity, affinity routing,
recycling, and supervision of long-lived worker incarnations.

The differential tests are the contract: whatever the warm fabric does
— reuse, route, recycle, crash, quarantine — outcome tables must stay
byte-identical to ``SerialExecutor``.  Probes drive the failure modes
cheaply; one differential covers all four real job kinds (sweep,
campaign incl. the vector engine, bench, probe) at quick sizes.
"""

import os
import signal

import pytest

from repro.config import epic_with_alus
from repro.serve import (
    JobSpec,
    SerialExecutor,
    SupervisedPool,
    bench_job,
    campaign_job,
    shard_campaign,
    sweep_job,
)
from repro.serve.chaos import ChaosMonkey, outcome_table
from repro.workloads import WORKLOADS


def probe(behavior="ok", seed=0, seconds=0.0):
    return JobSpec(kind="probe", behavior=behavior, seed=seed,
                   seconds=seconds)


def warm_pool(**overrides):
    settings = dict(jobs=2, heartbeat=0.05, watchdog=0.5,
                    backoff_base=0.01, backoff_cap=0.05, warm=True)
    settings.update(overrides)
    return SupervisedPool(**settings)


def all_kind_specs():
    """One batch covering every job kind and both campaign engines."""
    from repro.harness.cli import quick_specs

    sha, dijkstra = quick_specs(["SHA", "Dijkstra"])
    config = epic_with_alus(2)
    specs = shard_campaign(campaign_job(sha, config, n=6, seed=3), 3)
    specs.append(campaign_job(dijkstra, epic_with_alus(1), n=4, seed=5,
                              engine="vector"))
    specs.append(sweep_job(dijkstra, config))
    specs.append(bench_job(sha, epic_with_alus(1), engine="fast"))
    specs.append(probe(seed=9))
    specs.append(probe("fail", seed=10))
    return specs


class TestWarmDifferential:
    def test_all_four_kinds_byte_identical_and_reused(self):
        specs = all_kind_specs()
        serial = SerialExecutor().run(specs)
        fresh = SupervisedPool(jobs=2, heartbeat=0.05,
                               watchdog=5.0).run(specs)
        with warm_pool(watchdog=5.0) as pool:
            warm_once = pool.run(specs)
            warm_again = pool.run(specs)
            telemetry = pool.telemetry()
        tables = [outcome_table(run) for run
                  in (serial, fresh, warm_once, warm_again)]
        assert len(set(tables)) == 1
        # The second run must ride entirely on warm incarnations.
        assert telemetry["spawns"] <= 2
        assert telemetry["reused_jobs"] > 0
        assert telemetry["affinity_hits"] > 0

    def test_second_run_hits_the_checker_memo(self):
        from repro.harness.cli import quick_specs

        sha = quick_specs(["SHA"])[0]
        spec = campaign_job(sha, epic_with_alus(1), n=4, seed=11)
        with warm_pool(jobs=1, watchdog=5.0) as pool:
            first = pool.run([spec])[0]
            second = pool.run([spec])[0]
        assert first.payload == second.payload
        assert second.meta["checker_memo_hit"] is True
        assert second.meta["worker"]["affinity_hit"] is True
        assert second.meta["worker"]["jobs_on_worker"] == 2
        assert second.meta["worker"]["checker_memo"]["size"] >= 1


class TestWarmLifecycle:
    def test_workers_persist_across_runs_and_close_retires(self):
        pool = warm_pool()
        pool.run([probe(seed=n) for n in range(4)])
        workers = list(pool._warm_workers.values())
        assert workers and all(w.process.is_alive() for w in workers)
        pool.run([probe(seed=n) for n in range(4, 8)])
        assert pool.telemetry()["spawns"] == len(workers)
        pool.close()
        assert pool.telemetry()["live_workers"] == 0
        assert all(not w.process.is_alive() for w in workers)
        # The pool stays usable after close: fresh incarnations spawn.
        outcomes = pool.run([probe(seed=99)])
        assert outcomes[0].payload == {"value": 99}
        pool.close()

    def test_context_manager_closes(self):
        with warm_pool() as pool:
            pool.run([probe(seed=1)])
            assert pool.telemetry()["live_workers"] >= 1
        assert pool.telemetry()["live_workers"] == 0

    def test_recycle_mid_batch_after_n_jobs(self):
        specs = [probe(seed=n) for n in range(8)]
        with warm_pool(jobs=1, recycle_after=2) as pool:
            outcomes = pool.run(specs)
            telemetry = pool.telemetry()
        assert [o.payload["value"] for o in outcomes] == list(range(8))
        assert telemetry["recycles_jobs"] == 4
        assert telemetry["spawns"] == 4
        # Recycling is bookkeeping, not failure.
        assert telemetry["workers_lost"] == 0

    def test_rss_ceiling_recycles(self):
        # Any live Python process exceeds 1 MB RSS, so every job ends
        # its incarnation — the hard bound still yields correct output.
        specs = [probe(seed=n) for n in range(4)]
        with warm_pool(jobs=1, max_worker_rss_mb=1.0) as pool:
            outcomes = pool.run(specs)
            telemetry = pool.telemetry()
        assert [o.payload["value"] for o in outcomes] == list(range(4))
        assert telemetry["recycles_rss"] == 4

    def test_bad_construction_rejected(self):
        from repro.errors import ServeError

        with pytest.raises(ServeError):
            SupervisedPool(warm=True, recycle_after=0)
        with pytest.raises(ServeError):
            SupervisedPool(warm=True, max_worker_rss_mb=0)


class TestWarmSupervision:
    def test_crash_costs_only_the_incarnation(self):
        # seed order: ok jobs surround a crasher; the crash retries on
        # a fresh incarnation and finally surfaces, neighbours ride on.
        specs = [probe(seed=1), probe("crash"), probe(seed=2)]
        with warm_pool(retries=1, poison_after=5) as pool:
            outcomes = pool.run(specs)
            telemetry = pool.telemetry()
        assert [o.status for o in outcomes] == ["ok", "crashed", "ok"]
        assert outcomes[1].attempts == 2
        assert telemetry["workers_lost"] == 2

    def test_poisoned_warm_worker_quarantines_digest(self):
        crasher = probe("crash")
        with warm_pool(retries=5, poison_after=2) as pool:
            first = pool.run([crasher, probe(seed=1)])
            again = pool.run([crasher])
        assert [o.status for o in first] == ["poisoned", "ok"]
        # Quarantine persists across runs: refused without an attempt.
        assert again[0].status == "poisoned"
        assert again[0].attempts == 0

    def test_per_job_timeout_sacrifices_the_incarnation(self):
        specs = [probe("sleep", seed=1, seconds=30.0), probe(seed=2)]
        with warm_pool(timeout=0.3) as pool:
            outcomes = pool.run(specs)
        assert outcomes[0].status == "timeout"
        assert outcomes[0].attempts == 1  # deterministic: no retry
        assert outcomes[1].status == "ok"

    def test_chaos_kill_warm_worker_mid_stream(self):
        monkey = ChaosMonkey(seed=3, kill_rate=1.0, max_faults_per_job=1)
        specs = [probe(seed=n) for n in range(4)]
        with warm_pool(retries=2, chaos=monkey) as pool:
            outcomes = pool.run(specs)
            telemetry = pool.telemetry()
        assert all(o.ok for o in outcomes)
        assert all(o.attempts == 2 for o in outcomes)
        assert telemetry["workers_lost"] == 4
        assert monkey.log.counts()["kill-worker"] == 4

    def test_chaos_hang_warm_worker_reaped_by_watchdog(self):
        monkey = ChaosMonkey(seed=4, hang_rate=1.0, max_faults_per_job=1)
        specs = [probe(seed=n) for n in range(2)]
        with warm_pool(retries=2, watchdog=0.3, chaos=monkey) as pool:
            outcomes = pool.run(specs)
            telemetry = pool.telemetry()
        assert all(o.ok for o in outcomes)
        assert all(o.attempts == 2 for o in outcomes)
        assert telemetry["workers_lost"] == 2
        assert monkey.log.counts()["hang-worker"] == 2

    def test_idle_worker_killed_between_jobs_is_replaced(self):
        with warm_pool(jobs=1) as pool:
            pool.run([probe(seed=1)])
            worker = next(iter(pool._warm_workers.values()))
            os.kill(worker.process.pid, signal.SIGKILL)
            worker.process.join(timeout=5.0)
            # The next job must not be lost to the dead incarnation.
            outcomes = pool.run([probe(seed=2)])
            telemetry = pool.telemetry()
        assert outcomes[0].payload == {"value": 2}
        assert telemetry["spawns"] == 2

    def test_degrades_to_serial_when_spawn_fails(self, monkeypatch):
        supervisor = warm_pool()

        def refuse():
            raise OSError("no processes for you")

        monkeypatch.setattr(supervisor, "_spawn_warm", refuse)
        outcomes = supervisor.run([probe(seed=1), probe(seed=2)])
        assert [o.payload["value"] for o in outcomes] == [1, 2]
        assert supervisor.degraded
        assert all(o.meta.get("degraded") for o in outcomes)


class TestTelemetryShape:
    def test_telemetry_rates_and_worker_entries(self):
        with warm_pool(jobs=1) as pool:
            pool.run([probe(seed=n) for n in range(3)])
            telemetry = pool.telemetry()
        assert telemetry["warm"] is True
        assert telemetry["dispatched"] == 3
        assert telemetry["worker_reuse_rate"] == pytest.approx(2 / 3)
        # Probes all share the "probe" affinity key.
        assert telemetry["affinity_hit_rate"] == pytest.approx(2 / 3)
        (worker,) = telemetry["workers"]
        assert worker["jobs_done"] == 3
        assert worker["busy"] is False
        assert worker["rss_kb"] > 0
        assert set(worker["checker_memo"]) == {
            "hits", "misses", "evictions", "size", "limit"}

    def test_affinity_key_shapes(self):
        assert probe().affinity_key() == "probe"
        sweep = sweep_job(WORKLOADS["SHA"](), epic_with_alus(2))
        key = sweep.affinity_key()
        assert key.startswith("SHA:")
        assert sweep.config.digest()[:16] in key
        other = sweep_job(WORKLOADS["SHA"](), epic_with_alus(3))
        assert other.affinity_key() != key
