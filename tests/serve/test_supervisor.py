"""SupervisedPool: heartbeats, watchdog, retries, poison quarantine,
degraded serial fallback.

Probe jobs drive every failure mode without touching the simulator;
chaos directives drive the infrastructure faults (worker killed or
hung mid-job) that no probe behaviour can express.
"""

import pytest

from repro.errors import ServeError, SpawnError
from repro.serve import JobSpec, SupervisedPool
from repro.serve.chaos import ChaosMonkey


def probe(behavior="ok", seed=0, seconds=0.0):
    return JobSpec(kind="probe", behavior=behavior, seed=seed,
                   seconds=seconds)


def pool(**overrides):
    """A SupervisedPool with test-friendly (fast) timing defaults."""
    settings = dict(jobs=2, heartbeat=0.05, watchdog=0.5,
                    backoff_base=0.01, backoff_cap=0.05)
    settings.update(overrides)
    return SupervisedPool(**settings)


class TestOrderingAndBasics:
    def test_results_in_input_order_despite_scheduling(self):
        specs = [probe("sleep", seed=n, seconds=0.3 - 0.1 * n)
                 for n in range(3)]
        outcomes = pool(jobs=3).run(specs)
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert [o.payload["value"] for o in outcomes] == [0, 1, 2]
        assert all(o.ok for o in outcomes)

    def test_failure_is_structured_not_raised(self):
        outcomes = pool().run([probe("fail"), probe(seed=3)])
        assert [o.status for o in outcomes] == ["error", "ok"]
        assert "asked to fail" in outcomes[0].error

    def test_on_result_sees_every_job(self):
        seen = []
        pool().run([probe(seed=n) for n in range(4)],
                   on_result=lambda o: seen.append(o.index))
        assert sorted(seen) == [0, 1, 2, 3]

    def test_bad_construction_rejected(self):
        with pytest.raises(ServeError):
            SupervisedPool(jobs=0)
        with pytest.raises(ServeError):
            SupervisedPool(poison_after=0)
        with pytest.raises(ServeError):
            SupervisedPool(backoff_base=0.2, backoff_cap=0.1)
        with pytest.raises(ServeError, match="watchdog"):
            SupervisedPool(heartbeat=1.0, watchdog=0.5)


class TestCrashRetries:
    def test_crash_retry_exhaustion_surfaces_crashed(self):
        # poison_after above the attempt budget: the job must exhaust
        # its retries and report crashed, not poisoned.
        outcome = pool(retries=1, poison_after=5).run(
            [probe("crash")])[0]
        assert outcome.status == "crashed"
        assert outcome.attempts == 2
        assert "exit code 13" in outcome.error

    def test_crash_does_not_poison_neighbours(self):
        specs = [probe(seed=1), probe("crash"), probe(seed=2)]
        outcomes = pool(retries=0, poison_after=5).run(specs)
        assert [o.status for o in outcomes] == ["ok", "crashed", "ok"]

    def test_backoff_delay_is_deterministic_and_bounded(self):
        supervisor = pool(backoff_base=0.05, backoff_cap=0.4)
        digest = probe("crash").digest()
        first = supervisor.backoff_delay(digest, 1)
        assert first == supervisor.backoff_delay(digest, 1)
        for failures in range(1, 8):
            delay = supervisor.backoff_delay(digest, failures)
            window = min(0.4, 0.05 * 2 ** (failures - 1))
            assert 0.5 * window <= delay <= window

    def test_zero_base_means_no_backoff(self):
        assert pool(backoff_base=0.0).backoff_delay("ab" * 32, 3) == 0.0


class TestPoisonQuarantine:
    def test_crash_loop_is_quarantined_as_poisoned(self):
        supervisor = pool(retries=5, poison_after=2)
        outcome = supervisor.run([probe("crash")])[0]
        assert outcome.status == "poisoned"
        assert "crash-looped" in outcome.error
        assert probe("crash").digest() in supervisor.quarantined()

    def test_requeued_poisoned_digest_refused_without_spawning(self):
        supervisor = pool(retries=5, poison_after=2)
        supervisor.run([probe("crash")])
        again = supervisor.run([probe("crash"), probe(seed=4)])
        assert again[0].status == "poisoned"
        assert again[0].attempts == 0  # refused, never re-spawned
        assert again[1].ok  # healthy neighbours still run


class TestWatchdog:
    def test_heartbeats_keep_slow_jobs_alive(self):
        # The job outlives the watchdog window many times over; the
        # worker's heartbeat thread must keep it off the reap list.
        outcome = pool(jobs=1, heartbeat=0.05, watchdog=0.3).run(
            [probe("sleep", seed=9, seconds=1.0)])[0]
        assert outcome.ok
        assert outcome.attempts == 1

    def test_chaos_hang_reaped_and_retried_to_success(self):
        chaos = ChaosMonkey(seed=3, hang_rate=1.0, max_faults_per_job=1)
        outcome = pool(jobs=1, watchdog=0.3, retries=2,
                       chaos=chaos).run([probe(seed=5)])[0]
        assert outcome.ok
        assert outcome.payload == {"value": 5}
        assert outcome.attempts == 2
        counts = chaos.log.counts()
        assert counts["hang-worker"] == 1
        assert counts["watchdog-reap"] == 1

    def test_watchdog_exhaustion_is_a_structured_timeout(self):
        chaos = ChaosMonkey(seed=3, hang_rate=1.0,
                            max_faults_per_job=99)
        outcome = pool(jobs=1, watchdog=0.3, retries=1,
                       chaos=chaos).run([probe(seed=5)])[0]
        assert outcome.status == "timeout"
        assert "watchdog" in outcome.error
        assert outcome.attempts == 2

    def test_per_job_timeout_is_not_retried(self):
        # A hang probe heartbeats merrily, so only the per-job budget
        # can reap it — and a deterministic job fault earns no retry.
        outcome = pool(jobs=1, timeout=0.4, retries=3).run(
            [probe("hang")])[0]
        assert outcome.status == "timeout"
        assert outcome.attempts == 1
        assert "0.4s" in outcome.error

    def test_chaos_kill_reaped_and_retried_to_success(self):
        chaos = ChaosMonkey(seed=3, kill_rate=1.0, max_faults_per_job=1)
        outcomes = pool(retries=2, chaos=chaos).run(
            [probe(seed=n) for n in range(3)])
        assert all(o.ok for o in outcomes)
        assert all(o.attempts == 2 for o in outcomes)
        assert chaos.log.counts()["kill-worker"] == 3


class TestDegradedFallback:
    def test_spawn_failure_degrades_to_serial(self, monkeypatch):
        supervisor = pool()

        def refuse(payload, directive):
            raise OSError("Resource temporarily unavailable")

        monkeypatch.setattr(supervisor, "_spawn", refuse)
        outcomes = supervisor.run([probe(seed=n) for n in range(3)])
        assert supervisor.degraded
        assert [o.payload["value"] for o in outcomes] == [0, 1, 2]
        assert all(o.meta.get("degraded") for o in outcomes)

    def test_degraded_mode_reports_unrunnable_probes_as_crashed(
            self, monkeypatch):
        supervisor = pool()
        monkeypatch.setattr(
            supervisor, "_spawn",
            lambda payload, directive: (_ for _ in ()).throw(
                OSError("no more processes")))
        outcomes = supervisor.run([probe("crash"), probe(seed=1)])
        assert outcomes[0].status == "crashed"
        assert "degraded" in outcomes[0].error
        assert outcomes[1].ok

    def test_fallback_disabled_raises_spawn_error(self, monkeypatch):
        supervisor = pool(fallback_serial=False)
        monkeypatch.setattr(
            supervisor, "_spawn",
            lambda payload, directive: (_ for _ in ()).throw(
                OSError("no more processes")))
        with pytest.raises(SpawnError):
            supervisor.run([probe()])
