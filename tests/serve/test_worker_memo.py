"""Worker-process compilation reuse and checkpoint environment knobs."""

import pytest

from repro.config import epic_with_alus
from repro.harness.cli import quick_specs
from repro.serve.jobspec import campaign_job
from repro.serve.worker import (
    _CHECKER_MEMO,
    campaign_checker,
    checkpoint_store,
    checkpoints_enabled,
    execute_spec,
)


@pytest.fixture()
def sha_job():
    spec = quick_specs(["SHA"])[0]
    return campaign_job(spec, epic_with_alus(2), n=2, seed=3)


class TestCheckerMemo:
    def test_same_key_reuses_the_checker(self, sha_job):
        first = campaign_checker(sha_job)
        second = campaign_checker(sha_job)
        assert first is second

    def test_shards_of_one_campaign_share_a_checker(self, sha_job):
        spec = quick_specs(["SHA"])[0]
        shard = campaign_job(spec, epic_with_alus(2), n=2, seed=3,
                             fault_offset=1, fault_count=1)
        assert campaign_checker(sha_job) is campaign_checker(shard)

    def test_different_machine_gets_its_own_checker(self, sha_job):
        spec = quick_specs(["SHA"])[0]
        other = campaign_job(spec, epic_with_alus(4), n=2, seed=3)
        assert campaign_checker(sha_job) is not campaign_checker(other)

    def test_execute_campaign_reports_fastforward_meta(self, sha_job):
        payload, meta = execute_spec(sha_job)
        assert payload["workload"] == "SHA"
        assert len(payload["outcomes"]) == 2
        assert meta["faults_run"] == 2
        for key in ("elapsed_s", "faults_per_s", "checkpointed",
                    "ff_restores", "ff_cycles_skipped",
                    "ff_convergence_cuts"):
            assert key in meta


class TestEnvironmentKnobs:
    def test_checkpoints_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECKPOINTS", raising=False)
        assert checkpoints_enabled()

    @pytest.mark.parametrize("value", ["0", "off", "no", "false", "OFF"])
    def test_checkpoints_disabled(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_CHECKPOINTS", value)
        assert not checkpoints_enabled()

    def test_checkpoints_explicit_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINTS", "1")
        assert checkpoints_enabled()

    def test_store_absent_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECKPOINT_STORE", raising=False)
        assert checkpoint_store() is None

    def test_store_built_from_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CHECKPOINT_STORE", str(tmp_path))
        store = checkpoint_store()
        assert store is not None
        assert store.root == str(tmp_path)

    def test_memo_respects_disabled_checkpoints(self, monkeypatch):
        # A checker built while checkpoints are off must not
        # fast-forward; the memo key does not include the env, so use
        # a distinct (workload, machine) cell to get a fresh build.
        monkeypatch.setenv("REPRO_CHECKPOINTS", "0")
        _CHECKER_MEMO.clear()
        spec = quick_specs(["SHA"])[0]
        job = campaign_job(spec, epic_with_alus(3), n=1, seed=7)
        checker = campaign_checker(job)
        assert not checker.checkpoints
        _CHECKER_MEMO.clear()
