"""Worker-process compilation reuse and checkpoint environment knobs."""

import pytest

from repro.config import epic_with_alus
from repro.harness.cli import quick_specs
from repro.serve.jobspec import campaign_job
from repro.serve.worker import (
    _CHECKER_MEMO,
    campaign_checker,
    checkpoint_store,
    checkpoints_enabled,
    execute_spec,
)


@pytest.fixture()
def sha_job():
    spec = quick_specs(["SHA"])[0]
    return campaign_job(spec, epic_with_alus(2), n=2, seed=3)


class TestCheckerMemo:
    def test_same_key_reuses_the_checker(self, sha_job):
        first = campaign_checker(sha_job)
        second = campaign_checker(sha_job)
        assert first is second

    def test_shards_of_one_campaign_share_a_checker(self, sha_job):
        spec = quick_specs(["SHA"])[0]
        shard = campaign_job(spec, epic_with_alus(2), n=2, seed=3,
                             fault_offset=1, fault_count=1)
        assert campaign_checker(sha_job) is campaign_checker(shard)

    def test_different_machine_gets_its_own_checker(self, sha_job):
        spec = quick_specs(["SHA"])[0]
        other = campaign_job(spec, epic_with_alus(4), n=2, seed=3)
        assert campaign_checker(sha_job) is not campaign_checker(other)

    def test_execute_campaign_reports_fastforward_meta(self, sha_job):
        payload, meta = execute_spec(sha_job)
        assert payload["workload"] == "SHA"
        assert len(payload["outcomes"]) == 2
        assert meta["faults_run"] == 2
        for key in ("elapsed_s", "faults_per_s", "checkpointed",
                    "ff_restores", "ff_cycles_skipped",
                    "ff_convergence_cuts"):
            assert key in meta


class TestEnvironmentKnobs:
    def test_checkpoints_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECKPOINTS", raising=False)
        assert checkpoints_enabled()

    @pytest.mark.parametrize("value", ["0", "off", "no", "false", "OFF"])
    def test_checkpoints_disabled(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_CHECKPOINTS", value)
        assert not checkpoints_enabled()

    def test_checkpoints_explicit_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINTS", "1")
        assert checkpoints_enabled()

    def test_store_absent_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECKPOINT_STORE", raising=False)
        assert checkpoint_store() is None

    def test_store_built_from_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CHECKPOINT_STORE", str(tmp_path))
        store = checkpoint_store()
        assert store is not None
        assert store.root == str(tmp_path)

    def test_memo_respects_disabled_checkpoints(self, monkeypatch):
        # A checker built while checkpoints are off must not
        # fast-forward; the memo key does not include the env, so use
        # a distinct (workload, machine) cell to get a fresh build.
        monkeypatch.setenv("REPRO_CHECKPOINTS", "0")
        _CHECKER_MEMO.clear()
        spec = quick_specs(["SHA"])[0]
        job = campaign_job(spec, epic_with_alus(3), n=1, seed=7)
        checker = campaign_checker(job)
        assert not checker.checkpoints
        _CHECKER_MEMO.clear()


class TestCheckerMemoLRU:
    """The memo is bounded now that workers are long-lived (PR 10)."""

    def _fresh(self):
        from repro.serve.worker import CheckerMemo

        return CheckerMemo()

    def test_evicts_least_recently_used(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKER_MEMO", "2")
        memo = self._fresh()
        memo.put(("a",), "A")
        memo.put(("b",), "B")
        assert memo.get(("a",)) == "A"   # touch: "b" is now LRU
        memo.put(("c",), "C")
        assert ("b",) not in memo
        assert memo.get(("a",)) == "A"
        assert memo.get(("c",)) == "C"
        assert memo.evictions == 1
        assert len(memo) == 2

    def test_counters_track_hits_and_misses(self):
        memo = self._fresh()
        assert memo.get(("x",)) is None
        memo.put(("x",), 1)
        assert memo.get(("x",)) == 1
        stats = memo.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["evictions"] == 0
        assert stats["size"] == 1

    def test_limit_env_is_read_per_lookup(self, monkeypatch):
        memo = self._fresh()
        monkeypatch.setenv("REPRO_CHECKER_MEMO", "5")
        assert memo.limit == 5
        monkeypatch.setenv("REPRO_CHECKER_MEMO", "3")
        assert memo.limit == 3

    def test_limit_is_at_least_one_and_survives_garbage(self, monkeypatch):
        memo = self._fresh()
        monkeypatch.setenv("REPRO_CHECKER_MEMO", "0")
        assert memo.limit == 1
        monkeypatch.setenv("REPRO_CHECKER_MEMO", "banana")
        assert memo.limit == memo.DEFAULT_LIMIT

    def test_campaign_meta_reports_memo_stats(self, sha_job):
        _CHECKER_MEMO.clear()
        _, cold_meta = execute_spec(sha_job)
        assert cold_meta["checker_memo_hit"] is False
        _, warm_meta = execute_spec(sha_job)
        assert warm_meta["checker_memo_hit"] is True
        stats = warm_meta["checker_memo"]
        assert stats["size"] >= 1
        assert stats["hits"] >= 1
        _CHECKER_MEMO.clear()
