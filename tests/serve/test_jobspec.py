"""JobSpec canonicalisation, digests, sharding and batch files."""

import io
import json
import os
import subprocess
import sys

import pytest

from repro.config import epic_config, epic_with_alus
from repro.errors import ServeError
from repro.serve import (
    JobSpec,
    bench_job,
    campaign_job,
    derive_seeds,
    dump_batch,
    load_batch,
    shard_campaign,
    sweep_job,
)
from repro.workloads import dijkstra_workload, sha_workload


def tiny_sweep():
    return sweep_job(sha_workload(8, 8), epic_with_alus(2))


class TestDigest:
    def test_equal_specs_share_a_digest(self):
        assert tiny_sweep().digest() == tiny_sweep().digest()

    def test_digest_distinguishes_workload_size(self):
        a = sweep_job(sha_workload(8, 8), epic_with_alus(2))
        b = sweep_job(sha_workload(16, 16), epic_with_alus(2))
        assert a.digest() != b.digest()

    def test_digest_distinguishes_machine(self):
        spec = sha_workload(8, 8)
        assert sweep_job(spec, epic_with_alus(1)).digest() != \
            sweep_job(spec, epic_with_alus(2)).digest()

    def test_digest_distinguishes_engine_and_budget(self):
        spec = sha_workload(8, 8)
        config = epic_config()
        base = sweep_job(spec, config)
        assert sweep_job(spec, config, engine="fast").digest() != \
            base.digest()
        assert sweep_job(spec, config, max_cycles=1000).digest() != \
            base.digest()

    def test_campaign_digest_covers_slice(self):
        spec = dijkstra_workload(8)
        config = epic_config()
        whole = campaign_job(spec, config, n=10, seed=3)
        shard = campaign_job(spec, config, n=10, seed=3,
                             fault_offset=5, fault_count=5)
        assert whole.digest() != shard.digest()

    def test_digest_stable_across_processes(self):
        job = tiny_sweep()
        program = (
            "from repro.config import epic_with_alus\n"
            "from repro.serve import sweep_job\n"
            "from repro.workloads import sha_workload\n"
            "print(sweep_job(sha_workload(8, 8), "
            "epic_with_alus(2)).digest())\n"
        )
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "99"  # digest must not depend on hashing
        output = subprocess.run(
            [sys.executable, "-c", program], env=env, check=True,
            capture_output=True, text=True,
        ).stdout.strip()
        assert output == job.digest()

    def test_canonical_is_pure_json(self):
        rendered = json.dumps(tiny_sweep().canonical(), sort_keys=True)
        assert json.loads(rendered) == tiny_sweep().canonical()

    def test_job_id_names_kind_and_subject(self):
        job = tiny_sweep()
        assert job.job_id.startswith("sweep:SHA:")
        assert job.digest().startswith(job.job_id.rsplit(":", 1)[1])


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ServeError, match="kind"):
            JobSpec(kind="mystery")

    def test_unknown_workload_rejected(self):
        with pytest.raises(ServeError, match="workload"):
            JobSpec(kind="sweep", workload="FFT", config=epic_config())

    def test_unknown_engine_rejected_naming_the_choices(self):
        with pytest.raises(ServeError,
                           match="expected one of .*trace.*all"):
            JobSpec(kind="sweep", workload="SHA", config=epic_config(),
                    engine="warp")

    def test_trace_and_multi_engine_names_accepted(self):
        spec = sha_workload(8, 8)
        config = epic_config()
        assert sweep_job(spec, config, engine="trace").engine == "trace"
        assert bench_job(spec, config).engine == "all"
        assert bench_job(spec, config, engine="both").engine == "both"
        digests = {
            bench_job(spec, config, engine=name).digest()
            for name in ("all", "both", "trace", "fast")
        }
        assert len(digests) == 4  # the engine is part of the job identity

    def test_missing_config_rejected(self):
        with pytest.raises(ServeError, match="config"):
            JobSpec(kind="sweep", workload="SHA")

    def test_custom_op_config_rejected(self):
        from repro.isa import CustomOpSpec

        config = epic_config(custom_ops=(
            CustomOpSpec("FOO", func=lambda a, b, m: a),))
        with pytest.raises(ServeError, match="custom"):
            sweep_job(sha_workload(8, 8), config)

    def test_campaign_needs_injections(self):
        with pytest.raises(ServeError, match="n >= 1"):
            JobSpec(kind="campaign", workload="SHA", config=epic_config(),
                    n=0, spaces=("gpr",))

    def test_probe_behaviour_checked(self):
        with pytest.raises(ServeError, match="behaviour"):
            JobSpec(kind="probe", behavior="explode")

    def test_campaign_seed_zero_rejected(self):
        # The campaign PRNG (XorShift32) maps state 0 to itself; a
        # zero seed must be refused at job build time, mirroring
        # generate_faults, not discovered by a worker mid-campaign.
        with pytest.raises(ServeError, match="seed"):
            campaign_job(dijkstra_workload(8), epic_config(), n=4,
                         seed=0)

    def test_vector_engine_is_campaign_only(self):
        with pytest.raises(ServeError, match="campaign"):
            sweep_job(sha_workload(8, 8), epic_config(),
                      engine="vector")

    def test_vector_campaign_accepted_and_in_digest(self):
        spec = dijkstra_workload(8)
        config = epic_config()
        auto = campaign_job(spec, config, n=4, seed=3)
        vectored = campaign_job(spec, config, n=4, seed=3,
                                engine="vector")
        assert vectored.engine == "vector"
        assert vectored.digest() != auto.digest()


class TestPayloadRoundTrip:
    def test_sweep_round_trip(self):
        job = tiny_sweep()
        clone = JobSpec.from_payload(json.loads(json.dumps(
            job.to_payload())))
        assert clone == job
        assert clone.digest() == job.digest()

    def test_campaign_round_trip(self):
        job = campaign_job(dijkstra_workload(8), epic_with_alus(3),
                           n=12, seed=7, fault_offset=4, fault_count=4)
        clone = JobSpec.from_payload(job.to_payload())
        assert clone == job

    def test_probe_round_trip(self):
        job = JobSpec(kind="probe", behavior="sleep", seconds=0.5, seed=9)
        clone = JobSpec.from_payload(job.to_payload())
        assert clone == job

    def test_future_schema_rejected(self):
        payload = tiny_sweep().to_payload()
        payload["version"] = 99
        with pytest.raises(ServeError, match="v99"):
            JobSpec.from_payload(payload)

    def test_garbage_rejected(self):
        with pytest.raises(ServeError, match="malformed"):
            JobSpec.from_payload(["not", "a", "job"])


class TestShardCampaign:
    def test_shards_cover_every_fault_exactly_once(self):
        job = campaign_job(dijkstra_workload(8), epic_config(),
                           n=10, seed=5)
        shards = shard_campaign(job, 3)
        assert len(shards) == 3
        covered = []
        for shard in shards:
            assert shard.n == job.n and shard.seed == job.seed
            covered.extend(range(shard.fault_offset,
                                 shard.fault_offset + shard.fault_count))
        assert covered == list(range(job.n))

    def test_more_shards_than_faults_clamped(self):
        job = campaign_job(dijkstra_workload(8), epic_config(), n=2,
                           seed=1)
        assert len(shard_campaign(job, 8)) == 2

    def test_resharding_a_slice_refused(self):
        job = campaign_job(dijkstra_workload(8), epic_config(), n=10,
                           seed=1, fault_offset=2, fault_count=3)
        with pytest.raises(ServeError, match="re-shard"):
            shard_campaign(job, 2)

    def test_only_campaigns_shard(self):
        with pytest.raises(ServeError, match="campaign"):
            shard_campaign(tiny_sweep(), 2)

    def test_shards_inherit_the_engine(self):
        # Regression: rebuilt shards used to drop the engine field,
        # silently downgrading sharded vector campaigns to scalar.
        job = campaign_job(dijkstra_workload(8), epic_config(), n=10,
                           seed=5, engine="vector")
        assert all(shard.engine == "vector"
                   for shard in shard_campaign(job, 3))


class TestDeriveSeeds:
    def test_deterministic_and_positional(self):
        assert derive_seeds(42, 5) == derive_seeds(42, 5)
        assert derive_seeds(42, 5)[:3] == derive_seeds(42, 3)

    def test_master_seed_matters(self):
        assert derive_seeds(1, 4) != derive_seeds(2, 4)

    def test_zero_master_seed_rejected(self):
        # XorShift32 cannot hold state 0: a zero master seed would
        # derive an all-identical (and all-zero) seed stream.  Mirrors
        # generate_faults' rejection of seed 0.
        with pytest.raises(ServeError, match="non-zero"):
            derive_seeds(0, 4)

    def test_derived_seeds_are_usable_campaign_seeds(self):
        # Every derived seed must be accepted by campaign_job (i.e.
        # non-zero), so batch-built campaigns can never differ from
        # directly-built ones.
        seeds = derive_seeds(7, 200)
        assert all(seeds)
        spec = dijkstra_workload(8)
        config = epic_config()
        batch = [campaign_job(spec, config, n=4, seed=seed)
                 for seed in seeds[:3]]
        direct = [campaign_job(spec, config, n=4, seed=seed)
                  for seed in derive_seeds(7, 3)]
        assert [job.digest() for job in batch] == \
            [job.digest() for job in direct]


class TestBatchFiles:
    def test_round_trip_preserves_order(self, tmp_path):
        jobs = [sweep_job(sha_workload(8, 8), epic_with_alus(n))
                for n in (4, 1, 2)]
        path = str(tmp_path / "batch.json")
        dump_batch(jobs, path)
        assert load_batch(path) == jobs

    def test_stream_round_trip(self):
        jobs = [tiny_sweep()]
        buffer = io.StringIO()
        dump_batch(jobs, buffer)
        buffer.seek(0)
        assert load_batch(buffer) == jobs

    def test_bad_file_reported(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ServeError, match="batch"):
            load_batch(str(path))

    def test_wrong_envelope_rejected(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text(json.dumps({"version": 1}), encoding="utf-8")
        with pytest.raises(ServeError, match="jobs"):
            load_batch(str(path))


class TestCycleLimitOk:
    """cycle_limit_ok: budget blow-ups as results, sweep jobs only."""

    def test_default_off_and_in_canonical(self):
        job = tiny_sweep()
        assert job.cycle_limit_ok is False
        assert job.canonical()["cycle_limit_ok"] is False

    def test_flag_changes_the_digest(self):
        from repro.config import epic_with_alus
        from repro.workloads import sha_workload

        spec = sha_workload(8, 8)
        config = epic_with_alus(2)
        tolerant = sweep_job(spec, config, cycle_limit_ok=True)
        strict = sweep_job(spec, config)
        assert tolerant.digest() != strict.digest()

    def test_round_trips_through_payload(self):
        from repro.config import epic_with_alus
        from repro.workloads import sha_workload

        job = sweep_job(sha_workload(8, 8), epic_with_alus(2),
                        cycle_limit_ok=True)
        rebuilt = JobSpec.from_payload(job.to_payload())
        assert rebuilt.cycle_limit_ok is True
        assert rebuilt == job

    def test_rejected_on_campaign_jobs(self):
        from repro.config import epic_with_alus
        from repro.workloads import sha_workload

        with pytest.raises(ServeError, match="cycle_limit_ok"):
            JobSpec(kind="campaign", workload="SHA",
                    config=epic_with_alus(2), n=5, seed=3,
                    spaces=("gpr",), cycle_limit_ok=True)

    def test_worker_surfaces_the_truncation_outcome(self):
        from repro.config import epic_with_alus
        from repro.serve.worker import execute_spec
        from repro.workloads import sha_workload

        job = sweep_job(sha_workload(8, 8), epic_with_alus(2),
                        max_cycles=100, cycle_limit_ok=True)
        payload, _meta = execute_spec(job)
        assert payload["outcome"] == "cycle-limit-exceeded"
        assert payload["cycles"] == 100

    def test_completed_runs_report_ok_outcome(self):
        from repro.config import epic_with_alus
        from repro.serve.worker import execute_spec
        from repro.workloads import sha_workload

        job = sweep_job(sha_workload(8, 8), epic_with_alus(2))
        payload, _meta = execute_spec(job)
        assert payload["outcome"] == "ok"
