"""``repro-serve`` end to end: batch, run, warm, verify."""

import json

import pytest

from repro.serve import JobSpec, ResultCache, dump_batch, load_batch
from repro.serve.cli import main as serve_main


@pytest.fixture(scope="module")
def sweep_batch(tmp_path_factory):
    """A small real batch: quick Dijkstra on two machines."""
    path = str(tmp_path_factory.mktemp("serve") / "batch.json")
    assert serve_main(["batch", "--kind", "sweep", "--bench", "Dijkstra",
                       "--alus", "1", "2", "--quick",
                       "--out", path]) == 0
    return path


class TestBatchCommand:
    def test_writes_loadable_jobs(self, sweep_batch, capsys):
        jobs = load_batch(sweep_batch)
        assert len(jobs) == 2
        assert {job.config.n_alus for job in jobs} == {1, 2}
        assert all(job.kind == "sweep" for job in jobs)

    def test_campaign_batch_shards(self, tmp_path, capsys):
        path = str(tmp_path / "campaign.json")
        assert serve_main(["batch", "--kind", "campaign", "--bench",
                           "SHA", "--alus", "4", "--quick", "--n", "6",
                           "--seed", "3", "--shards", "3",
                           "--out", path]) == 0
        jobs = load_batch(path)
        assert len(jobs) == 3
        assert [job.fault_offset for job in jobs] == [0, 2, 4]
        assert "3 campaign job(s)" in capsys.readouterr().out


class TestRunWarmVerify:
    def test_cold_then_cached_then_verified(self, sweep_batch, tmp_path,
                                            capsys):
        cache = str(tmp_path / "cache")
        report_path = str(tmp_path / "report.json")

        # Cold run fills the cache.
        assert serve_main(["run", sweep_batch, "--cache", cache,
                           "--out", report_path]) == 0
        cold = json.loads(open(report_path).read())
        assert cold["summary"]["ok"] == 2
        assert cold["summary"]["cached"] == 0
        assert cold["cache"]["puts"] == 2
        capsys.readouterr()

        # Warm rerun is served entirely from cache.
        assert serve_main(["run", sweep_batch, "--cache", cache,
                           "--out", report_path, "--verbose"]) == 0
        warm = json.loads(open(report_path).read())
        assert warm["summary"]["cached"] == 2
        assert warm["cache"]["hit_rate"] == 1.0
        captured = capsys.readouterr()
        assert "hit rate 100.0%" in captured.out
        assert "(cache)" in captured.err  # --verbose per-job lines

        # verify recomputes fresh and agrees with the cache.
        assert serve_main(["verify", sweep_batch, "--cache", cache]) == 0
        assert "verified 2/2" in capsys.readouterr().out

    def test_verify_flags_stale_records(self, sweep_batch, tmp_path,
                                        capsys):
        cache_root = str(tmp_path / "cache")
        assert serve_main(["warm", sweep_batch, "--cache",
                           cache_root]) == 0
        # Tamper with one cached payload, keeping the record valid.
        cache = ResultCache(cache_root)
        spec = load_batch(sweep_batch)[0]
        payload = cache.get(spec)
        payload["cycles"] += 1
        cache.put(spec, payload)
        capsys.readouterr()
        assert serve_main(["verify", sweep_batch, "--cache",
                           cache_root]) == 1
        captured = capsys.readouterr()
        assert "1 stale" in captured.out
        assert "STALE" in captured.err

    def test_json_report_printed(self, sweep_batch, tmp_path, capsys):
        assert serve_main(["run", sweep_batch, "--cache",
                           str(tmp_path / "cache"), "--json"]) == 0
        out = capsys.readouterr().out
        report = json.loads(out[out.index("{"):])
        assert report["summary"]["total"] == 2


class TestWarmgate:
    def test_gate_report_and_exit_zero(self, tmp_path, capsys):
        batch = str(tmp_path / "probes.json")
        dump_batch([JobSpec(kind="probe", behavior="ok", seed=n)
                    for n in range(1, 5)], batch)
        report_path = str(tmp_path / "warmgate.json")
        # --speedup 0 keeps the perf gate off: probes are too cheap to
        # make a timing promise, the identity gate is the point here.
        assert serve_main(["warmgate", batch, "--jobs", "2",
                           "--out", report_path]) == 0
        report = json.loads(open(report_path).read())
        assert report["identical"] is True
        assert report["jobs"] == 4
        assert report["warm_pool"]["warm"] is True
        assert report["warm_pool"]["reused_jobs"] > 0
        out = capsys.readouterr().out
        assert "byte-identical" in out

    def test_unreachable_speedup_fails_the_gate(self, tmp_path, capsys):
        batch = str(tmp_path / "probes.json")
        dump_batch([JobSpec(kind="probe", behavior="ok", seed=1)],
                   batch)
        # One probe job can never make warm reuse pay 1000000x.
        assert serve_main(["warmgate", batch, "--jobs", "1",
                           "--speedup", "1000000"]) == 1
        assert "required 1e+06x" in capsys.readouterr().err

    def test_run_fresh_vs_warm_telemetry(self, sweep_batch, tmp_path,
                                         capsys):
        fresh_report = str(tmp_path / "fresh.json")
        warm_report = str(tmp_path / "warm.json")
        telemetry_path = str(tmp_path / "telemetry.json")
        assert serve_main(["run", sweep_batch, "--jobs", "2",
                           "--fresh-workers",
                           "--out", fresh_report]) == 0
        assert serve_main(["run", sweep_batch, "--jobs", "2",
                           "--telemetry-out", telemetry_path,
                           "--out", warm_report]) == 0
        fresh = json.loads(open(fresh_report).read())
        warm = json.loads(open(warm_report).read())

        def ledger(report):
            return [(j["job_id"], j["digest"], j["status"],
                     j["attempts"]) for j in report["jobs"]]

        assert ledger(fresh) == ledger(warm)
        assert "warm_pool" not in fresh or not fresh["warm_pool"]["warm"]
        telemetry = json.loads(open(telemetry_path).read())
        assert telemetry["warm"] is True
        assert telemetry == warm["warm_pool"]


class TestFailureSurfacing:
    def test_probe_failures_exit_nonzero_with_structure(self, tmp_path,
                                                        capsys):
        batch = str(tmp_path / "probes.json")
        dump_batch([
            JobSpec(kind="probe", behavior="ok", seed=1),
            JobSpec(kind="probe", behavior="crash"),
            JobSpec(kind="probe", behavior="hang"),
        ], batch)
        assert serve_main(["run", batch, "--jobs", "2",
                           "--timeout", "1.0", "--retries", "0",
                           "--out", str(tmp_path / "report.json")]) == 1
        report = json.loads(open(tmp_path / "report.json").read())
        statuses = [job["status"] for job in report["jobs"]]
        assert statuses == ["ok", "crashed", "timeout"]
        out = capsys.readouterr().out
        assert "1 crashed" in out and "1 timeout" in out

    def test_bad_jobs_argument(self, tmp_path, capsys):
        batch = str(tmp_path / "b.json")
        dump_batch([JobSpec(kind="probe", behavior="ok")], batch)
        assert serve_main(["run", batch, "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_missing_batch_file_reported(self, capsys):
        assert serve_main(["run", "/nonexistent/batch.json"]) == 1
        assert "repro-serve:" in capsys.readouterr().err
