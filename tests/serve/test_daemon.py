"""The serve daemon: HTTP API, back-pressure, quotas, durable spool,
and the kill-mid-flight / restart / drain exactly-once round trip.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.errors import (
    DaemonError,
    QueueFullError,
    QuotaExceededError,
    ServeError,
)
from repro.serve import JobSpec, SerialExecutor
from repro.serve.daemon import DaemonClient, ServeDaemon


def probe(seed=0, seconds=0.0):
    behavior = "sleep" if seconds else "ok"
    return JobSpec(kind="probe", behavior=behavior, seed=seed,
                   seconds=seconds)


@pytest.fixture
def served(tmp_path):
    """A started daemon (serial executor: fast, fork-free) + client."""
    daemon = ServeDaemon(str(tmp_path / "spool"),
                         executor=SerialExecutor(), max_queue=64)
    daemon.start()
    try:
        yield daemon, DaemonClient(daemon.host, daemon.port,
                                   client="tester")
    finally:
        daemon.stop()


class TestSubmission:
    """Queue admission logic, exercised without a scheduler thread."""

    def test_empty_batch_refused(self, tmp_path):
        daemon = ServeDaemon(str(tmp_path / "spool"),
                             executor=SerialExecutor())
        with pytest.raises(ServeError, match="empty"):
            daemon.submit([])

    def test_queue_full_raises_with_retry_after(self, tmp_path):
        daemon = ServeDaemon(str(tmp_path / "spool"),
                             executor=SerialExecutor(), max_queue=4)
        daemon.submit([probe(seed=n) for n in range(3)])
        with pytest.raises(QueueFullError) as excinfo:
            daemon.submit([probe(seed=n) for n in range(10, 12)])
        assert excinfo.value.retry_after >= 1.0
        assert "queue is full" in str(excinfo.value)

    def test_per_client_quota_enforced(self, tmp_path):
        daemon = ServeDaemon(str(tmp_path / "spool"),
                             executor=SerialExecutor(),
                             max_queue=64, max_client_jobs=3)
        daemon.submit([probe(seed=1), probe(seed=2)], client="alice")
        with pytest.raises(QuotaExceededError) as excinfo:
            daemon.submit([probe(seed=3), probe(seed=4)],
                          client="alice")
        assert excinfo.value.client == "alice"
        # Quotas are per client: bob's identical batch is admitted.
        accepted = daemon.submit([probe(seed=3), probe(seed=4)],
                                 client="bob")
        assert accepted["total"] == 2

    def test_quota_error_is_a_queue_full_error(self):
        # One except-clause on the client side handles both refusals.
        assert issubclass(QuotaExceededError, QueueFullError)

    def test_submission_spooled_before_ack(self, tmp_path):
        daemon = ServeDaemon(str(tmp_path / "spool"),
                             executor=SerialExecutor())
        accepted = daemon.submit([probe(seed=7)])
        path = daemon._batch_path(accepted["batch"])
        with open(path) as handle:
            record = json.load(handle)
        assert record["jobs"][0]["seed"] == 7


class TestRetryAfterParsing:
    """The client must survive any Retry-After a proxy can produce."""

    @staticmethod
    def _client_seeing_429(monkeypatch, header):
        client = DaemonClient("localhost", 1, client="tester")
        headers = {} if header is None else {"Retry-After": header}

        def fake_request(method, path, body=None):
            return 429, headers, {"error": "queue is full"}

        monkeypatch.setattr(client, "_request", fake_request)
        return client

    def _retry_after(self, monkeypatch, header):
        client = self._client_seeing_429(monkeypatch, header)
        with pytest.raises(QueueFullError) as excinfo:
            client.status()
        return excinfo.value.retry_after

    def test_numeric_header_honoured(self, monkeypatch):
        assert self._retry_after(monkeypatch, "5") == 5.0
        assert self._retry_after(monkeypatch, "2.5") == 2.5

    def test_http_date_falls_back_to_default(self, monkeypatch):
        # RFC 7231 allows an HTTP-date here; bare float() used to
        # crash the retry loop with an unhandled ValueError.
        value = self._retry_after(monkeypatch,
                                  "Wed, 21 Oct 2015 07:28:00 GMT")
        assert value == 1.0

    def test_garbage_and_missing_fall_back(self, monkeypatch):
        assert self._retry_after(monkeypatch, "soon") == 1.0
        assert self._retry_after(monkeypatch, None) == 1.0

    def test_clamped_to_the_backpressure_band(self, monkeypatch):
        assert self._retry_after(monkeypatch, "0") == 1.0
        assert self._retry_after(monkeypatch, "-3") == 1.0
        assert self._retry_after(monkeypatch, "86400") == 60.0


class TestHTTPApi:
    def test_submit_poll_peek_status_round_trip(self, served):
        daemon, client = served
        specs = [probe(seed=n) for n in range(4)]
        accepted = client.submit(specs)
        assert accepted["total"] == 4
        final = client.wait(accepted["batch"], timeout=30)
        assert final["state"] == "done"
        assert [r["status"] for r in final["results"]] == ["ok"] * 4
        assert [r["payload"]["value"] for r in final["results"]] \
            == [0, 1, 2, 3]
        # Completed results are peekable by raw digest...
        assert client.peek(accepted["digests"][2]) == {"value": 2}
        # ...unknown digests are a clean None, not an error.
        assert client.peek("0" * 64) is None
        status = client.status()
        assert status["queue_depth"] == 0
        assert status["batches"][accepted["batch"]] == "done"

    def test_incremental_poll_with_since(self, served):
        daemon, client = served
        accepted = client.submit([probe(seed=n) for n in range(3)])
        final = client.wait(accepted["batch"], timeout=30)
        tail = client.poll(accepted["batch"], since=2)
        assert len(tail["results"]) == 1
        assert tail["results"][0] == final["results"][2]

    def test_unknown_batch_is_a_daemon_error(self, served):
        daemon, client = served
        with pytest.raises(DaemonError, match="b999999"):
            client.poll("b999999")

    def test_queue_full_maps_to_429_with_retry_after(self, tmp_path):
        daemon = ServeDaemon(str(tmp_path / "spool"),
                             executor=SerialExecutor(), max_queue=2)
        daemon.start()
        try:
            client = DaemonClient(daemon.host, daemon.port)
            with pytest.raises(QueueFullError) as excinfo:
                client.submit([probe(seed=n) for n in range(5)])
            assert excinfo.value.retry_after >= 1.0
        finally:
            daemon.stop()

    def test_drain_refuses_new_batches(self, served):
        daemon, client = served
        client.drain()
        with pytest.raises(DaemonError, match="draining"):
            client.submit([probe()])

    def test_dropped_connections_survived_by_client_retries(
            self, tmp_path):
        from repro.serve.chaos import ChaosMonkey

        chaos = ChaosMonkey(seed=1, drop_rate=1.0, max_faults_per_job=1)
        daemon = ServeDaemon(str(tmp_path / "spool"),
                             executor=SerialExecutor(), chaos=chaos)
        daemon.start()
        try:
            client = DaemonClient(daemon.host, daemon.port,
                                  retries=3, backoff=0.05)
            accepted = client.submit([probe(seed=5)])
            final = client.wait(accepted["batch"], timeout=30)
            assert final["results"][0]["payload"] == {"value": 5}
            assert chaos.log.counts()["drop-connection"] >= 1
        finally:
            daemon.stop()


class TestRecovery:
    def test_restart_recovers_unfinished_batches(self, tmp_path):
        spool = str(tmp_path / "spool")
        first = ServeDaemon(spool, executor=SerialExecutor())
        accepted = first.submit([probe(seed=n) for n in range(3)])
        # No scheduler was started: the daemon "dies" with the batch
        # spooled but unprocessed.
        second = ServeDaemon(spool, executor=SerialExecutor())
        second.start()
        try:
            client = DaemonClient(second.host, second.port)
            final = client.wait(accepted["batch"], timeout=30)
            assert final["state"] == "done"
            assert [r["payload"]["value"] for r in final["results"]] \
                == [0, 1, 2]
        finally:
            second.stop()

    def test_torn_spool_record_skipped_as_never_acked(self, tmp_path):
        spool = str(tmp_path / "spool")
        first = ServeDaemon(spool, executor=SerialExecutor())
        kept = first.submit([probe(seed=1)])
        torn = first.submit([probe(seed=2)])
        path = first._batch_path(torn["batch"])
        with open(path, "r+") as handle:
            handle.truncate(10)
        second = ServeDaemon(spool, executor=SerialExecutor())
        assert kept["batch"] in second._batches
        assert torn["batch"] not in second._batches
        # The torn id is not reused for the next submission.
        fresh = second.submit([probe(seed=3)])
        assert fresh["batch"] not in (kept["batch"], torn["batch"])


class TestKillRestartLifecycle:
    """The acceptance bar: SIGKILL mid-flight, restart, drain — every
    job exactly-once in the merged results."""

    @staticmethod
    def start_daemon(spool, ready):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep))
        return subprocess.Popen(
            [sys.executable, "-m", "repro.serve.daemon",
             "--spool", spool, "--jobs", "2", "--ready-file", ready],
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)

    @staticmethod
    def wait_ready(ready, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                with open(ready) as handle:
                    return json.load(handle)["port"]
            except (OSError, ValueError):
                time.sleep(0.1)
        raise AssertionError("daemon never wrote its ready file")

    def test_kill_mid_flight_restart_drain_exactly_once(self, tmp_path):
        spool = str(tmp_path / "spool")
        ready = str(tmp_path / "ready.json")
        process = self.start_daemon(spool, ready)
        try:
            port = self.wait_ready(ready)
            client = DaemonClient("127.0.0.1", port)
            specs = [probe(seed=n, seconds=0.25) for n in range(10)]
            accepted = client.submit(specs)

            # Let some (not all) jobs finish, then pull the plug.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                state = client.poll(accepted["batch"])
                if state["completed"] >= 2:
                    break
                time.sleep(0.05)
            assert 0 < state["completed"] < state["total"]
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=10)

            os.remove(ready)
            process = self.start_daemon(spool, ready)
            port = self.wait_ready(ready)
            client = DaemonClient("127.0.0.1", port)
            final = client.wait(accepted["batch"], timeout=60)

            digests = [entry["digest"] for entry in final["results"]]
            assert final["state"] == "done"
            assert sorted(digests) == sorted(accepted["digests"])
            assert len(set(digests)) == len(specs)  # exactly once
            assert all(entry["status"] == "ok"
                       for entry in final["results"])
            # Work finished before the kill was replayed from the
            # cache, not recomputed.
            assert any(entry["cached"] for entry in final["results"])

            client.drain()
            assert process.wait(timeout=60) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)


class TestWarmPoolStatus:
    """/v1/status telemetry and the per-kind Retry-After estimate."""

    def test_status_reports_warm_pool_telemetry(self, tmp_path):
        from repro.serve import SupervisedPool

        pool = SupervisedPool(jobs=1, warm=True, heartbeat=0.05,
                              watchdog=5.0)
        daemon = ServeDaemon(str(tmp_path / "spool"), executor=pool)
        daemon.start()
        try:
            client = DaemonClient(daemon.host, daemon.port)
            accepted = client.submit([probe(seed=n) for n in range(3)])
            client.wait(accepted["batch"], timeout=30)
            warm = client.status()["executor"]["warm_pool"]
            assert warm["warm"] is True
            assert warm["dispatched"] == 3
            assert warm["worker_reuse_rate"] == pytest.approx(2 / 3)
            assert warm["live_workers"] == 1
            assert "recycles" in warm and "affinity_hit_rate" in warm
        finally:
            daemon.stop()
        # stop() retires the warm incarnations.
        assert pool.telemetry()["live_workers"] == 0

    def test_serial_executor_reports_no_warm_pool(self, served):
        daemon, client = served
        assert client.status()["executor"]["warm_pool"] is None

    def test_avg_seconds_tracked_per_kind(self, served):
        daemon, client = served
        accepted = client.submit([probe(seed=1, seconds=0.05)])
        client.wait(accepted["batch"], timeout=30)
        status = client.status()
        assert "probe" in status["avg_seconds"]
        assert status["avg_seconds"]["probe"] > 0
        # Kinds never run carry no estimate entry.
        assert "campaign" not in status["avg_seconds"]

    def test_retry_after_costs_backlog_per_kind(self, tmp_path):
        daemon = ServeDaemon(str(tmp_path / "spool"),
                             executor=SerialExecutor(), max_queue=4)
        # Teach the daemon that probes are slow: 10 s each.
        daemon._avg_seconds["probe"] = 10.0
        daemon.submit([probe(seed=n) for n in range(3)])
        with pytest.raises(QueueFullError) as excinfo:
            daemon.submit([probe(seed=n) for n in range(10, 13)])
        # 6 probes x 10 s / 1 worker, clamped to the 60 s band cap.
        assert excinfo.value.retry_after == 60.0

    def test_status_reports_queue_by_kind(self, tmp_path):
        daemon = ServeDaemon(str(tmp_path / "spool"),
                             executor=SerialExecutor())
        daemon.submit([probe(seed=1), probe(seed=2)])
        assert daemon.status()["queue_by_kind"] == {"probe": 2}
