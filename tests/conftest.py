"""Session-wide fixtures."""

from __future__ import annotations

import pytest

from repro.config import epic_config, epic_with_alus


@pytest.fixture(scope="session")
def default_config():
    return epic_config()


@pytest.fixture(scope="session")
def one_alu_config():
    return epic_with_alus(1)


@pytest.fixture(params=[1, 2, 4], ids=lambda n: f"{n}alu")
def alu_config(request):
    return epic_with_alus(request.param)
