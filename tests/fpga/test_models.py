"""FPGA resource and clock models: calibration against §5.1."""

import pytest

from repro.config import AluFeature, epic_config, epic_with_alus
from repro.fpga import (
    VIRTEX2_DEVICES,
    estimate_clock_mhz,
    estimate_resources,
    fits_on,
)
from repro.fpga.virtex2 import smallest_device

#: Published slice counts (§5.1); the 4-ALU value is inferred from the
#: ~2600-slices-per-ALU statement.
PAPER = {1: 4181, 2: 6779, 3: 9367, 4: 11955}


class TestCalibration:
    @pytest.mark.parametrize("n_alus", [1, 2, 3, 4])
    def test_slices_match_paper_within_one_percent(self, n_alus):
        estimate = estimate_resources(epic_with_alus(n_alus))
        assert estimate.slices == pytest.approx(PAPER[n_alus], rel=0.01)

    def test_per_alu_cost_is_about_2600(self):
        one = estimate_resources(epic_with_alus(1)).slices
        four = estimate_resources(epic_with_alus(4)).slices
        per_alu = (four - one) / 3
        assert per_alu == pytest.approx(2600, rel=0.02)

    def test_clock_is_41_8_mhz_for_evaluated_designs(self):
        for n_alus in range(1, 5):
            assert estimate_clock_mhz(epic_with_alus(n_alus)) == \
                pytest.approx(41.8, rel=0.01)


class TestScalingBehaviour:
    def test_register_file_growth_costs_bram_not_slices(self):
        """§5.1: the register file maps to SelectRAM; enlarging it has
        negligible effect on slices."""
        small = estimate_resources(epic_config(n_gprs=32))
        large = estimate_resources(
            epic_config(n_gprs=1024, regs_per_instruction=1024)
        )
        assert large.slices == small.slices
        assert large.block_rams > small.block_rams

    def test_multiplication_uses_block_multipliers(self):
        with_mul = estimate_resources(epic_config())
        without = estimate_resources(epic_config(
            alu_features=frozenset({AluFeature.DIVIDE, AluFeature.SHIFT})
        ))
        assert with_mul.mult18x18 > 0
        assert without.mult18x18 == 0

    def test_dropping_divide_saves_about_1000_slices_per_alu(self):
        full = estimate_resources(epic_with_alus(1))
        no_div = estimate_resources(epic_with_alus(
            1, alu_features=frozenset({AluFeature.MULTIPLY,
                                       AluFeature.SHIFT})
        ))
        assert 900 <= full.slices - no_div.slices <= 1200

    def test_narrow_datapath_shrinks_alus(self):
        wide = estimate_resources(epic_config())
        narrow = estimate_resources(epic_config(datapath_width=16))
        assert narrow.slices < wide.slices

    def test_custom_op_slices_accounted_per_alu(self):
        from repro.isa import CustomOpSpec

        spec = CustomOpSpec("BIGOP", func=lambda a, b, m: a, slices=200)
        base = estimate_resources(epic_with_alus(2))
        custom = estimate_resources(epic_with_alus(2, custom_ops=(spec,)))
        assert custom.slices - base.slices == pytest.approx(400, abs=2)

    def test_breakdown_sums_to_total(self):
        estimate = estimate_resources(epic_config())
        assert sum(estimate.breakdown.values()) == estimate.slices


class TestClockModel:
    def test_alu_count_has_little_impact(self):
        """§5.1: ALUs in parallel barely affect the critical path."""
        one = estimate_clock_mhz(epic_with_alus(1))
        eight = estimate_clock_mhz(epic_with_alus(8))
        assert abs(one - eight) / one < 0.05

    def test_wider_datapath_slows_clock(self):
        assert estimate_clock_mhz(epic_config(datapath_width=64)) < \
            estimate_clock_mhz(epic_config())

    def test_narrower_datapath_speeds_clock(self):
        assert estimate_clock_mhz(epic_config(datapath_width=16)) > \
            estimate_clock_mhz(epic_config())


class TestDeviceFitting:
    def test_paper_designs_fit_the_family(self):
        for n_alus in range(1, 5):
            estimate = estimate_resources(epic_with_alus(n_alus))
            device = smallest_device(estimate)
            assert fits_on(estimate, device)

    def test_one_alu_design_fits_xc2v2000(self):
        estimate = estimate_resources(epic_with_alus(1))
        assert fits_on(estimate, VIRTEX2_DEVICES["xc2v2000"])

    def test_four_alu_design_needs_a_big_part(self):
        estimate = estimate_resources(epic_with_alus(4))
        assert not fits_on(estimate, VIRTEX2_DEVICES["xc2v1000"])
        assert fits_on(estimate, VIRTEX2_DEVICES["xc2v6000"])


class TestCostMemo:
    """estimate_costs memoises the cost model by config digest."""

    def test_second_call_skips_the_models(self, monkeypatch):
        from repro.config import epic_config
        from repro.fpga import clear_cost_memo, estimate_costs
        from repro.fpga import costs as costs_module

        clear_cost_memo()
        calls = []
        real = costs_module.estimate_resources
        monkeypatch.setattr(
            costs_module, "estimate_resources",
            lambda config: calls.append(1) or real(config))
        config = epic_config(n_alus=3)
        first = estimate_costs(config)
        second = estimate_costs(epic_config(n_alus=3))  # equal digest
        assert first == second
        assert len(calls) == 1
        clear_cost_memo()

    def test_memo_matches_the_direct_models(self):
        from repro.config import epic_config
        from repro.fpga import (
            clear_cost_memo, estimate_clock_mhz, estimate_costs,
            estimate_resources,
        )

        clear_cost_memo()
        config = epic_config(n_alus=2, forwarding=False)
        estimate, clock_mhz = estimate_costs(config)
        assert estimate == estimate_resources(config)
        assert clock_mhz == estimate_clock_mhz(config)
        clear_cost_memo()

    def test_capacity_is_bounded(self):
        from repro.config import epic_config
        from repro.fpga import clear_cost_memo, cost_memo_len, estimate_costs
        from repro.fpga import costs as costs_module

        clear_cost_memo()
        old_capacity = costs_module._MEMO_CAPACITY
        costs_module._MEMO_CAPACITY = 2
        try:
            for gprs in (64, 128, 256):
                estimate_costs(epic_config(
                    n_gprs=gprs, regs_per_instruction=256))
            assert cost_memo_len() == 2
        finally:
            costs_module._MEMO_CAPACITY = old_capacity
            clear_cost_memo()
