"""SEU protection (parity / ECC) is priced into the resource model."""

import pytest

from repro.config import epic_config
from repro.fpga import estimate_resources


def slices(**overrides):
    return estimate_resources(epic_config(**overrides)).slices


class TestProtectionPricing:
    def test_regfile_protection_costs_slices_monotonically(self):
        none = slices()
        parity = slices(regfile_protection="parity")
        ecc = slices(regfile_protection="ecc")
        assert none < parity < ecc

    def test_memory_protection_costs_slices_monotonically(self):
        none = slices()
        parity = slices(memory_protection="parity")
        ecc = slices(memory_protection="ecc")
        assert none < parity < ecc

    def test_breakdown_itemises_protection(self):
        estimate = estimate_resources(epic_config(
            regfile_protection="ecc", memory_protection="parity"))
        assert estimate.breakdown["regfile_protection"] > 0
        assert estimate.breakdown["memory_protection"] > 0

    def test_unprotected_design_pays_nothing(self):
        estimate = estimate_resources(epic_config())
        assert estimate.breakdown.get("regfile_protection", 0) == 0
        assert estimate.breakdown.get("memory_protection", 0) == 0

    def test_paper_calibration_unchanged_without_protection(self):
        # The protection knobs must not disturb the §5.1 slice counts.
        assert slices() == pytest.approx(11955, rel=0.01)
