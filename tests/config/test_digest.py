"""MachineConfig.canonical()/digest(): the cache-key contract.

The digest must change iff a semantically relevant field changes, and
must be stable across construction order, hash randomisation, and
processes.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.config import (
    CONFIG_DIGEST_VERSION,
    AluFeature,
    MachineConfig,
    epic_config,
)
from repro.isa import CustomOpSpec

#: One semantic change per configurable field; each must move the
#: digest.  (``latencies`` is covered separately via with_latency.)
SEMANTIC_CHANGES = {
    "n_alus": 2,
    "n_gprs": 32,
    "n_preds": 16,
    "n_btrs": 8,
    "issue_width": 2,
    "datapath_width": 16,
    "regs_per_instruction": 64,  # paired with n_gprs=32 below
    "alu_features": frozenset({AluFeature.MULTIPLY, AluFeature.SHIFT}),
    "regfile_ops_per_cycle": 4,
    "forwarding": False,
    "model_port_limit": False,
    "n_mem_banks": 2,
    "lsu_shares_fetch_bandwidth": True,
    "pipeline_stages": 3,
    "clock_mhz": 50.0,
    "trap_policy": "squash-bundle",
    "regfile_protection": "ecc",
    "memory_protection": "parity",
}


class TestDigestMovesWithSemantics:
    def test_equal_configs_equal_digests(self):
        assert epic_config().digest() == epic_config().digest()

    @pytest.mark.parametrize("field", sorted(SEMANTIC_CHANGES))
    def test_each_semantic_field_moves_the_digest(self, field):
        if field == "regs_per_instruction":
            # Must stay >= n_gprs, so vary it against a smaller file.
            base = epic_config().with_changes(n_gprs=32,
                                              regs_per_instruction=32)
            changed = base.with_changes(regs_per_instruction=64)
        else:
            base = epic_config()
            changed = base.with_changes(**{field: SEMANTIC_CHANGES[field]})
        assert changed.digest() != base.digest()

    def test_latency_change_moves_the_digest(self):
        assert epic_config().with_latency("load", 5).digest() != \
            epic_config().digest()

    def test_custom_op_contract_moves_the_digest(self):
        op = CustomOpSpec("SADD", func=lambda a, b, m: (a + b) & m)
        with_op = epic_config(custom_ops=(op,))
        assert with_op.digest() != epic_config().digest()
        slower = CustomOpSpec("SADD", func=lambda a, b, m: (a + b) & m,
                              latency=2)
        assert epic_config(custom_ops=(slower,)).digest() != \
            with_op.digest()


class TestCosmeticsDoNotMoveTheDigest:
    def test_custom_op_description_is_cosmetic(self):
        def semantics(a, b, m):
            return (a + b) & m

        plain = CustomOpSpec("SADD", func=semantics)
        documented = CustomOpSpec("SADD", func=semantics,
                                  description="saturating add")
        assert epic_config(custom_ops=(plain,)).digest() == \
            epic_config(custom_ops=(documented,)).digest()

    def test_custom_op_callable_identity_is_cosmetic(self):
        # The digest captures the architectural contract, not the
        # Python object implementing it.
        a = CustomOpSpec("SADD", func=lambda a, b, m: (a + b) & m)
        b = CustomOpSpec("SADD", func=lambda a, b, m: (b + a) & m)
        assert epic_config(custom_ops=(a,)).digest() == \
            epic_config(custom_ops=(b,)).digest()


class TestOrderIndependence:
    def test_latency_tuple_order_is_normalised(self):
        base = epic_config()
        shuffled = base.with_changes(
            latencies=tuple(reversed(base.latencies)))
        assert shuffled.digest() == base.digest()

    def test_feature_set_construction_order_irrelevant(self):
        forward = frozenset([AluFeature.MULTIPLY, AluFeature.DIVIDE,
                             AluFeature.SHIFT])
        backward = frozenset([AluFeature.SHIFT, AluFeature.DIVIDE,
                              AluFeature.MULTIPLY])
        assert epic_config(alu_features=forward).digest() == \
            epic_config(alu_features=backward).digest()


class TestStability:
    def test_canonical_is_pure_json(self):
        canonical = epic_config().canonical()
        assert json.loads(json.dumps(canonical)) == canonical
        assert canonical["version"] == CONFIG_DIGEST_VERSION

    def test_digest_stable_across_processes_and_hash_seeds(self):
        program = (
            "from repro.config import epic_config\n"
            "print(epic_config(n_alus=3).digest())\n"
        )
        digests = set()
        for hash_seed in ("0", "12345"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            digests.add(subprocess.run(
                [sys.executable, "-c", program], env=env, check=True,
                capture_output=True, text=True,
            ).stdout.strip())
        digests.add(epic_config(n_alus=3).digest())
        assert len(digests) == 1

    def test_digest_is_sha256_hex(self):
        digest = MachineConfig().digest()
        assert len(digest) == 64
        int(digest, 16)
