"""Preset configurations (the paper's evaluated design points)."""

from repro.config import DEFAULT_CONFIG, epic_config, epic_with_alus, sweep_alus
from repro.config.presets import EPIC_CLOCK_MHZ, SA110_CLOCK_MHZ


def test_default_config_is_shared_instance():
    assert epic_config() is DEFAULT_CONFIG


def test_override_creates_copy():
    assert epic_config(n_alus=2).n_alus == 2
    assert DEFAULT_CONFIG.n_alus == 4


def test_epic_with_alus():
    for n in range(1, 5):
        assert epic_with_alus(n).n_alus == n


def test_sweep_matches_paper_design_points():
    configs = list(sweep_alus())
    assert [c.n_alus for c in configs] == [1, 2, 3, 4]


def test_sweep_with_extra_overrides():
    configs = list(sweep_alus(2, 3, forwarding=False))
    assert [c.n_alus for c in configs] == [2, 3]
    assert all(not c.forwarding for c in configs)


def test_paper_clock_rates():
    assert EPIC_CLOCK_MHZ == 41.8
    assert SA110_CLOCK_MHZ == 100.0
