"""MachineConfig validation and derived quantities."""

import pytest

from repro.config import AluFeature, MachineConfig, epic_config
from repro.errors import ConfigError


class TestDefaults:
    def test_paper_defaults(self):
        config = MachineConfig()
        assert config.n_alus == 4
        assert config.n_gprs == 64
        assert config.n_preds == 32
        assert config.n_btrs == 16
        assert config.issue_width == 4
        assert config.datapath_width == 32

    def test_default_features_complete(self):
        config = MachineConfig()
        for feature in AluFeature:
            assert config.has_feature(feature)

    def test_default_clock_is_paper_prototype(self):
        assert MachineConfig().clock_mhz == pytest.approx(41.8)

    def test_mask_and_sign_bit(self):
        config = MachineConfig()
        assert config.mask == 0xFFFFFFFF
        assert config.sign_bit == 0x80000000

    def test_narrow_datapath_mask(self):
        config = MachineConfig(datapath_width=16)
        assert config.mask == 0xFFFF
        assert config.sign_bit == 0x8000


class TestValidation:
    def test_zero_alus_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(n_alus=0)

    def test_issue_width_bounds(self):
        with pytest.raises(ConfigError):
            MachineConfig(issue_width=0)
        with pytest.raises(ConfigError):
            MachineConfig(issue_width=5)  # memory-bandwidth limit (paper)

    def test_issue_width_range_valid(self):
        for width in (1, 2, 3, 4):
            assert MachineConfig(issue_width=width).issue_width == width

    def test_too_few_gprs(self):
        with pytest.raises(ConfigError):
            MachineConfig(n_gprs=2)

    def test_too_few_preds(self):
        with pytest.raises(ConfigError):
            MachineConfig(n_preds=1)

    def test_zero_btrs(self):
        with pytest.raises(ConfigError):
            MachineConfig(n_btrs=0)

    def test_weird_datapath_width(self):
        with pytest.raises(ConfigError):
            MachineConfig(datapath_width=24)

    def test_regs_per_instruction_must_cover_file(self):
        with pytest.raises(ConfigError):
            MachineConfig(n_gprs=64, regs_per_instruction=32)

    def test_missing_latency_entry(self):
        with pytest.raises(ConfigError):
            MachineConfig(latencies=(("alu", 1),))

    def test_nonpositive_latency(self):
        bad = tuple(
            (name, 0 if name == "mul" else value)
            for name, value in MachineConfig().latencies
        )
        with pytest.raises(ConfigError):
            MachineConfig(latencies=bad)

    def test_duplicate_custom_mnemonics(self):
        from repro.isa import CustomOpSpec
        spec = CustomOpSpec("FOO", func=lambda a, b, m: a)
        with pytest.raises(ConfigError):
            MachineConfig(custom_ops=(spec, spec))


class TestDerived:
    def test_with_changes_returns_new_object(self):
        base = epic_config()
        changed = base.with_changes(n_alus=2)
        assert changed.n_alus == 2
        assert base.n_alus == 4

    def test_with_latency_override(self):
        config = epic_config().with_latency("load", 5)
        assert config.latency["load"] == 5
        assert epic_config().latency["load"] == 2

    def test_with_latency_unknown_class(self):
        with pytest.raises(ConfigError):
            epic_config().with_latency("sqrt", 3)

    def test_describe_mentions_key_parameters(self):
        text = epic_config(n_alus=3).describe()
        assert "3 ALU" in text
        assert "64 GPR" in text

    def test_feature_removal(self):
        config = epic_config(
            alu_features=frozenset({AluFeature.MULTIPLY, AluFeature.SHIFT})
        )
        assert not config.has_feature(AluFeature.DIVIDE)
        assert config.has_feature(AluFeature.MULTIPLY)

    def test_config_is_hashable(self):
        assert {epic_config(): 1}
