"""End-to-end: MiniC through the EPIC toolchain vs the golden model.

Every program here runs on the IR interpreter, the EPIC core (several
configurations) and the SA-110 baseline, and all observables must agree.
"""

import pytest

from tests.helpers import assert_all_engines_agree, run_epic, run_ir

PROGRAMS = {
    "arith_mix": """
        int main() {
          int a; int b;
          a = 1234; b = -567;
          return a * b + a / 7 - b % 13 + (a ^ b) + (a >>> 3) + (b >> 2);
        }
    """,
    "global_state": """
        int grid[25];
        int total;
        int main() {
          int i;
          for (i = 0; i < 25; i += 1) { grid[i] = i * i - 7; }
          total = 0;
          for (i = 0; i < 25; i += 1) { total += grid[i]; }
          return total;
        }
    """,
    "string_search": """
        int haystack[20] = {3,1,4,1,5,9,2,6,5,3,5,8,9,7,9,3,2,3,8,4};
        int needle[3] = {5, 8, 9};
        int found_at;
        int main() {
          int i; int j; int ok;
          found_at = -1;
          for (i = 0; i + 3 <= 20; i += 1) {
            ok = 1;
            for (j = 0; j < 3; j += 1) {
              if (haystack[i + j] != needle[j]) { ok = 0; }
            }
            if (ok && found_at < 0) { found_at = i; }
          }
          return found_at;
        }
    """,
    "bubble_sort": """
        int values[12] = {9, 2, 8, 1, 7, 3, 6, 4, 5, 0, 11, 10};
        int main() {
          int i; int j; int t;
          for (i = 0; i < 12; i += 1) {
            for (j = 0; j < 11 - i; j += 1) {
              if (values[j] > values[j + 1]) {
                t = values[j];
                values[j] = values[j + 1];
                values[j + 1] = t;
              }
            }
          }
          return values[0] + values[11] * 100;
        }
    """,
    "fib_recursive": """
        int fib(int n) {
          if (n < 2) { return n; }
          return fib(n - 1) + fib(n - 2);
        }
        int main() { return fib(12); }
    """,
    "gcd_loop": """
        int gcd(int a, int b) {
          int t;
          while (b != 0) { t = b; b = a % b; a = t; }
          return a;
        }
        int main() { return gcd(462, 1071) * 1000 + gcd(17, 5); }
    """,
    "collatz": """
        int main() {
          int n; int steps;
          n = 27; steps = 0;
          while (n != 1) {
            if (n % 2 == 0) { n = n / 2; }
            else { n = 3 * n + 1; }
            steps += 1;
          }
          return steps;
        }
    """,
    "local_array_histogram": """
        int samples[30] = {1,2,0,3,1,2,2,3,0,1,3,3,2,1,0,2,3,1,0,2,
                           1,1,2,3,0,0,1,2,3,3};
        int out[4];
        int main() {
          int hist[4];
          int i;
          for (i = 0; i < 4; i += 1) { hist[i] = 0; }
          for (i = 0; i < 30; i += 1) { hist[samples[i]] += 1; }
          for (i = 0; i < 4; i += 1) { out[i] = hist[i]; }
          return hist[0] + hist[1] * 10 + hist[2] * 100 + hist[3] * 1000;
        }
    """,
    "unrolled_dot_product": """
        int a[8] = {1, 2, 3, 4, 5, 6, 7, 8};
        int b[8] = {8, 7, 6, 5, 4, 3, 2, 1};
        int main() {
          int i; int acc;
          acc = 0;
          unroll for (i = 0; i < 8; i += 1) { acc += a[i] * b[i]; }
          return acc;
        }
    """,
    "const_table": """
        const int squares[10] = {0, 1, 4, 9, 16, 25, 36, 49, 64, 81};
        int main() {
          int i; int s;
          s = 0;
          unroll for (i = 0; i < 10; i += 1) { s += squares[i]; }
          for (i = 0; i < 5; i += 1) { s += squares[i]; }  // runtime index
          return s;
        }
    """,
    "deep_expressions": """
        int f(int a, int b, int c, int d, int e, int g) {
          return ((a + b) * (c - d)) ^ ((e | g) & (a * c))
               + ((b << 3) - (d >>> 1));
        }
        int main() { return f(11, 22, 33, 44, 55, 66); }
    """,
    "predication_candidates": """
        int xs[16] = {5,-3,8,-1,9,-2,7,-4,0,6,-6,2,-8,1,3,-5};
        int main() {
          int i; int pos; int neg; int absmax;
          pos = 0; neg = 0; absmax = 0;
          for (i = 0; i < 16; i += 1) {
            int v;
            v = xs[i];
            if (v >= 0) { pos += v; } else { neg -= v; }
            if (v < 0) { v = -v; }
            if (v > absmax) { absmax = v; }
          }
          return pos * 10000 + neg * 100 + absmax;
        }
    """,
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_cross_engine_agreement(name):
    assert_all_engines_agree(PROGRAMS[name])


@pytest.mark.parametrize("name", ["bubble_sort", "collatz",
                                  "unrolled_dot_product"])
def test_agreement_across_alu_counts(name, alu_config):
    source = PROGRAMS[name]
    golden = run_ir(source)
    epic = run_epic(source, config=alu_config)
    assert epic.return_value == golden.return_value


def test_agreement_on_small_register_file():
    from repro.config import epic_config

    config = epic_config(n_gprs=16)
    source = PROGRAMS["deep_expressions"]
    golden = run_ir(source)
    assert run_epic(source, config=config).return_value == \
        golden.return_value


def test_agreement_without_if_conversion():
    source = PROGRAMS["predication_candidates"]
    golden = run_ir(source)
    epic = run_epic(source, if_convert=False)
    assert epic.return_value == golden.return_value


def test_agreement_without_optimisation():
    source = PROGRAMS["gcd_loop"]
    golden = run_ir(source)
    epic = run_epic(source, optimize=False)
    assert epic.return_value == golden.return_value


def test_if_conversion_reduces_branches():
    from repro.backend import compile_minic_to_epic
    from repro.config import epic_config
    from repro.core import EpicProcessor

    source = PROGRAMS["predication_candidates"]
    config = epic_config()

    def run(if_convert):
        compilation = compile_minic_to_epic(source, config,
                                            if_convert=if_convert)
        cpu = EpicProcessor(config, compilation.program, mem_words=4096)
        cpu.run()
        return cpu.stats

    with_ic = run(True)
    without_ic = run(False)
    assert with_ic.branches < without_ic.branches
    assert with_ic.ops_squashed > 0
