"""If-conversion: which shapes convert, and squash behaviour."""

import pytest

from repro.backend import compile_minic_to_epic
from repro.config import epic_config
from repro.core import EpicProcessor
from tests.helpers import run_ir


def _stats(source, if_convert=True, config=None):
    config = config or epic_config()
    compilation = compile_minic_to_epic(source, config,
                                        if_convert=if_convert)
    cpu = EpicProcessor(config, compilation.program, mem_words=4096,
                        strict_nual=True)
    cpu.run(max_cycles=2_000_000)
    return cpu, compilation


DIAMOND = """
int xs[8] = {5, -3, 8, -1, 9, -2, 7, -4};
int main() {
  int i; int pos; int neg;
  pos = 0; neg = 0;
  for (i = 0; i < 8; i += 1) {
    if (xs[i] >= 0) { pos += xs[i]; } else { neg += xs[i]; }
  }
  return pos * 1000 - neg;
}
"""

TRIANGLE = """
int xs[8] = {5, -3, 8, -1, 9, -2, 7, -4};
int main() {
  int i; int best;
  best = -100;
  for (i = 0; i < 8; i += 1) {
    if (xs[i] > best) { best = xs[i]; }
  }
  return best;
}
"""

CALL_IN_ARM = """
int bump(int x) { return x + 1; }
int main() {
  int i; int s;
  s = 0;
  for (i = 0; i < 8; i += 1) {
    if (i > 3) { s = bump(s); } else { s += 2; }
  }
  return s;
}
"""


class TestConversionHappens:
    def test_diamond_converts(self):
        cpu, _ = _stats(DIAMOND)
        assert cpu.stats.ops_squashed > 0

    def test_triangle_converts(self):
        cpu, _ = _stats(TRIANGLE)
        assert cpu.stats.ops_squashed > 0

    def test_conversion_removes_branches(self):
        with_ic, _ = _stats(DIAMOND, if_convert=True)
        without_ic, _ = _stats(DIAMOND, if_convert=False)
        assert with_ic.stats.branches < without_ic.stats.branches
        assert with_ic.stats.branch_bubble_cycles < \
            without_ic.stats.branch_bubble_cycles

    def test_conversion_is_profitable_on_unpredictable_data(self):
        with_ic, _ = _stats(DIAMOND, if_convert=True)
        without_ic, _ = _stats(DIAMOND, if_convert=False)
        assert with_ic.stats.cycles <= without_ic.stats.cycles


class TestConversionRefused:
    def test_arm_with_call_not_converted(self):
        cpu, compilation = _stats(CALL_IN_ARM)
        # The call arm cannot be predicated; the branch remains.
        main_asm = compilation.assembly.split("main:")[1]
        assert "BRCT" in main_asm or "BRCF" in main_asm

    def test_large_arms_not_converted(self):
        statements = " ".join(f"s += xs[{i % 8}] * {i};" for i in range(16))
        source = f"""
        int xs[8] = {{1, 2, 3, 4, 5, 6, 7, 8}};
        int main() {{
          int i; int s;
          s = 0;
          for (i = 0; i < 4; i += 1) {{
            if (i > 1) {{ {statements} }}
          }}
          return s;
        }}
        """
        cpu, _ = _stats(source)
        golden = run_ir(source)
        assert cpu.gpr.read(2) == golden.return_value


class TestSemanticsPreserved:
    @pytest.mark.parametrize("source", [DIAMOND, TRIANGLE, CALL_IN_ARM],
                             ids=["diamond", "triangle", "call-arm"])
    def test_same_result_with_and_without(self, source):
        golden = run_ir(source)
        with_ic, _ = _stats(source, if_convert=True)
        without_ic, _ = _stats(source, if_convert=False)
        assert with_ic.gpr.read(2) == golden.return_value
        assert without_ic.gpr.read(2) == golden.return_value

    def test_guarded_stores_do_not_leak(self):
        source = """
        int out[4];
        int main() {
          int i;
          for (i = 0; i < 4; i += 1) {
            if (i & 1) { out[i] = 100 + i; }
          }
          return out[0] + out[1] + out[2] + out[3];
        }
        """
        golden = run_ir(source, ["out"])
        cpu, compilation = _stats(source)
        base = compilation.symbols["out"]
        got = [cpu.memory.read(base + i) for i in range(4)]
        assert got == golden.globals["out"] == [0, 101, 0, 103]

    def test_guarded_division_squashes_cleanly(self):
        # The not-taken arm divides by zero; predication must squash the
        # operation before it can trap.
        source = """
        int xs[4] = {2, 0, 4, 0};
        int main() {
          int i; int s;
          s = 0;
          for (i = 0; i < 4; i += 1) {
            if (xs[i] != 0) { s += 100 / xs[i]; }
          }
          return s;
        }
        """
        golden = run_ir(source)
        cpu, _ = _stats(source)
        assert cpu.gpr.read(2) == golden.return_value == 75
