"""Calling-convention corners: many args, stack passing, parallel copies."""

import pytest

from repro.backend.expand import sequentialize_parallel_copies
from repro.errors import ScheduleError
from tests.helpers import assert_all_engines_agree


class TestParallelCopies:
    def test_disjoint_copies(self):
        order = sequentialize_parallel_copies([(10, 4), (11, 5)], 99)
        assert set(order) == {(10, 4), (11, 5)}

    def test_chain_ordered_to_avoid_clobber(self):
        # 5 <- 4, 6 <- 5: must copy 6 <- 5 first.
        order = sequentialize_parallel_copies([(5, 4), (6, 5)], 99)
        assert order.index((6, 5)) < order.index((5, 4))

    def test_swap_uses_scratch(self):
        order = sequentialize_parallel_copies([(4, 5), (5, 4)], 99)
        assert (99, 4) in order or (99, 5) in order
        assert len(order) == 3

    def test_three_cycle(self):
        order = sequentialize_parallel_copies([(4, 5), (5, 6), (6, 4)], 99)
        # Simulate the emitted copies.
        state = {4: "a", 5: "b", 6: "c", 99: None}
        for dst, src in order:
            state[dst] = state[src]
        assert (state[4], state[5], state[6]) == ("b", "c", "a")

    def test_identity_copies_elided(self):
        assert sequentialize_parallel_copies([(4, 4)], 99) == []

    def test_duplicate_destination_rejected(self):
        with pytest.raises(ScheduleError):
            sequentialize_parallel_copies([(4, 5), (4, 6)], 99)


class TestManyArguments:
    def test_six_reg_args_epic_and_stack_args_armlet(self):
        # 6 parameters: all in registers on EPIC, two on the stack for
        # the 4-arg Armlet baseline.
        source = """
        int f(int a, int b, int c, int d, int e, int g) {
          return a + b * 2 + c * 4 + d * 8 + e * 16 + g * 32;
        }
        int main() { return f(1, 2, 3, 4, 5, 6); }
        """
        outputs = assert_all_engines_agree(source)
        assert outputs.return_value == 1 + 4 + 12 + 32 + 80 + 192

    def test_eight_args_stack_passing_on_both_targets(self):
        source = """
        int f(int a, int b, int c, int d, int e, int g, int h, int i) {
          return a + b + c + d + e + g + h * 100 + i * 1000;
        }
        int main() { return f(1, 2, 3, 4, 5, 6, 7, 8); }
        """
        outputs = assert_all_engines_agree(source)
        assert outputs.return_value == 21 + 700 + 8000

    def test_stack_args_in_nested_calls(self):
        source = """
        int inner(int a, int b, int c, int d, int e, int g, int h) {
          return a ^ b ^ c ^ d ^ e ^ g ^ h;
        }
        int outer(int a, int b, int c, int d, int e, int g, int h) {
          return inner(b, c, d, e, g, h, a) + a;
        }
        int main() { return outer(1, 2, 4, 8, 16, 32, 64); }
        """
        outputs = assert_all_engines_agree(source)
        assert outputs.return_value == (1 ^ 2 ^ 4 ^ 8 ^ 16 ^ 32 ^ 64) + 1

    def test_stack_args_mixed_with_expressions(self):
        source = """
        int f(int a, int b, int c, int d, int e, int g, int h) {
          return a + b + c + d + e + g + h;
        }
        int main() {
          int x;
          x = 10;
          return f(x, x * 2, x * 3, x * 4, x * 5, 12345, x - 9);
        }
        """
        outputs = assert_all_engines_agree(source)
        assert outputs.return_value == 10 + 20 + 30 + 40 + 50 + 12345 + 1

    def test_recursion_with_stack_args(self):
        source = """
        int weird(int a, int b, int c, int d, int e, int g, int n) {
          if (n == 0) { return a + b + c + d + e + g; }
          return weird(b, c, d, e, g, a + 1, n - 1);
        }
        int main() { return weird(1, 2, 3, 4, 5, 6, 7); }
        """
        assert_all_engines_agree(source)
