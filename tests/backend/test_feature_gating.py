"""ALU feature customisation through the backend (§3.3)."""

import pytest

from repro.backend import compile_minic_to_epic
from repro.config import AluFeature, epic_config
from repro.core import EpicProcessor
from repro.errors import ScheduleError
from tests.helpers import run_ir

DIV_SOURCE = """
int inputs[2] = {1234567, -89};
int main() {
  int a; int b;
  a = inputs[0]; b = inputs[1];
  return a / b * 1000 + a % 97 + (-a) / 7;
}
"""


def test_divide_free_config_uses_runtime():
    config = epic_config(
        alu_features=frozenset({AluFeature.MULTIPLY, AluFeature.SHIFT})
    )
    compilation = compile_minic_to_epic(DIV_SOURCE, config)
    assert "__divsi3" in compilation.assembly
    assert "DIV" not in [
        token for line in compilation.assembly.splitlines()
        for token in line.replace("{", " ").replace(";", " ").split()
    ]
    cpu = EpicProcessor(config, compilation.program, mem_words=8192)
    cpu.run(max_cycles=2_000_000)
    assert cpu.gpr.read(2) == run_ir(DIV_SOURCE).return_value


def test_hardware_divide_config_uses_div_instruction():
    config = epic_config()
    compilation = compile_minic_to_epic(DIV_SOURCE, config)
    assert "__divsi3" not in compilation.assembly
    cpu = EpicProcessor(config, compilation.program, mem_words=8192)
    cpu.run()
    assert cpu.gpr.read(2) == run_ir(DIV_SOURCE).return_value


def test_software_division_is_much_slower():
    """Quantifies the §3.3 trade-off: dropping the divider saves ~1000
    slices but costs two orders of magnitude on division latency."""
    hw_config = epic_config()
    sw_config = epic_config(
        alu_features=frozenset({AluFeature.MULTIPLY, AluFeature.SHIFT})
    )
    hw = compile_minic_to_epic(DIV_SOURCE, hw_config)
    sw = compile_minic_to_epic(DIV_SOURCE, sw_config)
    cpu_hw = EpicProcessor(hw_config, hw.program, mem_words=8192)
    cpu_sw = EpicProcessor(sw_config, sw.program, mem_words=8192)
    hw_cycles = cpu_hw.run().cycles
    sw_cycles = cpu_sw.run(max_cycles=2_000_000).cycles
    assert sw_cycles > 3 * hw_cycles


def test_no_multiply_feature_is_rejected_by_backend():
    config = epic_config(
        alu_features=frozenset({AluFeature.DIVIDE, AluFeature.SHIFT})
    )
    with pytest.raises(ScheduleError):
        compile_minic_to_epic("int main() { return 6 * 7; }", config)


def test_runtime_not_linked_when_unneeded():
    config = epic_config(
        alu_features=frozenset({AluFeature.MULTIPLY, AluFeature.SHIFT})
    )
    compilation = compile_minic_to_epic(
        "int main() { return 1 + 2; }", config
    )
    assert "__divsi3" not in compilation.assembly
