"""Assembly emission: operand rendering and program structure."""

import pytest

from repro.backend.emit import (
    render_bundles,
    render_data_section,
    render_mop,
    render_operand,
    render_program,
)
from repro.backend.mops import ENTER, MOp
from repro.errors import ScheduleError
from repro.ir.module import GlobalArray, Module
from repro.isa.operands import Btr, Lit, Pred, Reg


class TestOperandRendering:
    def test_register_kinds(self):
        assert render_operand(Reg(5), None) == "r5"
        assert render_operand(Pred(3), None) == "p3"
        assert render_operand(Btr(2), None) == "b2"
        assert render_operand(Lit(-7), None) == "-7"

    def test_symbolic_target_overrides_literal(self):
        assert render_operand(Lit(0), "loop_head") == "loop_head"


class TestMopRendering:
    def test_plain_alu(self):
        mop = MOp("ADD", dest1=Reg(5), src1=Reg(1), src2=Lit(3))
        assert render_mop(mop) == "ADD r5, r1, 3"

    def test_guard_prefix(self):
        mop = MOp("MOVI", dest1=Reg(4), src1=Lit(1), guard=Pred(7))
        assert render_mop(mop) == "(p7) MOVI r4, 1"

    def test_pbr_uses_symbol(self):
        mop = MOp("PBR", dest1=Btr(0), src1=Lit(0), target="main$loop")
        assert render_mop(mop) == "PBR b0, main$loop"

    def test_cmpp_four_operands(self):
        mop = MOp("CMPP_LT", dest1=Pred(1), dest2=Pred(2),
                  src1=Reg(4), src2=Lit(10))
        assert render_mop(mop) == "CMPP_LT p1, p2, r4, 10"

    def test_pseudo_rejected(self):
        with pytest.raises(ScheduleError):
            render_mop(MOp(ENTER))

    def test_no_operands(self):
        assert render_mop(MOp("HALT")) == "HALT"


class TestBundleRendering:
    def test_empty_cycle_becomes_nop(self):
        lines = render_bundles("f", [[], [MOp("HALT")]])
        assert lines == ["f:", "{ NOP }", "{ HALT }"]

    def test_multi_op_bundle(self):
        bundle = [
            MOp("ADD", dest1=Reg(5), src1=Reg(1), src2=Lit(1)),
            MOp("SUB", dest1=Reg(6), src1=Reg(2), src2=Lit(2)),
        ]
        lines = render_bundles("f", [bundle])
        assert lines[1] == "{ ADD r5, r1, 1 ; SUB r6, r2, 2 }"


class TestDataSection:
    def _module(self):
        module = Module()
        module.add_global(GlobalArray("filled", 3, (1, 2, 3)))
        module.add_global(GlobalArray("empty", 5))
        return module

    def test_initialised_global_uses_word(self):
        lines = render_data_section(self._module(), 0xFFFFFFFF)
        assert "filled:" in lines
        assert "  .word 1, 2, 3" in lines

    def test_zero_global_uses_space(self):
        lines = render_data_section(self._module(), 0xFFFFFFFF)
        index = lines.index("empty:")
        assert lines[index + 1] == "  .space 5"

    def test_program_wrapper(self):
        text = render_program(self._module(), [("main", [[MOp("HALT")]])],
                              0xFFFFFFFF)
        assert ".entry _start" in text
        assert "{ PBR b0, main }" in text
        assert text.index("_start:") < text.index("main:")
        assert text.index("main:") < text.index(".data")
