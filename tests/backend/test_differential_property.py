"""Differential property test: random MiniC programs across engines.

Hypothesis generates small structured MiniC programs — assignments over
scalars and a global array, nested ``if``/``else``, bounded ``for``
loops — and every program is executed on the golden IR interpreter, the
EPIC core (in strict-NUAL schedule-validating mode) and the SA-110
baseline.  All observables must agree.  This is the single most
bug-finding test in the repository: it exercises the front end, the
optimiser, two instruction selectors, the register allocator, the list
scheduler and both simulators against each other.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.backend import compile_minic_to_epic
from repro.baseline import Sa110Simulator, compile_minic_to_armlet
from repro.config import epic_config, epic_with_alus
from repro.core import EpicProcessor
from repro.ir import run_module
from repro.lang import compile_minic

_VARS = ["v0", "v1", "v2", "v3"]
_ARRAY = "garr"
_ARRAY_SIZE = 6
_BINOPS = ["+", "-", "*", "&", "|", "^"]
_CMPS = ["<", "<=", ">", ">=", "==", "!="]


@st.composite
def expressions(draw, depth=0):
    choice = draw(st.integers(0, 5 if depth < 3 else 2))
    if choice == 0:
        return str(draw(st.integers(-100, 100)))
    if choice == 1:
        return draw(st.sampled_from(_VARS))
    if choice == 2:
        index = draw(st.integers(0, _ARRAY_SIZE - 1))
        return f"{_ARRAY}[{index}]"
    if choice == 3:
        op = draw(st.sampled_from(_BINOPS))
        left = draw(expressions(depth=depth + 1))
        right = draw(expressions(depth=depth + 1))
        return f"({left} {op} {right})"
    if choice == 4:
        op = draw(st.sampled_from(["&", ">>"]))
        inner = draw(expressions(depth=depth + 1))
        amount = draw(st.integers(0, 7))
        return f"(({inner}) {op} {amount})" if op == ">>" \
            else f"(({inner}) & {amount})"
    op = draw(st.sampled_from(_CMPS))
    left = draw(expressions(depth=depth + 1))
    right = draw(expressions(depth=depth + 1))
    return f"({left} {op} {right})"


@st.composite
def statements(draw, depth=0, in_loop=False):
    choice = draw(st.integers(0, 4 if depth < 2 else 1))
    if choice == 0:
        target = draw(st.sampled_from(_VARS))
        value = draw(expressions())
        return f"{target} = {value};"
    if choice == 1:
        index = draw(st.integers(0, _ARRAY_SIZE - 1))
        value = draw(expressions())
        return f"{_ARRAY}[{index}] = {value};"
    if choice == 2:
        cond = draw(expressions())
        then = draw(blocks(depth=depth + 1, in_loop=in_loop))
        if draw(st.booleans()):
            els = draw(blocks(depth=depth + 1, in_loop=in_loop))
            return f"if ({cond}) {{ {then} }} else {{ {els} }}"
        return f"if ({cond}) {{ {then} }}"
    if choice == 3:
        # Bounded loop over a depth-unique induction variable: nested
        # loops must never share one, or an inner loop can reset the
        # outer induction and the program never terminates.
        trips = draw(st.integers(1, 5))
        body = draw(blocks(depth=depth + 1, in_loop=True))
        var = f"idx{depth}"
        return (f"for ({var} = 0; {var} < {trips}; {var} += 1) "
                f"{{ {body} }}")
    # Compound assignment.
    target = draw(st.sampled_from(_VARS))
    op = draw(st.sampled_from(["+=", "-=", "^=", "|="]))
    value = draw(expressions())
    return f"{target} {op} {value};"


@st.composite
def blocks(draw, depth=0, in_loop=False):
    count = draw(st.integers(1, 3))
    return " ".join(
        draw(statements(depth=depth, in_loop=in_loop)) for _ in range(count)
    )


@st.composite
def programs(draw):
    body = " ".join(draw(statements()) for _ in range(draw(st.integers(1, 6))))
    checksum = " ^ ".join(
        _VARS + [f"{_ARRAY}[{i}]" for i in range(_ARRAY_SIZE)]
        + ["idx0", "idx1", "idx2"]
    )
    return f"""
    int {_ARRAY}[{_ARRAY_SIZE}] = {{7, -3, 11, 0, 5, -9}};
    int main() {{
      int v0; int v1; int v2; int v3;
      int idx0; int idx1; int idx2;
      v0 = 1; v1 = -2; v2 = 3; v3 = -4;
      idx0 = 0; idx1 = 0; idx2 = 0;
      {body}
      return {checksum};
    }}
    """


def _golden(source):
    interpreter = run_module(compile_minic(source), mem_words=4096)
    return (
        (interpreter.result or 0) & 0xFFFFFFFF,
        interpreter.read_global(_ARRAY),
    )


@settings(max_examples=40, deadline=None)
@given(programs(), st.sampled_from([1, 4]))
def test_random_programs_agree_on_epic(source, n_alus):
    expected_return, expected_array = _golden(source)
    config = epic_with_alus(n_alus)
    compilation = compile_minic_to_epic(source, config)
    cpu = EpicProcessor(config, compilation.program, mem_words=4096,
                        strict_nual=True)
    cpu.run(max_cycles=2_000_000)
    assert cpu.gpr.read(2) == expected_return
    base = compilation.symbols[_ARRAY]
    got = [cpu.memory.read(base + i) for i in range(_ARRAY_SIZE)]
    assert got == expected_array


@settings(max_examples=25, deadline=None)
@given(programs())
def test_random_programs_agree_on_baseline(source):
    expected_return, expected_array = _golden(source)
    compilation = compile_minic_to_armlet(source)
    simulator = Sa110Simulator(compilation.program, compilation.labels,
                               compilation.data, mem_words=4096)
    result = simulator.run(max_instructions=5_000_000)
    assert (result.return_value & 0xFFFFFFFF) == expected_return
    base = compilation.symbols[_ARRAY]
    assert simulator.memory[base:base + _ARRAY_SIZE] == expected_array


@settings(max_examples=15, deadline=None)
@given(programs())
def test_random_programs_unoptimised_equals_optimised(source):
    optimised = run_module(compile_minic(source, optimize=True),
                           mem_words=4096)
    plain = run_module(compile_minic(source, optimize=False),
                       mem_words=4096)
    assert optimised.result == plain.result
    assert optimised.read_global(_ARRAY) == plain.read_global(_ARRAY)
