"""Instruction-selection details: literals, addresses, fusion."""

import pytest

from repro.backend import compile_minic_to_epic
from repro.config import epic_config
from repro.core import EpicProcessor
from tests.helpers import run_ir


def _asm(source, **kwargs):
    return compile_minic_to_epic(source, epic_config(), **kwargs).assembly


def _mnemonics(assembly):
    result = []
    for line in assembly.splitlines():
        line = line.strip().strip("{}").strip()
        for piece in line.split(";"):
            piece = piece.strip()
            if piece and not piece.endswith(":") and not piece.startswith(
                    (".", "/")):
                if piece.startswith("(p"):
                    piece = piece.split(") ", 1)[1]
                result.append(piece.split()[0])
    return result


class TestLiteralLegalisation:
    def test_small_constants_ride_in_src_fields(self):
        assembly = _asm("int g; int main() { g = 1000; return 0; }")
        assert "MOVE" in _mnemonics(assembly)

    def test_wide_constants_use_movi(self):
        assembly = _asm("int g; int main() { g = 123456789; return 0; }")
        assert "MOVI" in _mnemonics(assembly)

    def test_wide_constant_roundtrips(self):
        source = "int main() { return 0x7ab3c9d1; }"
        golden = run_ir(source)
        config = epic_config()
        compilation = compile_minic_to_epic(source, config)
        cpu = EpicProcessor(config, compilation.program, mem_words=256)
        cpu.run()
        assert cpu.gpr.read(2) == golden.return_value

    def test_store_value_forced_to_register(self):
        # SW's value field is a register; constants get materialised.
        source = "int g[2]; int main() { g[1] = 5; return g[1]; }"
        golden = run_ir(source)
        config = epic_config()
        compilation = compile_minic_to_epic(source, config)
        cpu = EpicProcessor(config, compilation.program, mem_words=256)
        cpu.run()
        assert cpu.gpr.read(2) == golden.return_value == 5


class TestAddressFolding:
    def test_store_to_load_forwarding_removes_the_load(self):
        # g[3] = 1; return g[3]: the store survives (observable), the
        # load is forwarded away by the optimiser.
        source = "int g[8]; int main() { g[3] = 1; return g[3]; }"
        mnemonics = _mnemonics(_asm(source))
        assert "SW" in mnemonics
        assert "LW" not in mnemonics

    def test_constant_global_index_folds_into_offset(self):
        # A load that must stay (mutated in a loop) uses base r0 plus a
        # literal offset: no address arithmetic instructions appear.
        source = """
        int g[8];
        int main() {
          int i; int s;
          s = 0;
          for (i = 0; i < 4; i += 1) { g[3] += i; s += g[3]; }
          return s;
        }
        """
        mnemonics = _mnemonics(_asm(source))
        assert "LW" in mnemonics and "SW" in mnemonics

    def test_dynamic_index_uses_base_plus_register(self):
        source = """
        int g[8];
        int main(){ int i; i = 3; g[i] = 7; return g[i]; }
        """
        golden = run_ir(source)
        config = epic_config()
        compilation = compile_minic_to_epic(source, config)
        cpu = EpicProcessor(config, compilation.program, mem_words=256)
        cpu.run()
        assert cpu.gpr.read(2) == golden.return_value == 7


class TestCompareBranchFusion:
    def test_loop_condition_never_materialises_bool(self):
        source = """
        int main() {
          int i; int s;
          s = 0;
          for (i = 0; i < 10; i += 1) { s += i; }
          return s;
        }
        """
        assembly = _asm(source)
        mnemonics = _mnemonics(assembly)
        assert "BRCT" in mnemonics or "BRCF" in mnemonics
        # The fused compare writes only one live predicate: the bool is
        # never turned into a 0/1 register value (no guarded MOVI pair).
        guarded_movis = [
            line for line in assembly.splitlines() if "(p" in line and
            "MOVI" in line
        ]
        assert not guarded_movis

    def test_stored_bool_is_materialised(self):
        source = "int g; int main() { g = 3 < 5; return g; }"
        golden = run_ir(source)
        config = epic_config()
        compilation = compile_minic_to_epic(source, config)
        cpu = EpicProcessor(config, compilation.program, mem_words=256)
        cpu.run()
        assert cpu.gpr.read(2) == golden.return_value == 1
