"""Custom instructions through the whole toolchain (§3.3)."""

import pytest

from repro.backend import compile_minic_to_epic
from repro.config import epic_config
from repro.core import EpicProcessor
from repro.isa import CustomOpSpec
from repro.fpga import estimate_resources
from tests.helpers import run_ir


def _ror(x, n):
    return ((x >> n) | (x << (32 - n))) & 0xFFFFFFFF


SIGMA0 = CustomOpSpec(
    "SIGMA0",
    func=lambda a, b, m: (_ror(a, 7) ^ _ror(a, 18) ^ (a >> 3)) & m,
    latency=1,
    slices=180,
    description="SHA-256 small sigma 0",
)

#: MiniC with a software definition whose name matches the custom op.
SOURCE = """
int out[3];
int sigma0(int x, int unused) {
  return ((x >>> 7) | (x << 25)) ^ ((x >>> 18) | (x << 14)) ^ (x >>> 3);
}
int main() {
  int i; int acc;
  acc = 0;
  for (i = 1; i < 50; i += 1) { acc ^= sigma0(acc + i, 0); }
  out[0] = acc;
  out[1] = sigma0(0x12345678, 0);
  out[2] = sigma0(-1, 0);
  return acc;
}
"""


def _run(config):
    compilation = compile_minic_to_epic(SOURCE, config)
    cpu = EpicProcessor(config, compilation.program, mem_words=2048)
    result = cpu.run()
    outputs = [cpu.memory.read(compilation.symbols["out"] + i)
               for i in range(3)]
    return compilation, cpu, result, outputs


def test_intrinsic_replaces_call():
    config = epic_config(custom_ops=(SIGMA0,))
    compilation, _, _, _ = _run(config)
    assert "SIGMA0" in compilation.assembly
    # No call to the software fallback remains (the function itself is
    # still compiled, but main doesn't branch to it).
    main_section = compilation.assembly.split("main:")[1]
    assert "PBR b0, sigma0" not in main_section


def test_custom_and_fallback_agree():
    golden = run_ir(SOURCE, ["out"])
    _, cpu_custom, _, custom_out = _run(epic_config(custom_ops=(SIGMA0,)))
    _, cpu_plain, _, plain_out = _run(epic_config())
    assert custom_out == plain_out == golden.globals["out"]


def test_custom_instruction_saves_cycles():
    _, _, with_custom, _ = _run(epic_config(custom_ops=(SIGMA0,)))
    _, _, without, _ = _run(epic_config())
    assert with_custom.cycles < without.cycles


def test_custom_instruction_costs_area():
    with_custom = estimate_resources(epic_config(custom_ops=(SIGMA0,)))
    without = estimate_resources(epic_config())
    assert with_custom.slices > without.slices


def test_multi_cycle_custom_op_schedules_correctly():
    slow = CustomOpSpec(
        "SLOWSIG",
        func=SIGMA0.func,
        latency=3,
        slices=90,
    )
    source = SOURCE.replace("sigma0", "slowsig")
    config = epic_config(custom_ops=(slow,))
    compilation = compile_minic_to_epic(source, config)
    cpu = EpicProcessor(config, compilation.program, mem_words=2048)
    cpu.run()
    golden = run_ir(source, ["out"])
    got = [cpu.memory.read(compilation.symbols["out"] + i) for i in range(3)]
    assert got == golden.globals["out"]


def test_wrong_arity_does_not_intrinsify():
    one_arg = CustomOpSpec("ONEARG", func=lambda a, b, m: a)
    source = """
    int onearg(int x) { return x + 1; }
    int main() { return onearg(4); }
    """
    config = epic_config(custom_ops=(one_arg,))
    compilation = compile_minic_to_epic(source, config)
    assert "ONEARG r" not in compilation.assembly  # stays a real call
    cpu = EpicProcessor(config, compilation.program, mem_words=1024)
    cpu.run()
    assert cpu.gpr.read(2) == 5
