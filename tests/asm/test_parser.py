"""Assembly parsing (raw statements, labels, directives, filtering)."""

import pytest

from repro.asm.parser import parse, parse_instruction, parse_operand
from repro.errors import AsmError


class TestOperands:
    def test_register_kinds(self):
        assert parse_operand("r5", 1).kind == "reg"
        assert parse_operand("p2", 1).kind == "pred"
        assert parse_operand("b3", 1).kind == "btr"

    def test_case_insensitive_registers(self):
        assert parse_operand("R5", 1).value == 5

    def test_integers(self):
        assert parse_operand("-42", 1).value == -42
        assert parse_operand("0x1F", 1).value == 31

    def test_identifier(self):
        operand = parse_operand("loop_start", 1)
        assert operand.kind == "ident"

    def test_garbage_rejected(self):
        with pytest.raises(AsmError):
            parse_operand("r5x!", 1)


class TestInstructions:
    def test_plain(self):
        instr = parse_instruction("ADD r1, r2, 5", 1)
        assert instr.mnemonic == "ADD"
        assert len(instr.operands) == 3
        assert instr.guard == 0

    def test_guard_prefix(self):
        instr = parse_instruction("(p3) MOVI r1, 10", 1)
        assert instr.guard == 3

    def test_lower_case_mnemonic_normalised(self):
        assert parse_instruction("add r1, r2, r3", 1).mnemonic == "ADD"

    def test_no_operands(self):
        assert parse_instruction("HALT", 1).operands == []


class TestUnits:
    def test_sections_and_labels(self):
        unit = parse("""
        .data
        tab: .word 1, 2, 3
        buf: .space 5
        .text
        main:
          NOP
        """)
        assert unit.data[0].words == [1, 2, 3]
        assert unit.data[0].labels == ["tab"]
        assert unit.data[1].words == [0] * 5
        assert unit.groups[0].labels == ["main"]

    def test_explicit_groups(self):
        unit = parse("{ ADD r1, r2, r3 ; NOP ; SUB r4, r5, 1 }")
        assert len(unit.groups) == 1
        assert len(unit.groups[0].instructions) == 3

    def test_bare_instruction_is_singleton_group(self):
        unit = parse("NOP\nNOP")
        assert len(unit.groups) == 2

    def test_simulator_directives_filtered(self):
        """§4.2: the assembler filters Trimaran simulator directives."""
        unit = parse("""
        ! trimaran: begin trace region
        NOP
        !another directive
        """)
        assert len(unit.groups) == 1

    def test_comments(self):
        unit = parse("""
        // full line comment
        NOP ;; trailing comment
        NOP // other style
        """)
        assert len(unit.groups) == 2

    def test_entry_directive(self):
        unit = parse(".entry start\nstart: NOP")
        assert unit.entry == "start"

    def test_multiple_labels_one_target(self):
        unit = parse("a: b: NOP")
        assert unit.groups[0].labels == ["a", "b"]

    def test_unterminated_group_rejected(self):
        with pytest.raises(AsmError):
            parse("{ NOP ; NOP")

    def test_unknown_directive_rejected(self):
        with pytest.raises(AsmError):
            parse(".frobnicate 3")

    def test_dangling_label_rejected(self):
        with pytest.raises(AsmError):
            parse("NOP\norphan:")

    def test_instructions_in_data_section_rejected(self):
        with pytest.raises(AsmError):
            parse(".data\nNOP")

    def test_error_carries_line_number(self):
        with pytest.raises(AsmError) as excinfo:
            parse("NOP\nNOP\n.word 1")
        assert excinfo.value.line == 3
