"""Assembler: symbol resolution, padding, validation, config awareness."""

import pytest

from repro.asm import assemble
from repro.config import AluFeature, epic_config
from repro.errors import AsmError
from repro.isa import CustomOpSpec
from repro.isa.operands import Lit, Pred, Reg


class TestLayout:
    def test_data_addresses_sequential(self):
        program = assemble("""
        .data
        a: .word 1, 2
        b: .space 3
        c: .word 9
        .text
        HALT
        """, epic_config())
        assert program.symbols == {"a": 0, "b": 2, "c": 5}
        assert program.data == [1, 2, 0, 0, 0, 9]

    def test_code_labels_are_bundle_indices(self):
        program = assemble("""
        first: NOP
        second: { NOP ; NOP }
        third: HALT
        """, epic_config())
        assert program.labels == {"first": 0, "second": 1, "third": 2}

    def test_bundles_padded_to_issue_width(self):
        """§4.2: no-op instructions make up the difference."""
        program = assemble("{ ADD r4, r0, 1 }\nHALT", epic_config())
        assert all(len(bundle) == 4 for bundle in program.bundles)

    def test_narrow_issue_width_padding(self):
        config = epic_config(issue_width=2)
        program = assemble("NOP\nHALT", config)
        assert all(len(bundle) == 2 for bundle in program.bundles)

    def test_group_larger_than_issue_width_rejected(self):
        config = epic_config(issue_width=2)
        with pytest.raises(AsmError):
            assemble("{ NOP ; NOP ; NOP }", config)


class TestSymbols:
    def test_code_label_resolves_to_bundle_address(self):
        program = assemble("""
        main:
          NOP
          PBR b0, target
        target:
          HALT
        """, epic_config())
        pbr = program.bundles[1].slots[0]
        assert pbr.src1 == Lit(2)
        assert pbr.target_label == "target"

    def test_data_symbol_resolves_to_word_address(self):
        program = assemble("""
        .data
        pad: .space 7
        v: .word 5
        .text
          LW r4, r0, v
          HALT
        """, epic_config())
        load = program.bundles[0].slots[0]
        assert load.src2 == Lit(7)

    def test_undefined_symbol_rejected(self):
        with pytest.raises(AsmError):
            assemble("PBR b0, nowhere\nHALT", epic_config())

    def test_duplicate_labels_rejected(self):
        with pytest.raises(AsmError):
            assemble("x: NOP\nx: HALT", epic_config())

    def test_entry_defaults_to_main(self):
        program = assemble("NOP\nmain: HALT", epic_config())
        assert program.entry == 1

    def test_explicit_entry(self):
        program = assemble(".entry go\nNOP\ngo: HALT", epic_config())
        assert program.entry == 1

    def test_undefined_entry_rejected(self):
        with pytest.raises(AsmError):
            assemble(".entry ghost\nNOP", epic_config())


class TestValidation:
    def test_wrong_arity(self):
        with pytest.raises(AsmError):
            assemble("ADD r1, r2\nHALT", epic_config())

    def test_wrong_operand_kind(self):
        with pytest.raises(AsmError):
            assemble("ADD p1, r2, r3\nHALT", epic_config())

    def test_literal_out_of_field_range(self):
        with pytest.raises(AsmError):
            assemble("ADD r1, r2, 100000\nHALT", epic_config())

    def test_movi_accepts_wide_literal(self):
        program = assemble("MOVI r1, 0x7fffffff\nHALT", epic_config())
        assert program.bundles[0].slots[0].src1 == Lit(0x7FFFFFFF)

    def test_guard_out_of_range(self):
        with pytest.raises(AsmError):
            assemble("(p40) NOP\nHALT", epic_config())

    def test_register_index_beyond_file(self):
        config = epic_config(n_gprs=16)
        with pytest.raises(AsmError):
            assemble("ADD r20, r0, 1\nHALT", config)


class TestConfigurationAwareness:
    """§4.2: the assembler adapts via the configuration, without being
    recompiled."""

    def test_disabled_opcode_rejected(self):
        config = epic_config(
            alu_features=frozenset({AluFeature.MULTIPLY, AluFeature.SHIFT})
        )
        with pytest.raises(AsmError):
            assemble("DIV r1, r2, r3\nHALT", config)

    def test_custom_opcode_accepted_from_config(self):
        spec = CustomOpSpec("SWIZZLE", func=lambda a, b, m: a ^ (b << 1))
        config = epic_config(custom_ops=(spec,))
        program = assemble("SWIZZLE r4, r5, r6\nHALT", config)
        assert program.bundles[0].slots[0].mnemonic == "SWIZZLE"

    def test_custom_opcode_rejected_without_config(self):
        with pytest.raises(AsmError):
            assemble("SWIZZLE r4, r5, r6\nHALT", epic_config())
