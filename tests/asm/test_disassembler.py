"""Disassembler: textual round trips and binary-image decoding."""

from repro.asm import assemble, disassemble, disassemble_words
from repro.config import epic_config
from repro.core import EpicProcessor
from repro.isa.encoding import InstructionFormat

SOURCE = """
.data
tab: .word 10, 20, 30, 40
out: .space 1
.text
main:
  MOVI r4, 0
  MOVI r5, 0
  PBR b0, loop
loop:
{ LW r6, r4, tab ; ADD r4, r4, 1 }
  NOP
  ADD r5, r5, r6
{ CMPP_LT p1, p2, r4, 4 }
  BRCT b0, p1
  SW r5, r0, out
  HALT
"""


def _run(program, config):
    cpu = EpicProcessor(config, program, mem_words=512)
    cpu.run()
    return cpu


def test_disassembly_reassembles_to_same_behaviour():
    config = epic_config()
    original = assemble(SOURCE, config)
    text = disassemble(original)
    rebuilt = assemble(text, config)
    out_original = _run(original, config).memory.read(original.symbols["out"])
    out_rebuilt = _run(rebuilt, config).memory.read(rebuilt.symbols["out"])
    assert out_original == out_rebuilt == 100


def test_disassembly_preserves_structure():
    config = epic_config()
    original = assemble(SOURCE, config)
    rebuilt = assemble(disassemble(original), config)
    assert len(rebuilt) == len(original)
    assert rebuilt.data == original.data
    assert rebuilt.symbols == original.symbols


def test_binary_image_disassembly():
    config = epic_config()
    program = assemble("MOVI r4, 42\nHALT", config)
    words = InstructionFormat(config).encode_program(program)
    text = disassemble_words(words, config)
    assert "MOVI r4, 42" in text
    assert "HALT" in text


def test_double_round_trip_is_stable():
    config = epic_config()
    once = disassemble(assemble(SOURCE, config))
    twice = disassemble(assemble(once, config))
    assert once == twice
