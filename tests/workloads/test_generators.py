"""Input generators: determinism and format correctness."""

import hashlib

import pytest

from repro.errors import WorkloadError
from repro.workloads.common import XorShift32, words_from_bytes
from repro.workloads.ppm import generate_gray, generate_p6, parse_header


class TestXorShift:
    def test_deterministic(self):
        a = XorShift32(5)
        b = XorShift32(5)
        assert [a.next() for _ in range(10)] == [b.next() for _ in range(10)]

    def test_seed_zero_is_remapped(self):
        rng = XorShift32(0)
        assert rng.next() != 0

    def test_below_bound(self):
        rng = XorShift32(123)
        for _ in range(100):
            assert 0 <= rng.below(17) < 17


class TestWordPacking:
    def test_big_endian_packing(self):
        assert words_from_bytes(b"\x01\x02\x03\x04") == [0x01020304]

    def test_tail_zero_padded(self):
        assert words_from_bytes(b"\xFF") == [0xFF000000]

    def test_empty(self):
        assert words_from_bytes(b"") == []


class TestPpm:
    def test_p6_header_and_size(self):
        blob = generate_p6(8, 4, seed=1)
        magic, width, height, maxval, offset = parse_header(blob)
        assert (magic, width, height, maxval) == ("P6", 8, 4, 255)
        assert len(blob) == offset + 8 * 4 * 3

    def test_p6_deterministic(self):
        assert generate_p6(16, 16, seed=3) == generate_p6(16, 16, seed=3)
        assert generate_p6(16, 16, seed=3) != generate_p6(16, 16, seed=4)

    def test_gray_values_in_range(self):
        pixels = generate_gray(16, 8)
        assert len(pixels) == 128
        assert all(0 <= p <= 255 for p in pixels)

    def test_gray_is_smoothed(self):
        """The box blur keeps neighbouring pixels correlated."""
        pixels = generate_gray(32, 32)
        diffs = [
            abs(pixels[i] - pixels[i + 1])
            for i in range(len(pixels) - 1)
        ]
        assert sum(diffs) / len(diffs) < 64

    def test_invalid_dimensions(self):
        with pytest.raises(WorkloadError):
            generate_p6(0, 4)
        with pytest.raises(WorkloadError):
            generate_gray(4, 0)

    def test_header_parse_rejects_garbage(self):
        with pytest.raises(WorkloadError):
            parse_header(b"JUNK 1 2 3\n")
        with pytest.raises(WorkloadError):
            parse_header(b"P6 10")
