"""Each benchmark's MiniC program vs its golden reference, on all
engines (tiny instances so the full matrix stays fast)."""

import pytest

from repro.config import epic_with_alus
from repro.harness.runner import run_on_baseline, run_on_epic
from repro.ir import run_module
from repro.lang import compile_minic
from repro.workloads import (
    aes_workload, dct_workload, dijkstra_workload, sha_workload,
)


def tiny_specs():
    return [
        sha_workload(8, 8),
        aes_workload(1),
        dct_workload(8, 8),
        dijkstra_workload(6),
    ]


@pytest.fixture(scope="module", params=["SHA", "AES", "DCT", "Dijkstra"])
def spec(request):
    return {s.name: s for s in tiny_specs()}[request.param]


def test_golden_model_matches_reference(spec):
    module = compile_minic(spec.source)
    interpreter = run_module(module, mem_words=spec.mem_words)
    for name, expected in spec.expected.items():
        assert interpreter.read_global(name) == expected, name
    assert (interpreter.result & 0xFFFFFFFF) == spec.expected_return


def test_epic_runs_and_validates(spec):
    run = run_on_epic(spec, epic_with_alus(4), validate=True)
    assert run.cycles > 0
    assert run.machine == "EPIC-4ALU"


def test_one_alu_epic_runs_and_validates(spec):
    run = run_on_epic(spec, epic_with_alus(1), validate=True)
    assert run.cycles > 0


def test_baseline_runs_and_validates(spec):
    run = run_on_baseline(spec, validate=True)
    assert run.cycles > 0
    assert run.clock_mhz == 100.0


def test_scaling_note_present(spec):
    assert "paper" in spec.scale_note


class TestScaleParameters:
    def test_sha_scales_with_image(self):
        small = sha_workload(8, 8)
        large = sha_workload(16, 16)
        assert "49" not in small.scale_note  # different block counts
        assert small.source != large.source

    def test_aes_iterations(self):
        spec = aes_workload(3)
        assert "3 encrypt" in spec.scale_note

    def test_dct_rejects_non_multiple_of_8(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            dct_workload(12, 8)

    def test_dijkstra_needs_two_nodes(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            dijkstra_workload(1)

    def test_aes_needs_one_iteration(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            aes_workload(0)
