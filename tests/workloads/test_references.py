"""Golden references: independent validation of the Python models."""

import hashlib

import pytest

from repro.workloads.aes import (
    INV_SBOX, SBOX, decrypt_block, encrypt_block, expand_key,
)
from repro.workloads.dct import cosine_table, reference_dct
from repro.workloads.dijkstra import INF, generate_graph, reference_all_pairs
from repro.workloads.sha256 import pad_message
from repro.workloads.common import words_from_bytes


class TestShaReference:
    def test_padding_length_multiple_of_64(self):
        for size in (0, 1, 54, 55, 56, 63, 64, 100):
            assert len(pad_message(b"x" * size)) % 64 == 0

    def test_padding_encodes_bit_length(self):
        padded = pad_message(b"abc")
        assert padded[3] == 0x80
        assert int.from_bytes(padded[-8:], "big") == 24

    def test_hashlib_is_the_oracle(self):
        # (The workload itself compares against hashlib; sanity-check the
        # helper chain here.)
        words = words_from_bytes(pad_message(b"abc"))
        assert len(words) == 16


class TestAesReference:
    def test_fips197_sbox_values(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_inverse_sbox(self):
        for value in range(256):
            assert INV_SBOX[SBOX[value]] == value

    def test_fips197_vector(self):
        key = list(range(16))
        plaintext = list(bytes.fromhex("00112233445566778899aabbccddeeff"))
        w = expand_key(key)
        ciphertext = encrypt_block(plaintext, w)
        assert bytes(ciphertext).hex() == \
            "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_decrypt_inverts_encrypt(self):
        key = [(i * 7 + 1) & 0xFF for i in range(16)]
        w = expand_key(key)
        block = [(i * 13 + 5) & 0xFF for i in range(16)]
        assert decrypt_block(encrypt_block(block, w), w) == block

    def test_key_schedule_length(self):
        assert len(expand_key([0] * 16)) == 176


class TestDctReference:
    def test_cosine_table_orthonormality(self):
        """C * C^T ~ identity (scaled by 2^24)."""
        table = cosine_table()
        scale = 1 << 24
        for u in range(8):
            for v in range(8):
                dot = sum(table[u * 8 + x] * table[v * 8 + x]
                          for x in range(8))
                target = scale if u == v else 0
                assert abs(dot - target) < scale / 200

    def test_dc_coefficient_is_scaled_mean(self):
        flat = [100] * 64
        coeffs, _ = reference_dct(flat, 8, 8)
        dc = coeffs[0]
        # Orthonormal 2-D DCT of a constant block: DC = 8 * value.
        assert abs(dc - 800) <= 2
        assert all(c in (0, 0xFFFFFFFF) or c < 4 or c > 0xFFFFFFFC
                   for c in coeffs[1:8])

    def test_round_trip_reconstruction_error_small(self):
        from repro.workloads.ppm import generate_gray

        pixels = generate_gray(16, 16, seed=2)
        _, recon = reference_dct(pixels, 16, 16)

        def signed(v):
            return v - (1 << 32) if v & 0x80000000 else v

        errors = [abs(signed(r) - p) for r, p in zip(recon, pixels)]
        assert max(errors) <= 2


class TestDijkstraReference:
    def test_graph_shape(self):
        matrix = generate_graph(10)
        assert len(matrix) == 100
        for node in range(10):
            assert matrix[node * 10 + node] == 0

    def test_graph_connected_via_ring(self):
        matrix = generate_graph(8, density_percent=0)
        for src in range(8):
            dst = (src + 1) % 8
            assert matrix[src * 8 + dst] < INF

    def test_distances_satisfy_triangle_inequality(self):
        n = 8
        matrix = generate_graph(n, seed=5)
        dist = reference_all_pairs(matrix, n)
        for a in range(n):
            for b in range(n):
                for c in range(n):
                    if dist[a * n + b] < INF and dist[b * n + c] < INF:
                        assert dist[a * n + c] <= \
                            dist[a * n + b] + dist[b * n + c]

    def test_self_distances_zero(self):
        n = 6
        dist = reference_all_pairs(generate_graph(n), n)
        for node in range(n):
            assert dist[node * n + node] == 0

    def test_agrees_with_networkx(self):
        networkx = pytest.importorskip("networkx")
        n = 10
        matrix = generate_graph(n, seed=9)
        graph = networkx.DiGraph()
        graph.add_nodes_from(range(n))
        for a in range(n):
            for b in range(n):
                if a != b and matrix[a * n + b] < INF:
                    graph.add_edge(a, b, weight=matrix[a * n + b])
        ours = reference_all_pairs(matrix, n)
        theirs = dict(networkx.all_pairs_dijkstra_path_length(graph))
        for a in range(n):
            for b in range(n):
                expected = theirs.get(a, {}).get(b)
                if expected is None:
                    assert ours[a * n + b] >= INF
                else:
                    assert ours[a * n + b] == expected
