"""The headline reproduction test (experiment E6).

Runs a reduced-size Table 1 across all five machines and asserts every
§5.2 claim the paper makes — the same scoreboard `epic-run` prints.
Sizes are chosen so this stays under a minute while preserving the
workloads' operational character.
"""

import pytest

from repro.harness import build_table1, paper_comparison
from repro.harness.report import CLOCK_RATIO
from repro.workloads import (
    aes_workload, dct_workload, dijkstra_workload, sha_workload,
)


@pytest.fixture(scope="module")
def table():
    specs = [
        sha_workload(16, 16),
        aes_workload(3),
        dct_workload(16, 16),
        dijkstra_workload(10),
    ]
    return build_table1(specs, alu_counts=(1, 2, 3, 4))


def test_all_paper_claims_hold(table):
    claims = paper_comparison(table)
    failing = [str(c) for c in claims if not c.holds]
    assert not failing, "\n".join(failing)


def test_epic_beats_sa110_in_cycles_on_most_benchmarks(table):
    """'In most cases, our EPIC designs manage to complete with fewer
    cycles than the SA-110.'"""
    wins = sum(
        table.ratio(benchmark) > 1.0 for benchmark in table.benchmarks
    )
    assert wins >= 3


def test_dct_has_the_largest_advantage(table):
    ratios = {b: table.ratio(b) for b in table.benchmarks}
    assert max(ratios, key=ratios.get) == "DCT"


def test_alu_scaling_ordering(table):
    """SHA and DCT cycle counts drop monotonically (within noise) from
    1 to 4 ALUs; AES and Dijkstra stay within 15 %."""
    for benchmark in ("SHA", "DCT"):
        counts = [table.cycles[f"EPIC-{n}ALU"][benchmark]
                  for n in (1, 2, 3, 4)]
        assert counts[0] > counts[-1] * 1.5
        assert all(a >= b * 0.98 for a, b in zip(counts, counts[1:]))
    for benchmark in ("AES", "Dijkstra"):
        counts = [table.cycles[f"EPIC-{n}ALU"][benchmark]
                  for n in (1, 2, 3, 4)]
        assert max(counts) < min(counts) * 1.15


def test_wall_clock_winners(table):
    """At 41.8 MHz vs 100 MHz: EPIC wins SHA and DCT, loses AES and
    Dijkstra (paper Figs. 3-5 plus the AES remark)."""
    for benchmark, epic_wins in (("SHA", True), ("DCT", True),
                                 ("AES", False), ("Dijkstra", False)):
        speedup = table.ratio(benchmark) / CLOCK_RATIO
        assert (speedup > 1.0) == epic_wins, (benchmark, speedup)
