"""Harness: Table 1 construction, figures, resource table, validation."""

import pytest

from repro.errors import SimulationError
from repro.harness import (
    build_table1,
    execution_time_figure,
    paper_comparison,
    resource_usage_table,
    run_on_baseline,
    run_on_epic,
)
from repro.harness.figures import all_figures
from repro.harness.report import render_report
from repro.harness.tables import render_resource_table
from repro.config import epic_with_alus
from repro.workloads import dct_workload, dijkstra_workload, sha_workload


@pytest.fixture(scope="module")
def tiny_table():
    specs = [sha_workload(8, 8), dct_workload(8, 8), dijkstra_workload(6)]
    return build_table1(specs, alu_counts=(1, 4))


class TestTable1:
    def test_machines_and_benchmarks(self, tiny_table):
        assert tiny_table.machines == ["SA-110", "EPIC-1ALU", "EPIC-4ALU"]
        assert tiny_table.benchmarks == ["SHA", "DCT", "Dijkstra"]

    def test_all_cells_filled(self, tiny_table):
        for machine in tiny_table.machines:
            for benchmark in tiny_table.benchmarks:
                assert tiny_table.cycles[machine][benchmark] > 0

    def test_ratio_helper(self, tiny_table):
        ratio = tiny_table.ratio("SHA", "EPIC-4ALU")
        assert ratio == (
            tiny_table.cycles["SA-110"]["SHA"]
            / tiny_table.cycles["EPIC-4ALU"]["SHA"]
        )

    def test_render_layout(self, tiny_table):
        text = tiny_table.render()
        assert "SA-110" in text
        assert "SHA" in text
        lines = text.splitlines()
        assert len(lines) == 1 + len(tiny_table.machines)


class TestFigures:
    def test_execution_time_uses_clock_rates(self, tiny_table):
        figure = execution_time_figure(tiny_table, "SHA")
        sa110 = figure.seconds[figure.machines.index("SA-110")]
        cycles = tiny_table.cycles["SA-110"]["SHA"]
        assert sa110 == pytest.approx(cycles / 100e6)
        epic = figure.seconds[figure.machines.index("EPIC-4ALU")]
        epic_cycles = tiny_table.cycles["EPIC-4ALU"]["SHA"]
        assert epic == pytest.approx(epic_cycles / 41.8e6)

    def test_figure_numbers_match_paper(self, tiny_table):
        figures = all_figures(tiny_table)
        assert [f.figure_number for f in figures] == [3, 4, 5]

    def test_render_is_bar_chart(self, tiny_table):
        figure = execution_time_figure(tiny_table, "DCT")
        text = figure.render()
        assert "Figure 4" in text
        assert "#" in text

    def test_speedup_helper(self, tiny_table):
        figure = execution_time_figure(tiny_table, "DCT")
        assert figure.speedup_over_sa110("EPIC-4ALU") > 1.0


class TestReport:
    def test_claim_scoreboard(self, tiny_table):
        claims = paper_comparison(tiny_table)
        assert claims
        text = render_report(claims)
        assert "HOLDS" in text or "DIFFERS" in text

    def test_dct_and_sha_claims_hold_even_at_tiny_scale(self, tiny_table):
        claims = {c.claim: c for c in paper_comparison(tiny_table)}
        dct = claims["DCT: same-clock cycle advantage of EPIC-4ALU"]
        assert dct.holds
        sha = claims["SHA: same-clock cycle advantage of EPIC-4ALU"]
        assert sha.holds


class TestResourceTable:
    def test_rows_and_paper_values(self):
        rows = resource_usage_table()
        assert [row.n_alus for row in rows] == [1, 2, 3, 4]
        for row in rows:
            assert row.paper_slices is not None
            assert abs(row.slices - row.paper_slices) / row.paper_slices \
                < 0.01

    def test_render(self):
        text = render_resource_table(resource_usage_table())
        assert "slices" in text
        assert "4181" in text


class TestValidation:
    def test_validation_catches_wrong_outputs(self):
        spec = sha_workload(8, 8)
        # Sabotage the expectation; the harness must refuse the run.
        spec.expected["hash"] = [0] * 8
        with pytest.raises(SimulationError):
            run_on_epic(spec, epic_with_alus(1), validate=True)
        with pytest.raises(SimulationError):
            run_on_baseline(spec, validate=True)

    def test_validation_can_be_skipped(self):
        spec = sha_workload(8, 8)
        spec.expected["hash"] = [0] * 8
        run = run_on_epic(spec, epic_with_alus(1), validate=False)
        assert run.cycles > 0

    def test_run_extra_metrics(self):
        spec = dijkstra_workload(6)
        epic = run_on_epic(spec, epic_with_alus(4))
        assert "ilp" in epic.extra
        baseline = run_on_baseline(spec)
        assert baseline.extra["instructions"] > 0

    def test_time_seconds_property(self):
        spec = dijkstra_workload(6)
        run = run_on_baseline(spec)
        assert run.time_seconds == pytest.approx(run.cycles / 100e6)
        assert "cycles" in str(run)
