"""Campaign determinism, the vulnerability table, and the CLI."""

import json

import pytest

from repro.config import epic_config
from repro.errors import CycleLimitExceeded, SimulationError
from repro.harness import (
    OUTCOME_CYCLE_LIMIT,
    OUTCOME_OK,
    run_on_epic,
)
from repro.harness.cli_faults import main as faults_main
from repro.harness.faultcampaign import (
    campaign_payload,
    generate_faults,
    render_vulnerability_table,
    result_from_payload,
    result_payload,
    run_campaign,
)
from repro.reliability import FAULT_SPACES, LockstepChecker
from tests.reliability.test_lockstep import tiny_spec


@pytest.fixture(scope="module")
def checker():
    return LockstepChecker(tiny_spec(), epic_config())


class TestFaultGeneration:
    def test_same_seed_same_faults(self, checker):
        assert generate_faults(checker, 40, seed=7) == \
            generate_faults(checker, 40, seed=7)

    def test_different_seed_different_faults(self, checker):
        assert generate_faults(checker, 40, seed=7) != \
            generate_faults(checker, 40, seed=8)

    def test_faults_stay_in_machine_bounds(self, checker):
        config = checker.config
        for fault in generate_faults(checker, 200, seed=3):
            assert fault.space in FAULT_SPACES
            if fault.space == "gpr":
                assert 0 <= fault.index < config.n_gprs
            elif fault.space == "pred":
                assert 0 <= fault.index < config.n_preds
            assert fault.cycle < checker.reference_cycles

    def test_space_restriction_respected(self, checker):
        faults = generate_faults(checker, 30, seed=1, spaces=("mem",))
        assert {fault.space for fault in faults} == {"mem"}

    def test_bad_arguments_rejected(self, checker):
        with pytest.raises(ValueError):
            generate_faults(checker, -1, seed=1)
        with pytest.raises(ValueError):
            generate_faults(checker, 1, seed=1, spaces=())

    def test_seed_zero_rejected(self, checker):
        # XorShift32 maps state 0 to itself, so seed 0 would silently
        # alias to a degenerate all-identical fault stream.
        with pytest.raises(ValueError, match="non-zero"):
            generate_faults(checker, 10, seed=0)


class TestRateDenominator:
    """Rates divide by classified outcomes, never by the nominal n."""

    @staticmethod
    def _report(n, counts):
        from repro.harness.faultcampaign import CampaignReport

        return CampaignReport(workload="tiny", machine="EPIC-2ALU",
                              n=n, seed=1, reference_cycles=100,
                              counts=counts)

    def test_missing_results_do_not_deflate_rates(self):
        # 10 nominal injections, but two jobs were quarantined: only 8
        # outcomes exist, and 2 SDCs out of 8 classified is 25%.
        report = self._report(10, {"sdc": 2, "masked": 5, "detected": 1})
        assert report.classified == 8
        assert report.sdc_rate == pytest.approx(2 / 8)
        assert report.masked_rate == pytest.approx(5 / 8)
        assert report.detected_rate == pytest.approx(1 / 8)
        assert report.hung_rate == 0.0

    def test_empty_report_has_zero_rates(self):
        report = self._report(4, {})
        assert report.classified == 0
        assert report.sdc_rate == 0.0

    def test_payload_exposes_the_raw_denominator(self):
        report = self._report(10, {"sdc": 2, "masked": 6})
        payload = campaign_payload([report])[0]
        assert payload["n"] == 10
        assert payload["classified"] == 8
        assert payload["sdc_rate"] == pytest.approx(2 / 8)


class TestCampaignDeterminism:
    def test_same_seed_identical_outcome_tables(self):
        """The ISSUE's regression: two campaigns, same seed, identical
        outcome tables — rebuilt from scratch both times."""
        spec = tiny_spec()
        config = epic_config()
        first = run_campaign(spec, config, n=25, seed=11)
        second = run_campaign(spec, config, n=25, seed=11)
        assert first.outcome_table() == second.outcome_table()
        assert first.counts == second.counts
        assert render_vulnerability_table([first]) == \
            render_vulnerability_table([second])

    def test_every_run_classified_exactly_once(self, checker):
        report = run_campaign(tiny_spec(), checker.config, n=20, seed=5,
                              checker=checker)
        assert sum(report.counts.values()) == report.n == 20
        assert len(report.results) == 20
        assert set(report.counts) == {"masked", "detected", "hung", "sdc"}

    def test_rates_sum_to_one(self, checker):
        report = run_campaign(tiny_spec(), checker.config, n=16, seed=9,
                              checker=checker)
        total = (report.masked_rate + report.detected_rate +
                 report.hung_rate + report.sdc_rate)
        assert total == pytest.approx(1.0)

    def test_payload_is_json_serialisable(self, checker):
        report = run_campaign(tiny_spec(), checker.config, n=4, seed=2,
                              checker=checker)
        text = json.dumps(campaign_payload([report]))
        assert "tiny" in text

    def test_on_result_fires_per_injection_in_fault_order(self, checker):
        seen = []
        report = run_campaign(tiny_spec(), checker.config, n=6, seed=3,
                              checker=checker,
                              on_result=lambda r: seen.append(r))
        assert seen == report.results

    def test_result_payload_round_trip(self, checker):
        report = run_campaign(tiny_spec(), checker.config, n=6, seed=3,
                              checker=checker)
        for result in report.results:
            clone = result_from_payload(json.loads(json.dumps(
                result_payload(result))))
            assert clone == result


class TestVulnerabilityTable:
    def test_render_contains_header_and_row(self, checker):
        report = run_campaign(tiny_spec(), checker.config, n=4, seed=2,
                              checker=checker)
        table = render_vulnerability_table([report])
        assert "benchmark" in table and "SDC rate" in table
        assert "tiny" in table and "EPIC-4ALU" in table


class TestRunnerOutcome:
    def test_ok_run_has_ok_outcome(self):
        run = run_on_epic(tiny_spec(), epic_config())
        assert run.outcome == OUTCOME_OK

    def test_cycle_limit_surfaces_as_outcome_when_opted_in(self):
        run = run_on_epic(tiny_spec(), epic_config(), max_cycles=5,
                          cycle_limit_ok=True)
        assert run.outcome == OUTCOME_CYCLE_LIMIT
        assert run.cycles == 5

    def test_cycle_limit_raises_by_default(self):
        with pytest.raises(CycleLimitExceeded):
            run_on_epic(tiny_spec(), epic_config(), max_cycles=5)

    def test_ok_run_reports_time_and_ok(self):
        run = run_on_epic(tiny_spec(), epic_config())
        assert run.ok
        assert run.time_seconds > 0.0
        assert "ms" in str(run)

    def test_budget_run_refuses_time_and_says_so(self):
        # A cut-off run's cycle count is the budget it was stopped at;
        # converting it into milliseconds would fabricate a measurement.
        run = run_on_epic(tiny_spec(), epic_config(), max_cycles=5,
                          cycle_limit_ok=True)
        assert not run.ok
        with pytest.raises(SimulationError, match="budget, not a measurement"):
            run.time_seconds
        rendered = str(run)
        assert OUTCOME_CYCLE_LIMIT in rendered
        assert "no measurement" in rendered
        assert "ms" not in rendered


class TestCli:
    def test_smoke_campaign(self, capsys):
        assert faults_main(["--bench", "SHA", "--quick",
                            "--n", "2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "SHA" in out and "seed=1" in out

    def test_json_output_parses(self, capsys):
        assert faults_main(["--bench", "SHA", "--quick",
                            "--n", "2", "--seed", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["seed"] == 1
        assert payload["campaigns"][0]["workload"] == "SHA"
        assert len(payload["campaigns"][0]["outcomes"]) == 2

    def test_zero_injections_rejected(self, capsys):
        assert faults_main(["--n", "0"]) == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_zero_jobs_rejected(self, capsys):
        assert faults_main(["--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_verbose_prints_one_line_per_injection(self, capsys):
        assert faults_main(["--bench", "SHA", "--quick", "--n", "3",
                            "--seed", "1", "--verbose"]) == 0
        err = capsys.readouterr().err
        assert "[1/3]" in err and "[3/3]" in err

    def test_parallel_jobs_output_matches_serial(self, capsys):
        argv = ["--bench", "SHA", "--quick", "--n", "4", "--seed", "1",
                "--json"]
        assert faults_main(argv) == 0
        serial = capsys.readouterr().out
        assert faults_main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial
