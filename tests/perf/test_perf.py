"""Host-performance layer: phase timers and the repro-bench harness."""

import json

import pytest

from repro.config import epic_with_alus
from repro.errors import SimulationError
from repro.perf import PhaseTimer, kcycles_per_second
from repro.perf.bench import (
    CompileCache,
    bench_cell,
    check_against_golden,
    cycles_by_cell,
    deterministic_report,
    main as bench_main,
    run_bench,
)
from repro.perf.timers import MIN_MEASURABLE_SECONDS
from repro.workloads import dct_workload, sha_workload


class TestPhaseTimer:
    def test_phases_accumulate_in_first_use_order(self):
        timer = PhaseTimer()
        with timer.phase("compile"):
            pass
        with timer.phase("simulate"):
            pass
        with timer.phase("compile"):
            pass
        assert list(timer.seconds) == ["compile", "simulate"]
        assert timer.seconds["compile"] >= 0.0
        assert timer.total == pytest.approx(sum(timer.seconds.values()))

    def test_add_and_summary(self):
        timer = PhaseTimer()
        timer.add("simulate", 0.25)
        timer.add("simulate", 0.25)
        assert timer.seconds["simulate"] == pytest.approx(0.5)
        assert "simulate" in timer.summary()
        assert PhaseTimer().summary() == "(no phases timed)"

    def test_timer_records_exceptions_too(self):
        timer = PhaseTimer()
        with pytest.raises(ValueError):
            with timer.phase("boom"):
                raise ValueError("x")
        assert "boom" in timer.seconds


class TestKcycles:
    def test_rate(self):
        assert kcycles_per_second(50_000, 2.0) == pytest.approx(25.0)

    def test_zero_time_is_not_infinite(self):
        assert kcycles_per_second(1000, 0.0) == 0.0

    def test_sub_resolution_timings_report_unmeasurable(self):
        # A cell that finishes inside the timer's resolution must not
        # report a rate dominated by timer noise.
        assert kcycles_per_second(1000, MIN_MEASURABLE_SECONDS / 10) == 0.0
        assert kcycles_per_second(
            1000, MIN_MEASURABLE_SECONDS) == pytest.approx(
                1.0 / MIN_MEASURABLE_SECONDS)


@pytest.fixture(scope="module")
def tiny_payload():
    return run_bench([sha_workload(4, 4)], alu_counts=[1], quick=True)


class TestRunBench:
    def test_payload_shape_and_agreement(self, tiny_payload):
        payload = tiny_payload
        assert payload["benchmarks"] == ["SHA"]
        (run,) = payload["runs"]
        assert run["machine"] == "EPIC-1ALU"
        assert run["cycles"] > 0
        assert run["instrumented_seconds"] > 0.0
        assert run["fast_seconds"] > 0.0
        assert run["fast_kcycles_per_host_second"] > 0.0
        summary = payload["summary"]
        assert summary["overall_speedup"] > 0.0
        assert summary["min_speedup"] <= summary["geomean_speedup"] \
            or len(payload["runs"]) == 1

    def test_bench_cell_checks_both_engines(self):
        cell = bench_cell(dct_workload(8, 8), 2)
        assert cell["benchmark"] == "DCT"
        assert cell["machine"] == "EPIC-2ALU"
        assert cell["specialise_seconds"] > 0.0

    def test_golden_check_passes_and_detects_drift(self, tiny_payload):
        cells = cycles_by_cell(tiny_payload)
        assert list(cells) == ["SHA/EPIC-1ALU"]
        assert check_against_golden(tiny_payload, {"cycles": cells}) == []
        drifted = {cell: cycles + 1 for cell, cycles in cells.items()}
        problems = check_against_golden(tiny_payload, {"cycles": drifted})
        assert len(problems) == 1 and "SHA/EPIC-1ALU" in problems[0]
        missing = dict(cells, **{"DCT/EPIC-1ALU": 123})
        problems = check_against_golden(tiny_payload, {"cycles": missing})
        assert any("missing" in problem for problem in problems)

    def test_golden_size_mismatch_refused_not_compared(self, tiny_payload):
        # Cell names don't encode workload size; comparing a quick
        # golden against a full-size run would report drift everywhere.
        golden = {"quick": False, "cycles": cycles_by_cell(tiny_payload)}
        problems = check_against_golden(tiny_payload, golden)
        assert len(problems) == 1
        assert "not comparable" in problems[0]


class TestCompileCache:
    def test_each_pair_compiles_exactly_once(self, tiny_payload):
        stats = tiny_payload["summary"]["compile_cache"]
        assert stats["pairs"] == 1  # one workload x one machine
        assert stats["compiles"] == stats["pairs"]

    def test_repeated_cell_hits_instead_of_recompiling(self):
        cache = CompileCache()
        spec = sha_workload(4, 4)
        payload = run_bench([spec, spec], alu_counts=[1], quick=True)
        stats = payload["summary"]["compile_cache"]
        assert stats["pairs"] == 1
        assert stats["compiles"] == 1
        assert stats["hits"] == 1
        # The hoist must be invisible in the simulated results.
        first, second = payload["runs"]
        assert first["cycles"] == second["cycles"]
        assert first["fingerprint"] == second["fingerprint"]

        first_get = cache.get(spec, epic_with_alus(1))
        assert cache.stats() == {"compiles": 1, "hits": 0, "pairs": 1}
        assert cache.get(spec, epic_with_alus(1)) is first_get
        assert cache.stats()["hits"] == 1

    def test_hoisted_cell_cycles_match_uncached_cell(self):
        spec = dct_workload(8, 8)
        plain = bench_cell(spec, 1)
        hoisted = bench_cell(spec, 1, compile_cache=CompileCache())
        assert hoisted["cycles"] == plain["cycles"]
        assert hoisted["fingerprint"] == plain["fingerprint"]
        assert hoisted["ilp"] == plain["ilp"]


class TestDeterministicReport:
    def test_projection_shape(self, tiny_payload):
        projection = deterministic_report(tiny_payload)
        assert projection["quick"] is True
        assert list(projection["cells"]) == ["SHA/EPIC-1ALU"]
        cell = projection["cells"]["SHA/EPIC-1ALU"]
        assert set(cell) == {"cycles", "ilp", "fingerprint"}

    def test_timings_are_excluded(self, tiny_payload):
        rendered = json.dumps(deterministic_report(tiny_payload))
        assert "seconds" not in rendered
        assert "speedup" not in rendered

    def test_every_cell_carries_a_fingerprint(self, tiny_payload):
        for run in tiny_payload["runs"]:
            fingerprint = run["fingerprint"]
            assert isinstance(fingerprint, dict) and fingerprint
            assert "bundles" in fingerprint
            json.dumps(fingerprint)  # must survive the report file


class TestTraceEngineBench:
    def test_trace_columns_present_by_default(self, tiny_payload):
        (run,) = tiny_payload["runs"]
        assert tiny_payload["engines"] == ["instrumented", "fast", "trace"]
        assert run["trace_seconds"] > 0.0
        assert run["trace_vs_fast_speedup"] > 0.0
        assert run["trace_kcycles_per_host_second"] is not None
        summary = tiny_payload["summary"]
        assert summary["overall_trace_vs_fast_speedup"] > 0.0
        assert summary["trace_cache"]["compiles"] >= 0

    def test_trace_columns_never_leak_into_determinism(self, tiny_payload):
        rendered = json.dumps(deterministic_report(tiny_payload))
        assert "trace" not in rendered
        assert "kcycles" not in rendered

    def test_single_engine_cell_leaves_other_timings_none(self):
        cell = bench_cell(sha_workload(4, 4), 1, engines=("fast",))
        assert cell["fast_seconds"] > 0.0
        assert cell["instrumented_seconds"] is None
        assert cell["trace_seconds"] is None
        assert cell["speedup"] is None
        assert cell["trace_vs_fast_speedup"] is None
        assert cell["cycles"] > 0

    def test_trace_only_cell_times_the_trace_engine(self):
        cell = bench_cell(sha_workload(4, 4), 1, engines=("trace",))
        assert cell["trace_seconds"] > 0.0
        assert cell["trace_compile_seconds"] > 0.0
        assert cell["fast_seconds"] is None

    def test_unknown_engine_rejected_with_choices(self):
        with pytest.raises(SimulationError, match="unknown bench engine"):
            bench_cell(sha_workload(4, 4), 1, engines=("warp",))

    def test_trace_cell_cycles_match_the_default_cell(self):
        spec = dct_workload(8, 8)
        default = bench_cell(spec, 2)
        traced = bench_cell(spec, 2, engines=("trace",))
        assert traced["cycles"] == default["cycles"]
        assert traced["fingerprint"] == default["fingerprint"]


class TestCli:
    def test_writes_report_and_checks_golden(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert bench_main(["--quick", "--bench", "Dijkstra", "--alus", "1",
                           "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["quick"] is True
        assert payload["runs"][0]["benchmark"] == "Dijkstra"
        assert "overall speedup" in capsys.readouterr().out

        golden = tmp_path / "golden.json"
        golden.write_text(json.dumps({"cycles": cycles_by_cell(payload)}))
        assert bench_main(["--quick", "--bench", "Dijkstra", "--alus", "1",
                           "--out", str(out), "--check", str(golden)]) == 0

        drifted = {cell: cycles + 7
                   for cell, cycles in cycles_by_cell(payload).items()}
        golden.write_text(json.dumps({"cycles": drifted}))
        assert bench_main(["--quick", "--bench", "Dijkstra", "--alus", "1",
                           "--out", str(out), "--check", str(golden)]) == 1
        assert "cycle drift" in capsys.readouterr().err

    def test_verbose_prints_one_line_per_cell(self, tmp_path, capsys):
        assert bench_main(["--quick", "--bench", "Dijkstra",
                           "--alus", "1", "2", "--verbose",
                           "--out", str(tmp_path / "bench.json")]) == 0
        err = capsys.readouterr().err
        assert err.count("cycles, speedup") == 2
        assert "Dijkstra on EPIC-1ALU" in err
        assert "Dijkstra on EPIC-2ALU" in err

    def test_engine_flag_restricts_the_run(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert bench_main(["--quick", "--bench", "Dijkstra", "--alus", "1",
                           "--engine", "fast", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["engines"] == ["fast"]
        (run,) = payload["runs"]
        assert run["fast_seconds"] > 0.0
        assert run["instrumented_seconds"] is None
        assert run["trace_seconds"] is None

    def test_gate_passes_and_fails(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        argv = ["--quick", "--bench", "Dijkstra", "--alus", "1",
                "--out", str(out)]
        assert bench_main(argv + ["--gate-trace-speedup", "0.001"]) == 0
        assert "clears the 0.00x gate" in capsys.readouterr().out
        assert bench_main(argv + ["--gate-trace-speedup", "1e6"]) == 1
        assert "below the 1000000.00x gate" in capsys.readouterr().err

    def test_gate_needs_both_trace_and_fast(self, tmp_path, capsys):
        assert bench_main(["--quick", "--bench", "Dijkstra", "--alus", "1",
                           "--engine", "fast",
                           "--out", str(tmp_path / "bench.json"),
                           "--gate-trace-speedup", "1.5"]) == 2
        assert "use --engine all" in capsys.readouterr().err

    def test_parallel_jobs_match_serial_cycles(self, tmp_path, capsys):
        serial_out = tmp_path / "serial.json"
        pool_out = tmp_path / "pool.json"
        argv = ["--quick", "--bench", "Dijkstra", "--alus", "1", "2"]
        assert bench_main(argv + ["--out", str(serial_out)]) == 0
        assert bench_main(argv + ["--jobs", "2",
                                  "--out", str(pool_out)]) == 0
        serial = json.loads(serial_out.read_text())
        pooled = json.loads(pool_out.read_text())
        assert deterministic_report(pooled) == deterministic_report(serial)
