"""Host-performance layer: phase timers and the repro-bench harness."""

import json

import pytest

from repro.perf import PhaseTimer, kcycles_per_second
from repro.perf.bench import (
    bench_cell,
    check_against_golden,
    cycles_by_cell,
    main as bench_main,
    run_bench,
)
from repro.workloads import dct_workload, sha_workload


class TestPhaseTimer:
    def test_phases_accumulate_in_first_use_order(self):
        timer = PhaseTimer()
        with timer.phase("compile"):
            pass
        with timer.phase("simulate"):
            pass
        with timer.phase("compile"):
            pass
        assert list(timer.seconds) == ["compile", "simulate"]
        assert timer.seconds["compile"] >= 0.0
        assert timer.total == pytest.approx(sum(timer.seconds.values()))

    def test_add_and_summary(self):
        timer = PhaseTimer()
        timer.add("simulate", 0.25)
        timer.add("simulate", 0.25)
        assert timer.seconds["simulate"] == pytest.approx(0.5)
        assert "simulate" in timer.summary()
        assert PhaseTimer().summary() == "(no phases timed)"

    def test_timer_records_exceptions_too(self):
        timer = PhaseTimer()
        with pytest.raises(ValueError):
            with timer.phase("boom"):
                raise ValueError("x")
        assert "boom" in timer.seconds


class TestKcycles:
    def test_rate(self):
        assert kcycles_per_second(50_000, 2.0) == pytest.approx(25.0)

    def test_zero_time_is_not_infinite(self):
        assert kcycles_per_second(1000, 0.0) == 0.0


@pytest.fixture(scope="module")
def tiny_payload():
    return run_bench([sha_workload(4, 4)], alu_counts=[1], quick=True)


class TestRunBench:
    def test_payload_shape_and_agreement(self, tiny_payload):
        payload = tiny_payload
        assert payload["benchmarks"] == ["SHA"]
        (run,) = payload["runs"]
        assert run["machine"] == "EPIC-1ALU"
        assert run["cycles"] > 0
        assert run["instrumented_seconds"] > 0.0
        assert run["fast_seconds"] > 0.0
        assert run["fast_kcycles_per_host_second"] > 0.0
        summary = payload["summary"]
        assert summary["overall_speedup"] > 0.0
        assert summary["min_speedup"] <= summary["geomean_speedup"] \
            or len(payload["runs"]) == 1

    def test_bench_cell_checks_both_engines(self):
        cell = bench_cell(dct_workload(8, 8), 2)
        assert cell["benchmark"] == "DCT"
        assert cell["machine"] == "EPIC-2ALU"
        assert cell["specialise_seconds"] > 0.0

    def test_golden_check_passes_and_detects_drift(self, tiny_payload):
        cells = cycles_by_cell(tiny_payload)
        assert list(cells) == ["SHA/EPIC-1ALU"]
        assert check_against_golden(tiny_payload, {"cycles": cells}) == []
        drifted = {cell: cycles + 1 for cell, cycles in cells.items()}
        problems = check_against_golden(tiny_payload, {"cycles": drifted})
        assert len(problems) == 1 and "SHA/EPIC-1ALU" in problems[0]
        missing = dict(cells, **{"DCT/EPIC-1ALU": 123})
        problems = check_against_golden(tiny_payload, {"cycles": missing})
        assert any("missing" in problem for problem in problems)

    def test_golden_size_mismatch_refused_not_compared(self, tiny_payload):
        # Cell names don't encode workload size; comparing a quick
        # golden against a full-size run would report drift everywhere.
        golden = {"quick": False, "cycles": cycles_by_cell(tiny_payload)}
        problems = check_against_golden(tiny_payload, golden)
        assert len(problems) == 1
        assert "not comparable" in problems[0]


class TestCli:
    def test_writes_report_and_checks_golden(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert bench_main(["--quick", "--bench", "Dijkstra", "--alus", "1",
                           "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["quick"] is True
        assert payload["runs"][0]["benchmark"] == "Dijkstra"
        assert "overall speedup" in capsys.readouterr().out

        golden = tmp_path / "golden.json"
        golden.write_text(json.dumps({"cycles": cycles_by_cell(payload)}))
        assert bench_main(["--quick", "--bench", "Dijkstra", "--alus", "1",
                           "--out", str(out), "--check", str(golden)]) == 0

        drifted = {cell: cycles + 7
                   for cell, cycles in cycles_by_cell(payload).items()}
        golden.write_text(json.dumps({"cycles": drifted}))
        assert bench_main(["--quick", "--bench", "Dijkstra", "--alus", "1",
                           "--out", str(out), "--check", str(golden)]) == 1
        assert "cycle drift" in capsys.readouterr().err
