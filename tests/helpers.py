"""Shared test utilities: cross-engine execution and comparison.

The core validation idea of the whole reproduction: the same MiniC
source must produce identical observable results on (1) the golden IR
interpreter, (2) the cycle-accurate EPIC core for any configuration and
(3) the SA-110 baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.backend import compile_minic_to_epic
from repro.baseline import Sa110Simulator, compile_minic_to_armlet
from repro.config import MachineConfig, epic_config
from repro.core import EpicProcessor
from repro.ir import run_module
from repro.lang import compile_minic

DEFAULT_MEM = 1 << 14


@dataclass
class EngineOutputs:
    """Observable results of one engine run."""

    return_value: int
    globals: Dict[str, List[int]]
    cycles: Optional[int] = None


def run_ir(source: str, globals_of_interest: Sequence[str] = (),
           unroll: bool = True, mem_words: int = DEFAULT_MEM) -> EngineOutputs:
    module = compile_minic(source, unroll=unroll)
    interpreter = run_module(module, mem_words=mem_words)
    outputs = {
        name: interpreter.read_global(name) for name in globals_of_interest
    }
    result = interpreter.result
    return EngineOutputs(
        return_value=(result if result is not None else 0) & 0xFFFFFFFF,
        globals=outputs,
    )


def run_epic(source: str, sizes: Optional[Dict[str, int]] = None,
             config: Optional[MachineConfig] = None,
             mem_words: int = DEFAULT_MEM,
             max_cycles: int = 5_000_000, **compile_kwargs) -> EngineOutputs:
    config = config or epic_config()
    compilation = compile_minic_to_epic(source, config, **compile_kwargs)
    cpu = EpicProcessor(config, compilation.program, mem_words=mem_words)
    result = cpu.run(max_cycles=max_cycles)
    outputs = {}
    for name, size in (sizes or {}).items():
        base = compilation.symbols[name]
        outputs[name] = [cpu.memory.read(base + i) for i in range(size)]
    return EngineOutputs(
        return_value=cpu.gpr.read(2),
        globals=outputs,
        cycles=result.cycles,
    )


def run_sa110(source: str, sizes: Optional[Dict[str, int]] = None,
              mem_words: int = DEFAULT_MEM,
              max_instructions: int = 20_000_000) -> EngineOutputs:
    compilation = compile_minic_to_armlet(source)
    simulator = Sa110Simulator(compilation.program, compilation.labels,
                               compilation.data, mem_words=mem_words)
    result = simulator.run(max_instructions=max_instructions)
    outputs = {}
    for name, size in (sizes or {}).items():
        base = compilation.symbols[name]
        outputs[name] = simulator.memory[base:base + size]
    return EngineOutputs(
        return_value=result.return_value,
        globals=outputs,
        cycles=result.cycles,
    )


def assert_all_engines_agree(source: str,
                             globals_of_interest: Sequence[str] = (),
                             config: Optional[MachineConfig] = None,
                             mem_words: int = DEFAULT_MEM) -> EngineOutputs:
    """Run on every engine; assert identical observables; return golden."""
    golden = run_ir(source, globals_of_interest, mem_words=mem_words)
    sizes = {name: len(values) for name, values in golden.globals.items()}
    epic = run_epic(source, sizes, config=config, mem_words=mem_words)
    sa110 = run_sa110(source, sizes, mem_words=mem_words)
    assert epic.return_value == golden.return_value, (
        f"EPIC return {epic.return_value:#x} != golden "
        f"{golden.return_value:#x}"
    )
    assert sa110.return_value == golden.return_value, (
        f"SA-110 return {sa110.return_value:#x} != golden "
        f"{golden.return_value:#x}"
    )
    for name, expected in golden.globals.items():
        assert epic.globals[name] == expected, f"EPIC global {name!r}"
        assert sa110.globals[name] == expected, f"SA-110 global {name!r}"
    return golden
