"""Strategy trajectories, determinism, and the differential gate.

The acceptance property: on a small enumerable space, the autotuner's
constrained frontier is byte-identical to what the old pipeline
(exhaustive sweep + ``pareto_frontier`` + post-filter) produces — and
identical again under a process-pool executor and under a warm-cache
replay.
"""

import json

import pytest

from repro.autotune import (
    CandidateEvaluator, SearchSpace, TuneArchive, field_axis,
    known_from_report, parse_constraints, tune,
)
from repro.autotune.archive import STATUS_BUDGET
from repro.config import epic_config
from repro.errors import TuneError
from repro.explore import pareto_frontier, sweep_configs
from repro.workloads import dct_workload


@pytest.fixture(scope="module")
def spec():
    return dct_workload(8, 8)


def small_space():
    return SearchSpace(epic_config(), [
        field_axis("n_alus", (1, 2)),
        field_axis("forwarding", (True, False)),
    ])


def run_tune(spec, strategy="exhaustive", seed=1, budget=None,
             constraints=(), objectives=("cycles", "slices"),
             executor=None, cache=None, known=None, cycle_budget=None):
    space = small_space()
    archive = TuneArchive(objectives=objectives,
                          constraints=parse_constraints(constraints))
    kwargs = {}
    if cycle_budget is not None:
        kwargs["cycle_budget"] = cycle_budget
    evaluator = CandidateEvaluator(spec, archive, executor=executor,
                                   cache=cache, known=known, **kwargs)
    report = tune(space, evaluator, archive, strategy=strategy,
                  seed=seed, budget=budget)
    return report, archive


def canonical(report):
    """The deterministic report, rendered for byte comparison."""
    return json.dumps(report, sort_keys=True)


class TestStrategies:
    def test_exhaustive_visits_everything_in_order(self, spec):
        report, archive = run_tune(spec)
        assert archive.considered == 4
        visited = [index for step in report["trajectory"]
                   for index in step["indices"]]
        assert visited == [0, 1, 2, 3]

    def test_random_visits_budget_without_repeats(self, spec):
        report, archive = run_tune(spec, strategy="random", seed=5,
                                   budget=3)
        visited = [index for step in report["trajectory"]
                   for index in step["indices"]]
        assert len(visited) == len(set(visited)) == 3

    def test_hill_equals_exhaustive_given_full_budget(self, spec):
        exhaustive, _ = run_tune(spec)
        hill, _ = run_tune(spec, strategy="hill", seed=9)
        assert hill["archive"]["frontier"] \
            == exhaustive["archive"]["frontier"]

    def test_same_seed_same_trajectory(self, spec):
        first, _ = run_tune(spec, strategy="hill", seed=3)
        second, _ = run_tune(spec, strategy="hill", seed=3)
        assert canonical(first) == canonical(second)

    def test_zero_seed_rejected(self, spec):
        with pytest.raises(TuneError, match="non-zero"):
            run_tune(spec, seed=0)

    def test_unknown_strategy_rejected(self, spec):
        with pytest.raises(TuneError, match="unknown strategy"):
            run_tune(spec, strategy="anneal")


class TestDifferentialGate:
    def test_frontier_matches_sweep_plus_pareto(self, spec):
        """Autotuner == old pipeline on the same enumerable space."""
        report, archive = run_tune(
            spec, constraints=["slices<=7000"])
        space = small_space()
        configs = [config for _i, config in space.enumerate_configs()]
        points = sweep_configs(spec, configs)
        frontier = pareto_frontier(
            points, objectives=(lambda p: p.cycles,
                                lambda p: float(p.slices)))
        expected = sorted(
            (point.config.digest(), point.cycles, point.slices)
            for point in frontier if point.slices <= 7000)
        got = sorted(
            (r.digest, r.metrics["cycles"], r.metrics["slices"])
            for r in archive.frontier())
        assert got == expected
        assert got  # the gate is vacuous on an empty frontier


class TestDeterminismAcrossExecutionPaths:
    def test_serial_pool_and_cache_replay_are_byte_identical(
            self, spec, tmp_path):
        from repro.serve import PoolExecutor, ResultCache

        serial, _ = run_tune(spec)
        pooled, _ = run_tune(
            spec, executor=PoolExecutor(jobs=2),
            cache=ResultCache(str(tmp_path / "cache")))
        warm, _ = run_tune(
            spec, cache=ResultCache(str(tmp_path / "cache")))
        assert canonical(serial) == canonical(pooled) == canonical(warm)


class TestBudgetTruncation:
    def test_truncated_candidates_never_fully_scored(self, spec):
        report, archive = run_tune(spec, cycle_budget=1000)
        assert archive.counts[STATUS_BUDGET] == 4
        assert archive.frontier() == []
        for entry in report["evaluations"]:
            assert entry["status"] == "budget"
            assert "cycles" not in entry["metrics"]

    def test_partially_truncated_space_keeps_the_fast_ones(self, spec):
        # 2-ALU DCT 8x8 finishes in ~2.9k cycles; 1-ALU takes ~5.1k.
        report, archive = run_tune(spec, cycle_budget=4000)
        assert archive.counts[STATUS_BUDGET] == 2
        assert {r.choices["n_alus"] for r in archive.frontier()} == {2}


class TestInfeasibleConstraints:
    def test_empty_frontier_is_explained_and_cheap(self, spec):
        report, archive = run_tune(spec, constraints=["slices<=10"])
        assert archive.frontier() == []
        explanation = report["archive"]["explain"]
        assert "slices<=10 rejected 4" in explanation
        assert "no candidate satisfied the constraints" in explanation
        # The model prefilter pruned them before any simulation ran.
        for entry in report["evaluations"]:
            assert "cycles" not in entry["metrics"]
            assert "pruned by model estimate" in entry["detail"]


class TestResume:
    def test_resume_replays_byte_identically(self, spec):
        first, _ = run_tune(spec, strategy="hill", seed=4)
        space = small_space()
        settings = dict(first["settings"])
        known = known_from_report(first, space, settings,
                                  first["workload"])
        assert len(known) == 4
        resumed, _ = run_tune(spec, strategy="hill", seed=4,
                              known=known)
        assert canonical(first) == canonical(resumed)

    def test_resume_rejects_a_different_space(self, spec):
        first, _ = run_tune(spec)
        other = SearchSpace(epic_config(), [
            field_axis("n_alus", (1, 2, 4)),
        ])
        with pytest.raises(TuneError, match="different space"):
            known_from_report(first, other, dict(first["settings"]))

    def test_resume_rejects_different_settings(self, spec):
        first, _ = run_tune(spec)
        settings = dict(first["settings"])
        settings["cycle_budget"] = 1234
        with pytest.raises(TuneError, match="cycle_budget"):
            known_from_report(first, small_space(), settings)
