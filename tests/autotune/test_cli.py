"""The ``repro-tune`` entry point: flags, artifacts, exit codes."""

import json

import pytest

from repro.autotune.cli import main


def run_cli(args, capsys):
    code = main(args)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


TINY = ["--bench", "DCT", "--quick", "--alus", "1,2", "--quiet"]


class TestBasics:
    def test_tiny_exhaustive_run(self, capsys):
        code, out, _err = run_cli(TINY, capsys)
        assert code == 0
        assert "archived" in out
        assert "cycles=" in out

    def test_json_report_is_valid_and_complete(self, capsys):
        code, out, _err = run_cli(TINY + ["--json"], capsys)
        assert code == 0
        report = json.loads(out)
        assert report["settings"]["strategy"] == "exhaustive"
        assert report["space"]["size"] == 2
        assert len(report["evaluations"]) == 2
        assert report["archive"]["frontier"]

    def test_report_artifact_written(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        code, _out, _err = run_cli(
            TINY + ["--out", str(out_path)], capsys)
        assert code == 0
        report = json.loads(out_path.read_text())
        assert report["archive"]["considered"] == 2

    def test_timing_kept_out_of_the_report(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        timing_path = tmp_path / "timing.json"
        code, _out, _err = run_cli(
            TINY + ["--out", str(out_path),
                    "--timing-out", str(timing_path)], capsys)
        assert code == 0
        assert "seconds" in json.loads(timing_path.read_text())
        assert "seconds" not in out_path.read_text()


class TestConstraintsAndErrors:
    def test_infeasible_constraints_explained_exit_zero(self, capsys):
        code, out, _err = run_cli(
            TINY + ["--constraint", "slices<=1"], capsys)
        assert code == 0
        assert "no candidate satisfied the constraints" in out

    def test_bad_constraint_is_a_clean_error(self, capsys):
        code, _out, err = run_cli(
            TINY + ["--constraint", "watts<=5"], capsys)
        assert code == 1
        assert "unknown constraint metric" in err

    def test_sdc_objective_without_faults_is_a_clean_error(self, capsys):
        code, _out, err = run_cli(
            TINY + ["--objectives", "cycles,sdc_rate"], capsys)
        assert code == 1
        assert "faults-n" in err

    def test_missing_resume_artifact_is_a_clean_error(
            self, tmp_path, capsys):
        code, _out, err = run_cli(
            TINY + ["--resume", str(tmp_path / "missing.json")], capsys)
        assert code == 1
        assert "repro-tune:" in err


class TestDeterminism:
    def test_two_runs_write_identical_reports(self, tmp_path, capsys):
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        args = TINY + ["--strategy", "hill", "--seed", "11"]
        assert run_cli(args + ["--out", str(first)], capsys)[0] == 0
        assert run_cli(args + ["--out", str(second)], capsys)[0] == 0
        assert first.read_bytes() == second.read_bytes()

    def test_resume_round_trip(self, tmp_path, capsys):
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        assert run_cli(TINY + ["--out", str(first)], capsys)[0] == 0
        code, _out, _err = run_cli(
            TINY + ["--resume", str(first), "--out", str(second)],
            capsys)
        assert code == 0
        assert first.read_bytes() == second.read_bytes()
