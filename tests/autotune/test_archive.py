"""Constraints, senses, statuses and the canonical frontier."""

import pytest

from repro.autotune import Constraint, TuneArchive, TuneRecord
from repro.autotune.archive import (
    ARCHIVED, DOMINATED, INFEASIBLE, STATUS_BUDGET, STATUS_FAILED,
    STATUS_INVALID, parse_constraints,
)
from repro.errors import TuneError


def record(digest, status="ok", **metrics):
    return TuneRecord(index=0, digest=digest, describe=digest,
                      choices={}, status=status, metrics=metrics)


class TestConstraintParsing:
    @pytest.mark.parametrize("text,metric,op,bound", [
        ("slices<=7000", "slices", "<=", 7000.0),
        ("sdc_rate < 0.01", "sdc_rate", "<", 0.01),
        ("clock_mhz>=40", "clock_mhz", ">=", 40.0),
        ("cycles!=0", "cycles", "!=", 0.0),
        ("block_rams==8", "block_rams", "==", 8.0),
    ])
    def test_accepts_all_operators(self, text, metric, op, bound):
        constraint = Constraint.parse(text)
        assert (constraint.metric, constraint.op,
                constraint.bound) == (metric, op, bound)

    def test_unknown_metric_rejected(self):
        with pytest.raises(TuneError, match="unknown constraint metric"):
            Constraint.parse("watts<=5")

    def test_bad_bound_rejected(self):
        with pytest.raises(TuneError, match="not a number"):
            Constraint.parse("slices<=lots")

    def test_garbage_rejected(self):
        with pytest.raises(TuneError, match="cannot parse"):
            Constraint.parse("slices")

    def test_missing_metric_fails_check(self):
        assert not Constraint.parse("cycles<=10").check({"slices": 1})

    def test_describe_round_trips(self):
        texts = ["slices<=7000", "sdc_rate<0.01"]
        assert [c.describe() for c in parse_constraints(texts)] == texts


class TestSenses:
    def test_clock_mhz_is_maximised(self):
        archive = TuneArchive(objectives=("clock_mhz",))
        archive.consider(record("slow", clock_mhz=30.0))
        archive.consider(record("fast", clock_mhz=60.0))
        assert [r.digest for r in archive.frontier()] == ["fast"]

    def test_cycles_is_minimised(self):
        archive = TuneArchive(objectives=("cycles",))
        archive.consider(record("slow", cycles=100))
        archive.consider(record("fast", cycles=10))
        assert [r.digest for r in archive.frontier()] == ["fast"]

    def test_unknown_objective_rejected(self):
        with pytest.raises(TuneError, match="unknown objective"):
            TuneArchive(objectives=("watts",))

    def test_missing_objective_metric_is_an_error(self):
        archive = TuneArchive(objectives=("cycles", "sdc_rate"))
        with pytest.raises(TuneError, match="sdc_rate"):
            archive.consider(record("x", cycles=10))


class TestDispositions:
    def test_budget_and_failed_never_enter_the_frontier(self):
        archive = TuneArchive(objectives=("cycles",))
        assert archive.consider(record("b", status=STATUS_BUDGET)) \
            == STATUS_BUDGET
        assert archive.consider(record("f", status=STATUS_FAILED)) \
            == STATUS_FAILED
        assert archive.consider(record("i", status=STATUS_INVALID)) \
            == STATUS_INVALID
        assert archive.frontier() == []
        assert archive.counts[STATUS_BUDGET] == 1
        assert archive.counts[STATUS_FAILED] == 1
        assert archive.counts[STATUS_INVALID] == 1

    def test_infeasible_counted_per_constraint(self):
        archive = TuneArchive(
            objectives=("cycles",),
            constraints=parse_constraints(
                ["slices<=100", "cycles<=50"]))
        archive.consider(record("a", cycles=10, slices=500))
        archive.consider(record("b", cycles=99, slices=50))
        assert archive.counts[INFEASIBLE] == 2
        assert archive.constraint_misses == [1, 1]
        assert archive.frontier() == []

    def test_feasible_dominance_still_applies(self):
        archive = TuneArchive(
            objectives=("cycles",),
            constraints=parse_constraints(["slices<=100"]))
        assert archive.consider(record("a", cycles=10, slices=50)) \
            == ARCHIVED
        assert archive.consider(record("b", cycles=20, slices=50)) \
            == DOMINATED


class TestCanonicalFrontier:
    def test_frontier_order_ignores_insertion_order(self):
        forward = TuneArchive(objectives=("cycles", "slices"))
        backward = TuneArchive(objectives=("cycles", "slices"))
        rows = [("a", 10, 900), ("b", 20, 500), ("c", 30, 100)]
        for digest, cycles, slices in rows:
            forward.consider(record(digest, cycles=cycles,
                                    slices=slices))
        for digest, cycles, slices in reversed(rows):
            backward.consider(record(digest, cycles=cycles,
                                     slices=slices))
        assert [r.digest for r in forward.frontier()] \
            == [r.digest for r in backward.frontier()] \
            == ["a", "b", "c"]

    def test_value_ties_break_on_digest(self):
        archive = TuneArchive(objectives=("cycles",))
        archive.consider(record("zz", cycles=10))
        archive.consider(record("aa", cycles=10))
        assert [r.digest for r in archive.frontier()] == ["aa", "zz"]


class TestExplain:
    def test_empty_frontier_is_explained(self):
        archive = TuneArchive(
            objectives=("cycles",),
            constraints=parse_constraints(["slices<=1"]))
        archive.consider(record("a", cycles=10, slices=500))
        explanation = archive.explain()
        assert "slices<=1 rejected 1" in explanation
        assert "no candidate satisfied the constraints" in explanation

    def test_payload_carries_everything(self):
        archive = TuneArchive(objectives=("cycles",))
        archive.consider(record("a", cycles=10))
        payload = archive.to_payload()
        assert payload["objectives"] == ["cycles"]
        assert payload["counts"][ARCHIVED] == 1
        assert payload["frontier"][0]["digest"] == "a"
        assert "explain" in payload
