"""Search-space mechanics: indexing, validity, neighbours, identity."""

import pytest

from repro.autotune import (
    SearchSpace, custom_ops_axis, field_axis, latency_axis,
    mine_custom_ops,
)
from repro.autotune.space import Axis
from repro.config import epic_config
from repro.errors import TuneError
from repro.workloads import XorShift32, sha_workload


@pytest.fixture(scope="module")
def space():
    return SearchSpace(epic_config(), [
        field_axis("n_alus", (1, 2, 4)),
        field_axis("forwarding", (True, False)),
        latency_axis("mul", (1, 3)),
    ])


class TestIndexing:
    def test_size_is_product_of_axes(self, space):
        assert space.size == 3 * 2 * 2

    def test_decode_encode_round_trip(self, space):
        for index in range(space.size):
            assert space.encode(space.decode(index)) == index

    def test_rightmost_axis_fastest(self, space):
        assert space.choices_at(0)["latency.mul"] == 1
        assert space.choices_at(1)["latency.mul"] == 3
        assert space.choices_at(0)["n_alus"] == 1
        assert space.choices_at(4)["n_alus"] == 2

    def test_config_at_applies_every_axis(self, space):
        config = space.config_at(space.size - 1)
        assert config.n_alus == 4
        assert config.forwarding is False
        assert config.latency["mul"] == 3

    def test_out_of_range_rejected(self, space):
        with pytest.raises(TuneError, match="out of range"):
            space.decode(space.size)

    def test_distinct_coordinates_distinct_digests(self, space):
        digests = {space.config_at(i).digest()
                   for i in range(space.size)}
        assert len(digests) == space.size


class TestValidity:
    def test_invalid_combination_decodes_to_none(self):
        # n_gprs=128 > regs_per_instruction=64 violates validation.
        space = SearchSpace(epic_config(), [
            field_axis("n_gprs", (64, 128)),
        ])
        assert space.config_at(0) is not None
        assert space.config_at(1) is None

    def test_enumerate_skips_invalid(self):
        space = SearchSpace(epic_config(), [
            field_axis("n_gprs", (64, 128)),
        ])
        assert [index for index, _ in space.enumerate_configs()] == [0]


class TestNeighbours:
    def test_one_step_along_one_axis_no_wrap(self, space):
        # Coordinate 0 is every axis at its first value: only up-steps.
        up_only = space.neighbours(0)
        assert up_only == [space.encode((1, 0, 0)),
                           space.encode((0, 1, 0)),
                           space.encode((0, 0, 1))]
        # An interior coordinate steps down before up on each axis.
        middle = space.encode((1, 0, 0))
        assert space.neighbours(middle)[0] == space.encode((0, 0, 0))

    def test_neighbour_order_is_deterministic(self, space):
        for index in range(space.size):
            assert space.neighbours(index) == space.neighbours(index)


class TestIdentity:
    def test_fingerprint_covers_axes_and_base(self, space):
        other = SearchSpace(epic_config(), [
            field_axis("n_alus", (1, 2, 4)),
            field_axis("forwarding", (True, False)),
            latency_axis("mul", (1, 4)),  # one value differs
        ])
        assert space.fingerprint() != other.fingerprint()
        same = SearchSpace(epic_config(), [
            field_axis("n_alus", (1, 2, 4)),
            field_axis("forwarding", (True, False)),
            latency_axis("mul", (1, 3)),
        ])
        assert space.fingerprint() == same.fingerprint()

    def test_sample_is_seeded(self, space):
        draws = [space.sample(XorShift32(9)) for _ in range(3)]
        assert draws[0] == draws[1] == draws[2]


class TestAxisValidation:
    def test_empty_axis_rejected(self):
        with pytest.raises(TuneError, match="no values"):
            Axis("empty", (), lambda c, v: c)

    def test_duplicate_values_rejected(self):
        with pytest.raises(TuneError, match="duplicate"):
            field_axis("n_alus", (2, 2))

    def test_unknown_field_rejected(self):
        with pytest.raises(TuneError, match="unknown MachineConfig"):
            field_axis("n_flux_capacitors", (1,))

    def test_unknown_latency_class_rejected(self):
        with pytest.raises(TuneError, match="latency class"):
            latency_axis("teleport", (1,))

    def test_duplicate_axis_names_rejected(self):
        with pytest.raises(TuneError, match="duplicate axis"):
            SearchSpace(epic_config(), [
                field_axis("n_alus", (1, 2)),
                field_axis("n_alus", (2, 4)),
            ])


class TestCustomOps:
    def test_mined_axis_equips_candidates(self):
        spec = sha_workload(8, 8)
        specs = mine_custom_ops(spec, 1)
        assert len(specs) == 1
        space = SearchSpace(epic_config(), [
            custom_ops_axis(specs, (0, 1)),
        ])
        assert space.config_at(0).custom_ops == ()
        assert len(space.config_at(1).custom_ops) == 1

    def test_count_beyond_mined_rejected(self):
        spec = sha_workload(8, 8)
        specs = mine_custom_ops(spec, 1)
        with pytest.raises(TuneError, match="out of range"):
            custom_ops_axis(specs, (0, 2))
