"""Optimisation passes: targeted rewrites plus semantic preservation."""

import pytest

from repro.ir import (
    BinOp, Copy, ModuleBuilder, Sym, run_module, verify_module,
)
from repro.ir.instructions import Cmp, Load, Store
from repro.ir.passes import (
    eliminate_common_subexpressions,
    eliminate_dead_code,
    fold_const_loads,
    fold_constants,
    optimize_function,
    optimize_module,
    propagate_copies,
    simplify_cfg,
)
from repro.ir.values import Const


def _function(body, globals_spec=()):
    mb = ModuleBuilder()
    for name, size, init, *rest in globals_spec:
        mb.global_array(name, size, init,
                        immutable=bool(rest and rest[0]))
    fb = mb.function("main")
    fb.set_block(fb.new_block("entry"))
    body(fb)
    return mb.build(), mb.module.functions["main"]


class TestConstFold:
    def test_const_binop_folds(self):
        module, function = _function(
            lambda fb: fb.ret(fb.binop("add", 2, 3)))
        fold_constants(function)
        assert isinstance(function.entry.instrs[0], Copy)
        assert run_module(module).result == 5

    def test_identities(self):
        def body(fb):
            x = fb.binop("add", fb.params[0] if fb.params else 0, 0)
            fb.ret(x)

        mb = ModuleBuilder()
        fb = mb.function("main", ["x"])
        fb.set_block(fb.new_block("entry"))
        t = fb.binop("add", fb.params[0], 0)
        fb.ret(t)
        function = mb.module.functions["main"]
        assert fold_constants(function) == 1
        assert isinstance(function.entry.instrs[0], Copy)

    def test_mul_by_power_of_two_becomes_shift(self):
        mb = ModuleBuilder()
        fb = mb.function("main", ["x"])
        fb.set_block(fb.new_block("entry"))
        fb.ret(fb.binop("mul", fb.params[0], 8))
        function = mb.module.functions["main"]
        fold_constants(function)
        instr = function.entry.instrs[0]
        assert isinstance(instr, BinOp) and instr.op == "shl"
        assert instr.b == Const(3)

    def test_div_by_zero_left_for_runtime(self):
        module, function = _function(
            lambda fb: fb.ret(fb.binop("div", 4, 0)))
        assert fold_constants(function) == 0

    def test_cmp_folds(self):
        module, function = _function(lambda fb: fb.ret(fb.cmp("lt", 2, 3)))
        fold_constants(function)
        assert isinstance(function.entry.instrs[0], Copy)


class TestCopyProp:
    def test_chain_collapses(self):
        mb = ModuleBuilder()
        fb = mb.function("main", ["x"])
        fb.set_block(fb.new_block("entry"))
        a = fb.copy(fb.params[0])
        b = fb.copy(a)
        fb.ret(fb.binop("add", b, 1))
        function = mb.module.functions["main"]
        optimize_function(function)
        # After propagation + DCE only the add and ret remain.
        assert len(function.entry.instrs) == 2

    def test_redefinition_blocks_propagation(self):
        mb = ModuleBuilder()
        fb = mb.function("main", ["x", "y"])
        fb.set_block(fb.new_block("entry"))
        a = fb.vreg("a")
        fb.copy_to(a, fb.params[0])
        fb.copy_to(a, fb.params[1])       # kills the first copy
        fb.ret(a)
        module = mb.build()
        function = module.functions["main"]
        propagate_copies(function)
        # The final value must still be y.
        from repro.ir import Interpreter
        interp = Interpreter(module, mem_words=64)
        assert interp.call("main", [10, 20]) == 20


class TestCse:
    def test_repeated_expression_shared(self):
        mb = ModuleBuilder()
        fb = mb.function("main", ["x", "y"])
        fb.set_block(fb.new_block("entry"))
        a = fb.binop("mul", fb.params[0], fb.params[1])
        b = fb.binop("mul", fb.params[0], fb.params[1])
        fb.ret(fb.binop("add", a, b))
        function = mb.module.functions["main"]
        assert eliminate_common_subexpressions(function) == 1

    def test_commutative_canonicalisation(self):
        mb = ModuleBuilder()
        fb = mb.function("main", ["x", "y"])
        fb.set_block(fb.new_block("entry"))
        a = fb.binop("add", fb.params[0], fb.params[1])
        b = fb.binop("add", fb.params[1], fb.params[0])
        fb.ret(fb.binop("xor", a, b))
        function = mb.module.functions["main"]
        assert eliminate_common_subexpressions(function) == 1

    def test_store_kills_loads(self):
        mb = ModuleBuilder()
        mb.global_array("g", 4)
        fb = mb.function("main", ["x"])
        fb.set_block(fb.new_block("entry"))
        first = fb.load(Sym("g"), 0)
        fb.store(fb.params[0], Sym("g"), 0)
        second = fb.load(Sym("g"), 0)
        fb.ret(fb.binop("add", first, second))
        function = mb.module.functions["main"]
        eliminate_common_subexpressions(function)
        loads = [i for i in function.entry.instrs if isinstance(i, Load)]
        # Second load must NOT be CSEd with the first (store between)...
        assert len(loads) >= 1
        # ...but store-to-load forwarding may replace it with the stored
        # value; either way semantics hold:
        from repro.ir import Interpreter
        interp = Interpreter(mb.build(), mem_words=64)
        assert interp.call("main", [9]) == 9

    def test_redundant_load_eliminated(self):
        mb = ModuleBuilder()
        mb.global_array("g", 4, [5])
        fb = mb.function("main")
        fb.set_block(fb.new_block("entry"))
        first = fb.load(Sym("g"), 0)
        second = fb.load(Sym("g"), 0)
        fb.ret(fb.binop("add", first, second))
        function = mb.module.functions["main"]
        assert eliminate_common_subexpressions(function) == 1


class TestDce:
    def test_dead_chain_removed(self):
        mb = ModuleBuilder()
        fb = mb.function("main", ["x"])
        fb.set_block(fb.new_block("entry"))
        a = fb.binop("add", fb.params[0], 1)
        b = fb.binop("mul", a, 2)          # dead
        fb.binop("xor", b, 3)              # dead
        fb.ret(a)
        function = mb.module.functions["main"]
        removed = eliminate_dead_code(function)
        assert removed == 2
        assert len(function.entry.instrs) == 2

    def test_stores_and_calls_never_removed(self):
        mb = ModuleBuilder()
        mb.global_array("g", 1)
        callee = mb.function("effectful")
        callee.set_block(callee.new_block("entry"))
        callee.store(1, Sym("g"), 0)
        callee.ret(0)
        fb = mb.function("main")
        fb.set_block(fb.new_block("entry"))
        fb.call("effectful", [])
        fb.store(2, Sym("g"), 0)
        fb.ret(0)
        function = mb.module.functions["main"]
        assert eliminate_dead_code(function) <= 1  # only the call result


class TestSimplifyCfg:
    def test_constant_branch_folds(self):
        mb = ModuleBuilder()
        fb = mb.function("main")
        entry = fb.new_block("entry")
        yes = fb.new_block("yes")
        no = fb.new_block("no")
        fb.set_block(entry)
        fb.cond_br(1, yes, no)
        fb.set_block(yes)
        fb.ret(1)
        fb.set_block(no)
        fb.ret(0)
        function = mb.module.functions["main"]
        simplify_cfg(function)
        # The 'no' block became unreachable and was removed; yes merged.
        assert run_module(mb.build()).result == 1
        assert len(function.blocks) == 1

    def test_jump_threading(self):
        mb = ModuleBuilder()
        fb = mb.function("main")
        entry = fb.new_block("entry")
        hop = fb.new_block("hop")
        final = fb.new_block("final")
        fb.set_block(entry)
        fb.br(hop)
        fb.set_block(hop)
        fb.br(final)
        fb.set_block(final)
        fb.ret(7)
        function = mb.module.functions["main"]
        simplify_cfg(function)
        assert len(function.blocks) == 1
        assert run_module(mb.build()).result == 7

    def test_self_loop_not_broken(self):
        mb = ModuleBuilder()
        fb = mb.function("main")
        entry = fb.new_block("entry")
        loop = fb.new_block("loop")
        fb.set_block(entry)
        fb.br(loop)
        fb.set_block(loop)
        fb.br(loop)
        function = mb.module.functions["main"]
        simplify_cfg(function)  # must not crash or mis-thread
        verify_module(mb.build())


class TestConstLoads:
    def test_const_table_load_folds(self):
        module, function = _function(
            lambda fb: fb.ret(fb.load(Sym("table"), 2)),
            globals_spec=[("table", 4, [10, 20, 30, 40], True)],
        )
        assert fold_const_loads(function, module) == 1
        assert run_module(module).result == 30

    def test_mutable_global_not_folded(self):
        module, function = _function(
            lambda fb: fb.ret(fb.load(Sym("table"), 2)),
            globals_spec=[("table", 4, [10, 20, 30, 40], False)],
        )
        assert fold_const_loads(function, module) == 0

    def test_variable_index_not_folded(self):
        mb = ModuleBuilder()
        mb.global_array("table", 4, [1, 2, 3, 4], immutable=True)
        fb = mb.function("main", ["i"])
        fb.set_block(fb.new_block("entry"))
        fb.ret(fb.load(Sym("table"), fb.params[0]))
        function = mb.module.functions["main"]
        assert fold_const_loads(function, mb.build()) == 0

    def test_uninitialised_tail_folds_to_zero(self):
        module, function = _function(
            lambda fb: fb.ret(fb.load(Sym("table"), 3)),
            globals_spec=[("table", 4, [10], True)],
        )
        fold_const_loads(function, module)
        assert run_module(module).result == 0


class TestPipeline:
    def test_optimize_module_verifies(self):
        module, _ = _function(lambda fb: fb.ret(fb.binop("add", 1, 2)))
        optimize_module(module)
        assert run_module(module).result == 3

    def test_fixpoint_terminates(self):
        module, function = _function(
            lambda fb: fb.ret(fb.binop("add", 1, 2)))
        first = optimize_function(function)
        second = optimize_function(function)
        assert second == 0
