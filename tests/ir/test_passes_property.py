"""Property test: the optimisation pipeline preserves semantics.

Hypothesis generates random straight-line MiniC-like computations over
a handful of variables plus a small mutable global array; the program is
interpreted before and after `optimize_module` and must produce the same
return value and memory.
"""

from __future__ import annotations

import copy

from hypothesis import given, settings, strategies as st

from repro.ir import ModuleBuilder, Sym, run_module
from repro.ir.passes import optimize_module

_N_VARS = 4
_OPS = ["add", "sub", "mul", "and", "or", "xor", "shl", "shr", "shra"]

# One step of the random program, interpreted against an environment of
# virtual registers v0..v3 and a 4-word global.
_step = st.one_of(
    st.tuples(st.just("bin"), st.sampled_from(_OPS),
              st.integers(0, _N_VARS - 1), st.integers(0, _N_VARS - 1),
              st.integers(0, _N_VARS - 1)),
    st.tuples(st.just("const"), st.integers(0, _N_VARS - 1),
              st.integers(-(2 ** 31), 2 ** 31 - 1)),
    st.tuples(st.just("copy"), st.integers(0, _N_VARS - 1),
              st.integers(0, _N_VARS - 1)),
    st.tuples(st.just("cmp"), st.sampled_from(["eq", "lt", "ult", "ge"]),
              st.integers(0, _N_VARS - 1), st.integers(0, _N_VARS - 1),
              st.integers(0, _N_VARS - 1)),
    st.tuples(st.just("load"), st.integers(0, _N_VARS - 1),
              st.integers(0, 3)),
    st.tuples(st.just("store"), st.integers(0, _N_VARS - 1),
              st.integers(0, 3)),
)


def _build(steps):
    mb = ModuleBuilder()
    mb.global_array("g", 4, [3, 1, 4, 1])
    fb = mb.function("main")
    fb.set_block(fb.new_block("entry"))
    env = [fb.copy(seed, hint=f"v{i}") for i, seed in
           enumerate((1, 2, 3, 4))]
    for step in steps:
        kind = step[0]
        if kind == "bin":
            _, op, dst, a, b = step
            fb.copy_to(env[dst], fb.binop(op, env[a], env[b]))
        elif kind == "const":
            _, dst, value = step
            fb.copy_to(env[dst], value)
        elif kind == "copy":
            _, dst, src = step
            fb.copy_to(env[dst], env[src])
        elif kind == "cmp":
            _, op, dst, a, b = step
            fb.copy_to(env[dst], fb.cmp(op, env[a], env[b]))
        elif kind == "load":
            _, dst, slot = step
            fb.copy_to(env[dst], fb.load(Sym("g"), slot))
        elif kind == "store":
            _, src, slot = step
            fb.store(env[src], Sym("g"), slot)
    checksum = env[0]
    for reg in env[1:]:
        checksum = fb.binop("xor", checksum, reg)
    fb.ret(checksum)
    return mb.build()


def _observe(module):
    interp = run_module(module, mem_words=256)
    return interp.result, interp.read_global("g")


@settings(max_examples=60, deadline=None)
@given(st.lists(_step, min_size=0, max_size=40))
def test_pipeline_preserves_semantics(steps):
    module = _build(steps)
    before = _observe(_build(steps))
    optimize_module(module)
    after = _observe(module)
    assert after == before
