"""IR verifier: every structural invariant has a failing example."""

import pytest

from repro.errors import IRError
from repro.ir import (
    BinOp, Block, Br, Call, Copy, Function, Module, Ret, Sym, VReg,
    verify_module,
)
from repro.ir.instructions import CondBr, Load
from repro.ir.module import GlobalArray
from repro.ir.values import Const


def _module_with(function):
    module = Module()
    module.add_function(function)
    return module


def _ret_block():
    return Block("entry", [Ret(Const(0))])


def test_valid_minimal_module():
    verify_module(_module_with(Function("main", [], [_ret_block()])))


def test_module_without_functions():
    with pytest.raises(IRError):
        verify_module(Module())


def test_empty_block_rejected():
    function = Function("f", [], [Block("entry", [])])
    with pytest.raises(IRError):
        verify_module(_module_with(function))


def test_missing_terminator():
    function = Function("f", [], [
        Block("entry", [Copy(VReg(0), Const(1))]),
    ])
    with pytest.raises(IRError):
        verify_module(_module_with(function))


def test_terminator_in_the_middle():
    function = Function("f", [], [
        Block("entry", [Ret(Const(0)), Copy(VReg(0), Const(1)), Ret(None)]),
    ])
    with pytest.raises(IRError):
        verify_module(_module_with(function))


def test_branch_to_unknown_block():
    function = Function("f", [], [Block("entry", [Br("nowhere")])])
    with pytest.raises(IRError):
        verify_module(_module_with(function))


def test_duplicate_block_names():
    function = Function("f", [], [_ret_block(), _ret_block()])
    with pytest.raises(IRError):
        verify_module(_module_with(function))


def test_use_before_def_rejected():
    ghost = VReg(7)
    function = Function("f", [], [
        Block("entry", [Ret(ghost)]),
    ])
    with pytest.raises(IRError):
        verify_module(_module_with(function))


def test_use_defined_on_only_one_path_rejected():
    cond = VReg(0)
    x = VReg(1)
    function = Function("f", [], [
        Block("entry", [Copy(cond, Const(1)), CondBr(cond, "a", "b")]),
        Block("a", [Copy(x, Const(5)), Br("join")]),
        Block("b", [Br("join")]),
        Block("join", [Ret(x)]),
    ])
    with pytest.raises(IRError):
        verify_module(_module_with(function))


def test_use_defined_on_all_paths_accepted():
    cond = VReg(0)
    x = VReg(1)
    function = Function("f", [], [
        Block("entry", [Copy(cond, Const(1)), CondBr(cond, "a", "b")]),
        Block("a", [Copy(x, Const(5)), Br("join")]),
        Block("b", [Copy(x, Const(6)), Br("join")]),
        Block("join", [Ret(x)]),
    ])
    verify_module(_module_with(function))


def test_params_count_as_defined():
    param = VReg(0, "p")
    function = Function("f", [param], [Block("entry", [Ret(param)])])
    verify_module(_module_with(function))


def test_call_to_unknown_function():
    function = Function("f", [], [
        Block("entry", [Call("ghost", []), Ret(None)]),
    ])
    with pytest.raises(IRError):
        verify_module(_module_with(function))


def test_externals_whitelist():
    function = Function("f", [], [
        Block("entry", [Call("ghost", []), Ret(None)]),
    ])
    verify_module(_module_with(function), externals={"ghost"})


def test_unknown_global_symbol():
    dst = VReg(0)
    function = Function("f", [], [
        Block("entry", [Load(dst, Sym("ghost"), Const(0)), Ret(dst)]),
    ])
    with pytest.raises(IRError):
        verify_module(_module_with(function))


def test_known_global_symbol():
    dst = VReg(0)
    function = Function("f", [], [
        Block("entry", [Load(dst, Sym("table"), Const(0)), Ret(dst)]),
    ])
    module = _module_with(function)
    module.add_global(GlobalArray("table", 4))
    verify_module(module)
