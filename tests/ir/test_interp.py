"""IR interpreter — the golden model."""

import pytest

from repro.errors import IRError, SimulationError
from repro.ir import Interpreter, ModuleBuilder, Sym, run_module


def _simple_module(body):
    """Module with out[4] and main() built by ``body(fb)``."""
    mb = ModuleBuilder()
    mb.global_array("out", 4)
    fb = mb.function("main")
    fb.set_block(fb.new_block("entry"))
    body(fb)
    return mb.build()


class TestArithmetic:
    def test_binop_chain(self):
        def body(fb):
            a = fb.binop("add", 6, 7)
            b = fb.binop("mul", a, a)
            fb.ret(b)

        assert run_module(_simple_module(body)).result == 169

    def test_wrapping(self):
        def body(fb):
            big = fb.binop("mul", 0x10000, 0x10000)
            fb.ret(big)

        assert run_module(_simple_module(body)).result == 0

    def test_division_traps_on_zero(self):
        def body(fb):
            fb.ret(fb.binop("div", 5, 0))

        with pytest.raises(SimulationError):
            run_module(_simple_module(body))

    def test_comparisons_produce_bits(self):
        def body(fb):
            fb.ret(fb.cmp("lt", -5, 3))

        assert run_module(_simple_module(body)).result == 1


class TestMemory:
    def test_globals_initialised_and_addressable(self):
        mb = ModuleBuilder()
        mb.global_array("a", 3, [11, 22, 33])
        mb.global_array("b", 2)
        fb = mb.function("main")
        fb.set_block(fb.new_block("entry"))
        value = fb.load(Sym("a"), 1)
        fb.store(value, Sym("b"), 0)
        fb.ret(value)
        interp = run_module(mb.build())
        assert interp.result == 22
        assert interp.read_global("b") == [22, 0]

    def test_sym_offset(self):
        mb = ModuleBuilder()
        mb.global_array("a", 4, [1, 2, 3, 4])
        fb = mb.function("main")
        fb.set_block(fb.new_block("entry"))
        fb.ret(fb.load(Sym("a", 2), 0))
        assert run_module(mb.build()).result == 3

    def test_out_of_range_load_faults(self):
        def body(fb):
            fb.ret(fb.load(99999, 0))

        with pytest.raises(SimulationError):
            run_module(_simple_module(body), mem_words=128)

    def test_speculative_load_returns_zero(self):
        def body(fb):
            fb.ret(fb.load(99999, 0, speculative=True))

        assert run_module(_simple_module(body), mem_words=128).result == 0

    def test_alloca_stack_discipline(self):
        def body(fb):
            frame = fb.alloca(4)
            fb.store(7, frame, 2)
            fb.ret(fb.load(frame, 2))

        interp = run_module(_simple_module(body), mem_words=64)
        assert interp.result == 7

    def test_write_global_helper(self):
        module = _simple_module(lambda fb: fb.ret(0))
        interp = Interpreter(module, mem_words=64)
        interp.write_global("out", [5, 6])
        assert interp.read_global("out") == [5, 6, 0, 0]


class TestControlFlow:
    def test_cond_br_and_loop(self):
        mb = ModuleBuilder()
        fb = mb.function("main")
        entry = fb.new_block("entry")
        loop = fb.new_block("loop")
        done = fb.new_block("done")
        fb.set_block(entry)
        i = fb.vreg("i")
        total = fb.vreg("total")
        fb.copy_to(i, 0)
        fb.copy_to(total, 0)
        fb.br(loop)
        fb.set_block(loop)
        fb.copy_to(total, fb.binop("add", total, i))
        fb.copy_to(i, fb.binop("add", i, 1))
        fb.cond_br(fb.cmp("lt", i, 5), loop, done)
        fb.set_block(done)
        fb.ret(total)
        assert run_module(mb.build()).result == 10

    def test_calls_with_arguments(self):
        mb = ModuleBuilder()
        callee = mb.function("double_it", ["x"])
        callee.set_block(callee.new_block("entry"))
        callee.ret(callee.binop("add", callee.params[0], callee.params[0]))
        fb = mb.function("main")
        fb.set_block(fb.new_block("entry"))
        fb.ret(fb.call("double_it", [21]))
        assert run_module(mb.build()).result == 42

    def test_recursion(self):
        mb = ModuleBuilder()
        fact = mb.function("fact", ["n"])
        entry = fact.new_block("entry")
        base = fact.new_block("base")
        rec = fact.new_block("rec")
        fact.set_block(entry)
        fact.cond_br(fact.cmp("le", fact.params[0], 1), base, rec)
        fact.set_block(base)
        fact.ret(1)
        fact.set_block(rec)
        smaller = fact.binop("sub", fact.params[0], 1)
        inner = fact.call("fact", [smaller])
        fact.ret(fact.binop("mul", fact.params[0], inner))
        fb = mb.function("main")
        fb.set_block(fb.new_block("entry"))
        fb.ret(fb.call("fact", [6]))
        assert run_module(mb.build()).result == 720

    def test_undefined_function_raises(self):
        def body(fb):
            fb.ret(fb.call("ghost", []))

        with pytest.raises(IRError):
            run_module(_simple_module(body))

    def test_step_budget(self):
        mb = ModuleBuilder()
        fb = mb.function("main")
        loop = fb.new_block("loop")
        fb.set_block(loop)
        fb.br(loop)
        interp = Interpreter(mb.build(), mem_words=64)
        interp.max_steps = 1000
        with pytest.raises(SimulationError):
            interp.call("main")
