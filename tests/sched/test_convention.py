"""Calling-convention definitions."""

import pytest

from repro.errors import ConfigError
from repro.sched import armlet_convention, epic_convention
from repro.sched.convention import RegConvention


def test_epic_convention_partitions_the_file():
    convention = epic_convention(64)
    everything = (
        {convention.zero, convention.sp, convention.rv, convention.ra}
        | set(convention.arg_regs) | set(convention.scratch)
        | set(convention.temporaries) | set(convention.callee_saved)
    )
    assert everything == set(range(64))


def test_epic_convention_scales_with_file_size():
    small = epic_convention(16)
    large = epic_convention(128)
    assert len(large.callee_saved) > len(small.callee_saved)
    assert len(large.temporaries) > len(small.temporaries)


def test_epic_convention_rejects_tiny_files():
    with pytest.raises(ConfigError):
        epic_convention(8)


def test_armlet_convention_is_16_registers():
    convention = armlet_convention()
    assert convention.n_regs == 16
    assert len(convention.arg_regs) == 4
    assert len(convention.callee_saved) == 4


def test_leaf_pool_includes_arg_registers():
    convention = epic_convention(64)
    leaf = set(convention.caller_pool(is_leaf=True))
    non_leaf = set(convention.caller_pool(is_leaf=False))
    assert set(convention.arg_regs) <= leaf
    assert not set(convention.arg_regs) & non_leaf
    assert set(convention.temporaries) <= non_leaf


def test_overlapping_pools_rejected():
    with pytest.raises(ConfigError):
        RegConvention(
            n_regs=16, zero=0, sp=1, rv=2, ra=3,
            arg_regs=(4, 5), scratch=(6, 7),
            temporaries=(8, 9), callee_saved=(9, 10),
        )


def test_pool_overlapping_special_rejected():
    with pytest.raises(ConfigError):
        RegConvention(
            n_regs=16, zero=0, sp=1, rv=2, ra=3,
            arg_regs=(4, 5), scratch=(6, 7),
            temporaries=(7, 8), callee_saved=(9,),
        )


def test_register_out_of_file_rejected():
    with pytest.raises(ConfigError):
        RegConvention(
            n_regs=8, zero=0, sp=1, rv=2, ra=3,
            arg_regs=(4,), scratch=(5, 6),
            temporaries=(), callee_saved=(9,),
        )
