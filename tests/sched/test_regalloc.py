"""Register allocation: pools, pressure, spilling, correctness.

Correctness is always judged end-to-end: the allocated program must
compute the same values as the golden IR interpreter, including under
extreme register pressure (tiny files forcing spills).
"""

import pytest

from repro.backend.epic import compile_minic_to_epic
from repro.config import epic_config
from repro.core import EpicProcessor
from repro.ir import run_module
from repro.lang import compile_minic


def run_epic(source, config, mem_words=4096):
    compilation = compile_minic_to_epic(source, config)
    cpu = EpicProcessor(config, compilation.program, mem_words=mem_words)
    cpu.run(max_cycles=2_000_000)
    return cpu, compilation


#: A kernel with ~20 simultaneously live values.
HIGH_PRESSURE = """
int seed[20] = {3,1,4,1,5,9,2,6,5,3,5,8,9,7,9,3,2,3,8,4};
int main() {
  int a0; int a1; int a2; int a3; int a4; int a5; int a6; int a7;
  int a8; int a9; int b0; int b1; int b2; int b3; int b4; int b5;
  int b6; int b7; int b8; int b9;
  a0 = seed[0]; a1 = seed[1]; a2 = seed[2]; a3 = seed[3]; a4 = seed[4];
  a5 = seed[5]; a6 = seed[6]; a7 = seed[7]; a8 = seed[8]; a9 = seed[9];
  b0 = seed[10]; b1 = seed[11]; b2 = seed[12]; b3 = seed[13];
  b4 = seed[14]; b5 = seed[15]; b6 = seed[16]; b7 = seed[17];
  b8 = seed[18]; b9 = seed[19];
  // All values stay live to the end.
  return a0 + a1 * 2 + a2 * 3 + a3 * 4 + a4 * 5 + a5 * 6 + a6 * 7
       + a7 * 8 + a8 * 9 + a9 * 10 + b0 * 11 + b1 * 12 + b2 * 13
       + b3 * 14 + b4 * 15 + b5 * 16 + b6 * 17 + b7 * 18 + b8 * 19
       + b9 * 20;
}
"""

CALL_PRESSURE = """
int mix(int a, int b) { return a * 3 + b; }
int main() {
  int x0; int x1; int x2; int x3; int x4; int x5;
  x0 = mix(1, 2); x1 = mix(3, 4); x2 = mix(5, 6);
  x3 = mix(x0, x1); x4 = mix(x2, x0); x5 = mix(x3, x4);
  // x0..x4 live across several calls.
  return x0 + x1 * 10 + x2 * 100 + x3 + x4 + x5;
}
"""


def golden(source):
    return run_module(compile_minic(source)).result & 0xFFFFFFFF


class TestCorrectnessUnderPressure:
    def test_plenty_of_registers(self):
        cpu, _ = run_epic(HIGH_PRESSURE, epic_config())
        assert cpu.gpr.read(2) == golden(HIGH_PRESSURE)

    def test_sixteen_register_file_forces_spills(self):
        config = epic_config(n_gprs=16)
        cpu, _ = run_epic(HIGH_PRESSURE, config)
        assert cpu.gpr.read(2) == golden(HIGH_PRESSURE)
        # With 20 live values and ~4 allocatable registers there MUST be
        # spill traffic.
        assert cpu.stats.memory_reads > 20

    def test_values_live_across_calls(self):
        cpu, _ = run_epic(CALL_PRESSURE, epic_config())
        assert cpu.gpr.read(2) == golden(CALL_PRESSURE)

    def test_values_live_across_calls_tiny_file(self):
        config = epic_config(n_gprs=16)
        cpu, _ = run_epic(CALL_PRESSURE, config)
        assert cpu.gpr.read(2) == golden(CALL_PRESSURE)

    @pytest.mark.parametrize("n_gprs", [16, 24, 32, 64])
    def test_every_file_size_is_correct(self, n_gprs):
        config = epic_config(n_gprs=n_gprs)
        cpu, _ = run_epic(HIGH_PRESSURE, config)
        assert cpu.gpr.read(2) == golden(HIGH_PRESSURE)

    def test_more_registers_mean_fewer_memory_ops(self):
        small_cpu, _ = run_epic(HIGH_PRESSURE, epic_config(n_gprs=16))
        large_cpu, _ = run_epic(HIGH_PRESSURE, epic_config(n_gprs=64))
        assert large_cpu.stats.memory_reads < small_cpu.stats.memory_reads


class TestAllocatorInternals:
    def _allocate(self, source, n_gprs=64):
        from repro.backend.isel import EpicISel
        from repro.isa.encoding import InstructionFormat
        from repro.sched import allocate_registers, epic_convention

        config = epic_config(n_gprs=n_gprs)
        module = compile_minic(source)
        fmt = InstructionFormat(config)
        addresses = module.layout_globals()
        function = module.functions["main"]
        mfunc = EpicISel(function, module, config, fmt, addresses).run()
        result = allocate_registers(mfunc, epic_convention(n_gprs))
        return mfunc, result

    def test_no_virtual_registers_survive(self):
        from repro.backend.mops import VR

        mfunc, _ = self._allocate(HIGH_PRESSURE)
        for mop in mfunc.mops():
            for operand in mop.operands():
                assert not isinstance(operand, VR)

    def test_spill_slots_reported(self):
        _, result = self._allocate(HIGH_PRESSURE, n_gprs=16)
        assert result.spill_slots > 0

    def test_leaf_function_avoids_callee_saved_when_possible(self):
        source = "int main() { int x; x = 1; return x + 2; }"
        _, result = self._allocate(source)
        assert result.used_callee_saved == []
