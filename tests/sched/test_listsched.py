"""List scheduler: packing, latency spacing and global legality.

The legality checker here is an independent reimplementation of the
rules the scheduler must obey (dependence latencies, resource bounds,
branch placement, end-of-block write draining); it is run over the
schedules of several real compiled programs.
"""

from __future__ import annotations

import pytest

from repro.backend.epic import compile_minic_to_epic
from repro.config import epic_config, epic_with_alus
from repro.isa.bundle import Program
from repro.isa.opcodes import FuClass, build_opcode_table
from repro.mdes import Mdes

# -- an independent legality checker over assembled programs ----------------


def _operand_locations(instr, table):
    """(reads, writes) as location sets, mirroring ISA semantics."""
    from repro.isa.operands import Btr, Lit, Pred, Reg

    reads, writes = set(), set()

    def read(op):
        if isinstance(op, Reg) and op.index:
            reads.add(("g", op.index))
        elif isinstance(op, Pred) and op.index:
            reads.add(("p", op.index))
        elif isinstance(op, Btr):
            reads.add(("b", op.index))

    if instr.guard.index:
        reads.add(("p", instr.guard.index))
    mnemonic = instr.mnemonic
    if mnemonic == "NOP":
        return reads, writes
    if mnemonic == "SW":
        read(instr.dest1)
        read(instr.src1)
        read(instr.src2)
        return reads, writes
    read(instr.src1)
    read(instr.src2)
    for dest in (instr.dest1, instr.dest2):
        if isinstance(dest, Reg) and dest.index:
            writes.add(("g", dest.index))
        elif isinstance(dest, Pred) and dest.index:
            writes.add(("p", dest.index))
        elif isinstance(dest, Btr):
            writes.add(("b", dest.index))
    return reads, writes


def check_program_legality(program: Program, config) -> None:
    """Assert per-bundle resources + latency-safe reads along the
    straight-line (fallthrough) path of every block."""
    table = build_opcode_table(config)
    mdes = Mdes(config, table)

    # Resource legality per bundle.
    for address, bundle in enumerate(program.bundles):
        counts = {}
        for instr in bundle:
            info = table.lookup(instr.mnemonic)
            if info.fu_class is FuClass.MISC:
                continue
            counts[info.fu_class] = counts.get(info.fu_class, 0) + 1
        for fu_class, used in counts.items():
            assert used <= mdes.resource_count(fu_class), (
                f"bundle {address} oversubscribes {fu_class}"
            )
        assert len(bundle) <= config.issue_width

    # Latency legality along fallthrough runs: a read of a location must
    # be at least `latency` cycles after the write that produced it.
    label_addresses = set(program.labels.values())
    in_flight = {}
    for address, bundle in enumerate(program.bundles):
        if address in label_addresses:
            in_flight = {}  # control may join here; the compiler drains
        has_branch = False
        for instr in bundle:
            info = table.lookup(instr.mnemonic)
            reads, writes = _operand_locations(instr, table)
            for loc in reads:
                if loc in in_flight:
                    ready = in_flight[loc]
                    assert address >= ready, (
                        f"bundle {address} reads {loc} before it is ready "
                        f"(ready at {ready}): {instr}"
                    )
            if info.is_branch:
                has_branch = True
        for instr in bundle:
            info = table.lookup(instr.mnemonic)
            _, writes = _operand_locations(instr, table)
            for loc in writes:
                in_flight[loc] = address + mdes.latency_of(info)
        if has_branch:
            # All in-flight writes must land before control can leave.
            for loc, ready in in_flight.items():
                assert ready <= address + 1, (
                    f"branch at {address} leaves write to {loc} in flight "
                    f"until {ready}"
                )


_PROGRAMS = [
    """
    int out[4];
    int main() {
      int i; int s;
      s = 0;
      for (i = 0; i < 10; i += 1) { s += i * 3; }
      out[0] = s;
      return s;
    }
    """,
    """
    int data[16] = {1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16};
    int main() {
      int i; int a; int b;
      a = 0; b = 1;
      unroll for (i = 0; i < 16; i += 1) { a += data[i]; b ^= data[i] * i; }
      return a * 1000 + b;
    }
    """,
    """
    int helper(int x, int y) { return x / (y + 1) + x % (y + 2); }
    int main() {
      int i; int s;
      s = 0;
      for (i = 0; i < 6; i += 1) { s += helper(s + 100, i); }
      return s;
    }
    """,
]


@pytest.mark.parametrize("n_alus", [1, 2, 4])
@pytest.mark.parametrize("source", _PROGRAMS, ids=["loop", "unrolled", "calls"])
def test_schedules_are_legal(source, n_alus):
    config = epic_with_alus(n_alus)
    compilation = compile_minic_to_epic(source, config)
    check_program_legality(compilation.program, config)


def test_independent_ops_pack_into_one_bundle():
    source = """
    int a[4] = {1, 2, 3, 4};
    int main() {
      int w; int x; int y; int z;
      w = a[0]; x = a[1]; y = a[2]; z = a[3];
      return (w + x) + (y + z) + (w ^ y) + (x & z)
           + (w | z) + (x - y) + (w * 1) + (z + 5);
    }
    """
    config = epic_config()
    compilation = compile_minic_to_epic(source, config)
    cpu_bundles = len(compilation.program)
    narrow = compile_minic_to_epic(source, epic_with_alus(1))
    assert cpu_bundles < len(narrow.program), (
        "4-ALU schedule should be denser than the 1-ALU schedule"
    )


def test_issue_width_one_serialises_everything():
    config = epic_config(issue_width=1, n_alus=1)
    compilation = compile_minic_to_epic(
        "int main() { return 1 + 2 + 3; }", config
    )
    for bundle in compilation.program:
        assert len(bundle) == 1


def test_pseudo_ops_never_reach_the_scheduler():
    from repro.backend.mops import MFunction, MOp, ENTER
    from repro.sched.listsched import schedule_function
    from repro.errors import ScheduleError
    from repro.backend.mops import MBlock

    mfunc = MFunction("bad", blocks=[MBlock("bad", [MOp(ENTER)])])
    with pytest.raises(ScheduleError):
        schedule_function(mfunc, Mdes(epic_config()))
