"""Liveness analysis over machine functions."""

from repro.backend.mops import MBlock, MFunction, MOp, VR
from repro.isa.operands import Btr, Lit, Pred, Reg
from repro.sched import compute_liveness
from repro.sched.liveness import successor_labels


def _mov(dst, value):
    return MOp("MOVI", dest1=dst, src1=Lit(value))


def _add(dst, a, b):
    return MOp("ADD", dest1=dst, src1=a, src2=b)


def test_straight_line_liveness():
    v0, v1 = VR(0), VR(1)
    mfunc = MFunction("f", blocks=[
        MBlock("a", [_mov(v0, 1)]),
        MBlock("b", [_add(v1, v0, Lit(1)), MOp("__RET", src1=v1)]),
    ])
    info = compute_liveness(mfunc)
    assert v0 in info.live_out["a"]
    assert v0 in info.live_in["b"]
    assert v1 not in info.live_in["b"]


def test_loop_keeps_value_live_around_backedge():
    v0 = VR(0)
    mfunc = MFunction("f", blocks=[
        MBlock("entry", [_mov(v0, 1)]),
        MBlock("loop", [
            _add(v0, v0, Lit(1)),
            MOp("PBR", dest1=Btr(0), src1=Lit(0), target="loop"),
            MOp("BRCT", src1=Btr(0), src2=Pred(1)),
        ]),
        MBlock("exit", [MOp("__RET", src1=v0)]),
    ])
    info = compute_liveness(mfunc)
    assert v0 in info.live_in["loop"]
    assert v0 in info.live_out["loop"]


def test_guarded_definition_does_not_kill():
    """x = 0; (p1) x = 1; use x — the unguarded def must stay live-in
    requirements correct: the guarded def alone cannot satisfy the use."""
    v0 = VR(0)
    guarded = MOp("MOVI", dest1=v0, src1=Lit(1), guard=Pred(1))
    mfunc = MFunction("f", blocks=[
        MBlock("a", [guarded, MOp("__RET", src1=v0)]),
    ])
    info = compute_liveness(mfunc)
    # The guarded def does not define v0 for sure: v0 is live-in.
    assert v0 in info.live_in["a"]


def test_unguarded_definition_kills():
    v0 = VR(0)
    mfunc = MFunction("f", blocks=[
        MBlock("a", [_mov(v0, 1), MOp("__RET", src1=v0)]),
    ])
    info = compute_liveness(mfunc)
    assert v0 not in info.live_in["a"]


class TestSuccessors:
    def test_armlet_conditional_branch(self):
        block = MBlock("a", [MOp("BEQ", src1=Reg(4), src2=Reg(5),
                                 target="t")])
        assert successor_labels(block, "next") == ["t", "next"]

    def test_armlet_unconditional(self):
        block = MBlock("a", [MOp("B", target="t")])
        assert successor_labels(block, "next") == ["t"]

    def test_ret_stops_fallthrough(self):
        block = MBlock("a", [MOp("__RET")])
        assert successor_labels(block, "next") == []

    def test_jal_falls_through(self):
        block = MBlock("a", [MOp("JAL", target="callee")])
        assert successor_labels(block, "next") == ["next"]

    def test_epic_branch_through_btr(self):
        block = MBlock("a", [
            MOp("PBR", dest1=Btr(0), src1=Lit(0), target="t"),
            MOp("BR", src1=Btr(0)),
        ])
        assert successor_labels(block, "next") == ["t"]
