"""Statistics object."""

from repro.core import SimStats


def test_ilp_zero_when_no_cycles():
    assert SimStats().ilp == 0.0


def test_ilp_computed():
    stats = SimStats(cycles=10, ops_executed=25)
    assert stats.ilp == 2.5


def test_stall_cycles_aggregates():
    stats = SimStats(port_stall_cycles=2, fetch_stall_cycles=3,
                     branch_bubble_cycles=5)
    assert stats.stall_cycles == 10


def test_fu_accounting():
    stats = SimStats()
    stats.note_fu("alu")
    stats.note_fu("alu")
    stats.note_fu("lsu")
    assert stats.fu_busy == {"alu": 2, "lsu": 1}


def test_summary_mentions_key_counters():
    stats = SimStats(cycles=100, bundles=90, ops_executed=150,
                     ops_squashed=5, branches=10, branches_taken=7)
    stats.note_fu("alu")
    text = stats.summary()
    assert "cycles" in text
    assert "150" in text
    assert "alu=1" in text
