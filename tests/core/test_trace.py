"""Execution tracer."""

import io

import pytest

from repro.asm import assemble
from repro.config import epic_config
from repro.core import EpicProcessor
from repro.core.trace import Tracer

SOURCE = """
main:
  MOVI r4, 6
  MUL r5, r4, 7
  NOP
  NOP
  ADD r6, r5, 1
  PBR b0, end
  BR b0
end:
  HALT
"""


def _run(tracer):
    config = epic_config()
    cpu = EpicProcessor(config, assemble(SOURCE, config), mem_words=256)
    cpu.run(trace=tracer)
    return cpu


def test_one_line_per_bundle_plus_bubble_markers():
    tracer = Tracer()
    _run(tracer)
    text = tracer.text()
    assert "MOVI r4, 6" in text
    assert "HALT" in text
    # The taken branch costs a bubble, which the tracer annotates.
    assert "stall/bubble" in text


def test_nops_hidden_by_default():
    tracer = Tracer()
    _run(tracer)
    assert "(empty)" in tracer.text()  # the NOP-only bundles
    assert "NOP" not in tracer.text()


def test_nops_shown_on_request():
    tracer = Tracer(show_nops=True)
    _run(tracer)
    assert "NOP" in tracer.text()


def test_streaming_to_a_file_object():
    buffer = io.StringIO()
    tracer = Tracer(stream=buffer)
    _run(tracer)
    assert buffer.getvalue().count("\n") == len(tracer)


def test_truncation():
    tracer = Tracer(max_lines=2)
    _run(tracer)
    assert tracer.truncated
    assert "truncated" in tracer.text()
    assert len(tracer) == 2


def test_cycle_numbers_monotonic():
    tracer = Tracer()
    _run(tracer)
    cycles = [
        int(line.split()[0]) for line in tracer.lines
        if not line.lstrip().startswith("...")
    ]
    assert cycles == sorted(cycles)

def test_corrupted_fetch_traced_with_marker_and_actual_bundle():
    """A fault-substituted fetch must be traced as what actually entered
    the pipeline, flagged so campaign traces are honest."""
    from repro.errors import SimulationError
    from repro.reliability import FaultInjector, FaultSpec

    config = epic_config()
    program = assemble(SOURCE, config)
    for bit in range(64):
        tracer = Tracer(show_nops=True)
        injector = FaultInjector(
            [FaultSpec(space="ifetch", index=0, bit=bit, cycle=1)]
        )
        cpu = EpicProcessor(config, program, mem_words=256,
                            injector=injector)
        try:
            cpu.run(trace=tracer, max_cycles=500)
        except SimulationError:
            pass  # some corruptions trap; the fetch was traced first
        if not any(event.disposition == "fetch-corrupted"
                   for event in injector.log):
            continue  # this bit produced an undecodable word; try next
        text = tracer.text()
        assert "<corrupted fetch>" in text
        corrupted = [line for line in tracer.lines
                     if "<corrupted fetch>" in line]
        assert all("!" in line for line in corrupted)
        # Uncorrupted fetches keep the plain "@pc" marker.
        assert any("@" in line for line in tracer.lines)
        return
    pytest.fail("no single-bit corruption decoded into a traceable bundle")
