"""Differential tests for the pre-specialised fast execution path.

The fast path (:mod:`repro.core.fastpath`) is an optimisation, never a
semantic fork: for every program it accepts it must produce
bit-identical cycle counts, statistics and architectural state to the
instrumented reference loop, whose outputs are in turn validated
against each workload's golden reference values.
"""

import pytest

from repro.asm import assemble
from repro.backend import compile_minic_to_epic
from repro.config import epic_config, epic_with_alus
from repro.core import EpicProcessor
from repro.core.trace import Tracer
from repro.errors import (
    SimulationError,
    TrapError,
    TRAP_OOB_STORE,
    TRAP_PARITY,
)
from repro.perf.bench import stats_fingerprint
from repro.reliability import FaultInjector
from repro.workloads import (
    aes_workload,
    dct_workload,
    dijkstra_workload,
    sha_workload,
)

SMALL_WORKLOADS = {
    "SHA": lambda: sha_workload(8, 8),
    "AES": lambda: aes_workload(2),
    "DCT": lambda: dct_workload(8, 8),
    "Dijkstra": lambda: dijkstra_workload(8),
}


def architectural_state(cpu):
    return (
        cpu.gpr.dump(),
        cpu.pred.dump(),
        cpu.btr.dump(),
        cpu.memory.read_block(0, len(cpu.memory)),
    )


def run_both(config, program, mem_words):
    """Run the same program on both engines; returns the two machines."""
    slow = EpicProcessor(config, program, mem_words=mem_words)
    slow_result = slow.run(fast=False)
    fast = EpicProcessor(config, program, mem_words=mem_words)
    fast_result = fast.run(fast=True)
    assert slow_result.cycles == fast_result.cycles
    assert stats_fingerprint(slow.stats) == stats_fingerprint(fast.stats)
    assert architectural_state(slow) == architectural_state(fast)
    return slow, fast


class TestDifferentialWorkloads:
    """Fast vs instrumented vs golden reference, all four workloads."""

    @pytest.mark.parametrize("name", sorted(SMALL_WORKLOADS))
    def test_bit_identical_across_alu_presets(self, name):
        spec = SMALL_WORKLOADS[name]()
        for n_alus in (1, 2, 3, 4):
            config = epic_with_alus(n_alus)
            compilation = compile_minic_to_epic(spec.source, config)
            slow, fast = run_both(config, compilation.program,
                                  spec.mem_words)
            # Both engines must also agree with the golden reference
            # (computed by the IR-level model, independent of the core).
            for cpu in (slow, fast):
                for global_name, expected in spec.expected.items():
                    base = compilation.symbols[global_name]
                    got = [cpu.memory.read(base + i)
                           for i in range(len(expected))]
                    assert got == expected, (name, n_alus, global_name)
                if spec.expected_return is not None:
                    assert (cpu.gpr.read(2) & 0xFFFFFFFF) == \
                        spec.expected_return


FORWARDING_HEAVY = """
main:
  MOVI r4, 100
  MOVI r5, 3
  ADD r6, r4, r5
  ADD r7, r6, r6
  SUB r8, r7, r4
  CMPP_LT p1, p2, r8, r4
  (p1) ADD r9, r8, 1
  (p2) ADD r9, r8, 2
  SW r9, r0, 20
  HALT
"""


class TestDifferentialAssembly:
    """Hand-written corner cases beyond what the compiler emits."""

    def test_predication_and_forwarding(self):
        config = epic_config()
        program = assemble(FORWARDING_HEAVY, config)
        run_both(config, program, 256)

    def test_ablation_configs_match(self):
        source = FORWARDING_HEAVY
        for overrides in (
            {"forwarding": False},
            {"model_port_limit": False},
            {"lsu_shares_fetch_bandwidth": True},
        ):
            config = epic_config(**overrides)
            program = assemble(source, config)
            run_both(config, program, 256)

    def test_repeat_run_reuses_cached_engine(self):
        config = epic_config()
        cpu = EpicProcessor(config, assemble(FORWARDING_HEAVY, config),
                            mem_words=256)
        first = cpu.run()
        engine = cpu._fastsim
        assert engine not in (None, False)  # auto-dispatch specialised
        second = cpu.run()
        assert cpu._fastsim is engine
        assert first.cycles == second.cycles


OOB_STORE = """
  MOVI r4, 500
  NOP
  SW r4, r4, 0
  HALT
"""


class TestTrapEquivalence:
    def test_oob_store_trap_matches_instrumented(self):
        config = epic_config()
        observed = []
        for fast in (False, True):
            cpu = EpicProcessor(config, assemble(OOB_STORE, config),
                                mem_words=64)
            with pytest.raises(TrapError) as info:
                cpu.run(max_cycles=100, fast=fast)
            observed.append(
                (info.value.cause, info.value.cycle, info.value.pc,
                 cpu.stats.traps, len(cpu.traps))
            )
        assert observed[0] == observed[1]
        assert observed[0][0] == TRAP_OOB_STORE


class TestEligibility:
    def make(self, **kwargs):
        config = epic_config()
        return EpicProcessor(config, assemble(FORWARDING_HEAVY, config),
                             mem_words=256, **kwargs)

    def test_fast_refused_with_tracer(self):
        cpu = self.make()
        with pytest.raises(SimulationError, match="fast path requested"):
            cpu.run(trace=Tracer(), fast=True)

    def test_fast_refused_with_injector(self):
        cpu = self.make(injector=FaultInjector([]))
        with pytest.raises(SimulationError, match="fast path requested"):
            cpu.run(fast=True)

    def test_fast_refused_with_strict_nual(self):
        cpu = self.make(strict_nual=True)
        with pytest.raises(SimulationError, match="fast path requested"):
            cpu.run(fast=True)

    def test_fast_refused_under_non_halt_policy(self):
        config = epic_config(trap_policy="record-and-continue")
        cpu = EpicProcessor(config, assemble(FORWARDING_HEAVY, config),
                            mem_words=256)
        with pytest.raises(SimulationError, match="fast path requested"):
            cpu.run(fast=True)

    def test_fast_refused_with_planted_parity_fault(self):
        cpu = self.make()
        cpu.gpr.poison(4)
        with pytest.raises(SimulationError, match="fast path requested"):
            cpu.run(fast=True)

    def test_poisoned_run_takes_parity_checking_path(self):
        # Auto dispatch must route a poisoned machine to the
        # instrumented loop, whose reads raise the parity trap the
        # fast path's direct list indexing could never see.
        config = epic_config()
        cpu = EpicProcessor(config, assemble("ADD r5, r4, 1\nHALT", config),
                            mem_words=64)
        cpu.gpr.poison(4)
        with pytest.raises(TrapError) as info:
            cpu.run(max_cycles=100)
        assert info.value.cause == TRAP_PARITY
        assert cpu._fastsim is None  # the fast engine was never built

    def test_reject_reason_recorded_for_register_oob(self):
        source = """
        main:
          PBR b0, end
          NOP
          BR b0
          ADD r60, r1, 1
        end:
          HALT
        """
        big = epic_config()
        program = assemble(source, big)
        small = big.with_changes(n_gprs=32)
        cpu = EpicProcessor(small, program, mem_words=64)
        cpu.run(max_cycles=100)  # auto: quiet fallback
        assert cpu.last_engine == "instrumented"
        assert "index" in cpu.fastpath_reject_reason
        assert "limit" in cpu.fastpath_reject_reason
        # The reason rides along on the stats summary so a downgraded
        # run is visible in any report that prints it.
        assert "fast path rejected" in cpu.stats.summary()
        assert cpu.fastpath_reject_reason in cpu.stats.summary()

    def test_reject_reason_recorded_for_extra_control_op(self):
        import copy

        source = """
        main:
          PBR b0, end
          NOP
          BR b0
          NOP
        end:
          HALT
        """
        config = epic_config()
        cpu = EpicProcessor(config, assemble(source, config), mem_words=64)
        # Predecode enforces one BRU per issue group at load time, so
        # forge the illegal shape post-decode: a second copy of the
        # branch in its own bundle (same target, so the instrumented
        # loop's behaviour is unchanged).
        from repro.core import decode as dec

        branch_bundle = next(b for b in cpu._bundles
                             if any(op.kind == dec.K_BR for op in b.ops))
        branch_op = next(op for op in branch_bundle.ops
                         if op.kind == dec.K_BR)
        branch_bundle.ops.append(copy.copy(branch_op))
        with pytest.raises(SimulationError,
                           match="more than one control operation"):
            cpu.run(max_cycles=100, fast=True)
        assert cpu.fastpath_reject_reason == \
            "more than one control operation in a bundle"
        result = cpu.run(max_cycles=100)  # auto: quiet fallback
        assert cpu.last_engine == "instrumented"
        assert result.cycles > 0

    def test_reject_reason_recorded_for_sub_cycle_latency(self):
        config = epic_config()
        cpu = EpicProcessor(config, assemble(FORWARDING_HEAVY, config),
                            mem_words=256)
        from repro.core import decode as dec

        add_op = next(op for b in cpu._bundles for op in b.ops
                      if op.kind == dec.K_ALU)
        add_op.latency = 0
        with pytest.raises(SimulationError, match="cannot be specialised"):
            cpu.run(fast=True)
        assert cpu.fastpath_reject_reason == \
            "write-back latency below one cycle"
        assert cpu.stats.fastpath_reject_reason == cpu.fastpath_reject_reason
        cpu.run()  # auto: quiet fallback onto the instrumented loop
        assert cpu.last_engine == "instrumented"

    def test_ineligible_program_falls_back_silently(self):
        # Assemble against a large register file, run on a small one:
        # the dead code past the branch names a GPR beyond the small
        # file, which the specialiser rejects at load time, while the
        # instrumented path never executes it.
        source = """
        main:
          PBR b0, end
          NOP
          BR b0
          ADD r60, r1, 1
        end:
          HALT
        """
        big = epic_config()
        program = assemble(source, big)
        small = big.with_changes(n_gprs=32)
        cpu = EpicProcessor(small, program, mem_words=64)
        result = cpu.run(max_cycles=100)  # auto: quiet fallback
        assert cpu._fastsim is False  # marked ineligible, cached
        with pytest.raises(SimulationError, match="cannot be specialised"):
            cpu.run(max_cycles=100, fast=True)
        reference = EpicProcessor(small, program, mem_words=64)
        assert reference.run(max_cycles=100, fast=False).cycles \
            == result.cycles
