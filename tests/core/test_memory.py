"""Data-memory unit behaviour."""

import pytest
from hypothesis import given, strategies as st

from repro.core import DataMemory
from repro.errors import SimulationError


class TestBounds:
    def test_read_write_round_trip(self):
        memory = DataMemory(64)
        memory.write(10, 0xCAFEBABE)
        assert memory.read(10) == 0xCAFEBABE

    def test_values_masked(self):
        memory = DataMemory(8, width=16)
        memory.write(0, 0x12345)
        assert memory.read(0) == 0x2345

    def test_read_out_of_range(self):
        with pytest.raises(SimulationError):
            DataMemory(8).read(8)

    def test_write_out_of_range(self):
        with pytest.raises(SimulationError):
            DataMemory(8).write(-1, 0)

    def test_speculative_read_returns_zero(self):
        memory = DataMemory(8)
        assert memory.read_speculative(100) == 0
        assert memory.read_speculative(-1) == 0

    def test_speculative_read_in_range_is_normal(self):
        memory = DataMemory(8, image=[7])
        assert memory.read_speculative(0) == 7

    def test_zero_size_rejected(self):
        with pytest.raises(SimulationError):
            DataMemory(0)


class TestImage:
    def test_initial_image_loaded(self):
        memory = DataMemory(8, image=[1, 2, 3])
        assert [memory.read(i) for i in range(4)] == [1, 2, 3, 0]

    def test_oversized_image_rejected(self):
        with pytest.raises(SimulationError):
            DataMemory(2, image=[1, 2, 3])

    def test_block_access(self):
        memory = DataMemory(16)
        memory.write_block(4, [9, 8, 7])
        assert memory.read_block(4, 3) == [9, 8, 7]

    def test_block_read_out_of_range(self):
        with pytest.raises(SimulationError):
            DataMemory(8).read_block(6, 4)


@given(st.lists(st.integers(0, 0xFFFFFFFF), min_size=1, max_size=32))
def test_image_round_trips(words):
    memory = DataMemory(len(words), image=words)
    assert memory.read_block(0, len(words)) == words
