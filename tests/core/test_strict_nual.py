"""Strict NUAL mode: the simulator as a schedule validator.

In HPL-PD's NUAL contract the hardware never interlocks; a read of a
location whose write is still in flight returns the *old* value.  Code
from our compiler must never do that (the scheduler spaces consumers by
producer latency), so running compiled programs with ``strict_nual``
set is an end-to-end proof of schedule legality — on real dynamic
paths, not just statically.
"""

import pytest

from repro.asm import assemble
from repro.backend import compile_minic_to_epic
from repro.config import epic_config, epic_with_alus
from repro.core import EpicProcessor
from repro.errors import SimulationError
from repro.workloads import (
    aes_workload, dct_workload, dijkstra_workload, sha_workload,
)


class TestViolationsDetected:
    def test_premature_alu_read(self):
        source = """
          MOVI r4, 6
          MUL r5, r4, 7
          ADD r6, r5, 0    ;; MUL latency is 3: r5 still in flight
          NOP
          NOP
          HALT
        """
        config = epic_config()
        program = assemble(source, config)
        cpu = EpicProcessor(config, program, strict_nual=True)
        with pytest.raises(SimulationError, match="NUAL violation"):
            cpu.run()

    def test_premature_load_read(self):
        source = """
        .data
        v: .word 5
        .text
          LW r4, r0, v
          ADD r5, r4, 1    ;; load latency is 2
          NOP
          HALT
        """
        config = epic_config()
        cpu = EpicProcessor(config, assemble(source, config),
                            strict_nual=True)
        with pytest.raises(SimulationError, match="NUAL violation"):
            cpu.run()

    def test_premature_predicate_read(self):
        source = """
          CMPP_EQ p1, p2, r0, 0
          (p1) MOVI r4, 1   ;; guard read one cycle too early
          HALT
        """
        # With a 2-cycle comparison unit, the next-cycle guard read is
        # premature (with the default 1-cycle CMPU it would be legal).
        config = epic_config().with_latency("cmp", 2)
        cpu = EpicProcessor(config, assemble(source, config),
                            strict_nual=True)
        with pytest.raises(SimulationError, match="NUAL violation"):
            cpu.run()

    def test_same_bundle_read_is_legal(self):
        """VLIW semantics: same-cycle reads see the old value — not a
        violation (the compiler uses this for parallel swaps)."""
        source = """
          MOVI r4, 5
        { ADD r4, r4, 10 ; ADD r5, r4, 1 }
          NOP
          HALT
        """
        config = epic_config()
        cpu = EpicProcessor(config, assemble(source, config),
                            strict_nual=True)
        assert cpu.run().halted

    def test_properly_spaced_code_is_clean(self):
        source = """
          MOVI r4, 6
          MUL r5, r4, 7
          NOP
          NOP
          ADD r6, r5, 0
          HALT
        """
        config = epic_config()
        cpu = EpicProcessor(config, assemble(source, config),
                            strict_nual=True)
        cpu.run()
        assert cpu.gpr.read(6) == 42

    def test_default_mode_tolerates_early_reads(self):
        """Without strict mode the old value is returned (NUAL)."""
        source = """
          MOVI r4, 6
          MUL r5, r4, 7
          ADD r6, r5, 0
          NOP
          NOP
          HALT
        """
        config = epic_config()
        cpu = EpicProcessor(config, assemble(source, config))
        cpu.run()
        assert cpu.gpr.read(6) == 0


class TestCompiledCodeIsAlwaysClean:
    """The scheduler validator: every compiled program, on every
    configuration, must run violation-free end to end."""

    PROGRAMS = [
        """
        int main() {
          int i; int s;
          s = 1;
          for (i = 0; i < 50; i += 1) { s = s * 3 + i; }
          return s;
        }
        """,
        """
        int t[8] = {1,2,3,4,5,6,7,8};
        int main() {
          int i; int s;
          s = 0;
          unroll for (i = 0; i < 8; i += 1) { s += t[i] * t[7 - i]; }
          return s / 3 + s % 7;
        }
        """,
        """
        int fib(int n) {
          if (n < 2) { return n; }
          return fib(n - 1) + fib(n - 2);
        }
        int main() { return fib(10); }
        """,
    ]

    @pytest.mark.parametrize("n_alus", [1, 2, 4])
    @pytest.mark.parametrize("source", PROGRAMS,
                             ids=["loop", "unrolled", "recursive"])
    def test_programs(self, source, n_alus):
        config = epic_with_alus(n_alus)
        compilation = compile_minic_to_epic(source, config)
        cpu = EpicProcessor(config, compilation.program, mem_words=4096,
                            strict_nual=True)
        assert cpu.run().halted

    @pytest.mark.parametrize("make_spec", [
        lambda: sha_workload(8, 8),
        lambda: aes_workload(1),
        lambda: dct_workload(8, 8),
        lambda: dijkstra_workload(6),
    ], ids=["SHA", "AES", "DCT", "Dijkstra"])
    def test_workloads(self, make_spec):
        spec = make_spec()
        config = epic_with_alus(4)
        compilation = compile_minic_to_epic(spec.source, config)
        cpu = EpicProcessor(config, compilation.program,
                            mem_words=spec.mem_words, strict_nual=True)
        assert cpu.run().halted
