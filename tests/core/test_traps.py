"""Architectural traps, trap policies, and cycle-budget outcomes."""

import pytest

from repro.asm import assemble
from repro.config import epic_config
from repro.core import EpicProcessor
from repro.errors import (
    CycleLimitExceeded,
    HangDetected,
    SimulationError,
    TrapError,
    TRAP_OOB_LOAD,
    TRAP_OOB_STORE,
)


def build(source, mem_words=256, **overrides):
    config = epic_config(**overrides)
    return EpicProcessor(config, assemble(source, config),
                         mem_words=mem_words)


OOB_STORE = """
  MOVI r4, 77
  NOP
  SW r4, r4, 500
  HALT
"""


class TestTrapContext:
    def test_oob_store_traps_with_pc_and_cycle(self):
        cpu = build(OOB_STORE, mem_words=64)
        with pytest.raises(TrapError) as info:
            cpu.run(max_cycles=100)
        trap = info.value
        assert trap.cause == TRAP_OOB_STORE
        # The SW issues from bundle 2, one bundle per cycle from cycle 0.
        assert trap.pc == 2
        assert trap.cycle == 2

    def test_oob_load_traps_with_cause(self):
        source = """
          MOVI r4, 9999
          NOP
          LW r5, r4, 0
          HALT
        """
        cpu = build(source, mem_words=64)
        with pytest.raises(TrapError) as info:
            cpu.run(max_cycles=100)
        assert info.value.cause == TRAP_OOB_LOAD
        assert info.value.cycle >= 0 and info.value.pc >= 0

    def test_trap_is_catchable_as_simulation_error(self):
        cpu = build(OOB_STORE, mem_words=64)
        with pytest.raises(SimulationError):
            cpu.run(max_cycles=100)

    def test_speculative_oob_load_reads_zero_without_trap(self):
        source = """
          MOVI r4, 9999
          NOP
          LWS r5, r4, 0
          MOVI r6, 5
          HALT
        """
        cpu = build(source, mem_words=64)
        result = cpu.run(max_cycles=100)
        assert result.halted
        assert result.traps == []
        assert cpu.gpr.read(5) == 0
        assert cpu.gpr.read(6) == 5


class TestTrapPolicies:
    def test_halt_policy_propagates(self):
        cpu = build(OOB_STORE, mem_words=64, trap_policy="halt")
        with pytest.raises(TrapError):
            cpu.run(max_cycles=100)
        assert cpu.traps and cpu.traps[0].cause == TRAP_OOB_STORE

    def test_record_and_continue_reaches_halt(self):
        cpu = build(OOB_STORE, mem_words=64,
                    trap_policy="record-and-continue")
        result = cpu.run(max_cycles=100)
        assert result.halted
        assert len(result.traps) == 1
        assert result.traps[0].cause == TRAP_OOB_STORE
        assert cpu.stats.traps == 1

    SIBLING = """
      MOVI r4, 200
      NOP
    { MOVI r5, 11 ; SW r4, r4, 500 }
      NOP
      HALT
    """

    def test_squash_bundle_discards_sibling_writes(self):
        # The trapping bundle's good register write must not commit either.
        cpu = build(self.SIBLING, mem_words=64, trap_policy="squash-bundle")
        result = cpu.run(max_cycles=100)
        assert result.halted
        assert len(result.traps) == 1
        assert cpu.gpr.read(5) == 0  # MOVI r5 squashed with its bundle

    def test_record_and_continue_commits_sibling_writes(self):
        cpu = build(self.SIBLING, mem_words=64,
                    trap_policy="record-and-continue")
        result = cpu.run(max_cycles=100)
        assert result.halted
        assert len(result.traps) == 1
        assert cpu.gpr.read(5) == 11  # the good op's write survived


LOOP_FOREVER = """
  start:
    PBR b0, start
    NOP
    BR b0
"""


class TestCycleBudgets:
    def test_max_cycles_raises_cycle_limit_exceeded(self):
        cpu = build(LOOP_FOREVER)
        with pytest.raises(CycleLimitExceeded) as info:
            cpu.run(max_cycles=50)
        assert info.value.limit == 50
        assert info.value.cycle >= 50
        assert not isinstance(info.value, HangDetected)

    def test_watchdog_raises_hang_detected(self):
        cpu = build(LOOP_FOREVER)
        with pytest.raises(HangDetected) as info:
            cpu.run(max_cycles=10_000, watchdog_cycles=60)
        assert info.value.limit == 60

    def test_halting_run_unaffected_by_watchdog(self):
        cpu = build("HALT")
        result = cpu.run(max_cycles=100, watchdog_cycles=50)
        assert result.halted and result.cycles == 1
