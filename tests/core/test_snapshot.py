"""Snapshot/restore: quiescent-cycle checkpoints must be exact.

The fault-injection fast-forward machinery (repro.reliability.lockstep)
is only sound if a restored machine is bit-for-bit indistinguishable
from one that executed every cycle from reset.  These tests pin that
property for all three execution engines, across an active fault
injector, and across the pickle boundary used by the on-disk store.
"""

import pickle

import pytest

from repro.backend import compile_minic_to_epic
from repro.config import epic_config, epic_with_alus
from repro.core import EpicProcessor
from repro.core.snapshot import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointStore,
    CoreSnapshot,
    capture_checkpoints,
    program_digest,
)
from repro.errors import SimulationError
from repro.reliability import SPACE_GPR, FaultInjector, FaultSpec

MEM_WORDS = 1 << 12

SOURCE = """
int a[8] = {3, 1, 4, 1, 5, 9, 2, 6};
int out[8];
int main() {
  int i; int acc;
  acc = 0;
  for (i = 0; i < 8; i += 1) {
    out[i] = a[i] * 5 + i;
    acc = acc + out[i];
  }
  return acc;
}
"""

ENGINES = ("reference", "fast", "trace")


def fresh_cpu(config=None):
    config = config or epic_config()
    compilation = compile_minic_to_epic(SOURCE, config)
    return EpicProcessor(config, compilation.program, mem_words=MEM_WORDS)


def observable(cpu, result):
    """Everything an exactness argument cares about."""
    return (result.cycles, result.stats, cpu.gpr._values, cpu.pred._values,
            cpu.btr._values, cpu.memory._words,
            [str(trap) for trap in cpu.traps])


@pytest.fixture(scope="module")
def uninterrupted():
    cpu = fresh_cpu()
    result = cpu.run()
    return observable(cpu, result)


class TestSegmentedRuns:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_paused_and_resumed_run_is_bit_identical(self, engine,
                                                     uninterrupted):
        cpu = fresh_cpu()
        segment = cpu.run(engine=engine, until_cycle=10)
        assert not segment.halted
        assert segment.cycles >= 10
        result = cpu.run(engine=engine)
        assert result.halted
        assert observable(cpu, result) == uninterrupted

    @pytest.mark.parametrize("engine", ENGINES)
    def test_many_tiny_segments(self, engine, uninterrupted):
        cpu = fresh_cpu()
        result = cpu.run(engine=engine, until_cycle=1)
        while not result.halted:
            result = cpu.run(engine=engine,
                             until_cycle=cpu._resume_cycle + 7)
        assert observable(cpu, result) == uninterrupted

    def test_run_past_halt_returns_normally(self):
        cpu = fresh_cpu()
        result = cpu.run(until_cycle=10 ** 9)
        assert result.halted


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_restore_after_mutation_resumes_identically(self, engine,
                                                        uninterrupted):
        cpu = fresh_cpu()
        cpu.run(engine=engine, until_cycle=12)
        snap = cpu.snapshot()
        # Trash every architectural file, then restore.
        cpu.run(engine=engine, until_cycle=snap.cycle + 9)
        cpu.gpr._values[4] ^= 0xDEAD
        cpu.memory._words[0] ^= 1
        cpu.restore(snap)
        assert snap.matches_state(cpu)
        result = cpu.run(engine=engine)
        assert observable(cpu, result) == uninterrupted

    def test_restore_onto_sibling_machine(self, uninterrupted):
        donor = fresh_cpu()
        donor.run(until_cycle=20)
        twin = fresh_cpu()
        twin.restore(donor.snapshot())
        result = twin.run()
        assert observable(twin, result) == uninterrupted

    def test_pickled_snapshot_restores_identically(self, uninterrupted):
        cpu = fresh_cpu()
        cpu.run(until_cycle=16)
        snap = pickle.loads(pickle.dumps(cpu.snapshot()))
        twin = fresh_cpu()
        twin.restore(snap)
        result = twin.run()
        assert observable(twin, result) == uninterrupted

    def test_snapshot_under_active_injector(self):
        config = epic_config()
        fault = FaultSpec(SPACE_GPR, 4, 2, 30)
        # From-zero faulty run.
        cpu = fresh_cpu(config)
        cpu.injector = FaultInjector([fault])
        cpu.injector.attach(cpu)
        reference = observable(cpu, cpu.run())
        # Checkpoint at cycle 8 (before the fault fires), restore onto
        # a fresh machine, inject from there: must land the same place.
        donor = fresh_cpu(config)
        donor.run(until_cycle=8)
        snap = donor.snapshot()
        assert snap.cycle < fault.cycle
        twin = fresh_cpu(config)
        twin.restore(snap)
        twin.injector = FaultInjector([fault])
        twin.injector.attach(twin)
        assert observable(twin, twin.run()) == reference

    def test_capture_requires_quiescent_machine(self):
        cpu = fresh_cpu()
        cpu.run()
        with pytest.raises(SimulationError):
            cpu.snapshot()

    def test_fresh_machine_snapshot_is_cycle_zero(self):
        cpu = fresh_cpu()
        snap = cpu.snapshot()
        assert snap.cycle == 0
        assert snap.pc == cpu.program.entry

    def test_matches_state_detects_divergence(self):
        cpu = fresh_cpu()
        cpu.run(until_cycle=10)
        snap = cpu.snapshot()
        assert snap.matches_state(cpu)
        cpu.gpr._values[5] ^= 2
        assert not snap.matches_state(cpu)


class TestCheckpointStream:
    @pytest.fixture(scope="class")
    def stream(self):
        config = epic_config()
        compilation = compile_minic_to_epic(SOURCE, config)
        return capture_checkpoints(config, compilation.program,
                                   MEM_WORDS, interval=16)

    def test_starts_at_cycle_zero(self, stream):
        assert stream.snapshots[0].cycle == 0

    def test_cycles_strictly_increase(self, stream):
        cycles = [snap.cycle for snap in stream.snapshots]
        assert cycles == sorted(set(cycles))

    def test_nearest_is_latest_at_or_before(self, stream):
        for probe in range(stream.reference_cycles + 2):
            snap = stream.nearest(probe)
            assert snap.cycle <= probe
            later = [s for s in stream.snapshots
                     if snap.cycle < s.cycle <= probe]
            assert not later

    def test_after_is_strictly_later(self, stream):
        pivot = stream.snapshots[1].cycle
        assert all(s.cycle > pivot for s in stream.after(pivot))

    def test_checkpoints_land_on_true_machine_states(self, stream,
                                                     uninterrupted):
        # Replay from the mid-stream checkpoint: identical finish.
        snap = stream.snapshots[len(stream.snapshots) // 2]
        cpu = fresh_cpu()
        cpu.restore(snap)
        result = cpu.run()
        assert observable(cpu, result) == uninterrupted


class TestCheckpointStore:
    @pytest.fixture()
    def parts(self):
        config = epic_config()
        compilation = compile_minic_to_epic(SOURCE, config)
        return config, compilation.program

    def test_round_trip(self, parts, tmp_path):
        config, program = parts
        store = CheckpointStore(str(tmp_path), salt="s1")
        stream = capture_checkpoints(config, program, MEM_WORDS,
                                     interval=16)
        assert store.get(config, program, MEM_WORDS, 16) is None
        store.put(config, program, MEM_WORDS, stream)
        loaded = store.get(config, program, MEM_WORDS, 16)
        assert loaded is not None
        assert loaded.reference_cycles == stream.reference_cycles
        assert len(loaded) == len(stream)
        for ours, theirs in zip(stream.snapshots, loaded.snapshots):
            assert ours == theirs

    def test_interval_is_part_of_the_key(self, parts, tmp_path):
        config, program = parts
        store = CheckpointStore(str(tmp_path), salt="s1")
        stream = capture_checkpoints(config, program, MEM_WORDS,
                                     interval=16)
        store.put(config, program, MEM_WORDS, stream)
        assert store.get(config, program, MEM_WORDS, 32) is None

    def test_salt_mismatch_invalidates(self, parts, tmp_path):
        config, program = parts
        stream = capture_checkpoints(config, program, MEM_WORDS,
                                     interval=16)
        CheckpointStore(str(tmp_path), salt="old").put(
            config, program, MEM_WORDS, stream)
        fresh = CheckpointStore(str(tmp_path), salt="new")
        assert fresh.get(config, program, MEM_WORDS, 16) is None
        assert fresh.stats["invalidations"] == 1

    def test_restored_from_disk_resumes_identically(self, parts, tmp_path,
                                                    uninterrupted):
        config, program = parts
        store = CheckpointStore(str(tmp_path), salt="s1")
        store.put(config, program, MEM_WORDS,
                  capture_checkpoints(config, program, MEM_WORDS,
                                      interval=16))
        loaded = store.get(config, program, MEM_WORDS, 16)
        snap = loaded.snapshots[-1]
        cpu = fresh_cpu()
        cpu.restore(snap)
        result = cpu.run()
        assert observable(cpu, result) == uninterrupted


class TestProgramDigest:
    def test_stable_across_recompiles(self):
        config = epic_config()
        first = compile_minic_to_epic(SOURCE, config).program
        second = compile_minic_to_epic(SOURCE, config).program
        assert program_digest(config, first) == \
            program_digest(config, second)

    def test_different_machines_differ(self):
        one = epic_with_alus(1)
        four = epic_with_alus(4)
        assert program_digest(one, compile_minic_to_epic(SOURCE,
                                                         one).program) != \
            program_digest(four, compile_minic_to_epic(SOURCE,
                                                       four).program)

    def test_schema_version_is_positive(self):
        assert CHECKPOINT_SCHEMA_VERSION >= 1


def test_snapshot_dataclass_equality():
    cpu = fresh_cpu()
    assert CoreSnapshot.capture(cpu) == CoreSnapshot.capture(cpu)
