"""Differential tests for the profile-guided trace engine.

The trace engine (:mod:`repro.core.tracejit`) compiles hot superblocks
on top of the fast path's per-bundle functions.  Like the fast path it
is an optimisation, never a semantic fork: for every program it runs it
must produce bit-identical cycle counts, statistics and architectural
state to both the instrumented reference loop and the bundle-level fast
engine — at every hotness threshold and chain cap, including the
degenerate ones that force a side exit out of every superblock.
"""

import random

import pytest

from repro.asm import assemble
from repro.backend import compile_minic_to_epic
from repro.config import epic_config, epic_with_alus
from repro.core import EpicProcessor
from repro.core.tracejit import TraceCache
from repro.errors import SimulationError, TrapError, TRAP_OOB_STORE
from repro.perf.bench import stats_fingerprint
from repro.workloads import (
    aes_workload,
    dct_workload,
    dijkstra_workload,
    sha_workload,
)

SMALL_WORKLOADS = {
    "SHA": lambda: sha_workload(8, 8),
    "AES": lambda: aes_workload(2),
    "DCT": lambda: dct_workload(8, 8),
    "Dijkstra": lambda: dijkstra_workload(8),
}


def architectural_state(cpu):
    return (
        cpu.gpr.dump(),
        cpu.pred.dump(),
        cpu.btr.dump(),
        cpu.memory.read_block(0, len(cpu.memory)),
    )


def run_three(config, program, mem_words, hotness=2, cap=64, cache=None):
    """Run the program on all three engines; returns the machines.

    A low default hotness makes superblocks form even on the small
    differential inputs, so the generated trace code actually executes
    instead of the comparison degenerating into fast-vs-fast.
    """
    reference = EpicProcessor(config, program, mem_words=mem_words)
    reference_result = reference.run(engine="reference")
    fast = EpicProcessor(config, program, mem_words=mem_words)
    fast_result = fast.run(engine="fast")
    tracer = EpicProcessor(config, program, mem_words=mem_words,
                           trace_hotness=hotness, trace_cap=cap,
                           trace_cache=cache)
    trace_result = tracer.run(engine="trace")
    assert reference_result.cycles == fast_result.cycles
    assert reference_result.cycles == trace_result.cycles
    assert stats_fingerprint(reference.stats) == \
        stats_fingerprint(fast.stats)
    assert stats_fingerprint(reference.stats) == \
        stats_fingerprint(tracer.stats)
    assert architectural_state(reference) == architectural_state(fast)
    assert architectural_state(reference) == architectural_state(tracer)
    assert tracer.last_engine == "trace"
    return reference, fast, tracer


class TestDifferentialWorkloads:
    """Trace vs fast vs instrumented vs golden, all four workloads."""

    @pytest.mark.parametrize("name", sorted(SMALL_WORKLOADS))
    def test_bit_identical_across_alu_presets(self, name):
        spec = SMALL_WORKLOADS[name]()
        traced_somewhere = False
        for n_alus in (1, 2, 3, 4):
            config = epic_with_alus(n_alus)
            compilation = compile_minic_to_epic(spec.source, config)
            reference, _, tracer = run_three(
                config, compilation.program, spec.mem_words)
            traced_somewhere |= tracer._tracesim.trace_count > 0
            for cpu in (reference, tracer):
                for global_name, expected in spec.expected.items():
                    base = compilation.symbols[global_name]
                    got = [cpu.memory.read(base + i)
                           for i in range(len(expected))]
                    assert got == expected, (name, n_alus, global_name)
                if spec.expected_return is not None:
                    assert (cpu.gpr.read(2) & 0xFFFFFFFF) == \
                        spec.expected_return
        # The equivalence must have exercised real superblocks, not a
        # trace engine that never got hot enough to compile one.
        assert traced_somewhere, name

    def test_randomised_hotness_and_caps(self):
        # Degenerate tunings force every interesting path: cap=1
        # superblocks exit after a single bundle, tiny hotness compiles
        # everything, large hotness compiles almost nothing, and odd
        # caps split loop bodies so linked traces hand over mid-loop.
        spec = SMALL_WORKLOADS["SHA"]()
        config = epic_with_alus(2)
        compilation = compile_minic_to_epic(spec.source, config)
        rng = random.Random(1905)
        tunings = [(1, 1), (1, 3)] + [
            (rng.randint(1, 24), rng.randint(1, 96)) for _ in range(4)
        ]
        for hotness, cap in tunings:
            run_three(config, compilation.program, spec.mem_words,
                      hotness=hotness, cap=cap)

    def test_ablation_configs_match(self):
        spec = SMALL_WORKLOADS["DCT"]()
        for overrides in (
            {"forwarding": False},
            {"model_port_limit": False},
            {"lsu_shares_fetch_bandwidth": True},
        ):
            config = epic_config(**overrides)
            compilation = compile_minic_to_epic(spec.source, config)
            run_three(config, compilation.program, spec.mem_words)


TRAPPING_LOOP = """
main:
  PBR b0, loop
  MOVI r4, 0
loop:
  ADD r4, r4, 1
  SW r4, r4, 56
  CMPP_LT p1, p2, r4, 40
  (p1) BR b0
  HALT
"""


class TestTrapEquivalence:
    def test_oob_store_inside_a_hot_trace(self):
        # The store goes out of bounds only after the loop has run hot
        # and been compiled, so the trap fires *inside* the generated
        # superblock — its guarded side exit must materialise the exact
        # architectural point the instrumented loop reports.
        config = epic_config()
        program = assemble(TRAPPING_LOOP, config)
        observed = []
        for engine in ("reference", "fast", "trace"):
            cpu = EpicProcessor(config, program, mem_words=64,
                                trace_hotness=2)
            with pytest.raises(TrapError) as info:
                cpu.run(max_cycles=10_000, engine=engine)
            observed.append(
                (info.value.cause, info.value.cycle, info.value.pc,
                 cpu.stats.traps, len(cpu.traps),
                 architectural_state(cpu))
            )
            if engine == "trace":
                assert cpu._tracesim.trace_count > 0
        assert observed[0] == observed[1] == observed[2]
        assert observed[0][0] == TRAP_OOB_STORE


class TestTraceCache:
    def make(self, cache, n_alus=2):
        spec = SMALL_WORKLOADS["DCT"]()
        config = epic_with_alus(n_alus)
        compilation = compile_minic_to_epic(spec.source, config)
        return spec, config, compilation

    def test_second_processor_starts_warm(self):
        cache = TraceCache()
        spec, config, compilation = self.make(cache)
        first = EpicProcessor(config, compilation.program,
                              mem_words=spec.mem_words,
                              trace_hotness=2, trace_cache=cache)
        first_result = first.run(engine="trace")
        compiled = cache.stats()["compiles"]
        assert compiled > 0

        second = EpicProcessor(config, compilation.program,
                               mem_words=spec.mem_words,
                               trace_hotness=2, trace_cache=cache)
        # Pre-instantiation: every cached superblock is live before the
        # first cycle, without re-profiling up to the hotness threshold.
        assert second._trace_sim().traces_compiled == compiled
        assert cache.stats()["hits"] >= compiled
        second_result = second.run(engine="trace")
        assert second_result.cycles == first_result.cycles
        assert stats_fingerprint(first.stats) == \
            stats_fingerprint(second.stats)

        # A warm start shifts the observed branch profile (linked
        # traces expose new side-exit targets), so a few more entries
        # may go hot — but the set converges, and a processor built at
        # the fixpoint compiles nothing new.
        for _ in range(8):
            known = cache.stats()["traces"]
            EpicProcessor(config, compilation.program,
                          mem_words=spec.mem_words, trace_hotness=2,
                          trace_cache=cache).run(engine="trace")
            if cache.stats()["traces"] == known:
                break
        settled = cache.stats()["compiles"]
        final = EpicProcessor(config, compilation.program,
                              mem_words=spec.mem_words, trace_hotness=2,
                              trace_cache=cache)
        final_result = final.run(engine="trace")
        assert cache.stats()["compiles"] == settled
        assert final_result.cycles == first_result.cycles

    def test_cache_checks_program_identity(self):
        # The generated source inlines bundle shapes, so records are
        # only valid for the exact Program object they were built from;
        # a recompilation of the same source must start cold.
        cache = TraceCache()
        spec, config, compilation = self.make(cache)
        EpicProcessor(config, compilation.program,
                      mem_words=spec.mem_words,
                      trace_hotness=2, trace_cache=cache).run(engine="trace")
        assert cache.stats()["compiles"] > 0
        rebuilt = compile_minic_to_epic(spec.source, config)
        assert rebuilt.program is not compilation.program
        cold = EpicProcessor(config, rebuilt.program,
                             mem_words=spec.mem_words,
                             trace_hotness=2, trace_cache=cache)
        assert cold._trace_sim().traces_compiled == 0

    def test_cache_keyed_by_machine_config(self):
        cache = TraceCache()
        spec, config, compilation = self.make(cache)
        EpicProcessor(config, compilation.program,
                      mem_words=spec.mem_words,
                      trace_hotness=2, trace_cache=cache).run(engine="trace")
        other_config = epic_with_alus(3)
        other = compile_minic_to_epic(spec.source, other_config)
        cold = EpicProcessor(other_config, other.program,
                             mem_words=spec.mem_words,
                             trace_hotness=2, trace_cache=cache)
        assert cold._trace_sim().traces_compiled == 0


SIMPLE_LOOP = """
main:
  PBR b0, loop
  MOVI r4, 0
loop:
  ADD r4, r4, 1
  CMPP_LT p1, p2, r4, 30
  (p1) BR b0
  SW r4, r0, 20
  HALT
"""


class TestEngineDispatch:
    def test_trace_engine_recorded_and_used(self):
        config = epic_config()
        cpu = EpicProcessor(config, assemble(SIMPLE_LOOP, config),
                            mem_words=64, trace_hotness=2)
        reference = EpicProcessor(config, assemble(SIMPLE_LOOP, config),
                                  mem_words=64)
        assert cpu.run(engine="trace").cycles == \
            reference.run(engine="reference").cycles
        assert cpu.last_engine == "trace"
        assert reference.last_engine == "instrumented"
        assert cpu._tracesim.trace_count > 0

    def test_trace_refused_when_fast_path_is(self):
        config = epic_config()
        cpu = EpicProcessor(config, assemble(SIMPLE_LOOP, config),
                            mem_words=64, strict_nual=True)
        with pytest.raises(SimulationError, match="fast path requested"):
            cpu.run(engine="trace")

    def test_trace_refused_for_unspecialisable_program(self):
        # Same trick as the fast-path eligibility tests: dead code past
        # the branch names a GPR beyond the small register file.
        source = """
        main:
          PBR b0, end
          NOP
          BR b0
          ADD r60, r1, 1
        end:
          HALT
        """
        big = epic_config()
        program = assemble(source, big)
        small = big.with_changes(n_gprs=32)
        cpu = EpicProcessor(small, program, mem_words=64)
        with pytest.raises(SimulationError, match="cannot be specialised"):
            cpu.run(max_cycles=100, engine="trace")
        assert cpu.fastpath_reject_reason  # the refusal names its cause

    def test_unknown_engine_rejected(self):
        config = epic_config()
        cpu = EpicProcessor(config, assemble("HALT", config), mem_words=64)
        with pytest.raises(SimulationError, match="unknown engine"):
            cpu.run(engine="warp")

    def test_engine_and_legacy_fast_flag_conflict(self):
        config = epic_config()
        cpu = EpicProcessor(config, assemble("HALT", config), mem_words=64)
        with pytest.raises(SimulationError, match="not both"):
            cpu.run(engine="fast", fast=True)
