"""Datapath-width customisation (§3.3) at the ISA/simulator level.

The compiler targets the 32-bit datapath (MiniC's `int` is 32-bit);
narrower machines are programmed in assembly and priced by the FPGA
model — the same split the paper implies (width is a hardware knob).
"""

import pytest

from repro.asm import assemble
from repro.config import epic_config
from repro.core import EpicProcessor


def run(source, width, mem_words=128):
    config = epic_config(datapath_width=width)
    cpu = EpicProcessor(config, assemble(source, config),
                        mem_words=mem_words)
    cpu.run()
    return cpu


def test_16_bit_arithmetic_wraps():
    source = """
      MOVI r4, 0x7fff
      ADD r5, r4, 1
      NOP
      SHRA r6, r5, 15
      HALT
    """
    cpu = run(source, 16)
    assert cpu.gpr.read(5) == 0x8000
    assert cpu.gpr.read(6) == 0xFFFF  # arithmetic shift of the sign bit


def test_8_bit_datapath():
    source = """
      MOVI r4, 200
      ADD r5, r4, 100
      HALT
    """
    cpu = run(source, 8)
    assert cpu.gpr.read(5) == (300 & 0xFF)


def test_memory_width_follows_datapath():
    source = """
    .data
    v: .space 1
    .text
      MOVI r4, 0x1ffff
      NOP
      SW r4, r0, v
      HALT
    """
    cpu = run(source, 16)
    assert cpu.memory.read(0) == 0xFFFF


def test_shift_amounts_wrap_at_width():
    source = """
      MOVI r4, 1
      SHL r5, r4, 17
      HALT
    """
    cpu = run(source, 16)
    # A 16-bit shifter uses the low 4 bits of the amount: 17 & 15 = 1.
    assert cpu.gpr.read(5) == 2


def test_64_bit_datapath():
    source = """
      MOVI r4, 0x40000000
      ADD r5, r4, r4
      NOP
      MUL r6, r5, 2
      HALT
    """
    cpu = run(source, 64)
    assert cpu.gpr.read(5) == 0x80000000      # no 32-bit wrap
    assert cpu.gpr.read(6) == 0x100000000
