"""Parameterised pipeline depth (paper §6 future work, implemented)."""

import pytest

from repro.asm import assemble
from repro.backend import compile_minic_to_epic
from repro.config import epic_config
from repro.core import EpicProcessor
from repro.errors import ConfigError
from repro.fpga import estimate_clock_mhz, estimate_resources
from tests.helpers import run_ir


def test_penalty_follows_depth():
    assert epic_config().taken_branch_penalty == 1
    assert epic_config(pipeline_stages=3).taken_branch_penalty == 2
    assert epic_config(pipeline_stages=4).taken_branch_penalty == 3


def test_depth_bounds():
    with pytest.raises(ConfigError):
        epic_config(pipeline_stages=1)
    with pytest.raises(ConfigError):
        epic_config(pipeline_stages=5)


def test_taken_branch_costs_scale_with_depth():
    source = """
      PBR b0, out
      BR b0
    out:
      HALT
    """
    cycles = {}
    for stages in (2, 3, 4):
        config = epic_config(pipeline_stages=stages)
        cpu = EpicProcessor(config, assemble(source, config), mem_words=128)
        cycles[stages] = cpu.run().cycles
    assert cycles[3] == cycles[2] + 1
    assert cycles[4] == cycles[2] + 2


def test_untaken_branches_free_at_any_depth():
    source = """
      PBR b0, away
      CMPP_EQ p1, p0, r0, 1
      BRCT b0, p1
      HALT
    away:
      HALT
    """
    for stages in (2, 3, 4):
        config = epic_config(pipeline_stages=stages)
        cpu = EpicProcessor(config, assemble(source, config), mem_words=128)
        assert cpu.run().cycles == 4


def test_compiled_code_correct_at_any_depth():
    source = """
    int main() {
      int i; int s;
      s = 0;
      for (i = 0; i < 20; i += 1) {
        if (i % 3 == 0) { s += i; } else { s -= 1; }
      }
      return s;
    }
    """
    golden = run_ir(source)
    for stages in (2, 3, 4):
        config = epic_config(pipeline_stages=stages)
        compilation = compile_minic_to_epic(source, config)
        cpu = EpicProcessor(config, compilation.program, mem_words=4096,
                            strict_nual=True)
        cpu.run()
        assert cpu.gpr.read(2) == golden.return_value


def test_deeper_pipeline_raises_clock_with_diminishing_returns():
    two = estimate_clock_mhz(epic_config())
    three = estimate_clock_mhz(epic_config(pipeline_stages=3))
    four = estimate_clock_mhz(epic_config(pipeline_stages=4))
    assert two < three < four
    assert (three - two) > (four - three)


def test_deeper_pipeline_costs_slices():
    base = estimate_resources(epic_config()).slices
    deeper = estimate_resources(epic_config(pipeline_stages=3)).slices
    assert deeper > base


def test_branch_heavy_code_prefers_shallow_pipeline():
    """The §6 trade-off in action: on branch-dense code the extra
    bubbles can eat the clock gain."""
    source = """
    int main() {
      int i; int s;
      s = 0;
      for (i = 0; i < 200; i += 1) { s += i & 7; }
      return s;
    }
    """
    times = {}
    for stages in (2, 4):
        config = epic_config(pipeline_stages=stages)
        compilation = compile_minic_to_epic(source, config)
        cpu = EpicProcessor(config, compilation.program, mem_words=2048)
        cycles = cpu.run().cycles
        times[stages] = cycles / estimate_clock_mhz(config)
    # With one taken branch per tiny iteration, the deeper pipeline's
    # clock advantage is mostly (or entirely) eaten by bubbles.
    assert times[4] > times[2] * 0.85
