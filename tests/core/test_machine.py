"""Cycle-accurate core: timing semantics the compiler relies on."""

import pytest

from repro.asm import assemble
from repro.config import epic_config
from repro.core import EpicProcessor
from repro.errors import SimulationError


def run(source, config=None, mem_words=256, max_cycles=10_000):
    config = config or epic_config()
    cpu = EpicProcessor(config, assemble(source, config),
                        mem_words=mem_words)
    result = cpu.run(max_cycles=max_cycles)
    return cpu, result


class TestBasics:
    def test_halt_only_program_takes_one_cycle(self):
        _, result = run("HALT")
        assert result.cycles == 1

    def test_single_cycle_per_bundle(self):
        source = """
          MOVI r4, 1
          MOVI r5, 2
          ADD r6, r4, r5
          HALT
        """
        cpu, result = run(source)
        assert result.cycles == 4
        assert cpu.gpr.read(6) == 3

    def test_r0_is_hardwired_zero(self):
        source = """
          MOVI r0, 123
          ADD r4, r0, 7
          HALT
        """
        cpu, _ = run(source)
        assert cpu.gpr.read(0) == 0
        assert cpu.gpr.read(4) == 7

    def test_negative_values_wrap_on_datapath(self):
        source = """
          MOVI r4, -1
          ADD r5, r4, 1
          NOP
          HALT
        """
        cpu, _ = run(source)
        assert cpu.gpr.read(4) == 0xFFFFFFFF
        assert cpu.gpr.read(5) == 0

    def test_falling_off_the_end_raises(self):
        with pytest.raises(SimulationError):
            run("NOP")

    def test_cycle_budget_enforced(self):
        source = """
          PBR b0, main
        main:
          BR b0
        """
        with pytest.raises(SimulationError):
            run(source, max_cycles=100)


class TestLatencySemantics:
    """HPL-PD/NUAL: an op with latency L is visible L cycles later; an
    early consumer reads the OLD value (no interlocks)."""

    def test_alu_result_visible_next_cycle(self):
        source = """
          MOVI r4, 5
          ADD r5, r4, 1
          HALT
        """
        cpu, _ = run(source)
        assert cpu.gpr.read(5) == 6

    def test_same_bundle_reads_old_value(self):
        source = """
          MOVI r4, 5
        { ADD r4, r4, 10 ; ADD r5, r4, 1 }
          HALT
        """
        cpu, _ = run(source)
        # Both ops read the pre-cycle value of r4 (VLIW semantics).
        assert cpu.gpr.read(4) == 15
        assert cpu.gpr.read(5) == 6

    def test_load_latency_two_cycles(self):
        config = epic_config()
        assert config.latency["load"] == 2
        source = """
        .data
        v: .word 99
        .text
          MOVI r4, 1
          LW r5, r0, v
          ADD r6, r5, 0     ;; too early: sees the OLD r5 (= 0)
          ADD r7, r5, 0     ;; exactly 2 cycles later: sees 99
          HALT
        """
        cpu, _ = run(source)
        assert cpu.gpr.read(6) == 0
        assert cpu.gpr.read(7) == 99

    def test_multiply_latency_three_cycles(self):
        source = """
          MOVI r4, 6
          MUL r5, r4, 7
          ADD r6, r5, 0   ;; +1: stale
          ADD r7, r5, 0   ;; +2: stale
          ADD r8, r5, 0   ;; +3: fresh
          HALT
        """
        cpu, _ = run(source)
        assert cpu.gpr.read(6) == 0
        assert cpu.gpr.read(7) == 0
        assert cpu.gpr.read(8) == 42

    def test_outstanding_writes_drain_at_halt(self):
        source = """
          MOVI r4, 6
          MUL r5, r4, 7
          HALT
        """
        cpu, _ = run(source)
        assert cpu.gpr.read(5) == 42


class TestBranches:
    def test_taken_branch_costs_one_bubble(self):
        straight = """
          MOVI r4, 1
          NOP
          NOP
          HALT
        """
        jumped = """
          PBR b0, over
          BR b0
        over:
          HALT
        """
        _, straight_result = run(straight)
        _, jumped_result = run(jumped)
        # 2 bundles + 1 bubble + HALT = 4, same as 4 straight bundles.
        assert jumped_result.cycles == 4
        assert straight_result.cycles == 4

    def test_untaken_branch_has_no_penalty(self):
        source = """
          PBR b0, away
          CMPP_EQ p1, p0, r0, 1
          BRCT b0, p1
          HALT
        away:
          MOVI r4, 1
          HALT
        """
        cpu, result = run(source)
        assert cpu.gpr.read(4) == 0
        assert result.cycles == 4

    def test_brcf_branches_on_false(self):
        source = """
          PBR b0, away
          CMPP_EQ p1, p0, r0, 1
          BRCF b0, p1
          HALT
        away:
          MOVI r4, 77
          HALT
        """
        cpu, _ = run(source)
        assert cpu.gpr.read(4) == 77

    def test_brl_records_return_address(self):
        source = """
          PBR b0, sub
          BRL r3, b0
          HALT
        sub:
          MOVGBP b1, r3
          BR b1
        """
        cpu, result = run(source)
        assert result.halted
        assert cpu.stats.branches_taken == 2

    def test_branch_statistics(self):
        source = """
          PBR b0, out
          BR b0
        out:
          HALT
        """
        cpu, _ = run(source)
        assert cpu.stats.branches == 1
        assert cpu.stats.branches_taken == 1
        assert cpu.stats.branch_bubble_cycles == 1


class TestPredication:
    def test_false_guard_squashes_write(self):
        source = """
          MOVI r4, 1
          CMPP_EQ p1, p2, r0, 1
          NOP
          (p1) MOVI r4, 100
          (p2) MOVI r5, 200
          HALT
        """
        cpu, _ = run(source)
        assert cpu.gpr.read(4) == 1      # squashed
        assert cpu.gpr.read(5) == 200    # complement fired
        assert cpu.stats.ops_squashed == 1

    def test_squashed_store_does_not_touch_memory(self):
        source = """
        .data
        v: .word 42
        .text
          CMPP_EQ p1, p2, r0, 1
          MOVI r4, 9
          (p1) SW r4, r0, v
          HALT
        """
        cpu, _ = run(source)
        assert cpu.memory.read(0) == 42

    def test_p0_guard_cannot_be_disabled(self):
        source = """
          CMPP_EQ p1, p0, r0, 1   ;; writes "false" to p0: ignored
          NOP
          (p0) MOVI r4, 5
          HALT
        """
        cpu, _ = run(source)
        assert cpu.gpr.read(4) == 5

    def test_cmpp_writes_complement_pair(self):
        source = """
          CMPP_LT p1, p2, r0, 1
          NOP
          HALT
        """
        cpu, _ = run(source)
        assert cpu.pred.read(1) == 1
        assert cpu.pred.read(2) == 0


class TestMemory:
    def test_store_then_load(self):
        source = """
        .data
        buf: .space 4
        .text
          MOVI r4, 1234
          SW r4, r0, buf
          LW r5, r0, buf
          NOP
          HALT
        """
        cpu, _ = run(source)
        assert cpu.gpr.read(5) == 1234

    def test_load_out_of_range_faults(self):
        source = """
          MOVI r4, 9999999
          NOP
          LW r5, r4, 0
          HALT
        """
        with pytest.raises(SimulationError):
            run(source, mem_words=64)

    def test_speculative_load_dismisses_fault(self):
        source = """
          MOVI r4, 9999999
          NOP
          LWS r5, r4, 0
          MOVI r6, 1
          HALT
        """
        cpu, result = run(source, mem_words=64)
        assert result.halted
        assert cpu.gpr.read(5) == 0
        assert cpu.gpr.read(6) == 1

    def test_negative_address_faults(self):
        source = """
          MOVI r4, -5
          NOP
          SW r4, r4, 0
          HALT
        """
        with pytest.raises(SimulationError):
            run(source)

    def test_stack_pointer_initialised_to_top(self):
        cpu, _ = run("HALT", mem_words=512)
        assert cpu.gpr.read(1) == 512


class TestStructuralChecks:
    def test_too_many_alu_ops_rejected(self):
        config = epic_config(n_alus=1)
        source = "{ ADD r4, r0, 1 ; ADD r5, r0, 2 }\nHALT"
        with pytest.raises(SimulationError):
            run(source, config=config)

    def test_two_memory_ops_rejected(self):
        source = """
        .data
        b: .space 2
        .text
        { LW r4, r0, b ; SW r5, r0, b }
        HALT
        """
        with pytest.raises(SimulationError):
            run(source)

    def test_two_branch_unit_ops_rejected(self):
        source = "{ PBR b0, main ; PBR b1, main }\nmain: HALT"
        with pytest.raises(SimulationError):
            run(source)

    def test_full_legal_bundle_accepted(self):
        source = """
        .data
        v: .word 7
        .text
        { ADD r4, r0, 1 ; LW r5, r0, v ; CMPP_EQ p1, p2, r0, 0 ; PBR b0, end }
        end:
          HALT
        """
        cpu, result = run(source)
        assert result.halted


class TestRegfilePorts:
    """§3.2: 8 register-file operations per cycle, mitigated by
    forwarding."""

    def _wide_bundle_source(self):
        # A bundle reading 8 DISTINCT cold registers while the previous
        # bundle's 4 writes land: 12 port ops > 8 -> one stall cycle.
        # (In the 2-stage pipeline, write-back of bundle N-1 overlaps the
        # operand reads of bundle N, §3.2.)
        setup = "\n".join(f"MOVI r{i}, {i}" for i in range(20, 28))
        return f"""
          {setup}
          NOP
          NOP
        {{ MOVI r40, 1 ; MOVI r41, 1 ; MOVI r42, 1 ; MOVI r43, 1 }}
        {{ ADD r30, r20, r21 ; SUB r31, r22, r23 ; XOR r32, r24, r25 ; OR r33, r26, r27 }}
          HALT
        """

    def test_port_pressure_stalls(self):
        cpu, _ = run(self._wide_bundle_source())
        assert cpu.stats.port_stall_cycles == 1

    def test_port_limit_can_be_disabled(self):
        config = epic_config(model_port_limit=False)
        cpu, _ = run(self._wide_bundle_source(), config=config)
        assert cpu.stats.port_stall_cycles == 0

    def test_reads_alone_fit_the_budget(self):
        # 8 distinct cold reads with no concurrent write-backs: exactly
        # at the 8-op budget, no stall.
        setup = "\n".join(f"MOVI r{i}, {i}" for i in range(20, 28))
        source = f"""
          {setup}
          NOP
          NOP
        {{ ADD r30, r20, r21 ; SUB r31, r22, r23 ; XOR r32, r24, r25 ; OR r33, r26, r27 }}
          HALT
        """
        cpu, _ = run(source)
        assert cpu.stats.port_stall_cycles == 0

    def _mixed_forwarding_source(self):
        # Bundle B reads 4 just-produced values (forwardable) plus 4
        # cold ones, while A's 4 writes land: forwarding on -> 8 port
        # ops (fits); forwarding off -> 12 (stalls).
        setup = "\n".join(f"MOVI r{i}, {i}" for i in range(24, 28))
        return f"""
          {setup}
          NOP
          NOP
        {{ MOVI r20, 1 ; MOVI r21, 2 ; MOVI r22, 3 ; MOVI r23, 4 }}
        {{ ADD r30, r20, r24 ; SUB r31, r21, r25 ; XOR r32, r22, r26 ; OR r33, r23, r27 }}
          HALT
        """

    def test_forwarding_reduces_port_pressure(self):
        cpu, _ = run(self._mixed_forwarding_source())
        assert cpu.stats.port_stall_cycles == 0
        assert cpu.stats.regfile_reads_forwarded == 4

    def test_disabling_forwarding_restores_pressure(self):
        config = epic_config(forwarding=False)
        cpu, _ = run(self._mixed_forwarding_source(), config=config)
        assert cpu.stats.port_stall_cycles == 1


class TestFetchBandwidth:
    def test_shared_bandwidth_stalls_on_memory_ops(self):
        source = """
        .data
        v: .word 1
        .text
          LW r4, r0, v
          NOP
          HALT
        """
        base_cpu, base = run(source)
        shared = epic_config(lsu_shares_fetch_bandwidth=True)
        shared_cpu, with_sharing = run(source, config=shared)
        assert with_sharing.cycles == base.cycles + 1
        assert shared_cpu.stats.fetch_stall_cycles == 1


class TestArithmeticTraps:
    def test_divide_by_zero_faults(self):
        source = """
          MOVI r4, 10
          NOP
          DIV r5, r4, r0
          HALT
        """
        with pytest.raises(SimulationError):
            run(source)
