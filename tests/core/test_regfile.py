"""Register-file unit behaviour."""

import pytest

from repro.core import BtrFile, GprFile, PredFile
from repro.errors import SimulationError


class TestGprFile:
    def test_r0_reads_zero_and_ignores_writes(self):
        gprs = GprFile(16, 32)
        gprs.write(0, 0xDEAD)
        assert gprs.read(0) == 0

    def test_values_masked_to_width(self):
        gprs = GprFile(16, 16)
        gprs.write(3, 0x12345)
        assert gprs.read(3) == 0x2345

    def test_out_of_range_read(self):
        with pytest.raises(SimulationError):
            GprFile(16, 32).read(16)

    def test_out_of_range_write(self):
        with pytest.raises(SimulationError):
            GprFile(16, 32).write(-1, 0)

    def test_dump_is_a_copy(self):
        gprs = GprFile(4, 32)
        snapshot = gprs.dump()
        snapshot[2] = 99
        assert gprs.read(2) == 0


class TestPredFile:
    def test_p0_reads_true_and_ignores_writes(self):
        preds = PredFile(32)
        preds.write(0, 0)
        assert preds.read(0) == 1

    def test_values_clamp_to_one_bit(self):
        preds = PredFile(8)
        preds.write(3, 42)
        assert preds.read(3) == 1
        preds.write(3, 0)
        assert preds.read(3) == 0

    def test_out_of_range(self):
        with pytest.raises(SimulationError):
            PredFile(8).read(8)


class TestBtrFile:
    def test_round_trip(self):
        btrs = BtrFile(16)
        btrs.write(5, 1234)
        assert btrs.read(5) == 1234

    def test_negative_target_rejected(self):
        with pytest.raises(SimulationError):
            BtrFile(4).write(1, -1)

    def test_out_of_range(self):
        with pytest.raises(SimulationError):
            BtrFile(4).read(4)
