"""Design-space exploration: sweeps and Pareto extraction."""

import pytest

from repro.config import epic_with_alus, sweep_alus
from repro.explore import evaluate_config, pareto_frontier, sweep_configs
from repro.explore.sweep import DesignPoint
from repro.workloads import dct_workload


@pytest.fixture(scope="module")
def points():
    spec = dct_workload(8, 8)
    return sweep_configs(spec, sweep_alus())


def test_sweep_produces_one_point_per_config(points):
    assert len(points) == 4
    assert [p.config.n_alus for p in points] == [1, 2, 3, 4]


def test_points_have_cycles_and_area(points):
    for point in points:
        assert point.cycles > 0
        assert point.slices > 0
        assert point.time_seconds > 0
        assert point.area_delay > 0
        assert "slices" in str(point)


def test_area_grows_and_time_shrinks_with_alus(points):
    assert points[-1].slices > points[0].slices
    assert points[-1].cycles < points[0].cycles


def test_pareto_frontier_nondominated(points):
    frontier = pareto_frontier(points)
    assert frontier
    for candidate in frontier:
        for other in points:
            dominates = (
                other.time_seconds <= candidate.time_seconds
                and other.slices <= candidate.slices
                and (other.time_seconds < candidate.time_seconds
                     or other.slices < candidate.slices)
            )
            assert not dominates


def test_pareto_frontier_sorted_by_first_objective(points):
    frontier = pareto_frontier(points)
    times = [p.time_seconds for p in frontier]
    assert times == sorted(times)


def test_pareto_with_custom_objectives(points):
    frontier = pareto_frontier(
        points,
        objectives=(lambda p: p.area_delay, lambda p: float(p.block_rams)),
    )
    assert frontier


def test_evaluate_single_config():
    spec = dct_workload(8, 8)
    point = evaluate_config(spec, epic_with_alus(2))
    assert isinstance(point, DesignPoint)
    assert point.config.n_alus == 2


def test_dominated_point_is_excluded():
    base = epic_with_alus(1)
    good = DesignPoint(config=base, cycles=100, slices=100,
                       block_rams=1, clock_mhz=40.0)
    bad = DesignPoint(config=base, cycles=200, slices=200,
                      block_rams=1, clock_mhz=40.0)
    frontier = pareto_frontier([good, bad])
    assert frontier == [good]
