"""Design-space exploration: sweeps and Pareto extraction."""

import pytest

from repro.config import epic_with_alus, sweep_alus
from repro.explore import evaluate_config, pareto_frontier, sweep_configs
from repro.explore.sweep import DesignPoint
from repro.workloads import dct_workload


@pytest.fixture(scope="module")
def points():
    spec = dct_workload(8, 8)
    return sweep_configs(spec, sweep_alus())


def test_sweep_produces_one_point_per_config(points):
    assert len(points) == 4
    assert [p.config.n_alus for p in points] == [1, 2, 3, 4]


def test_points_have_cycles_and_area(points):
    for point in points:
        assert point.cycles > 0
        assert point.slices > 0
        assert point.time_seconds > 0
        assert point.area_delay > 0
        assert "slices" in str(point)


def test_area_grows_and_time_shrinks_with_alus(points):
    assert points[-1].slices > points[0].slices
    assert points[-1].cycles < points[0].cycles


def test_pareto_frontier_nondominated(points):
    frontier = pareto_frontier(points)
    assert frontier
    for candidate in frontier:
        for other in points:
            dominates = (
                other.time_seconds <= candidate.time_seconds
                and other.slices <= candidate.slices
                and (other.time_seconds < candidate.time_seconds
                     or other.slices < candidate.slices)
            )
            assert not dominates


def test_pareto_frontier_sorted_by_first_objective(points):
    frontier = pareto_frontier(points)
    times = [p.time_seconds for p in frontier]
    assert times == sorted(times)


def test_pareto_with_custom_objectives(points):
    frontier = pareto_frontier(
        points,
        objectives=(lambda p: p.area_delay, lambda p: float(p.block_rams)),
    )
    assert frontier


def test_evaluate_single_config():
    spec = dct_workload(8, 8)
    point = evaluate_config(spec, epic_with_alus(2))
    assert isinstance(point, DesignPoint)
    assert point.config.n_alus == 2


def test_dominated_point_is_excluded():
    base = epic_with_alus(1)
    good = DesignPoint(config=base, cycles=100, slices=100,
                       block_rams=1, clock_mhz=40.0)
    bad = DesignPoint(config=base, cycles=200, slices=200,
                      block_rams=1, clock_mhz=40.0)
    frontier = pareto_frontier([good, bad])
    assert frontier == [good]


class TestParetoEdgeCases:
    """Degenerate inputs the O(n^2) scan must not mishandle."""

    @staticmethod
    def point(cycles, slices):
        return DesignPoint(config=epic_with_alus(1), cycles=cycles,
                           slices=slices, block_rams=1, clock_mhz=40.0)

    def test_empty_input_empty_frontier(self):
        assert pareto_frontier([]) == []

    def test_single_point_survives(self):
        only = self.point(100, 100)
        assert pareto_frontier([only]) == [only]

    def test_duplicates_never_dominate_each_other(self):
        twin_a = self.point(100, 100)
        twin_b = self.point(100, 100)
        frontier = pareto_frontier([twin_a, twin_b])
        assert len(frontier) == 2

    def test_tie_on_one_axis_keeps_both_nondominated_points(self):
        # Equal area, different speed: the slower one IS dominated.
        # Equal speed, different area: likewise.  But a point that ties
        # on one axis and wins on the other must survive.
        fast_big = self.point(100, 200)
        slow_small = self.point(200, 100)
        tied_fast = self.point(100, 150)  # ties fast_big on cycles
        frontier = pareto_frontier([fast_big, slow_small, tied_fast])
        assert slow_small in frontier
        assert tied_fast in frontier
        assert fast_big not in frontier  # tied on cycles, worse area

    def test_all_identical_all_survive(self):
        clones = [self.point(100, 100) for _ in range(4)]
        assert len(pareto_frontier(clones)) == 4

    def test_objectives_evaluated_exactly_once_per_point(self):
        calls = []
        points = [self.point(100 + n, 100 - n) for n in range(5)]

        def counting(point):
            calls.append(point)
            return float(point.cycles)

        pareto_frontier(points, objectives=(counting,
                                            lambda p: float(p.slices)))
        assert len(calls) == len(points)


class TestParetoArchive:
    """The incremental archive behind pareto_frontier (and the tuner)."""

    @staticmethod
    def point(cycles, slices):
        return DesignPoint(config=epic_with_alus(1), cycles=cycles,
                           slices=slices, block_rams=1, clock_mhz=40.0)

    def test_incremental_equals_batch(self):
        from repro.explore import ParetoArchive

        points = [self.point(100 + 7 * n % 50, 200 - 5 * n % 60)
                  for n in range(20)]
        archive = ParetoArchive()
        for point in points:
            archive.insert(point)
        assert archive.frontier() == pareto_frontier(points)

    def test_insert_reports_acceptance(self):
        from repro.explore import ParetoArchive

        archive = ParetoArchive(
            objectives=(lambda p: float(p.cycles),
                        lambda p: float(p.slices)))
        assert archive.insert(self.point(100, 100)) is True
        assert archive.insert(self.point(200, 200)) is False
        assert archive.inserted == 1
        assert archive.rejected == 1

    def test_eviction_on_a_better_late_arrival(self):
        from repro.explore import ParetoArchive

        archive = ParetoArchive(
            objectives=(lambda p: float(p.cycles),
                        lambda p: float(p.slices)))
        weak = self.point(200, 200)
        strong = self.point(100, 100)
        archive.insert(weak)
        archive.insert(strong)
        assert archive.frontier() == [strong]
        assert archive.evicted == 1

    def test_arbitrary_point_types(self):
        from repro.explore import ParetoArchive

        archive = ParetoArchive(objectives=(lambda t: t[0],
                                            lambda t: t[1]))
        for tup in [(3.0, 1.0), (1.0, 3.0), (2.0, 2.0), (4.0, 4.0)]:
            archive.insert(tup)
        assert archive.frontier() == [(1.0, 3.0), (2.0, 2.0), (3.0, 1.0)]

    def test_precomputed_values_skip_objectives(self):
        from repro.explore import ParetoArchive

        def exploding(_):
            raise AssertionError("objectives must not be called")

        archive = ParetoArchive(objectives=(exploding,))
        archive.insert("anything", values=(1.0,))
        assert archive.frontier() == ["anything"]

    def test_empty_objectives_rejected(self):
        from repro.explore import ParetoArchive

        with pytest.raises(ValueError):
            ParetoArchive(objectives=())


class TestSweepProgress:
    """progress reporting is uniform across serial and serve paths."""

    def test_serial_progress_format(self):
        from repro.config import sweep_alus

        spec = dct_workload(8, 8)
        lines = []
        sweep_configs(spec, list(sweep_alus())[:2],
                      progress=lines.append)
        assert len(lines) == 2
        assert lines[0].startswith("[1/2] ")
        assert lines[1].startswith("[2/2] ")

    def test_serve_path_progress_format(self, tmp_path):
        from repro.config import sweep_alus
        from repro.serve import ResultCache

        spec = dct_workload(8, 8)
        serial_lines, served_lines = [], []
        configs = list(sweep_alus())[:2]
        sweep_configs(spec, configs, progress=serial_lines.append)
        sweep_configs(spec, configs, progress=served_lines.append,
                      cache=ResultCache(str(tmp_path / "cache")))
        assert served_lines == serial_lines
