"""Automatic custom-instruction generation (§6 future work)."""

import pytest

from repro.backend import compile_ir_to_epic
from repro.config import epic_config
from repro.core import EpicProcessor
from repro.explore import (
    apply_fusions,
    discover_and_apply,
    find_fusion_candidates,
    profile_module,
)
from repro.ir import run_module
from repro.lang import compile_minic

KERNEL = """
int data[32];
int out[32];
int main() {
  int i; int x; int acc;
  acc = 0;
  for (i = 0; i < 32; i += 1) { data[i] = i * 2654435761; }
  for (i = 0; i < 32; i += 1) {
    x = data[i];
    out[i] = ((x >>> 7) ^ (x << 3)) + ((x & 255) * 5);
    acc ^= out[i];
  }
  return acc;
}
"""


@pytest.fixture()
def module():
    return compile_minic(KERNEL)


class TestProfiling:
    def test_profile_counts_hot_block(self, module):
        profile = profile_module(module)
        assert profile
        assert max(profile.values()) >= 32

    def test_profile_keys_are_locations(self, module):
        profile = profile_module(module)
        for (function, block, index) in profile:
            assert function in module.functions
            assert isinstance(index, int)


class TestDiscovery:
    def test_finds_fusible_pairs(self, module):
        candidates = find_fusion_candidates(module)
        assert candidates
        # Ranked by dynamic payoff.
        counts = [c.dynamic_count for c in candidates]
        assert counts == sorted(counts, reverse=True)

    def test_patterns_fit_two_sources(self, module):
        for candidate in find_fusion_candidates(module):
            assert candidate.pattern.n_sources <= 2

    def test_constants_are_baked(self, module):
        mnemonics = [
            c.pattern.mnemonic for c in find_fusion_candidates(module)
        ]
        assert any("K" in m for m in mnemonics)

    def test_pattern_semantics_match_composition(self, module):
        from repro.isa.semantics import ALU_SEMANTICS

        for candidate in find_fusion_candidates(module)[:4]:
            pattern = candidate.pattern
            value = pattern.evaluate(0x1234ABCD, 0x0F0F0F0F, 0xFFFFFFFF)
            assert 0 <= value <= 0xFFFFFFFF

    def test_min_dynamic_count_filters(self, module):
        all_candidates = find_fusion_candidates(module, min_dynamic_count=1)
        hot_only = find_fusion_candidates(module, min_dynamic_count=1000)
        assert len(hot_only) <= len(all_candidates)


class TestApplication:
    def test_rewrite_preserves_semantics(self, module):
        golden = run_module(compile_minic(KERNEL))
        candidates = find_fusion_candidates(module)[:2]
        rewrites = apply_fusions(module, candidates)
        assert rewrites > 0
        assert run_module(module).result == golden.result

    def test_full_loop_produces_working_hardware(self):
        golden = run_module(compile_minic(KERNEL))
        module = compile_minic(KERNEL)
        specs = discover_and_apply(module, top_k=2)
        assert specs

        config = epic_config(custom_ops=tuple(specs))
        compilation = compile_ir_to_epic(module, config)
        assert any(spec.mnemonic in compilation.assembly for spec in specs)
        cpu = EpicProcessor(config, compilation.program, mem_words=4096,
                            strict_nual=True)
        cpu.run()
        assert cpu.gpr.read(2) == (golden.result & 0xFFFFFFFF)

    def test_fused_configuration_saves_cycles(self):
        module = compile_minic(KERNEL)
        specs = discover_and_apply(module, top_k=3)
        custom_config = epic_config(custom_ops=tuple(specs))
        custom = compile_ir_to_epic(module, custom_config)
        plain = compile_ir_to_epic(compile_minic(KERNEL), epic_config())

        custom_cycles = EpicProcessor(
            custom_config, custom.program, mem_words=4096
        ).run().cycles
        plain_cycles = EpicProcessor(
            epic_config(), plain.program, mem_words=4096
        ).run().cycles
        assert custom_cycles < plain_cycles

    def test_rewritten_module_runs_without_the_custom_ops(self):
        """The fallback keeps the program portable (e.g. baseline)."""
        golden = run_module(compile_minic(KERNEL))
        module = compile_minic(KERNEL)
        discover_and_apply(module, top_k=2)
        plain_config = epic_config()
        compilation = compile_ir_to_epic(module, plain_config)
        cpu = EpicProcessor(plain_config, compilation.program,
                            mem_words=4096)
        cpu.run()
        assert cpu.gpr.read(2) == (golden.result & 0xFFFFFFFF)

    def test_no_candidates_returns_empty(self):
        module = compile_minic("int main() { return 1; }")
        assert discover_and_apply(module) == []
