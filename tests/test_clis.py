"""Command-line entry points."""

import pytest

from repro.asm.cli import main as asm_main
from repro.harness.cli import main as run_main
from repro.lang.cli import main as cc_main


@pytest.fixture()
def minic_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text("""
    int out[2];
    int main() {
      out[0] = 6 * 7;
      out[1] = out[0] + 1;
      return out[0];
    }
    """)
    return str(path)


@pytest.fixture()
def asm_file(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text("""
    main:
      MOVI r4, 42
      HALT
    """)
    return str(path)


class TestEpicCc:
    def test_compile_and_run(self, minic_file, capsys):
        assert cc_main([minic_file, "--run"]) == 0
        out = capsys.readouterr().out
        assert "cycles:" in out
        assert "return: 42" in out

    def test_emit_asm(self, minic_file, capsys):
        assert cc_main([minic_file, "-S"]) == 0
        out = capsys.readouterr().out
        assert "_start:" in out
        assert "HALT" in out

    def test_custom_configuration(self, minic_file, capsys):
        assert cc_main([minic_file, "--alus", "2", "--issue", "2",
                        "--run"]) == 0

    def test_bad_source_reports_error(self, tmp_path, capsys):
        path = tmp_path / "bad.c"
        path.write_text("int main( { }")
        assert cc_main([str(path)]) == 1
        assert "epic-cc:" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert cc_main(["/nonexistent.c"]) == 1


class TestEpicAsm:
    def test_assemble(self, asm_file, capsys):
        assert asm_main([asm_file, "--listing"]) == 0
        out = capsys.readouterr().out
        assert "bundles" in out
        assert "MOVI r4, 42" in out

    def test_binary_output(self, asm_file, tmp_path):
        out_path = tmp_path / "prog.bin"
        assert asm_main([asm_file, "-o", str(out_path)]) == 0
        blob = out_path.read_bytes()
        assert len(blob) % 8 == 0 and blob

    def test_bad_assembly(self, tmp_path, capsys):
        path = tmp_path / "bad.s"
        path.write_text("FROB r1, r2")
        assert asm_main([str(path)]) == 1
        assert "epic-asm:" in capsys.readouterr().err


class TestEpicRun:
    def test_resources_only(self, capsys):
        assert run_main(["--resources"]) == 0
        out = capsys.readouterr().out
        assert "4181" in out

    def test_quick_single_benchmark(self, capsys):
        assert run_main(["--quick", "--bench", "Dijkstra",
                         "--alus", "1", "4"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Dijkstra" in out
        assert "scoreboard" in out

    def test_json_output(self, capsys):
        import json

        assert run_main(["--quick", "--bench", "Dijkstra",
                         "--alus", "4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["table1_cycles"]["SA-110"]["Dijkstra"] > 0
        assert payload["resources"][0]["slices"] > 0
        assert any(claim["holds"] is not None for claim in payload["claims"])
