"""Machine description: resources, latencies, config coupling."""

import pytest

from repro.config import AluFeature, epic_config, epic_with_alus
from repro.errors import EncodingError
from repro.isa import CustomOpSpec, FuClass
from repro.mdes import Mdes, emit_hmdes, parse_hmdes


def test_resources_follow_configuration():
    mdes = Mdes(epic_with_alus(3, issue_width=2))
    assert mdes.resource_count(FuClass.ALU) == 3
    assert mdes.resource_count(FuClass.LSU) == 1
    assert mdes.resource_count(FuClass.CMPU) == 1
    assert mdes.resource_count(FuClass.BRU) == 1
    assert mdes.issue_width == 2


def test_latencies_follow_configuration():
    config = epic_config().with_latency("load", 4)
    mdes = Mdes(config)
    assert mdes.latency_of_mnemonic("LW") == 4
    assert mdes.latency_of_mnemonic("ADD") == 1
    assert mdes.latency_of_mnemonic("MUL") == 3
    assert mdes.latency_of_mnemonic("DIV") == 12


def test_custom_op_latency_comes_from_spec():
    spec = CustomOpSpec("TRIOP", func=lambda a, b, m: a, latency=5)
    mdes = Mdes(epic_config(custom_ops=(spec,)))
    assert mdes.latency_of_mnemonic("TRIOP") == 5


def test_supports_reflects_feature_gating():
    config = epic_config(
        alu_features=frozenset({AluFeature.MULTIPLY, AluFeature.SHIFT})
    )
    mdes = Mdes(config)
    assert mdes.supports("MUL")
    assert not mdes.supports("DIV")
    with pytest.raises(EncodingError):
        mdes.latency_of_mnemonic("DIV")


def test_max_latency():
    assert Mdes(epic_config()).max_latency == 12  # the divider


class TestHmdesText:
    def test_emit_contains_sections(self):
        text = emit_hmdes(Mdes(epic_config()))
        assert "SECTION Resource" in text
        assert "SECTION Operation" in text
        assert "alu (count 4)" in text

    def test_round_trip(self):
        mdes = Mdes(epic_with_alus(2))
        resources, operations = parse_hmdes(emit_hmdes(mdes))
        assert resources["alu"] == 2
        assert resources["issue"] == 4
        assert operations["ADD"]["latency"] == 1
        assert operations["LW"]["class"] == "lsu"
        assert len(operations) == len(mdes.table)

    def test_parse_rejects_garbage(self):
        from repro.errors import MdesError

        with pytest.raises(MdesError):
            parse_hmdes("SECTION Resource { }")

    def test_parse_rejects_malformed_entry(self):
        from repro.errors import MdesError

        with pytest.raises(MdesError):
            parse_hmdes(
                "SECTION Resource { alu (count 4); }\n"
                "SECTION Operation { ADD (latency 1); }"
            )
