"""MiniC semantic analysis: each rule has accepting/rejecting cases."""

import pytest

from repro.errors import CompileError
from repro.lang.parser import parse_program
from repro.lang.sema import check_program


def check(source):
    check_program(parse_program(source))


def test_minimal_valid_program():
    check("int main() { return 0; }")


def test_undeclared_variable_use():
    with pytest.raises(CompileError):
        check("int main() { return ghost; }")


def test_undeclared_assignment_target():
    with pytest.raises(CompileError):
        check("int main() { ghost = 1; return 0; }")


def test_duplicate_local():
    with pytest.raises(CompileError):
        check("int main() { int x; int x; return 0; }")


def test_shadowing_in_nested_scope_allowed():
    check("""
    int g;
    int main() {
      int x;
      x = 0;
      if (x == 0) { int x; x = 5; }
      return x;
    }
    """)


def test_scope_ends_with_block():
    with pytest.raises(CompileError):
        check("int main() { if (1) { int y; y = 1; } return y; }")


def test_assignment_to_array_name_rejected():
    with pytest.raises(CompileError):
        check("int a[4]; int main() { a = 1; return 0; }")


def test_assignment_to_const_global_rejected():
    with pytest.raises(CompileError):
        check("const int k = 5; int main() { k = 6; return 0; }")


def test_assignment_to_const_array_element_rejected():
    with pytest.raises(CompileError):
        check("const int t[2] = {1, 2}; int main() { t[0] = 9; return 0; }")


def test_const_shadowed_by_local_is_assignable():
    check("const int k = 5; int main() { int k; k = 6; return k; }")


def test_call_arity_checked():
    with pytest.raises(CompileError):
        check("""
        int f(int a, int b) { return a; }
        int main() { return f(1); }
        """)


def test_call_to_undeclared_function():
    with pytest.raises(CompileError):
        check("int main() { return ghost(); }")


def test_void_function_as_value_rejected():
    with pytest.raises(CompileError):
        check("""
        void f() { return; }
        int main() { return f(); }
        """)


def test_void_function_as_statement_allowed():
    check("""
    void f() { return; }
    int main() { f(); return 0; }
    """)


def test_break_outside_loop():
    with pytest.raises(CompileError):
        check("int main() { break; return 0; }")


def test_continue_inside_loop_ok():
    check("""
    int main() {
      int i;
      for (i = 0; i < 3; i += 1) { continue; }
      while (i > 0) { i -= 1; break; }
      return 0;
    }
    """)


def test_return_value_from_void_rejected():
    with pytest.raises(CompileError):
        check("void f() { return 3; } int main() { return 0; }")


def test_bare_return_from_int_rejected():
    with pytest.raises(CompileError):
        check("int f() { return; } int main() { return 0; }")


def test_duplicate_function():
    with pytest.raises(CompileError):
        check("int f() { return 0; } int f() { return 1; } "
              "int main() { return 0; }")


def test_function_and_global_name_collision():
    with pytest.raises(CompileError):
        check("int f; int f() { return 0; } int main() { return 0; }")


def test_duplicate_parameter():
    with pytest.raises(CompileError):
        check("int f(int a, int a) { return a; } int main() { return 0; }")


def test_too_many_initialisers():
    with pytest.raises(CompileError):
        check("int a[2] = {1, 2, 3}; int main() { return 0; }")
