"""Lowering semantics, validated through the IR interpreter."""

import pytest

from repro.errors import CompileError
from repro.ir import run_module
from repro.lang import compile_minic


def result_of(source, optimize=True):
    return run_module(compile_minic(source, optimize=optimize)).result


class TestExpressions:
    def test_arithmetic_operators(self):
        source = """
        int main() {
          return (17 + 5) * 3 - 100 / 7 % 5 + (12 & 10) + (1 | 4)
               + (6 ^ 3) - (1 << 4) + (-32 >> 2) + (7 >>> 1);
        }
        """
        expected = (
            (17 + 5) * 3 - (100 // 7) % 5 + (12 & 10) + (1 | 4)
            + (6 ^ 3) - (1 << 4) + (-32 >> 2) + (7 >> 1)
        )
        assert result_of(source) == expected & 0xFFFFFFFF

    def test_logical_shift_right_on_negative(self):
        assert result_of("int main() { return -1 >>> 28; }") == 15

    def test_arithmetic_shift_right_on_negative(self):
        assert result_of("int main() { return (-16 >> 2) & 0xFF; }") == 0xFC

    def test_unary_operators(self):
        assert result_of("int main() { return -(5) + (~0 & 15) + !0 + !7; }") \
            == -5 + 15 + 1 + 0 & 0xFFFFFFFF

    def test_division_truncates_toward_zero(self):
        assert result_of("int main() { return (-7) / 2; }") == (-3) & 0xFFFFFFFF
        assert result_of("int main() { return (-7) % 2; }") == (-1) & 0xFFFFFFFF

    def test_comparisons_yield_bits(self):
        source = """
        int main() {
          return (1 < 2) + (2 <= 2) + (3 > 4) + (4 >= 4)
               + (5 == 5) + (6 != 6);
        }
        """
        assert result_of(source) == 4

    def test_short_circuit_evaluation_order(self):
        source = """
        int calls;
        int bump() { calls += 1; return 1; }
        int main() {
          int r;
          calls = 0;
          r = 0 && bump();
          r = r + (1 || bump());
          return calls * 10 + r;
        }
        """
        assert result_of(source) == 1

    def test_short_circuit_as_value(self):
        assert result_of("int main() { return (3 && 4) + (0 || 0); }") == 1


class TestVariables:
    def test_globals_scalar_and_array(self):
        source = """
        int counter;
        int history[4];
        int main() {
          counter = 3;
          history[counter - 1] = 99;
          counter += 1;
          return counter * 100 + history[2];
        }
        """
        assert result_of(source) == 499

    def test_global_initialisers(self):
        source = """
        int base = 40;
        int table[3] = {1, 2};
        int main() { return base + table[0] + table[1] + table[2]; }
        """
        assert result_of(source) == 43

    def test_local_arrays_are_per_frame(self):
        source = """
        int helper(int x) {
          int buf[4];
          buf[0] = x;
          return buf[0] * 2;
        }
        int main() {
          int buf[4];
          buf[1] = 5;
          return helper(10) + buf[1];
        }
        """
        assert result_of(source) == 25

    def test_array_decay_to_address_and_pointer_indexing(self):
        source = """
        int data[6] = {10, 20, 30, 40, 50, 60};
        int sum3(int base) { return base[0] + base[1] + base[2]; }
        int main() { return sum3(data + 2); }
        """
        assert result_of(source) == 120

    def test_uninitialised_local_defaults_to_zero(self):
        assert result_of("int main() { int x; return x; }") == 0

    def test_param_is_mutable(self):
        source = """
        int f(int a) { a += 1; return a; }
        int main() { return f(41); }
        """
        assert result_of(source) == 42


class TestControlFlow:
    def test_if_else_if_chain(self):
        source = """
        int classify(int x) {
          if (x < 0) { return 1; }
          else if (x == 0) { return 2; }
          else { return 3; }
        }
        int main() {
          return classify(-5) * 100 + classify(0) * 10 + classify(9);
        }
        """
        assert result_of(source) == 123

    def test_while_with_break_continue(self):
        source = """
        int main() {
          int i; int total;
          i = 0; total = 0;
          while (1) {
            i += 1;
            if (i > 10) { break; }
            if (i % 2 == 0) { continue; }
            total += i;
          }
          return total;
        }
        """
        assert result_of(source) == 25

    def test_for_with_continue_hits_step(self):
        source = """
        int main() {
          int i; int total;
          total = 0;
          for (i = 0; i < 10; i += 1) {
            if (i == 5) { continue; }
            total += i;
          }
          return total;
        }
        """
        assert result_of(source) == 40

    def test_nested_loops_and_breaks(self):
        source = """
        int main() {
          int i; int j; int hits;
          hits = 0;
          for (i = 0; i < 5; i += 1) {
            for (j = 0; j < 5; j += 1) {
              if (j > i) { break; }
              hits += 1;
            }
          }
          return hits;
        }
        """
        assert result_of(source) == 15

    def test_implicit_return_zero(self):
        assert result_of("int main() { int x; x = 5; }") == 0

    def test_dead_code_after_return_ignored(self):
        assert result_of("int main() { return 1; return 2; }") == 1

    def test_mutual_recursion(self):
        source = """
        int is_odd(int n) {
          if (n == 0) { return 0; }
          return is_even(n - 1);
        }
        int is_even(int n) {
          if (n == 0) { return 1; }
          return is_odd(n - 1);
        }
        int main() { return is_even(10) * 10 + is_odd(7); }
        """
        assert result_of(source) == 11


class TestOptimizedEqualsUnoptimized:
    SOURCES = [
        "int main() { int x; x = 3; return x * 8 + x / 2; }",
        """
        int t[4] = {5, 6, 7, 8};
        int main() { int i; int s; s = 0;
          for (i = 0; i < 4; i += 1) { s += t[i] * t[i]; }
          return s; }
        """,
        """
        const int k[2] = {3, 4};
        int main() { return k[0] * k[1]; }
        """,
    ]

    @pytest.mark.parametrize("source", SOURCES)
    def test_same_result(self, source):
        assert result_of(source, optimize=True) == \
            result_of(source, optimize=False)
