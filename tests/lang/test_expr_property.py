"""Property test: random MiniC expressions match Python semantics."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.ir import run_module
from repro.lang import compile_minic

_MASK = 0xFFFFFFFF


def _signed(value):
    value &= _MASK
    return value - (1 << 32) if value & 0x80000000 else value


class _Node:
    """Expression tree rendered both as MiniC text and Python value."""

    def __init__(self, text, value):
        self.text = text
        self.value = value & _MASK


def _leaf(value):
    return _Node(str(value), value)


def _combine(op, left, right):
    a, b = _signed(left.value), _signed(right.value)
    if op == "+":
        value = a + b
    elif op == "-":
        value = a - b
    elif op == "*":
        value = a * b
    elif op == "&":
        value = a & b
    elif op == "|":
        value = a | b
    elif op == "^":
        value = a ^ b
    elif op == "<<":
        value = a << (b & 31)
    elif op == ">>":
        value = a >> (b & 31)
    elif op == ">>>":
        value = (a & _MASK) >> (b & 31)
    elif op == "/":
        if b == 0:
            return None
        value = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            value = -value
    elif op == "%":
        if b == 0:
            return None
        value = abs(a) % abs(b)
        if a < 0:
            value = -value
    else:  # comparisons
        value = int({
            "==": a == b, "!=": a != b, "<": a < b, "<=": a <= b,
            ">": a > b, ">=": a >= b,
        }[op])
    return _Node(f"({left.text} {op} {right.text})", value)


_OPS = ["+", "-", "*", "&", "|", "^", "<<", ">>", ">>>", "/", "%",
        "==", "!=", "<", "<=", ">", ">="]


@st.composite
def expressions(draw, depth=0):
    if depth >= 4 or draw(st.booleans()):
        return _leaf(draw(st.integers(-1000, 1000)))
    op = draw(st.sampled_from(_OPS))
    left = draw(expressions(depth=depth + 1))
    right = draw(expressions(depth=depth + 1))
    node = _combine(op, left, right)
    if node is None:  # division by a zero-valued subtree: retry as leaf
        return _leaf(draw(st.integers(-1000, 1000)))
    return node


@settings(max_examples=80, deadline=None)
@given(expressions())
def test_expression_matches_python(node):
    source = f"int main() {{ return {node.text}; }}"
    module = compile_minic(source)
    assert (run_module(module).result & _MASK) == node.value


@settings(max_examples=40, deadline=None)
@given(expressions())
def test_optimizer_agrees_with_frontend(node):
    source = f"int main() {{ return {node.text}; }}"
    optimized = run_module(compile_minic(source, optimize=True)).result
    plain = run_module(compile_minic(source, optimize=False)).result
    assert (optimized & _MASK) == (plain & _MASK) == node.value
