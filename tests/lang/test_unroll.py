"""AST-level loop unrolling: transformations and failure diagnostics."""

import pytest

from repro.errors import CompileError
from repro.ir import run_module
from repro.lang import compile_minic
from repro.lang.parser import parse_program
from repro.lang.unroll import unroll_program
from repro.lang import ast


def _result(source, unroll=True):
    return run_module(compile_minic(source, unroll=unroll)).result


def _count_fors(block):
    total = 0
    for statement in block.statements:
        if isinstance(statement, ast.For):
            total += 1 + _count_fors(statement.body)
        elif isinstance(statement, ast.While):
            total += _count_fors(statement.body)
        elif isinstance(statement, ast.If):
            total += _count_fors(statement.then)
            if statement.els is not None:
                total += _count_fors(statement.els)
        elif isinstance(statement, ast.BlockStmt):
            total += _count_fors(statement)
    return total


class TestFullUnroll:
    SOURCE = """
    int out[8];
    int main() {
      int i; int total;
      total = 0;
      unroll for (i = 0; i < 8; i += 1) { out[i] = i * i; total += i; }
      return total + i * 100;
    }
    """

    def test_loop_disappears(self):
        program = unroll_program(parse_program(self.SOURCE))
        assert _count_fors(program.functions[0].body) == 0

    def test_semantics_preserved(self):
        with_unroll = _result(self.SOURCE, unroll=True)
        without = _result(self.SOURCE, unroll=False)
        assert with_unroll == without == 28 + 800

    def test_induction_variable_final_value(self):
        source = """
        int main() {
          int i;
          unroll for (i = 3; i < 10; i += 2) { }
          return i;
        }
        """
        assert _result(source) == 11

    def test_downward_loop(self):
        source = """
        int main() {
          int i; int total;
          total = 0;
          unroll for (i = 5; i > 0; i -= 1) { total += i; }
          return total;
        }
        """
        assert _result(source) == 15

    def test_zero_trip_loop(self):
        source = """
        int main() {
          int i; int total;
          total = 0;
          unroll for (i = 5; i < 5; i += 1) { total += 1; }
          return total * 10 + i;
        }
        """
        assert _result(source) == 5

    def test_le_and_ge_conditions(self):
        source = """
        int main() {
          int i; int a; int b;
          a = 0; b = 0;
          unroll for (i = 0; i <= 4; i += 1) { a += 1; }
          unroll for (i = 4; i >= 0; i -= 2) { b += 1; }
          return a * 10 + b;
        }
        """
        assert _result(source) == 53


class TestPartialUnroll:
    def test_constant_bounds_divisible(self):
        source = """
        int out[8];
        int main() {
          int i; int total;
          total = 0;
          unroll(4) for (i = 0; i < 8; i += 1) { total += i; }
          return total;
        }
        """
        assert _result(source) == 28

    def test_constant_bounds_with_remainder(self):
        source = """
        int main() {
          int i; int total;
          total = 0;
          unroll(4) for (i = 0; i < 10; i += 1) { total += i; }
          return total + i;
        }
        """
        assert _result(source) == 45 + 10

    def test_non_constant_limit(self):
        source = """
        int n;
        int main() {
          int i; int total;
          n = 13;
          total = 0;
          unroll(4) for (i = 0; i < n; i += 1) { total += i; }
          return total;
        }
        """
        assert _result(source) == 78

    def test_non_constant_limit_small_trip(self):
        source = """
        int n;
        int main() {
          int i; int total;
          n = 2;        // fewer iterations than the unroll factor
          total = 0;
          unroll(4) for (i = 0; i < n; i += 1) { total += 1; }
          return total;
        }
        """
        assert _result(source) == 2


class TestDiagnostics:
    def _reject(self, body):
        source = f"int g; int main() {{ int i; int x; x = 0; {body} return x; }}"
        with pytest.raises(CompileError):
            compile_minic(source)

    def test_body_assigning_induction_variable(self):
        self._reject("unroll for (i = 0; i < 4; i += 1) { i = 2; }")

    def test_break_in_body(self):
        self._reject("unroll for (i = 0; i < 4; i += 1) { break; }")

    def test_non_constant_step(self):
        self._reject("unroll for (i = 0; i < 4; i += x) { x += 1; }")

    def test_missing_header_parts(self):
        self._reject("unroll for (;;) { x += 1; }")

    def test_non_canonical_condition(self):
        self._reject("unroll for (i = 0; i != 4; i += 1) { x += 1; }")

    def test_nonconstant_partial_downward(self):
        self._reject("unroll(2) for (i = g; i > 0; i -= 1) { x += 1; }")

    def test_body_assigns_limit_variable(self):
        source = """
        int main() {
          int i; int n; int x;
          n = 10; x = 0;
          unroll(2) for (i = 0; i < n; i += 1) { n = 5; x += 1; }
          return x;
        }
        """
        with pytest.raises(CompileError):
            compile_minic(source)

    def test_full_unroll_nonconstant_bounds(self):
        self._reject("unroll for (i = 0; i < g; i += 1) { x += 1; }")


class TestNesting:
    def test_nested_unroll(self):
        source = """
        int out[16];
        int main() {
          int i; int j; int total;
          total = 0;
          unroll for (i = 0; i < 4; i += 1) {
            unroll for (j = 0; j < 4; j += 1) {
              out[i * 4 + j] = i * j;
              total += i * j;
            }
          }
          return total;
        }
        """
        assert _result(source) == 36

    def test_disabled_unroll_strips_annotations(self):
        program = parse_program("""
        int main() {
          int i;
          unroll for (i = 0; i < 4; i += 1) { }
          return i;
        }
        """)
        stripped = unroll_program(program, enabled=False)
        loop = stripped.functions[0].body.statements[1]
        assert isinstance(loop, ast.For)
        assert loop.unroll == 0
