"""MiniC lexer."""

import pytest

from repro.errors import CompileError
from repro.lang.lexer import tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source) if t.kind != "eof"]


def test_keywords_vs_identifiers():
    tokens = kinds("int x; return xint;")
    assert ("kw", "int") in tokens
    assert ("ident", "x") in tokens
    assert ("ident", "xint") in tokens


def test_numbers_decimal_and_hex():
    tokens = tokenize("42 0x2A 0X2a")
    assert [t.value for t in tokens[:3]] == [42, 42, 42]


def test_operators_longest_match():
    tokens = kinds("a >>> b >> c > d >= e")
    ops = [text for kind, text in tokens if kind == "op"]
    assert ops == [">>>", ">>", ">", ">="]


def test_compound_assignment_tokens():
    ops = [text for kind, text in kinds("a <<= 1; b ^= 2;") if kind == "op"]
    assert "<<=" in ops
    assert "^=" in ops


def test_comments_skipped():
    tokens = kinds("a // line comment\n/* block\ncomment */ b")
    assert [text for _, text in tokens] == ["a", "b"]


def test_line_and_column_tracking():
    tokens = tokenize("a\n  b")
    assert tokens[0].line == 1
    assert tokens[1].line == 2
    assert tokens[1].column == 3


def test_line_tracking_through_block_comment():
    tokens = tokenize("/* one\ntwo */ x")
    assert tokens[0].line == 2


def test_bad_character_raises_with_location():
    with pytest.raises(CompileError) as excinfo:
        tokenize("a @ b")
    assert excinfo.value.line == 1


def test_unsupported_shift_assign():
    with pytest.raises(CompileError):
        tokenize("a >>>= 1")
