"""MiniC parser: AST shapes and rejection of malformed programs."""

import pytest

from repro.errors import CompileError
from repro.lang import ast
from repro.lang.parser import parse_program


class TestTopLevel:
    def test_globals(self):
        program = parse_program("""
        int scalar;
        int with_init = 5;
        int arr[4];
        int filled[3] = {1, 2, 3};
        const int table[2] = {7, 8};
        """)
        assert [g.name for g in program.globals] == [
            "scalar", "with_init", "arr", "filled", "table",
        ]
        assert program.globals[1].init == (5,)
        assert program.globals[3].init == (1, 2, 3)
        assert program.globals[4].const
        assert not program.globals[3].const

    def test_constant_expressions_in_sizes(self):
        program = parse_program("int a[4 * 8];")
        assert program.globals[0].size == 32

    def test_functions(self):
        program = parse_program("""
        int f(int a, int b) { return a + b; }
        void g() { return; }
        int h(void) { return 0; }
        """)
        f, g, h = program.functions
        assert [p.name for p in f.params] == ["a", "b"]
        assert f.returns_value
        assert not g.returns_value
        assert h.params == []

    def test_void_global_rejected(self):
        with pytest.raises(CompileError):
            parse_program("void x;")

    def test_negative_array_size_rejected(self):
        with pytest.raises(CompileError):
            parse_program("int a[0];")


class TestStatements:
    def _body(self, text):
        return parse_program(f"int main() {{ {text} }}").functions[0].body

    def test_compound_assignment_desugars(self):
        body = self._body("int x; x = 0; x += 3;")
        assign = body.statements[2]
        assert isinstance(assign, ast.Assign)
        assert assign.op == "+"

    def test_if_else_chains(self):
        body = self._body("int x; x = 0; if (x) x = 1; else if (x) x = 2;")
        outer = body.statements[2]
        assert isinstance(outer, ast.If)
        assert isinstance(outer.els.statements[0], ast.If)

    def test_for_header_parts_optional(self):
        body = self._body("int i; for (;;) break;")
        loop = body.statements[1]
        assert loop.init is None and loop.cond is None and loop.step is None

    def test_unroll_annotations(self):
        body = self._body(
            "int i; unroll for (i = 0; i < 4; i += 1) { } "
            "unroll(2) for (i = 0; i < 4; i += 1) { }"
        )
        assert body.statements[1].unroll == -1
        assert body.statements[2].unroll == 2

    def test_unroll_factor_must_be_at_least_two(self):
        with pytest.raises(CompileError):
            self._body("int i; unroll(1) for (i = 0; i < 4; i += 1) { }")

    def test_array_index_assignment(self):
        body = self._body("int a[4]; a[2] = 9;")
        assign = body.statements[1]
        assert isinstance(assign.target, ast.Index)

    def test_call_statement(self):
        program = parse_program("""
        void helper() { return; }
        int main() { helper(); return 0; }
        """)
        stmt = program.functions[1].body.statements[0]
        assert isinstance(stmt, ast.ExprStmt)


class TestExpressions:
    def _expr(self, text):
        program = parse_program(f"int main() {{ return {text}; }}")
        return program.functions[0].body.statements[0].value

    def test_precedence_mul_over_add(self):
        expr = self._expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_shift_vs_compare(self):
        expr = self._expr("1 << 2 < 3")
        assert expr.op == "<"
        assert expr.left.op == "<<"

    def test_logical_lowest(self):
        expr = self._expr("1 | 2 && 3")
        assert expr.op == "&&"

    def test_unary_chain(self):
        expr = self._expr("-~!0")
        assert expr.op == "-"
        assert expr.operand.op == "~"

    def test_unary_plus_is_noop(self):
        expr = self._expr("+5")
        assert isinstance(expr, ast.Num)

    def test_parentheses_override(self):
        expr = self._expr("(1 + 2) * 3")
        assert expr.op == "*"

    def test_left_associativity(self):
        expr = self._expr("10 - 4 - 3")
        assert expr.op == "-"
        assert expr.left.op == "-"

    def test_call_with_arguments(self):
        program = parse_program("""
        int f(int a, int b) { return a; }
        int main() { return f(1, f(2, 3)); }
        """)
        call = program.functions[1].body.statements[0].value
        assert isinstance(call.args[1], ast.CallE)

    def test_missing_semicolon_rejected(self):
        with pytest.raises(CompileError):
            parse_program("int main() { return 0 }")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(CompileError):
            parse_program("int main() { return (1 + 2; }")
