"""The example scripts must run (fast ones, executed in-process)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run("quickstart.py", capsys)
    assert "sum = 392" in out
    assert "cycles" in out
    assert "main() returned 392" in out


def test_custom_instruction(capsys):
    out = _run("custom_instruction.py", capsys)
    assert "speedup" in out
    assert "extra slices" in out


def test_image_dct_pipeline(capsys):
    out = _run("image_dct_pipeline.py", capsys)
    assert "PSNR" in out
    assert "frames/s" in out


def test_examples_exist_and_are_documented():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 3
    for script in scripts:
        text = script.read_text()
        assert text.lstrip().startswith('"""'), f"{script.name} lacks a docstring"
