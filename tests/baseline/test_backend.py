"""Armlet backend: code shape and cross-engine agreement."""

import pytest

from repro.baseline import Sa110Simulator, compile_minic_to_armlet
from tests.helpers import assert_all_engines_agree, run_ir


def test_division_always_expands_to_runtime():
    compilation = compile_minic_to_armlet("""
    int v[2] = {100, 7};
    int main() { return v[0] / v[1] + v[0] % v[1]; }
    """)
    mnemonics = {mop.mnemonic for mop in compilation.program}
    assert "DIV" not in mnemonics
    assert "__divsi3" in compilation.labels
    assert "__modsi3" in compilation.labels


def test_compare_branch_fusion():
    compilation = compile_minic_to_armlet("""
    int main() {
      int i; int s;
      s = 0;
      for (i = 0; i < 10; i += 1) { s += i; }
      return s;
    }
    """)
    mnemonics = [mop.mnemonic for mop in compilation.program]
    assert any(m in ("BLT", "BGE") for m in mnemonics)


def test_scalar_program_is_sequential():
    """Armlet has no bundles: the program is a flat instruction list."""
    compilation = compile_minic_to_armlet("int main() { return 2 + 3; }")
    assert compilation.n_instructions >= 2
    assert isinstance(compilation.listing(), str)


def test_value_position_compare_materialises():
    source = """
    int flags[2];
    int main() {
      int a;
      a = 7;
      flags[0] = a > 3;
      flags[1] = a < 3;
      return flags[0] * 10 + flags[1];
    }
    """
    outputs = assert_all_engines_agree(source, ["flags"])
    assert outputs.globals["flags"] == [1, 0]
    assert outputs.return_value == 10


def test_label_uniqueness_across_functions():
    compilation = compile_minic_to_armlet("""
    int a() { return 1 < 2; }
    int b() { return 3 < 4; }
    int main() { return a() + b(); }
    """)
    assert len(compilation.labels) == len(set(compilation.labels.values()))


@pytest.mark.parametrize("source", [
    "int main() { return -2147483647 / 2; }",
    "int xs[1] = {-2147483647}; int main() { return xs[0] % 10; }",
    "int xs[2] = {-100, 9}; int main() { return xs[0] / xs[1]; }",
    "int xs[2] = {-100, -9}; int main() { return xs[0] % xs[1]; }",
])
def test_signed_division_corner_cases(source):
    golden = run_ir(source)
    compilation = compile_minic_to_armlet(source)
    simulator = Sa110Simulator(compilation.program, compilation.labels,
                               compilation.data, mem_words=4096)
    result = simulator.run()
    assert (result.return_value & 0xFFFFFFFF) == golden.return_value
