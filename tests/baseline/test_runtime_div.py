"""Property test: the shift-and-subtract division runtime vs Python.

The ``__divsi3``/``__modsi3`` MiniC routines (linked whenever a target
lacks hardware division) are exercised through the IR interpreter over
randomised operands and compared with C-semantics division.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.backend.epic import link_runtime
from repro.ir import Interpreter, Module
from repro.lang import compile_minic

_MASK = 0xFFFFFFFF


@pytest.fixture(scope="module")
def interpreter():
    module = Module()
    # Reuse a trivial module as the host; link the runtime into it.
    trivial = compile_minic("int main() { return 0; }")
    module.functions.update(trivial.functions)
    link_runtime(module)
    return Interpreter(module, mem_words=1 << 12)


def c_div(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def c_rem(a: int, b: int) -> int:
    r = abs(a) % abs(b)
    return -r if a < 0 else r


operands = st.integers(-(2 ** 31) + 1, 2 ** 31 - 1)


@settings(max_examples=150, deadline=None)
@given(operands, operands.filter(lambda v: v != 0))
def test_divsi3_matches_c_semantics(interpreter, a, b):
    got = interpreter.call("__divsi3", [a & _MASK, b & _MASK])
    assert got == c_div(a, b) & _MASK


@settings(max_examples=150, deadline=None)
@given(operands, operands.filter(lambda v: v != 0))
def test_modsi3_matches_c_semantics(interpreter, a, b):
    got = interpreter.call("__modsi3", [a & _MASK, b & _MASK])
    assert got == c_rem(a, b) & _MASK


@settings(max_examples=100, deadline=None)
@given(operands, operands.filter(lambda v: v != 0))
def test_division_identity(interpreter, a, b):
    q = interpreter.call("__divsi3", [a & _MASK, b & _MASK])
    r = interpreter.call("__modsi3", [a & _MASK, b & _MASK])
    assert (q * (b & _MASK) + r) & _MASK == a & _MASK


@settings(max_examples=100, deadline=None)
@given(st.integers(0, _MASK), st.integers(0, _MASK))
def test_uge_matches_unsigned_compare(interpreter, a, b):
    assert interpreter.call("__uge", [a, b]) == int(a >= b)


@pytest.mark.parametrize("a,b", [
    (0, 1), (0, -1), (1, 1), (-1, 1), (-1, -1),
    (2 ** 31 - 1, 1), (2 ** 31 - 1, 2 ** 31 - 1),
    (-(2 ** 31) + 1, 3), (7, -(2 ** 31) + 1),
])
def test_division_edges(interpreter, a, b):
    assert interpreter.call("__divsi3", [a & _MASK, b & _MASK]) == \
        c_div(a, b) & _MASK
    assert interpreter.call("__modsi3", [a & _MASK, b & _MASK]) == \
        c_rem(a, b) & _MASK
