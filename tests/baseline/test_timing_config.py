"""Sensitivity of the SA-110 model to its timing constants.

EXPERIMENTS.md flags the baseline model as the largest threat to
validity; these tests confirm the knobs actually steer the model so the
sensitivity analysis is meaningful.
"""

import pytest

from repro.baseline import Sa110Simulator, Sa110Timing, compile_minic_to_armlet

SOURCE = """
int data[16] = {1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16};
int main() {
  int i; int s;
  s = 0;
  for (i = 0; i < 16; i += 1) { s += data[i] * 2654435761; }
  return s;
}
"""


def _cycles(timing):
    compilation = compile_minic_to_armlet(SOURCE)
    simulator = Sa110Simulator(compilation.program, compilation.labels,
                               compilation.data, mem_words=2048,
                               timing=timing)
    return simulator.run().cycles


def test_default_timing_is_sa110_like():
    timing = Sa110Timing()
    assert timing.taken_branch_penalty == 2
    assert timing.load_use_stall == 1
    assert timing.mul_extra(3) == 1
    assert timing.mul_extra(1 << 15) == 2
    assert timing.mul_extra(1 << 25) == 3
    assert timing.mul_extra(-(1 << 25)) == 3


def test_branch_penalty_steers_cycles():
    fast = _cycles(Sa110Timing(taken_branch_penalty=0))
    slow = _cycles(Sa110Timing(taken_branch_penalty=4))
    assert slow > fast


def test_multiplier_model_steers_cycles():
    fast = _cycles(Sa110Timing(mul_small=0, mul_medium=0, mul_large=0))
    slow = _cycles(Sa110Timing(mul_small=4, mul_medium=8, mul_large=16))
    assert slow > fast


def test_load_use_stall_steers_cycles():
    fast = _cycles(Sa110Timing(load_use_stall=0))
    slow = _cycles(Sa110Timing(load_use_stall=3))
    assert slow >= fast


def test_results_independent_of_timing():
    """Timing knobs change cycles, never values."""
    compilation = compile_minic_to_armlet(SOURCE)
    results = set()
    for timing in (Sa110Timing(), Sa110Timing(taken_branch_penalty=0),
                   Sa110Timing(wide_immediate=5)):
        simulator = Sa110Simulator(compilation.program, compilation.labels,
                                   compilation.data, mem_words=2048,
                                   timing=timing)
        results.add(simulator.run().return_value)
    assert len(results) == 1
