"""SA-110 baseline simulator: timing model unit tests."""

import pytest

from repro.backend.mops import MOp
from repro.baseline import Sa110Simulator, Sa110Timing
from repro.errors import SimulationError
from repro.isa.operands import Lit, Reg


def _sim(program, labels=None, data=(), timing=None, mem_words=256):
    labels = {"main": 0, **(labels or {})}
    return Sa110Simulator(program, labels, list(data), mem_words=mem_words,
                          timing=timing)


def _halt_via_jr():
    """Return-to-synthetic-HALT: main ends with JR r3."""
    return MOp("JR", src1=Reg(3))


#: Cost of the synthetic `JAL main` prologue plus the final `JR r3`.
_CALL_OVERHEAD = (2 + 1) + (1 + 2)


class TestBaseCosts:
    def test_single_instruction_cost(self):
        sim = _sim([MOp("ADD", dest1=Reg(4), src1=Reg(0), src2=Lit(1)),
                    _halt_via_jr()])
        result = sim.run()
        assert result.cycles == _CALL_OVERHEAD + 1
        assert sim.regs[4] == 1

    def test_move_and_wide_immediate(self):
        timing = Sa110Timing()
        sim = _sim([
            MOp("MOVE", dest1=Reg(4), src1=Lit(7)),          # 1 cycle
            MOp("MOVI", dest1=Reg(5), src1=Lit(0x12345678)),  # 1 + wide
            _halt_via_jr(),
        ], timing=timing)
        result = sim.run()
        assert result.cycles == _CALL_OVERHEAD + 1 + (1 + timing.wide_immediate)
        assert sim.regs[5] == 0x12345678


class TestLoadUseInterlock:
    def _program(self, gap):
        body = [MOp("SW", dest1=Reg(0), src1=Reg(0), src2=Lit(0)),
                MOp("LW", dest1=Reg(4), src1=Reg(0), src2=Lit(0))]
        body += [MOp("ADD", dest1=Reg(6), src1=Reg(0), src2=Lit(0))] * gap
        body.append(MOp("ADD", dest1=Reg(5), src1=Reg(4), src2=Lit(1)))
        body.append(_halt_via_jr())
        return body

    def test_immediate_use_stalls(self):
        no_gap = _sim(self._program(0)).run()
        gap = _sim(self._program(1)).run()
        # The gap version has one more instruction but the same cycle
        # count + 0: stall disappears, instruction appears.
        assert no_gap.stats.load_use_stalls == 1
        assert gap.stats.load_use_stalls == 0
        assert gap.cycles == no_gap.cycles + 0 + 1 - 1  # net equal

    def test_store_value_counts_as_use(self):
        program = [
            MOp("LW", dest1=Reg(4), src1=Reg(0), src2=Lit(0)),
            MOp("SW", dest1=Reg(4), src1=Reg(0), src2=Lit(1)),
            _halt_via_jr(),
        ]
        result = _sim(program).run()
        assert result.stats.load_use_stalls == 1


class TestBranchCosts:
    def test_taken_branch_penalty(self):
        timing = Sa110Timing()
        taken = _sim([
            MOp("BEQ", src1=Reg(0), src2=Reg(0), target="skip"),
            MOp("ADD", dest1=Reg(4), src1=Reg(0), src2=Lit(1)),
            _halt_via_jr(),
        ], labels={"skip": 2}).run()
        untaken = _sim([
            MOp("BNE", src1=Reg(0), src2=Reg(0), target="skip"),
            MOp("ADD", dest1=Reg(4), src1=Reg(0), src2=Lit(1)),
            _halt_via_jr(),
        ], labels={"skip": 2}).run()
        assert taken.cycles == untaken.cycles - 1 + timing.taken_branch_penalty

    def test_unconditional_branch_always_pays(self):
        result = _sim([
            MOp("B", target="skip"),
            MOp("ADD", dest1=Reg(4), src1=Reg(0), src2=Lit(1)),
            _halt_via_jr(),
        ], labels={"skip": 2}).run()
        assert result.stats.branches_taken == 3  # entry JAL + B + JR


class TestMultiplier:
    @pytest.mark.parametrize("multiplier,extra", [
        (3, 1),          # small: early termination
        (1 << 12, 2),    # medium
        (1 << 30, 3),    # large
        (-3, 1),         # magnitude matters, not sign
    ])
    def test_early_termination(self, multiplier, extra):
        timing = Sa110Timing()
        base = _sim([
            MOp("MOVI", dest1=Reg(4), src1=Lit(multiplier)),
            _halt_via_jr(),
        ], timing=timing).run().cycles
        mul = _sim([
            MOp("MOVI", dest1=Reg(4), src1=Lit(multiplier)),
            MOp("MUL", dest1=Reg(5), src1=Reg(6), src2=Reg(4)),
            _halt_via_jr(),
        ], timing=timing).run().cycles
        assert mul - base == 1 + extra


class TestSemantics:
    def test_conditional_flavours(self):
        # BLTU: -1 is a large unsigned value.
        program = [
            MOp("MOVI", dest1=Reg(4), src1=Lit(-1)),
            MOp("BLTU", src1=Reg(4), src2=Reg(0), target="no"),
            MOp("MOVI", dest1=Reg(5), src1=Lit(111)),
            _halt_via_jr(),
            MOp("MOVI", dest1=Reg(5), src1=Lit(222)),
            _halt_via_jr(),
        ]
        sim = _sim(program, labels={"no": 4})
        sim.run()
        assert sim.regs[5] == 111  # -1 as unsigned is NOT < 0

    def test_memory_bounds(self):
        program = [
            MOp("LW", dest1=Reg(4), src1=Reg(0), src2=Lit(9999)),
            _halt_via_jr(),
        ]
        with pytest.raises(SimulationError):
            _sim(program, mem_words=16).run()

    def test_speculative_load(self):
        program = [
            MOp("LWS", dest1=Reg(4), src1=Reg(0), src2=Lit(9999)),
            _halt_via_jr(),
        ]
        sim = _sim(program, mem_words=16)
        sim.run()
        assert sim.regs[4] == 0

    def test_r0_hardwired(self):
        program = [
            MOp("MOVI", dest1=Reg(0), src1=Lit(5)),
            MOp("ADD", dest1=Reg(4), src1=Reg(0), src2=Lit(1)),
            _halt_via_jr(),
        ]
        sim = _sim(program)
        sim.run()
        assert sim.regs[4] == 1

    def test_instruction_budget(self):
        program = [MOp("B", target="main")]
        with pytest.raises(SimulationError):
            _sim(program).run(max_instructions=100)

    def test_instruction_budget_is_structured(self):
        from repro.errors import CycleLimitExceeded

        program = [MOp("B", target="main")]
        with pytest.raises(CycleLimitExceeded) as excinfo:
            _sim(program).run(max_instructions=100)
        error = excinfo.value
        assert error.limit == 100
        assert error.cycle > 0
        assert "100 instructions" in str(error)
        assert "cycles" in str(error)

    def test_unknown_opcode(self):
        program = [MOp("FNORD"), _halt_via_jr()]
        with pytest.raises(SimulationError):
            _sim(program).run()
