"""Differential proof for the batched vector campaign engine.

The acceptance property of ``LockstepChecker.run_batch``: for every
workload, machine width and fault space, the outcome table produced by
the lane-major vector walk — with convergence cuts, frozen lanes and
scalar retirement — is byte-identical to a pure-scalar campaign: same
outcome, same detail string, same cycle count, same trap cause.  The
property must hold with and without NumPy (the memory plane degrades
to per-lane lists), and every lane the engine refuses to classify must
retire to ``run_one`` with a recorded reason.
"""

import json

import pytest

from repro.config import epic_with_alus
from repro.core import vector
from repro.harness.cli import quick_specs
from repro.harness.faultcampaign import (
    campaign_payload,
    generate_faults,
    measure_vector_throughput,
    result_payload,
    run_campaign,
)
from repro.reliability import (
    FAULT_SPACES,
    FaultSpec,
    LockstepChecker,
    MODEL_STUCK0,
    MODEL_STUCK1,
    Outcome,
    SPACE_BTR,
    SPACE_GPR,
    SPACE_MEM,
)
from tests.reliability.test_lockstep import tiny_spec

#: Trap policies rotate across the grid cells so every workload and
#: every ALU width exercises each policy somewhere without tripling
#: the grid's runtime.
POLICIES = ("halt", "squash-bundle", "record-and-continue")

GRID = [(name, n_alus, POLICIES[(w * 4 + n_alus - 1) % len(POLICIES)])
        for w, name in enumerate(("SHA", "AES", "DCT", "Dijkstra"))
        for n_alus in (1, 2, 3, 4)]

KNOWN_REASONS = {
    vector.RETIRE_GUARD, vector.RETIRE_BRANCH, vector.RETIRE_TRAP,
    vector.RETIRE_TRAP_TIMING, vector.RETIRE_IFETCH,
    vector.RETIRE_PARITY, vector.RETIRE_BOUNDS, vector.RETIRE_ENGINE,
}


@pytest.fixture(scope="module")
def checker():
    """One checkpointed tiny-workload checker shared by the fast tests."""
    checker = LockstepChecker(tiny_spec(), epic_with_alus(2))
    checker.prepare_checkpoints()
    return checker


@pytest.fixture(scope="module")
def squash_checker():
    """Same tiny workload under the squash-bundle trap policy."""
    checker = LockstepChecker(
        tiny_spec(), epic_with_alus(2, trap_policy="squash-bundle"))
    checker.prepare_checkpoints()
    return checker


def _payloads(results):
    return [result_payload(result) for result in results]


class TestWorkloadMachineGrid:
    """Serial, checkpointed and vector: all three tables byte-equal."""

    @pytest.mark.parametrize("name,n_alus,policy", GRID,
                             ids=[f"{n}-{a}alu-{p}" for n, a, p in GRID])
    def test_three_way_byte_identical(self, name, n_alus, policy):
        spec = quick_specs([name])[0]
        config = epic_with_alus(n_alus, trap_policy=policy)
        checker = LockstepChecker(spec, config, checkpoints=False)
        serial = run_campaign(spec, config, 4, 11, checker=checker,
                              checkpoints=False)
        checkpointed = run_campaign(spec, config, 4, 11, checker=checker,
                                    checkpoints=True)
        vectored = run_campaign(spec, config, 4, 11, checker=checker,
                                checkpoints=True, engine="vector")
        left = json.dumps(campaign_payload([serial]), sort_keys=True)
        middle = json.dumps(campaign_payload([checkpointed]),
                            sort_keys=True)
        right = json.dumps(campaign_payload([vectored]), sort_keys=True)
        assert left == middle == right
        assert vectored.timing["engine"] == "vector"
        # Non-halt policies are first-class vector configs now, never
        # a silent downgrade to the scalar path.
        assert vectored.timing["engine_downgrade_reason"] is None


class TestPerSpaceDifferential:
    """Each fault space alone, scalar vs vector, on the tiny workload."""

    @pytest.mark.parametrize("space", sorted(FAULT_SPACES))
    def test_single_space_byte_identical(self, checker, space):
        faults = generate_faults(checker, 24, 9, spaces=(space,))
        scalar = [checker.run_one(fault) for fault in faults]
        results, stats = checker.run_batch(faults)
        assert _payloads(results) == _payloads(scalar)
        assert stats["vector_faults"] == len(faults)

    def test_mixed_campaign_byte_identical(self, checker):
        faults = generate_faults(checker, 48, 13)
        scalar = [checker.run_one(fault) for fault in faults]
        results, stats = checker.run_batch(faults)
        assert _payloads(results) == _payloads(scalar)
        # Every fault got exactly one classification, vector or scalar.
        assert stats["scalar_faults"] == sum(stats["retired"].values())
        assert all(result is not None for result in results)


class TestPurePythonFallback:
    """NumPy is an accelerator, not a dependency."""

    def test_no_numpy_differential(self, monkeypatch):
        monkeypatch.setattr(vector, "_np", None)
        checker = LockstepChecker(tiny_spec(), epic_with_alus(2))
        checker.prepare_checkpoints()
        faults = generate_faults(checker, 32, 7)
        scalar = [checker.run_one(fault) for fault in faults]
        results, stats = checker.run_batch(faults)
        assert stats["numpy"] is False
        assert _payloads(results) == _payloads(scalar)

    COLUMN_FAULTS = [FaultSpec(SPACE_GPR, 14, 8 + bit, 0,
                               model=MODEL_STUCK1) for bit in range(20)]

    def test_column_alu_matches_pure_python(self, monkeypatch):
        # Stuck-at faults on one hot data register keep every lane
        # divergent there, so the divergent-row union crosses the
        # column gather threshold.  Same fault list through the NumPy
        # column ALU and the per-lane fallback: byte-identical tables,
        # and the column path really ran (the counter would be 0 if
        # the gather threshold or the kind filter silently
        # disqualified every op).
        if vector._np is None:
            pytest.skip("numpy not installed")
        checker = LockstepChecker(tiny_spec(), epic_with_alus(2))
        checker.prepare_checkpoints()
        results, stats = checker.run_batch(self.COLUMN_FAULTS)
        assert stats["numpy"] is True
        assert stats["column_ops"] > 0
        monkeypatch.setattr(vector, "_np", None)
        pure = LockstepChecker(tiny_spec(), epic_with_alus(2))
        pure.prepare_checkpoints()
        pure_results, pure_stats = pure.run_batch(self.COLUMN_FAULTS)
        assert pure_stats["column_ops"] == 0
        assert _payloads(results) == _payloads(pure_results)

    def test_column_alu_matches_scalar(self):
        # The column path against the scalar checker itself.
        if vector._np is None:
            pytest.skip("numpy not installed")
        checker = LockstepChecker(tiny_spec(), epic_with_alus(2))
        checker.prepare_checkpoints()
        scalar = [checker.run_one(fault) for fault in self.COLUMN_FAULTS]
        results, stats = checker.run_batch(self.COLUMN_FAULTS)
        assert stats["column_ops"] > 0
        assert _payloads(results) == _payloads(scalar)

    def test_no_numpy_mem_space_freezes_list_rows(self, monkeypatch):
        # Frozen lanes track golden stores through plain list rows.
        monkeypatch.setattr(vector, "_np", None)
        checker = LockstepChecker(tiny_spec(), epic_with_alus(2))
        checker.prepare_checkpoints()
        faults = generate_faults(checker, 16, 9, spaces=(SPACE_MEM,))
        scalar = [checker.run_one(fault) for fault in faults]
        results, stats = checker.run_batch(faults)
        assert _payloads(results) == _payloads(scalar)
        assert stats["frozen_cycles"] > 0


class TestTrapPolicyVector:
    """Non-halt trap policies ride the vector instead of downgrading."""

    @pytest.mark.parametrize("space", sorted(FAULT_SPACES))
    def test_squash_bundle_per_space(self, squash_checker, space):
        faults = generate_faults(squash_checker, 24, 9, spaces=(space,))
        scalar = [squash_checker.run_one(fault) for fault in faults]
        results, stats = squash_checker.run_batch(faults)
        assert _payloads(results) == _payloads(scalar)
        assert stats["engine_downgrade_reason"] is None
        assert stats["vector_faults"] == len(faults)

    def test_record_and_continue_mixed(self):
        checker = LockstepChecker(
            tiny_spec(),
            epic_with_alus(2, trap_policy="record-and-continue"))
        checker.prepare_checkpoints()
        faults = generate_faults(checker, 32, 13)
        scalar = [checker.run_one(fault) for fault in faults]
        results, stats = checker.run_batch(faults)
        assert _payloads(results) == _payloads(scalar)
        assert stats["engine_downgrade_reason"] is None

    def test_oob_store_trap_recorded_in_lane(self, squash_checker):
        # The same flipped base register that retires RETIRE_TRAP under
        # the halt policy stays in the vector here: the trap is recorded
        # in the lane plane, the bundle's write-backs are squashed, and
        # the lane classifies DETECTED without a scalar rerun.
        fault = FaultSpec(SPACE_GPR, 12, 20, 8)
        results, stats = squash_checker.run_batch([fault])
        assert stats["retired"].get(vector.RETIRE_TRAP, 0) == 0
        assert results[0].outcome is Outcome.DETECTED
        assert results[0].trap_cause == "oob-store"
        assert result_payload(results[0]) == \
            result_payload(squash_checker.run_one(fault))


class TestLaneRetirement:
    """Lanes the vector walk cannot hold retire to the scalar checker."""

    def test_ifetch_rewrites_rewalk_grouped(self, checker):
        faults = generate_faults(checker, 16, 9, spaces=("ifetch",))
        scalar = [checker.run_one(fault) for fault in faults]
        results, stats = checker.run_batch(faults)
        # Rewritten bundles break lane-invariant timing, but they no
        # longer retire one by one: each becomes a RewalkTicket and is
        # classified by the grouped second pass.
        assert stats["rewalk_lanes"] > 0
        assert 0 < stats["rewalk_groups"] <= stats["rewalk_lanes"]
        assert stats["retired"].get(vector.RETIRE_IFETCH, 0) == 0
        assert stats["scalar_faults"] == sum(stats["retired"].values())
        assert _payloads(results) == _payloads(scalar)

    def test_duplicate_rewrites_share_one_rewalk(self, checker):
        # Doubling the fault list must not double the scalar work: the
        # second copy of every rewrite joins the first copy's group.
        faults = generate_faults(checker, 16, 9, spaces=("ifetch",))
        _single, single_stats = checker.run_batch(faults)
        assert single_stats["rewalk_groups"] > 0
        results, stats = checker.run_batch(faults + faults)
        assert stats["rewalk_groups"] == single_stats["rewalk_groups"]
        assert stats["rewalk_lanes"] == 2 * single_stats["rewalk_lanes"]
        scalar = [checker.run_one(fault) for fault in faults + faults]
        assert _payloads(results) == _payloads(scalar)

    def test_trap_risk_lane_retires_mid_vector(self, checker):
        # A flipped base register sends a store out of bounds: the lane
        # must leave the vector (a trap cannot be recorded there) and
        # the scalar rerun classifies the trap exactly.
        fault = FaultSpec(SPACE_GPR, 12, 20, 8)
        results, stats = checker.run_batch([fault])
        assert stats["retired"] == {vector.RETIRE_TRAP: 1}
        assert stats["scalar_faults"] == 1
        assert results[0].outcome is Outcome.DETECTED
        assert results[0].trap_cause == "oob-store"
        assert result_payload(results[0]) == \
            result_payload(checker.run_one(fault))

    def test_hanging_lane_retires_on_branch_divergence(self, checker):
        # A stuck BTR bit derails the control flow into a hang: the
        # divergence is caught at the branch, the lane retires, and the
        # scalar watchdog classifies HUNG.
        fault = FaultSpec(SPACE_BTR, 0, 2, 78, model=MODEL_STUCK0)
        results, stats = checker.run_batch([fault])
        assert stats["retired"] == {vector.RETIRE_BRANCH: 1}
        assert results[0].outcome is Outcome.HUNG
        assert result_payload(results[0]) == \
            result_payload(checker.run_one(fault))

    def test_retirement_reasons_are_known(self, checker):
        reasons = set()
        for seed in (2, 13, 77):
            _, stats = checker.run_batch(generate_faults(checker, 48,
                                                         seed))
            reasons |= set(stats["retired"])
        assert reasons
        assert reasons <= KNOWN_REASONS

    def test_stuck_lane_rides_the_vector_to_halt(self, checker):
        # A persistent stuck-at-0 on r2 corrupts data but never the
        # control flow, so the lane stays in the vector all the way to
        # the halt and classifies as SDC there.
        fault = FaultSpec(SPACE_GPR, 2, 0, 5, model=MODEL_STUCK0)
        results, stats = checker.run_batch([fault])
        assert stats["scalar_faults"] == 0
        assert results[0].outcome is Outcome.SDC
        assert result_payload(results[0]) == \
            result_payload(checker.run_one(fault))

    def test_r0_flip_is_instantly_classified(self, checker):
        # The hardwired zero register cannot propagate: the engine
        # classifies the fault without walking a single cycle.
        results, stats = checker.run_batch([FaultSpec(SPACE_GPR, 0, 1,
                                                      2)])
        assert stats["iterations"] == 0
        assert stats["scalar_faults"] == 0
        assert results[0].outcome is Outcome.MASKED
        assert results[0].detail == "outputs match"
        assert results[0].cycles == checker.reference_cycles

    def test_overwritten_mem_flip_is_cut_mid_walk(self, checker):
        # Word 13 sits in the ``out`` array: the flipped bit is
        # overwritten by the program's own store, the lane's dirty set
        # empties, and the lane is cut MASKED long before the halt.
        results, stats = checker.run_batch([FaultSpec(SPACE_MEM, 13, 5,
                                                      60)])
        assert stats["cuts"] >= 1
        assert stats["scalar_faults"] == 0
        assert results[0].outcome is Outcome.MASKED
        assert results[0].detail == "outputs match"
        assert results[0].cycles == checker.reference_cycles

    def test_untouched_mem_word_freezes_and_masks(self, checker):
        # A flip in a data word the program never reads back leaves the
        # lane frozen (registers golden, one dirty word) to the halt.
        fault = FaultSpec(SPACE_MEM, 3000, 5, 10)
        results, stats = checker.run_batch([fault])
        assert stats["scalar_faults"] == 0
        assert stats["frozen_cycles"] > 0
        assert result_payload(results[0]) == \
            result_payload(checker.run_one(fault))

    def test_lane_cap_zero_disables_the_vector(self, checker):
        faults = generate_faults(checker, 6, 3)
        results, stats = checker.run_batch(faults, lane_cap=0)
        assert stats["vector_faults"] == 0
        assert stats["scalar_faults"] == len(faults)
        assert stats["engine_downgrade_reason"] == "lane-cap-disabled"
        assert _payloads(results) == \
            _payloads([checker.run_one(fault) for fault in faults])

    def test_eligible_batch_records_no_downgrade(self, checker):
        _results, stats = checker.run_batch(generate_faults(checker, 4,
                                                            3))
        assert stats["engine_downgrade_reason"] is None


class TestThroughputHarness:
    def test_measure_vector_throughput_shape(self):
        report, timing = measure_vector_throughput(
            tiny_spec(), epic_with_alus(2), n=8, seed=5, repeat=2)
        assert report.classified == 8
        assert timing["scalar"]["engine"] == "auto"
        assert timing["vector"]["engine"] == "vector"
        assert timing["speedup"] > 0
        assert timing["vector"]["vector_faults"] == 8

    def test_repeat_must_be_positive(self):
        with pytest.raises(ValueError, match="repeat"):
            measure_vector_throughput(tiny_spec(), epic_with_alus(2),
                                      n=4, seed=5, repeat=0)


class TestCampaignTelemetry:
    """The occupancy split and re-walk counters reach the report."""

    def test_occupancy_excludes_wasted_and_rewalk_counts_surface(self):
        spec = tiny_spec()
        config = epic_with_alus(2)
        checker = LockstepChecker(spec, config)
        checker.prepare_checkpoints()
        report = run_campaign(spec, config, 48, 13, checker=checker,
                              engine="vector")
        timing = report.timing
        stats = checker.vector_stats
        capacity = stats["lane_capacity"]
        assert timing["vector_occupancy"] == pytest.approx(
            (stats["lane_cycles"] - stats["wasted_lane_cycles"])
            / capacity)
        assert timing["wasted_retired_cycles"] == pytest.approx(
            stats["wasted_lane_cycles"] / capacity)
        # Occupancy + waste is exactly the old (overstated) number.
        assert (timing["vector_occupancy"]
                + timing["wasted_retired_cycles"]) == pytest.approx(
            stats["lane_cycles"] / capacity)
        assert timing["rewalk_lanes"] == stats["rewalk_lanes"]
        assert timing["rewalk_groups"] == stats["rewalk_groups"]
        assert timing["rewalk_lane_cycles"] == stats["rewalk_lane_cycles"]
        assert timing["engine_downgrade_reason"] is None

    def test_sharded_meta_carries_the_split(self):
        from repro.serve import SerialExecutor

        spec = quick_specs(["SHA"])[0]
        config = epic_with_alus(2)
        report = run_campaign(spec, config, 16, 13,
                              executor=SerialExecutor(),
                              engine="vector")
        timing = report.timing
        for key in ("vector_occupancy", "wasted_retired_cycles",
                    "rewalk_lanes", "rewalk_groups",
                    "rewalk_lane_cycles", "engine_downgrade_reason"):
            assert key in timing
        assert timing["engine_downgrade_reason"] is None
