"""Lockstep checker: golden-model diffing and outcome classification."""

import pytest

from repro.config import epic_config
from repro.isa.encoding import InstructionFormat
from repro.reliability import (
    FaultSpec,
    LockstepChecker,
    Outcome,
    SPACE_GPR,
    SPACE_IFETCH,
    SPACE_MEM,
)
from repro.workloads import WorkloadSpec

TINY_SOURCE = """
int a[8] = {3, 1, 4, 1, 5, 9, 2, 6};
int out[8];
int main() {
  int i; int acc;
  acc = 0;
  for (i = 0; i < 8; i += 1) {
    out[i] = a[i] * 5 + i;
    acc = acc + out[i];
  }
  return acc;
}
"""


def tiny_spec():
    return WorkloadSpec(
        name="tiny",
        source=TINY_SOURCE,
        expected={"out": [15, 6, 22, 8, 29, 50, 16, 37]},
        expected_return=183,
        mem_words=1 << 12,
    )


@pytest.fixture(scope="module")
def checker():
    return LockstepChecker(tiny_spec(), epic_config())


class TestBaseline:
    def test_fault_free_run_is_masked(self, checker):
        result = checker.run_one(None)
        assert result.outcome is Outcome.MASKED
        assert result.cycles == checker.reference_cycles

    def test_watchdog_sized_from_reference(self, checker):
        assert checker.watchdog_cycles > checker.reference_cycles

    def test_golden_outputs_come_from_interpreter(self, checker):
        assert checker.golden_outputs["out"] == [15, 6, 22, 8, 29, 50, 16, 37]
        assert checker.golden_return == 183


class TestClassification:
    def test_hardwired_zero_fault_is_masked(self, checker):
        result = checker.run_one(FaultSpec(SPACE_GPR, 0, 3, 0))
        assert result.outcome is Outcome.MASKED

    def test_late_output_flip_is_sdc(self, checker):
        out_base = checker.compilation.symbols["out"]
        fault = FaultSpec(SPACE_MEM, out_base, 0,
                          checker.reference_cycles - 1)
        result = checker.run_one(fault)
        assert result.outcome is Outcome.SDC
        assert "out[0]" in result.detail

    def test_watchdog_overrun_is_hung(self, checker):
        saved = checker.watchdog_cycles
        checker.watchdog_cycles = 2
        try:
            result = checker.run_one(None)
        finally:
            checker.watchdog_cycles = saved
        assert result.outcome is Outcome.HUNG

    def test_ifetch_sweep_covers_taxonomy(self, checker):
        """Every corrupted-fetch run lands in exactly one outcome, and
        some opcode-field flip must be *detected* as an illegal op."""
        bits = InstructionFormat(checker.config).instruction_bits
        outcomes = set()
        trap_causes = set()
        for bit in range(bits):
            result = checker.run_one(
                FaultSpec(SPACE_IFETCH, 0, bit, 2))
            assert isinstance(result.outcome, Outcome)
            if result.trap_cause is not None:
                trap_causes.add(result.trap_cause)
            outcomes.add(result.outcome)
        assert Outcome.DETECTED in outcomes
        assert Outcome.MASKED in outcomes
        assert "illegal-instruction" in trap_causes

    def test_classification_is_deterministic(self, checker):
        fault = FaultSpec(SPACE_MEM, 0, 7, 1)
        first = checker.run_one(fault)
        second = checker.run_one(fault)
        assert (first.outcome, first.detail, first.cycles) == \
            (second.outcome, second.detail, second.cycles)


class TestOutcomeEnum:
    def test_values_are_the_report_vocabulary(self):
        assert {o.value for o in Outcome} == \
            {"masked", "detected", "hung", "sdc"}
