"""Fault injector unit behaviour: models, protection, determinism."""

import pytest

from repro.asm import assemble
from repro.config import epic_config
from repro.core import EpicProcessor
from repro.errors import SimulationError, TrapError, TRAP_PARITY
from repro.reliability import (
    FaultInjector,
    FaultSpec,
    MODEL_SEU,
    MODEL_STUCK0,
    MODEL_STUCK1,
    SPACE_GPR,
    SPACE_IFETCH,
    SPACE_MEM,
    SPACE_PRED,
)


def build(source, faults=(), mem_words=64, **overrides):
    config = epic_config(**overrides)
    return EpicProcessor(config, assemble(source, config),
                         mem_words=mem_words,
                         injector=FaultInjector(faults))


class TestValidation:
    def test_unknown_space_rejected(self):
        with pytest.raises(SimulationError):
            FaultInjector([FaultSpec("flux", 0, 0, 0)])

    def test_unknown_model_rejected(self):
        with pytest.raises(SimulationError):
            FaultInjector([FaultSpec(SPACE_GPR, 1, 0, 0, model="glitch")])

    def test_negative_fields_rejected(self):
        with pytest.raises(SimulationError):
            FaultInjector([FaultSpec(SPACE_GPR, 1, -1, 0)])

    def test_out_of_range_target_rejected_at_attach(self):
        with pytest.raises(SimulationError):
            build("HALT", [FaultSpec(SPACE_GPR, 10_000, 0, 0)])

    def test_injector_is_single_use(self):
        injector = FaultInjector([])
        config = epic_config()
        program = assemble("HALT", config)
        EpicProcessor(config, program, mem_words=64, injector=injector)
        with pytest.raises(SimulationError):
            EpicProcessor(config, program, mem_words=64, injector=injector)


class TestStateFaults:
    def test_seu_flips_a_memory_bit(self):
        cpu = build("HALT", [FaultSpec(SPACE_MEM, 3, 4, 0)])
        cpu.run(max_cycles=10)
        assert cpu.memory.peek(3) == 1 << 4
        assert cpu.injector.log[0].disposition == "flipped"

    def test_seu_flips_a_gpr_bit(self):
        source = """
          NOP
          NOP
          HALT
        """
        cpu = build(source, [FaultSpec(SPACE_GPR, 4, 7, 1)])
        cpu.run(max_cycles=10)
        assert cpu.gpr.peek(4) == 1 << 7

    def test_hardwired_registers_have_no_storage(self):
        cpu = build("HALT", [FaultSpec(SPACE_GPR, 0, 3, 0),
                             FaultSpec(SPACE_PRED, 0, 0, 0)])
        cpu.run(max_cycles=10)
        assert cpu.gpr.peek(0) == 0
        assert cpu.pred.peek(0) == 1
        assert [e.disposition for e in cpu.injector.log] == \
            ["no-storage", "no-storage"]

    def test_stuck_at_zero_defeats_a_later_write(self):
        source = """
        .data
        buf: .space 4
        .text
          MOVI r4, 5
          NOP
          SW r4, r0, buf
          NOP
          NOP
          HALT
        """
        cpu = build(source, [FaultSpec(SPACE_MEM, 0, 0, 0,
                                       model=MODEL_STUCK0)])
        cpu.run(max_cycles=20)
        # The store wrote 5, but bit 0 is stuck at 0 -> 4 remains.
        assert cpu.memory.peek(0) == 4

    def test_stuck_at_one_sets_bit(self):
        cpu = build("HALT", [FaultSpec(SPACE_MEM, 2, 1, 0,
                                       model=MODEL_STUCK1)])
        cpu.run(max_cycles=10)
        assert cpu.memory.peek(2) == 2
        assert cpu.injector.log[0].disposition == "forced"


class TestProtection:
    def test_ecc_corrects_the_fault(self):
        cpu = build("HALT", [FaultSpec(SPACE_MEM, 3, 4, 0)],
                    memory_protection="ecc")
        cpu.run(max_cycles=10)
        assert cpu.memory.peek(3) == 0
        assert cpu.injector.log[0].disposition == "corrected"

    def test_parity_poisons_and_traps_on_read(self):
        source = """
        .data
        v: .word 9
        .text
          NOP
          NOP
          LW r4, r0, v
          HALT
        """
        cpu = build(source, [FaultSpec(SPACE_MEM, 0, 2, 0)],
                    memory_protection="parity")
        with pytest.raises(TrapError) as info:
            cpu.run(max_cycles=20)
        assert info.value.cause == TRAP_PARITY
        assert cpu.injector.log[0].disposition == "flipped+poisoned"

    def test_parity_unread_word_never_traps(self):
        cpu = build("HALT", [FaultSpec(SPACE_MEM, 3, 4, 0)],
                    memory_protection="parity")
        result = cpu.run(max_cycles=10)
        assert result.halted and result.traps == []

    def test_write_repairs_parity_poison(self):
        source = """
        .data
        v: .word 9
        .text
          MOVI r4, 6
          NOP
          SW r4, r0, v
          NOP
          LW r5, r0, v
          HALT
        """
        cpu = build(source, [FaultSpec(SPACE_MEM, 0, 2, 0)],
                    memory_protection="parity")
        result = cpu.run(max_cycles=20)
        assert result.halted
        assert cpu.gpr.read(5) == 6


COUNTDOWN = """
  MOVI r4, 20
  NOP
loop:
  PBR b0, loop
  SUB r4, r4, 1
  CMPP_EQ p1, p2, r4, 0
  NOP
  (p2) BR b0
  HALT
"""


class TestZeroCostWhenIdle:
    def test_empty_fault_list_is_cycle_identical(self):
        config = epic_config()
        program = assemble(COUNTDOWN, config)
        plain = EpicProcessor(config, program, mem_words=64)
        baseline = plain.run(max_cycles=10_000)
        injected = EpicProcessor(config, program, mem_words=64,
                                 injector=FaultInjector([]))
        shadowed = injected.run(max_cycles=10_000)
        assert shadowed.cycles == baseline.cycles
        assert injected.gpr.peek(4) == plain.gpr.peek(4)
        assert injected.injector.log == []


class TestFetchFaults:
    def test_ifetch_fault_logs_and_classifies(self):
        # Whatever the flipped bit turns the op into, the injector must
        # log the corruption and the machine must either trap or halt.
        config = epic_config()
        for bit in (0, 7, 21, 40):
            program = assemble(COUNTDOWN, config)
            injector = FaultInjector(
                [FaultSpec(SPACE_IFETCH, 0, bit, 2)])
            cpu = EpicProcessor(config, program, mem_words=64,
                                injector=injector)
            try:
                cpu.run(max_cycles=10_000)
            except SimulationError:
                pass
            assert len(injector.log) == 1
            assert injector.log[0].disposition in (
                "fetch-corrupted", "fetch-illegal")

    def test_ifetch_fault_is_deterministic(self):
        config = epic_config()
        outcomes = []
        for _ in range(2):
            program = assemble(COUNTDOWN, config)
            injector = FaultInjector([FaultSpec(SPACE_IFETCH, 0, 13, 2)])
            cpu = EpicProcessor(config, program, mem_words=64,
                                injector=injector)
            try:
                result = cpu.run(max_cycles=10_000)
                outcomes.append(("ran", result.cycles, cpu.gpr.peek(4)))
            except SimulationError as error:
                outcomes.append(("error", type(error).__name__, str(error)))
        assert outcomes[0] == outcomes[1]
