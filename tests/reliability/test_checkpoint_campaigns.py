"""Differential proof: checkpointed campaigns equal from-zero campaigns.

The acceptance property of the fast-forward machinery: for every
workload, machine width and fault space, the outcome table produced
with checkpoint restore + early-convergence cuts is byte-identical to
the one produced by simulating every injection from cycle zero —
same outcome, same detail string, same cycle count, same trap cause.

Checkpoint intervals are randomised (seeded) so the grid keeps probing
different restore/cut points rather than one blessed spacing.
"""

import json

import pytest

from repro.config import epic_with_alus
from repro.harness.cli import quick_specs
from repro.harness.faultcampaign import (
    campaign_payload,
    generate_faults,
    run_campaign,
)
from repro.reliability import FAULT_SPACES, LockstepChecker
from repro.workloads.common import XorShift32
from tests.reliability.test_lockstep import tiny_spec

#: Seeded interval stream: every pytest run probes the same grid, but
#: each (workload, machine) cell gets its own checkpoint spacing.
_INTERVALS = XorShift32(0xC0FFEE)

GRID = [(name, n_alus)
        for name in ("SHA", "AES", "DCT", "Dijkstra")
        for n_alus in (1, 2, 3, 4)]


def _differential(spec, config, n, seed, interval, spaces=None):
    """One campaign both ways on a shared checker; assert byte equality."""
    checker = LockstepChecker(spec, config, checkpoints=False,
                              checkpoint_interval=interval)
    kwargs = {"spaces": tuple(spaces)} if spaces else {}
    baseline = run_campaign(spec, config, n, seed, checker=checker,
                            checkpoints=False, **kwargs)
    fast = run_campaign(spec, config, n, seed, checker=checker,
                        checkpoints=True, **kwargs)
    left = json.dumps(campaign_payload([baseline]), sort_keys=True)
    right = json.dumps(campaign_payload([fast]), sort_keys=True)
    assert left == right
    return checker


class TestWorkloadMachineGrid:
    """All four paper workloads at every datapath width, all spaces."""

    @pytest.mark.parametrize("name,n_alus", GRID,
                             ids=[f"{n}-{a}alu" for n, a in GRID])
    def test_outcome_tables_byte_identical(self, name, n_alus):
        spec = quick_specs([name])[0]
        interval = 32 + _INTERVALS.next() % 4096
        _differential(spec, epic_with_alus(n_alus), n=4, seed=11,
                      interval=interval)


class TestPerSpaceDifferential:
    """Each fault space alone, on a fast-compiling tiny workload."""

    @pytest.mark.parametrize("space", sorted(FAULT_SPACES))
    def test_single_space_byte_identical(self, space):
        interval = 8 + _INTERVALS.next() % 64
        _differential(tiny_spec(), epic_with_alus(2), n=8, seed=5,
                      interval=interval, spaces=(space,))


class TestFastForwardMechanics:
    @pytest.fixture(scope="class")
    def checker(self):
        return LockstepChecker(tiny_spec(), epic_with_alus(2),
                               checkpoint_interval=16)

    def test_prepare_builds_a_stream(self, checker):
        assert checker.prepare_checkpoints()
        assert checker.fastforward_stats()["checkpoints"] > 1

    def test_campaign_actually_fast_forwards(self, checker):
        before = checker.fastforward_stats()
        for fault in generate_faults(checker, 12, seed=9):
            checker.run_one(fault)
        after = checker.fastforward_stats()
        # At least one injection landed late enough to skip a prefix,
        # and the skipped prefix is real simulated work not done.
        assert after["restores"] > before["restores"]
        assert after["cycles_skipped"] > before["cycles_skipped"]

    def test_convergence_cut_on_early_masked_fault(self, checker):
        # A flip of the hardwired zero register can never propagate:
        # the run must converge onto the golden stream and be cut
        # without simulating to completion.
        from repro.reliability import SPACE_GPR, FaultSpec, Outcome

        before = checker.fastforward_stats()["convergence_cuts"]
        result = checker.run_one(FaultSpec(SPACE_GPR, 0, 1, 2))
        after = checker.fastforward_stats()["convergence_cuts"]
        assert result.outcome is Outcome.MASKED
        assert result.detail == "outputs match"
        assert result.cycles == checker.reference_cycles
        assert after == before + 1

    def test_disabled_checkpoints_never_restore(self):
        checker = LockstepChecker(tiny_spec(), epic_with_alus(2),
                                  checkpoints=False)
        for fault in generate_faults(checker, 6, seed=3):
            checker.run_one(fault)
        stats = checker.fastforward_stats()
        assert stats == {"restores": 0, "cycles_skipped": 0,
                         "convergence_cuts": 0, "checkpoints": 0}
