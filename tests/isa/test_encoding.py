"""The parametric instruction format: layout, range checks, round trips."""

import pytest
from hypothesis import given, strategies as st

from repro.config import epic_config
from repro.errors import EncodingError
from repro.isa import InstructionFormat, Instruction
from repro.isa.operands import Btr, Lit, Pred, Reg
from repro.isa.opcodes import FuClass
from repro.isa import signatures as sig
from repro.isa.signatures import signature_of


@pytest.fixture(scope="module")
def fmt():
    return InstructionFormat(epic_config())


class TestLayout:
    def test_paper_default_is_64_bits(self, fmt):
        assert fmt.instruction_bits == 64

    def test_paper_field_widths(self, fmt):
        layout = fmt.layout
        assert layout.opcode_bits == 15
        assert layout.dest_bits == 6
        assert layout.src_bits == 16
        assert layout.pred_bits == 5

    def test_literal_is_15_bit_signed(self, fmt):
        assert fmt.literal_bits == 15
        assert fmt.literal_fits(16383)
        assert not fmt.literal_fits(16384)
        assert fmt.literal_fits(-16384)
        assert not fmt.literal_fits(-16385)

    def test_long_literal_spans_both_src_fields(self, fmt):
        assert fmt.long_literal_bits == 32

    def test_more_registers_widen_the_instruction(self):
        """§3.3: exceeding 64 registers requires re-designing the
        format; the parametric format does it automatically."""
        wide = InstructionFormat(
            epic_config(n_gprs=128, regs_per_instruction=128)
        )
        assert wide.layout.dest_bits == 7
        assert wide.instruction_bits > 64

    def test_tiny_machine_keeps_default_widths(self):
        small = InstructionFormat(epic_config(n_gprs=16))
        assert small.instruction_bits == 64


def _sample_instructions():
    return [
        Instruction("ADD", dest1=Reg(5), src1=Reg(1), src2=Reg(2)),
        Instruction("ADD", dest1=Reg(5), src1=Reg(1), src2=Lit(-42)),
        Instruction("SUB", dest1=Reg(63), src1=Lit(16383), src2=Reg(0)),
        Instruction("MOVI", dest1=Reg(9), src1=Lit(-2147483648)),
        Instruction("MOVI", dest1=Reg(9), src1=Lit(0x7FFFFFFF)),
        Instruction("CMPP_LT", dest1=Pred(3), dest2=Pred(4),
                    src1=Reg(8), src2=Lit(100)),
        Instruction("LW", dest1=Reg(4), src1=Reg(1), src2=Lit(12)),
        Instruction("SW", dest1=Reg(4), src1=Reg(1), src2=Lit(-3)),
        Instruction("LWS", dest1=Reg(4), src1=Reg(7), src2=Reg(8)),
        Instruction("PBR", dest1=Btr(2), src1=Lit(77)),
        Instruction("MOVGBP", dest1=Btr(15), src1=Reg(3)),
        Instruction("BR", src1=Btr(0)),
        Instruction("BRCT", src1=Btr(1), src2=Pred(9)),
        Instruction("BRCF", src1=Btr(1), src2=Pred(31)),
        Instruction("BRL", dest1=Reg(3), src1=Btr(7)),
        Instruction("HALT"),
        Instruction("NOP"),
        Instruction("ADD", dest1=Reg(2), src1=Reg(3), src2=Reg(4),
                    guard=Pred(17)),
    ]


class TestRoundTrip:
    @pytest.mark.parametrize("instr", _sample_instructions(),
                             ids=lambda i: str(i))
    def test_encode_decode_round_trip(self, fmt, instr):
        decoded = fmt.decode(fmt.encode(instr))
        assert decoded.mnemonic == instr.mnemonic
        assert decoded.src1 == instr.src1
        assert decoded.src2 == instr.src2
        assert decoded.dest1 == instr.dest1
        assert decoded.guard == instr.guard
        # CMPP's absent second destination decodes as the discard
        # register p0; everything else must match exactly.
        if instr.dest2 is not None:
            assert decoded.dest2 == instr.dest2

    @given(
        dest=st.integers(0, 63),
        a=st.integers(0, 63),
        literal=st.integers(-16384, 16383),
        guard=st.integers(0, 31),
        mnemonic=st.sampled_from(["ADD", "SUB", "AND", "OR", "XOR", "MUL"]),
    )
    def test_alu_random_round_trip(self, fmt, dest, a, literal, guard,
                                   mnemonic):
        instr = Instruction(mnemonic, dest1=Reg(dest), src1=Reg(a),
                            src2=Lit(literal), guard=Pred(guard))
        assert fmt.decode(fmt.encode(instr)) == instr

    @given(value=st.integers(-(2 ** 31), 2 ** 31 - 1))
    def test_movi_round_trip_full_range(self, fmt, value):
        instr = Instruction("MOVI", dest1=Reg(1), src1=Lit(value))
        decoded = fmt.decode(fmt.encode(instr))
        assert decoded.src1.value & 0xFFFFFFFF == value & 0xFFFFFFFF


class TestRangeChecks:
    def test_register_out_of_range(self, fmt):
        with pytest.raises(EncodingError):
            fmt.encode(Instruction("ADD", dest1=Reg(64), src1=Reg(0),
                                   src2=Reg(0)))

    def test_literal_too_wide(self, fmt):
        with pytest.raises(EncodingError):
            fmt.encode(Instruction("ADD", dest1=Reg(1), src1=Reg(0),
                                   src2=Lit(1 << 20)))

    def test_guard_out_of_range(self, fmt):
        with pytest.raises(EncodingError):
            fmt.encode(Instruction("NOP", guard=Pred(99)))

    def test_wrong_operand_kind(self, fmt):
        with pytest.raises(EncodingError):
            fmt.encode(Instruction("BR", src1=Reg(4)))

    def test_literal_where_predicate_required(self, fmt):
        with pytest.raises(EncodingError):
            fmt.encode(Instruction("BRCT", src1=Btr(0), src2=Lit(3)))


class TestProgramImages:
    def test_program_encode_pads_bundles(self, fmt):
        from repro.isa.bundle import Bundle, Program
        program = Program(bundles=[
            Bundle((Instruction("HALT"),)),
        ])
        words = fmt.encode_program(program)
        assert len(words) == fmt.config.issue_width

    def test_image_round_trip(self, fmt):
        from repro.isa.bundle import Bundle, Program
        bundle = Bundle((
            Instruction("ADD", dest1=Reg(5), src1=Reg(1), src2=Lit(3)),
            Instruction("LW", dest1=Reg(6), src1=Reg(1), src2=Lit(0)),
        ))
        program = Program(bundles=[bundle, Bundle((Instruction("HALT"),))])
        words = fmt.encode_program(program)
        decoded = fmt.decode_program(words)
        assert len(decoded) == 2
        assert decoded[0].slots[0].mnemonic == "ADD"
        assert decoded[0].slots[2].is_nop

    def test_bytes_round_trip_big_endian(self, fmt):
        words = [0x0123456789ABCDEF, 0x1122334455667788]
        blob = fmt.to_bytes(words)
        assert blob[0] == 0x01  # big-endian architecture (§3.1)
        assert fmt.from_bytes(blob) == words

    def test_misaligned_image_rejected(self, fmt):
        with pytest.raises(EncodingError):
            fmt.decode_program([0, 0, 0])


class TestSignatures:
    def test_every_opcode_has_a_signature(self, fmt):
        for info in fmt.table:
            signature_of(info)

    def test_sw_reads_dest_field(self, fmt):
        signature = signature_of(fmt.table.lookup("SW"))
        assert signature.dest1_is_source

    def test_cmpu_signature_is_pred_pair(self, fmt):
        signature = signature_of(fmt.table.lookup("CMPP_EQ"))
        assert signature.dest1 == sig.PRD
        assert signature.dest2 == sig.PRD
