"""Opcode table construction, feature gating and Hamming grouping."""

import pytest

from repro.config import AluFeature, epic_config
from repro.errors import EncodingError
from repro.isa import CustomOpSpec, FuClass, build_opcode_table
from repro.isa.opcodes import OPCODE_CLASS, Opcode


@pytest.fixture(scope="module")
def table():
    return build_opcode_table(epic_config())


class TestTableConstruction:
    def test_all_builtins_present_by_default(self, table):
        for op in Opcode:
            assert op.value in table

    def test_lookup_round_trip(self, table):
        for info in table:
            assert table.by_code(info.code) is info
            assert table.lookup(info.mnemonic) is info

    def test_unknown_mnemonic_raises(self, table):
        with pytest.raises(EncodingError):
            table.lookup("FNORD")

    def test_unknown_code_raises(self, table):
        with pytest.raises(EncodingError):
            table.by_code(0x7FFF)

    def test_codes_unique(self, table):
        codes = [info.code for info in table]
        assert len(codes) == len(set(codes))


class TestFeatureGating:
    def test_divide_feature_removes_div_rem(self):
        config = epic_config(
            alu_features=frozenset({AluFeature.MULTIPLY, AluFeature.SHIFT})
        )
        table = build_opcode_table(config)
        assert "DIV" not in table
        assert "REM" not in table
        assert "ADD" in table

    def test_shift_feature_removes_shifts(self):
        config = epic_config(
            alu_features=frozenset({AluFeature.MULTIPLY, AluFeature.DIVIDE})
        )
        table = build_opcode_table(config)
        for mnemonic in ("SHL", "SHR", "SHRA"):
            assert mnemonic not in table

    def test_multiply_feature_removes_mul(self):
        config = epic_config(
            alu_features=frozenset({AluFeature.DIVIDE, AluFeature.SHIFT})
        )
        assert "MUL" not in build_opcode_table(config)


class TestClassGrouping:
    def test_same_class_shares_code_prefix(self, table):
        """§3.1: opcodes minimise Hamming distance within a type —
        our encoding places the FU class in the upper bits."""
        by_class = {}
        for info in table:
            by_class.setdefault(info.fu_class, []).append(info.code)
        for codes in by_class.values():
            prefixes = {code >> 8 for code in codes}
            assert len(prefixes) == 1

    def test_adjacent_codes_gray_coded(self, table):
        """Consecutive ALU opcodes differ in at most 2 bits of the low
        byte (Gray sequence property across the enumeration)."""
        alu_codes = sorted(
            info.code & 0xFF for info in table
            if info.fu_class is FuClass.ALU
        )
        gray = [c ^ (c >> 1) for c in range(len(alu_codes))]
        assert set(alu_codes) == set(gray)

    def test_classification_consistency(self, table):
        for info in table:
            if info.is_custom:
                continue
            assert info.fu_class == OPCODE_CLASS[Opcode(info.mnemonic)]

    def test_branch_flags(self, table):
        assert table.lookup("BR").is_branch
        assert table.lookup("BRCT").is_branch
        assert not table.lookup("PBR").is_branch
        assert not table.lookup("MOVGBP").is_branch

    def test_memory_flags(self, table):
        for mnemonic in ("LW", "SW", "LWS"):
            assert table.lookup(mnemonic).is_memory
        assert not table.lookup("ADD").is_memory

    def test_cmpp_writes_predicates(self, table):
        assert table.lookup("CMPP_LT").writes_pred
        assert not table.lookup("ADD").writes_pred


class TestCustomOps:
    def test_custom_op_gets_reserved_class(self):
        spec = CustomOpSpec("FUSEDOP", func=lambda a, b, m: a + b)
        table = build_opcode_table(epic_config(custom_ops=(spec,)))
        info = table.lookup("FUSEDOP")
        assert info.is_custom
        assert info.fu_class is FuClass.ALU
        assert info.code >> 8 == 0x5

    def test_custom_op_does_not_collide(self):
        spec = CustomOpSpec("FUSEDOP", func=lambda a, b, m: a)
        table = build_opcode_table(epic_config(custom_ops=(spec,)))
        codes = [info.code for info in table]
        assert len(codes) == len(set(codes))
