"""Custom-instruction specifications (§3.3)."""

import pytest

from repro.errors import ConfigError
from repro.isa import CustomOpSpec


def test_evaluate_masks_to_datapath():
    spec = CustomOpSpec("WIDEADD", func=lambda a, b, m: a + b)
    assert spec.evaluate(0xFFFFFFFF, 1, 0xFFFFFFFF) == 0
    assert spec.evaluate(0xFFFF, 1, 0xFFFF) == 0


def test_mnemonic_must_be_uppercase_identifier():
    with pytest.raises(ConfigError):
        CustomOpSpec("bad", func=lambda a, b, m: a)
    with pytest.raises(ConfigError):
        CustomOpSpec("NO SPACES", func=lambda a, b, m: a)
    with pytest.raises(ConfigError):
        CustomOpSpec("", func=lambda a, b, m: a)


def test_only_alu_class_supported():
    with pytest.raises(ConfigError):
        CustomOpSpec("FOO", func=lambda a, b, m: a, fu_class="lsu")


def test_latency_and_slices_validated():
    with pytest.raises(ConfigError):
        CustomOpSpec("FOO", func=lambda a, b, m: a, latency=0)
    with pytest.raises(ConfigError):
        CustomOpSpec("FOO", func=lambda a, b, m: a, slices=-1)


def test_multi_cycle_custom_op_allowed():
    spec = CustomOpSpec("SLOWOP", func=lambda a, b, m: a ^ b, latency=4)
    assert spec.latency == 4
