"""Property tests: opcode semantics vs two's-complement arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.isa import semantics as sem

WORD = st.integers(min_value=0, max_value=0xFFFFFFFF)
WIDTHS = st.sampled_from([8, 16, 32])


def ref_signed(value, width):
    value &= (1 << width) - 1
    return value - (1 << width) if value >> (width - 1) else value


@given(WORD)
def test_to_signed_round_trips(value):
    assert sem.to_unsigned(sem.to_signed(value, 32), 32) == value


@given(WORD, WORD)
def test_add_wraps(a, b):
    assert sem.add(a, b, 32) == (a + b) & 0xFFFFFFFF


@given(WORD, WORD)
def test_sub_wraps(a, b):
    assert sem.sub(a, b, 32) == (a - b) & 0xFFFFFFFF


@given(WORD, WORD)
def test_mul_low_word(a, b):
    assert sem.mul(a, b, 32) == (a * b) & 0xFFFFFFFF


@given(WORD, WORD)
def test_div_matches_c_truncation(a, b):
    if b == 0:
        with pytest.raises(SimulationError):
            sem.div(a, b, 32)
        return
    sa, sb = ref_signed(a, 32), ref_signed(b, 32)
    expected = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        expected = -expected
    assert ref_signed(sem.div(a, b, 32), 32) == ref_signed(expected & 0xFFFFFFFF, 32)


@given(WORD, WORD)
def test_div_rem_identity(a, b):
    """(a / b) * b + (a % b) == a in wrapping arithmetic."""
    if b == 0:
        return
    q = sem.div(a, b, 32)
    r = sem.rem(a, b, 32)
    assert sem.add(sem.mul(q, b, 32), r, 32) == a


@given(WORD, WORD)
def test_rem_sign_follows_dividend(a, b):
    if b == 0:
        return
    r = ref_signed(sem.rem(a, b, 32), 32)
    sa = ref_signed(a, 32)
    assert r == 0 or (r < 0) == (sa < 0)


@given(WORD, WORD)
def test_bitwise_ops(a, b):
    assert sem.and_(a, b, 32) == a & b
    assert sem.or_(a, b, 32) == a | b
    assert sem.xor(a, b, 32) == a ^ b
    assert sem.andcm(a, b, 32) == a & (~b & 0xFFFFFFFF)


@given(WORD, st.integers(min_value=0, max_value=255))
def test_shifts_use_low_bits_of_amount(a, amount):
    effective = amount & 31
    assert sem.shl(a, amount, 32) == (a << effective) & 0xFFFFFFFF
    assert sem.shr(a, amount, 32) == a >> effective
    assert sem.shra(a, amount, 32) == (ref_signed(a, 32) >> effective) & 0xFFFFFFFF


@given(WORD, WORD)
def test_min_max_are_signed(a, b):
    lo, hi = sorted((a, b), key=lambda v: ref_signed(v, 32))
    assert sem.min_(a, b, 32) == lo
    assert sem.max_(a, b, 32) == hi


@given(WORD, WORD)
def test_comparisons_partition(a, b):
    assert sem.cmp_eq(a, b, 32) + sem.cmp_ne(a, b, 32) == 1
    assert sem.cmp_lt(a, b, 32) + sem.cmp_ge(a, b, 32) == 1
    assert sem.cmp_le(a, b, 32) + sem.cmp_gt(a, b, 32) == 1
    assert sem.cmp_ult(a, b, 32) + sem.cmp_uge(a, b, 32) == 1


@given(WORD, WORD)
def test_signed_vs_unsigned_comparison(a, b):
    assert sem.cmp_lt(a, b, 32) == int(ref_signed(a, 32) < ref_signed(b, 32))
    assert sem.cmp_ult(a, b, 32) == int(a < b)


@given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF), WIDTHS)
def test_semantics_respect_width(a, b, width):
    mask = (1 << width) - 1
    assert sem.add(a, b, width) <= mask
    assert sem.mul(a, b, width) <= mask
    assert sem.shl(a, b, width) <= mask


def test_dispatch_tables_cover_mnemonics():
    assert set(sem.ALU_SEMANTICS) >= {
        "ADD", "SUB", "MUL", "DIV", "REM", "AND", "OR", "XOR",
        "ANDCM", "SHL", "SHR", "SHRA", "MIN", "MAX",
    }
    assert all(name.startswith("CMPP_") for name in sem.CMP_SEMANTICS)
