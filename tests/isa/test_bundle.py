"""Bundles (issue groups) and program containers."""

import pytest

from repro.errors import EncodingError
from repro.isa import Bundle, Instruction, Program, nop
from repro.isa.operands import Lit, Reg


def _add(dest):
    return Instruction("ADD", dest1=Reg(dest), src1=Reg(1), src2=Lit(1))


class TestBundle:
    def test_empty_bundle_rejected(self):
        with pytest.raises(EncodingError):
            Bundle(())

    def test_padding_fills_with_nops(self):
        bundle = Bundle((_add(2),)).padded(4)
        assert len(bundle) == 4
        assert [i.is_nop for i in bundle] == [False, True, True, True]

    def test_padding_beyond_width_rejected(self):
        bundle = Bundle(tuple(_add(i) for i in range(3)))
        with pytest.raises(EncodingError):
            bundle.padded(2)

    def test_real_ops_excludes_padding(self):
        bundle = Bundle((_add(2), nop(), _add(3)))
        assert len(bundle.real_ops) == 2

    def test_str_uses_double_semicolon(self):
        text = str(Bundle((_add(2), _add(3))))
        assert ";;" in text


class TestProgram:
    def _program(self):
        return Program(
            bundles=[
                Bundle((_add(2), _add(3))).padded(4),
                Bundle((Instruction("HALT"),)).padded(4),
            ],
            labels={"main": 0, "end": 1},
            data=[1, 2, 3],
            symbols={"table": 0},
        )

    def test_operation_counts(self):
        program = self._program()
        assert program.n_operations == 3   # 2 adds + HALT
        assert program.n_slots == 8

    def test_listing_contains_labels_and_addresses(self):
        listing = self._program().listing()
        assert "main:" in listing
        assert "end:" in listing
        assert "0:" in listing

    def test_iteration(self):
        assert len(list(self._program())) == 2
