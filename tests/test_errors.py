"""Exception hierarchy: catchability and diagnostic formatting."""

import pytest

from repro import errors


def test_everything_derives_from_repro_error():
    for name in ("ConfigError", "EncodingError", "AsmError", "CompileError",
                 "IRError", "ScheduleError", "RegAllocError",
                 "SimulationError", "MdesError", "WorkloadError",
                 "TrapError", "CycleLimitExceeded", "HangDetected"):
        assert issubclass(getattr(errors, name), errors.ReproError)


def test_every_error_class_is_constructible_and_catchable():
    instances = [
        errors.ConfigError("x"),
        errors.EncodingError("x"),
        errors.AsmError("x", line=1),
        errors.CompileError("x"),
        errors.IRError("x"),
        errors.ScheduleError("x"),
        errors.RegAllocError("x"),
        errors.SimulationError("x", cycle=1, pc=2),
        errors.MdesError("x"),
        errors.WorkloadError("x"),
        errors.TrapError("x", cause=errors.TRAP_OOB_STORE),
        errors.CycleLimitExceeded("x", cycle=3),
        errors.HangDetected("x"),
    ]
    for instance in instances:
        with pytest.raises(errors.ReproError):
            raise instance


def test_asm_error_location_prefix():
    error = errors.AsmError("bad operand", line=12, column=3)
    assert str(error) == "12:3: bad operand"
    assert error.line == 12


def test_asm_error_without_location():
    assert str(errors.AsmError("oops")) == "oops"


def test_compile_error_location_prefix():
    error = errors.CompileError("undeclared", line=7)
    assert str(error).startswith("7:")


def test_simulation_error_context():
    error = errors.SimulationError("bad load", cycle=42, pc=0x10)
    text = str(error)
    assert "cycle=42" in text
    assert "pc=0x10" in text
    assert error.cycle == 42


def test_simulation_error_without_context():
    assert str(errors.SimulationError("boom")) == "boom"


def test_simulation_error_annotate_fills_missing_context():
    error = errors.SimulationError("bad load")
    error.annotate(cycle=7, pc=3)
    assert error.cycle == 7 and error.pc == 3
    assert "cycle=7" in str(error) and "pc=0x3" in str(error)


def test_simulation_error_annotate_keeps_existing_context():
    error = errors.SimulationError("bad load", cycle=5, pc=1)
    error.annotate(cycle=99, pc=99)
    assert error.cycle == 5 and error.pc == 1


def test_trap_error_formatting_and_cause():
    error = errors.TrapError("store to 300", cause=errors.TRAP_OOB_STORE,
                             cycle=12, pc=4, slot=2)
    text = str(error)
    assert text.startswith("trap(oob-store):")
    assert "cycle=12" in text and "pc=0x4" in text and "slot=2" in text
    assert error.cause in errors.TRAP_CAUSES


def test_trap_error_annotate_adds_slot():
    error = errors.TrapError("boom", cause=errors.TRAP_PARITY)
    error.annotate(cycle=3, pc=9, slot=1)
    assert (error.cycle, error.pc, error.slot) == (3, 9, 1)
    assert "slot=1" in str(error)


def test_trap_causes_are_complete():
    assert errors.TRAP_CAUSES == {
        "illegal-instruction", "oob-load", "oob-store",
        "register-port-overflow", "parity-error",
    }


def test_cycle_limit_exceeded_carries_limit():
    error = errors.CycleLimitExceeded("over budget", cycle=100, limit=100)
    assert error.limit == 100
    assert isinstance(error, errors.SimulationError)


def test_hang_detected_is_a_cycle_limit():
    error = errors.HangDetected("watchdog", cycle=5000, limit=5000)
    assert isinstance(error, errors.CycleLimitExceeded)
    with pytest.raises(errors.CycleLimitExceeded):
        raise error


def test_tool_boundary_catches_everything():
    """A tool can wrap any subsystem with one except clause."""
    from repro.lang import compile_minic

    with pytest.raises(errors.ReproError):
        compile_minic("int main( {")
