"""Exception hierarchy: catchability and diagnostic formatting."""

import pytest

from repro import errors


def test_everything_derives_from_repro_error():
    for name in ("ConfigError", "EncodingError", "AsmError", "CompileError",
                 "IRError", "ScheduleError", "RegAllocError",
                 "SimulationError", "MdesError", "WorkloadError"):
        assert issubclass(getattr(errors, name), errors.ReproError)


def test_asm_error_location_prefix():
    error = errors.AsmError("bad operand", line=12, column=3)
    assert str(error) == "12:3: bad operand"
    assert error.line == 12


def test_asm_error_without_location():
    assert str(errors.AsmError("oops")) == "oops"


def test_compile_error_location_prefix():
    error = errors.CompileError("undeclared", line=7)
    assert str(error).startswith("7:")


def test_simulation_error_context():
    error = errors.SimulationError("bad load", cycle=42, pc=0x10)
    text = str(error)
    assert "cycle=42" in text
    assert "pc=0x10" in text
    assert error.cycle == 42


def test_simulation_error_without_context():
    assert str(errors.SimulationError("boom")) == "boom"


def test_tool_boundary_catches_everything():
    """A tool can wrap any subsystem with one except clause."""
    from repro.lang import compile_minic

    with pytest.raises(errors.ReproError):
        compile_minic("int main( {")
