"""Profile-guided superblock compilation for the EPIC core.

The fast path (:mod:`repro.core.fastpath`) removed per-op dispatch but
still pays, on *every* simulated cycle, for one Python function call,
a write-back drain probe, the PC bounds check and the port/fetch stall
arithmetic.  For loop-dominated workloads (all four paper benchmarks)
nearly all of that is invariant across iterations.

This module removes it by compiling *superblocks*: the run loop counts
entries at taken-branch targets, and once a target crosses a hotness
threshold the trace builder walks the statically-known fall-through
chain from it — ending at an unconditional control transfer, a
loop-back, the end of the program or a length cap — and emits ONE
generated Python function for the whole chain, with

* the per-bundle issue schedule folded to constant cycle offsets
  (static fetch stalls included),
* write-backs that are produced *and* land inside the trace promoted
  to Python locals (the register-file lists are not touched until a
  trace exit materialises them),
* per-cycle statistics folded into per-exit static tables multiplied
  by exit counters at fold time, and
* guarded side exits wherever the static schedule cannot continue — a
  taken conditional branch, a register-port stall, a HALT — that
  return control to the bundle-level engine with architectural state
  (dirty promoted locals, still-in-flight write-backs, stats deltas)
  materialised exactly.

Cycle-exactness contract
========================

The trace engine is an optimisation of the fast path, which is itself
an optimisation of the instrumented reference loop: for every program
it accepts it produces bit-identical cycle counts, statistics and
architectural state.  Eligibility is exactly fast-path eligibility
(the trace engine reuses the specialised bundle functions for cold
code).  Differential tests (``tests/core/test_tracejit.py``) enforce
the guarantee over all four paper workloads across the 1-4 ALU
presets, including randomized trace caps and hotness thresholds that
force every side-exit shape.

Two structural guards keep entry cheap and exact:

* a trace is only entered when the pending write-back queue is empty
  after the entry-cycle drain — the compiler pads block tails so every
  in-flight write lands before control leaves a block, so in steady
  state this holds on every loop iteration;
* a trace is only entered when its last bundle would still issue
  inside the cycle budget, so limit/watchdog precedence is decided by
  the bundle-level loop exactly as before.

The same statically-hoisted-counter asymmetry as the fast path applies
to *aborted* runs only: per-op counters of a bundle whose later
operation traps may include increments for operations after the trap
point.

Trace cache
===========

Compiled traces are reusable across processors running the same
program (object identity) under the same machine configuration
(:meth:`~repro.config.MachineConfig.digest`) and memory size: a
:class:`TraceCache` stores the generated source (compiled once) plus
its static tables, and re-binds per-machine state at instantiation.
Records carry the repro code salt (:func:`repro.serve.cache.code_salt`)
so cached traces are dropped whenever the simulator source changes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core import decode as dec
from repro.core.fastpath import (
    _alu_inline,
    _cmp_inline,
    _src_expr,
    _C_EXEC,
    _C_SQUASH,
    _C_NOPS,
    _C_BRANCHES,
    _C_MEMR,
    _C_MEMW,
    _C_READS,
    _C_FWD,
    _CONTROL_KINDS,
)
from repro.errors import (
    CycleLimitExceeded,
    HangDetected,
    TrapError,
    TRAP_ILLEGAL_INSTRUCTION,
)
from repro.isa.semantics import ALU_SEMANTICS, CMP_SEMANTICS

#: Offsets of the trace-specific counter slots appended to the shared
#: counts list ``C`` (base = length of the fast path's layout, which is
#: deterministic for a given program + configuration).
_T_RFW = 0       # regfile_writes landed inside traces
_T_PORT = 1      # port stall cycles charged at trace exits
_T_FETCH = 2     # fetch stall cycles (static, folded per exit)
_T_BRT = 3       # branches taken at trace exits
_T_BUB = 4       # branch bubble cycles at trace exits
_T_BUNDLES = 5   # bundles issued inside traces
_T_SLOTS = 6

#: Unconditional control kinds: a trace never crosses one (it ends the
#: chain), and never *contains* a guarded one (the chain stops before).
_UNCONDITIONAL_KINDS = frozenset({dec.K_BR, dec.K_BRL, dec.K_HALT})

#: Operation kinds that schedule a register-file write-back (used by the
#: quiescent-cut trim; must match the ``_add_write`` sites below).
_WRITER_KINDS = frozenset({
    dec.K_ALU, dec.K_CUSTOM, dec.K_MOVI, dec.K_CMP, dec.K_LOAD,
    dec.K_LOAD_SPEC, dec.K_PBR, dec.K_MOVGBP, dec.K_BRL,
})


_salt_cache: List[Optional[str]] = []


def _current_salt() -> Optional[str]:
    """The repro code salt, or ``None`` outside a full checkout.

    Memoised: the first call imports :mod:`repro.serve` and hashes the
    source tree, which is far too slow to repeat per trace compile.
    """
    if not _salt_cache:
        try:
            from repro.serve.cache import code_salt
        except Exception:
            _salt_cache.append(None)
        else:
            _salt_cache.append(code_salt())
    return _salt_cache[0]


class _Write:
    """One scheduled write-back inside a trace."""

    __slots__ = ("k", "seq", "space", "dest", "ready", "land", "flag", "var")

    def __init__(self, k: int, seq: int, space: int, dest: int,
                 ready: int, flag: Optional[str], var: str):
        self.k = k            # issuing bundle position in the chain
        self.seq = seq        # global issue order (heap tie-break)
        self.space = space    # 0 = GPR, 1 = predicate, 2 = BTR
        self.dest = dest
        self.ready = ready    # relative cycle offset the value lands at
        self.land = None      # chain position it lands at (None: after)
        self.flag = flag      # guard flag local, or None if unguarded
        self.var = var        # expression holding the value at issue


class _TraceCode:
    """Machine-independent compiled trace: source + static tables."""

    __slots__ = ("entry_pc", "pcs", "name", "source", "compiled",
                 "offsets", "o_last", "exit_static", "trap_info",
                 "fn_refs", "uses", "n_exits", "program", "salt")

    def __init__(self, entry_pc, pcs, name, source, offsets, o_last,
                 exit_static, trap_info, fn_refs, uses, program, salt):
        self.entry_pc = entry_pc
        self.pcs = pcs
        self.name = name
        self.source = source
        self.compiled = compile(source, f"<repro.core.tracejit:{entry_pc}>",
                                "exec")
        self.offsets = offsets
        self.o_last = o_last
        self.exit_static = exit_static
        self.trap_info = trap_info
        self.fn_refs = fn_refs
        self.uses = uses
        self.n_exits = len(exit_static)
        self.program = program
        self.salt = salt


class _TraceRuntime:
    """A trace bound to one machine: generated function + exit counters."""

    __slots__ = ("fn", "code", "ex", "o_last", "offsets", "trap_info",
                 "exit_static")

    def __init__(self, fn, code: _TraceCode, ex: List[int]):
        self.fn = fn
        self.code = code
        self.ex = ex
        self.o_last = code.o_last
        self.offsets = code.offsets
        self.trap_info = code.trap_info
        self.exit_static = code.exit_static


class TraceCache:
    """Reuses compiled traces across processors.

    Keyed by entry PC + :meth:`MachineConfig.digest` + memory size,
    with the program checked by object identity (the generated source
    inlines bundle shapes) and the repro code salt checked so a source
    change invalidates every record.
    """

    def __init__(self) -> None:
        self._records: Dict[tuple, _TraceCode] = {}
        self.compiles = 0
        self.hits = 0
        self.invalidations = 0

    def _key(self, machine, entry_pc: int) -> tuple:
        return (entry_pc, machine.config.digest(), len(machine.memory))

    def get(self, machine, entry_pc: int) -> Optional[_TraceCode]:
        key = self._key(machine, entry_pc)
        record = self._records.get(key)
        if record is None:
            return None
        if record.program is not machine.program:
            return None
        if record.salt != _current_salt():
            del self._records[key]
            self.invalidations += 1
            return None
        self.hits += 1
        return record

    def put(self, machine, entry_pc: int, code: _TraceCode) -> None:
        self._records[self._key(machine, entry_pc)] = code
        self.compiles += 1

    def entries(self, machine) -> List[_TraceCode]:
        """Every cached trace applicable to ``machine``, counted as hits.

        Lets a fresh :class:`TraceSim` over an already-profiled program
        start fully warm instead of re-discovering each hot entry
        through the profiling counters.
        """
        digest = machine.config.digest()
        n_words = len(machine.memory)
        salt = _current_salt()
        records = [
            record
            for (pc, config_digest, mem_words), record
            in self._records.items()
            if config_digest == digest and mem_words == n_words
            and record.program is machine.program and record.salt == salt
        ]
        self.hits += len(records)
        return records

    def stats(self) -> Dict[str, int]:
        return {"traces": len(self._records), "compiles": self.compiles,
                "hits": self.hits, "invalidations": self.invalidations}


class _TraceBuilder:
    """Generates one superblock function for a chain of bundle PCs."""

    def __init__(self, machine, fastsim, pcs: List[int], t_base: int):
        self.machine = machine
        self.config = machine.config
        self.pcs = pcs
        self.bundles = [machine._bundles[pc] for pc in pcs]
        self.fu_index = fastsim._fu_index
        self.pc_static = fastsim._static      # per-PC (index, k) pairs
        self.n_mem = fastsim._n_mem
        self.t_base = t_base

        config = self.config
        self.mask = config.mask
        self.penalty = config.taken_branch_penalty
        self.budget = config.regfile_ops_per_cycle
        self.model_ports = config.model_port_limit
        self.forwarding = config.forwarding
        share = config.lsu_shares_fetch_bandwidth
        fetch_bits = config.issue_width * 64
        bank_bits = config.n_mem_banks * 32 * 2
        #: Static fetch stall per chain position.
        self.fetch = []
        for bundle in self.bundles:
            if share and bundle.n_mem:
                demand = fetch_bits + 32 * bundle.n_mem
                self.fetch.append((demand + bank_bits - 1) // bank_bits - 1)
            else:
                self.fetch.append(0)
        #: Issue-cycle offset of each chain position (entry = 0).
        self.offsets = [0]
        for k in range(len(pcs)):
            self.offsets.append(self.offsets[k] + 1 + self.fetch[k])
        self.o_end = self.offsets.pop()  # cycle after the last bundle

        self.writes: List[_Write] = []
        self.used: Set[str] = {"EX"}
        self.fn_refs: List[Tuple[str, int, int]] = []
        self.exit_static: List[List[Tuple[int, int]]] = []
        self.trap_info: Dict[int, Tuple[int, List[Tuple[int, int]]]] = {}
        #: Unguarded counter increments implied by "bundle k executed".
        self.exec_static: List[Dict[int, int]] = [
            dict(self.pc_static[pc]) for pc in pcs
        ]
        for k in range(len(pcs)):
            bump = self.exec_static[k]
            bump[t_base + _T_BUNDLES] = bump.get(t_base + _T_BUNDLES, 0) + 1
            if self.fetch[k]:
                bump[t_base + _T_FETCH] = (
                    bump.get(t_base + _T_FETCH, 0) + self.fetch[k]
                )
        #: Promoted locals: (space, index) -> local name, insertion order.
        self.bind: Dict[Tuple[int, int], str] = {}
        self._n_mem_words = len(machine.memory)
        self._vseq = 0
        self._wseq = 0
        self._fseq = 0
        self._flag: Optional[str] = None  # active guard flag during codegen
        self._can_trap = False            # current bundle may raise TrapError
        self.flag_inits: List[str] = []

    # -- operand resolution (promoted local, else register file) -------

    def _gread(self, reg: int) -> str:
        name = self.bind.get((0, reg))
        if name is not None:
            return name
        self.used.add("G")
        return f"G[{reg}]"

    def _pread(self, index: int) -> str:
        name = self.bind.get((1, index))
        if name is not None:
            return name
        self.used.add("P")
        return f"P[{index}]"

    def _bread(self, index: int) -> str:
        name = self.bind.get((2, index))
        if name is not None:
            return name
        self.used.add("B")
        return f"B[{index}]"

    def _new_var(self) -> str:
        self._vseq += 1
        return f"_v{self._vseq}"

    def _add_write(self, k: int, space: int, dest: int, latency: int,
                   var: str) -> _Write:
        self._wseq += 1
        ready = self.offsets[k] + latency
        write = _Write(k, self._wseq, space, dest, ready, self._flag, var)
        # First chain position whose issue cycle is >= ready.
        for m in range(k + 1, len(self.pcs)):
            if self.offsets[m] >= ready:
                write.land = m
                break
        self.writes.append(write)
        return write

    # -- per-op issue code ---------------------------------------------

    def _op_lines(self, op, pc: int, slot: int, k: int
                  ) -> Tuple[List[str], List[Tuple[int, int]]]:
        """Issue code + unguarded-counter bumps for one operation.

        Mirrors :func:`repro.core.fastpath._op_body`, but captures each
        write-back value in a fresh local instead of pushing it onto
        the pending dictionary — landings and side exits decide later
        whether the value ever touches the register-file lists.
        """
        kind = op.kind
        config = self.config
        mask = self.mask
        width = config.datapath_width
        used = self.used

        def addr_lines(var: str) -> List[str]:
            base = _src_expr(op.s1_lit, op.s1, mask, used, self._gread)
            offset = _src_expr(op.s2_lit, op.s2, mask, used, self._gread)
            return [
                f"{var} = ({base} + {offset}) & {mask}",
                f"if {var} >= {1 << (width - 1)}:",
                f"    {var} -= {1 << width}",
            ]

        if kind in (dec.K_ALU, dec.K_CUSTOM):
            a = _src_expr(op.s1_lit, op.s1, mask, used, self._gread)
            if op.fn is None:  # MOVE
                prelude, expr = [], a
            else:
                inline = None
                if kind == dec.K_ALU and op.fn is ALU_SEMANTICS.get(op.mnemonic):
                    inline = _alu_inline(op, config, used, self._gread)
                if inline is not None:
                    prelude, expr = inline
                else:
                    b = _src_expr(op.s2_lit, op.s2, mask, used, self._gread)
                    fn_name = f"F{pc}_{slot}"
                    self.fn_refs.append((fn_name, pc, slot))
                    used.add(fn_name)
                    self._can_trap = True
                    third = mask if kind == dec.K_CUSTOM else width
                    prelude, expr = [], f"{fn_name}({a}, {b}, {third})"
            var = self._new_var()
            self._add_write(k, 0, op.d1, op.latency, var)
            return prelude + [f"{var} = {expr}"], []

        if kind == dec.K_MOVI:
            self._add_write(k, 0, op.d1, op.latency, repr(op.s1 & mask))
            return [], []

        if kind == dec.K_CMP:
            inline = None
            if op.fn is CMP_SEMANTICS.get(op.mnemonic):
                inline = _cmp_inline(op, config, used, self._gread)
            if inline is not None:
                prelude, condition = inline
            else:
                a = _src_expr(op.s1_lit, op.s1, mask, used, self._gread)
                b = _src_expr(op.s2_lit, op.s2, mask, used, self._gread)
                fn_name = f"F{pc}_{slot}"
                self.fn_refs.append((fn_name, pc, slot))
                used.add(fn_name)
                self._can_trap = True
                prelude, condition = [], f"{fn_name}({a}, {b}, {width})"
            var = self._new_var()
            inverse = self._new_var()
            self._add_write(k, 1, op.d1, op.latency, var)
            self._add_write(k, 1, op.d2, op.latency, inverse)
            return prelude + [f"{var} = {condition}",
                              f"{inverse} = 1 - {var}"], []

        if kind in (dec.K_LOAD, dec.K_LOAD_SPEC):
            lines = addr_lines("_a")
            n_words = self._n_mem_words
            used.add("MEM")
            var = self._new_var()
            if kind == dec.K_LOAD_SPEC:
                lines.append(f"{var} = MEM[_a] if 0 <= _a < {n_words} else 0")
            else:
                used.add("MR")
                self._can_trap = True
                lines.append(
                    f"{var} = MEM[_a] if 0 <= _a < {n_words} else MR(_a)"
                )
            self._add_write(k, 0, op.d1, op.latency, var)
            return lines, [(_C_MEMR, 1)]

        if kind == dec.K_STORE:
            n_words = self._n_mem_words
            used.add("MC")
            self._can_trap = True
            value = self._gread(op.d1)
            return addr_lines("_ta") + [
                f"if not 0 <= _ta < {n_words}:",
                "    MC(_ta)",  # raises the OOB store trap
                "_sa = _ta",
                f"_sv = {value}",
            ], [(_C_MEMW, 1)]

        if kind == dec.K_PBR:
            self._add_write(k, 2, op.d1, op.latency, repr(op.s1))
            return [], []

        if kind == dec.K_MOVGBP:
            value = _src_expr(op.s1_lit, op.s1, mask, used, self._gread)
            var = self._new_var()
            self._add_write(k, 2, op.d1, op.latency, var)
            return [f"{var} = {value}"], []

        if kind in (dec.K_BR, dec.K_BRL):
            lines = [f"_tg = {self._bread(op.s1)}"]
            if kind == dec.K_BRL:
                self._add_write(k, 0, op.d1, op.latency,
                                repr((pc + 1) & mask))
            return lines, [(_C_BRANCHES, 1)]

        if kind in (dec.K_BRCT, dec.K_BRCF):
            test = self._pread(op.s2)
            if kind == dec.K_BRCF:
                test = f"not {test}"
            return [f"_tk = {test}",
                    f"_tg = {self._bread(op.s1)}"], [(_C_BRANCHES, 1)]

        if kind == dec.K_HALT:
            return [], []

        raise AssertionError(f"unspecialisable op kind {kind} in a trace")

    # -- landings -------------------------------------------------------

    def _emit_landings(self, k: int, body: List[str]
                       ) -> Tuple[int, List[str]]:
        """Apply in-trace write-backs due when chain position ``k`` issues.

        Returns ``(wl_static, wl_flags)``: the statically-known count of
        GPR writes landing *exactly* at this issue cycle (they occupy
        write ports) plus the guard flags of conditional ones.
        """
        o_k = self.offsets[k]
        t_rfw = self.t_base + _T_RFW
        wl_static = 0
        wl_flags: List[str] = []
        landings = [w for w in self.writes if w.land == k]
        landings.sort(key=lambda w: (w.ready, w.seq))
        for w in landings:
            if w.space == 0:
                if w.ready == o_k:
                    if w.flag is None:
                        wl_static += 1
                    else:
                        wl_flags.append(w.flag)
                value = f"{w.var} & {self.mask}"  # the drain masks GPRs
            elif w.space == 1:
                value = f"1 if {w.var} else 0"
            else:
                value = w.var
            if w.dest == 0 and w.space != 2:
                # r0/p0 are hardwired; a GPR write still takes a port.
                if w.space == 0:
                    if w.flag is None:
                        bump = self.exec_static[k]
                        bump[t_rfw] = bump.get(t_rfw, 0) + 1
                    else:
                        self.used.add("C")
                        body.append(f"if {w.flag}:")
                        body.append(f"    C[{t_rfw}] += 1")
                continue
            name = self.bind.get((w.space, w.dest))
            if name is None:
                name = f"_{'rpb'[w.space]}{w.dest}"
                if w.flag is not None:
                    # Guarded first landing: seed the local so a false
                    # guard leaves the architectural value in place.
                    file_name = "GPB"[w.space]
                    self.used.add(file_name)
                    body.append(f"{name} = {file_name}[{w.dest}]")
                self.bind[(w.space, w.dest)] = name
            if w.flag is None:
                body.append(f"{name} = {value}")
                if w.space == 0:
                    bump = self.exec_static[k]
                    bump[t_rfw] = bump.get(t_rfw, 0) + 1
            else:
                self.used.add("C")
                body.append(f"if {w.flag}:")
                body.append(f"    {name} = {value}")
                if w.space == 0:
                    body.append(f"    C[{t_rfw}] += 1")
        return wl_static, wl_flags

    # -- read ports + forwarding ---------------------------------------

    def _fwd_expr(self, reg: int, k: int) -> str:
        """0/1 expression: is the read of ``reg`` at position ``k`` forwarded?

        For ``k > 0`` only in-trace landings matter (the entry guard
        drained the pending queue, so nothing external can land at a
        later in-trace cycle): the candidate that decides is the
        *latest* landed write to ``reg``, walked latest-first with
        guarded candidates turned into conditional expressions.
        """
        o_k = self.offsets[k]
        cands = [w for w in self.writes
                 if w.space == 0 and w.dest == reg
                 and w.land is not None and w.land <= k]
        cands.sort(key=lambda w: (w.ready, w.seq))
        parts: List[Tuple[str, str]] = []
        final = "0"
        for w in reversed(cands):
            hit = "1" if w.ready == o_k else "0"
            if w.flag is None:
                final = hit
                break
            parts.append((w.flag, hit))
        expr = final
        for flag, hit in reversed(parts):
            expr = f"({hit} if {flag} else {expr})"
        return expr

    def _emit_reads(self, k: int, body: List[str]) -> Tuple[str, int]:
        """Forwarding accounting; returns ``(reads_expr, n_reads)``."""
        read_set = [r for r in self.bundles[k].gpr_read_set if r]
        n_reads = len(read_set)
        if not (self.forwarding and read_set):
            return str(n_reads), n_reads
        if k == 0:
            # External write-backs can land exactly at the entry cycle:
            # the dynamic ready-at test, same as the fast path.
            self.used.update(("RA", "C"))
            forwarded = " + ".join(f"(RA[{r}] == cycle0)" for r in read_set)
            body.append(f"_f = {forwarded}")
            body.append(f"C[{_C_FWD}] += _f")
            return f"({n_reads} - _f)", n_reads
        static_fwd = 0
        dyn: List[str] = []
        for reg in read_set:
            expr = self._fwd_expr(reg, k)
            if expr == "1":
                static_fwd += 1
            elif expr != "0":
                dyn.append(expr)
        if static_fwd:
            bump = self.exec_static[k]
            bump[_C_FWD] = bump.get(_C_FWD, 0) + static_fwd
        if not dyn:
            return str(n_reads - static_fwd), n_reads
        self.used.add("C")
        body.append(f"C[{_C_FWD}] += " + " + ".join(dyn))
        return (f"({n_reads - static_fwd} - " + " - ".join(dyn) + ")",
                n_reads)

    # -- op issue -------------------------------------------------------

    def _emit_ops(self, k: int, pc: int, body: List[str]):
        """Issue every op of chain position ``k``; returns the control op."""
        bundle = self.bundles[k]
        control = None
        guarded_store = any(op.kind == dec.K_STORE and op.guard
                            for op in bundle.ops)
        has_store = any(op.kind == dec.K_STORE for op in bundle.ops)
        if guarded_store:
            body.append("_sa = -1")
        for slot, op in enumerate(bundle.ops):
            if op.kind == dec.K_NOP:
                continue  # static NOP counts are already folded
            if op.kind in _CONTROL_KINDS:
                control = op
            if op.guard:
                self.used.add("C")
                guard_expr = self._pread(op.guard)
                if op.kind in (dec.K_BRCT, dec.K_BRCF):
                    body.append("_tk = 0")
                flag = None
                if op.kind not in (dec.K_STORE, dec.K_BRCT, dec.K_BRCF):
                    self._fseq += 1
                    flag = f"_g{self._fseq}"
                    self.flag_inits.append(f"{flag} = 0")
                self._flag = flag
                lines, bumps = self._op_lines(op, pc, slot, k)
                self._flag = None
                fu = self.fu_index[op.fu]
                body.append(f"if {guard_expr}:")
                body.append(f"    C[{_C_EXEC}] += 1")
                body.append(f"    C[{fu}] += 1")
                for index, n in bumps:
                    body.append(f"    C[{index}] += {n}")
                body.extend("    " + line for line in lines)
                if flag is not None:
                    body.append(f"    {flag} = 1")
                body.append("else:")
                body.append(f"    C[{_C_SQUASH}] += 1")
            else:
                # Unguarded counter bumps are already in the fast
                # path's per-bundle statics (folded per exit).
                lines, _ = self._op_lines(op, pc, slot, k)
                body.extend(lines)
        if has_store:
            self.used.add("MEM")
            if guarded_store:
                body.append("if _sa >= 0:")
                body.append("    MEM[_sa] = _sv")
            else:
                body.append("MEM[_sa] = _sv")
        return control

    # -- side exits -----------------------------------------------------

    def _exit(self, k: int, taken: bool, pc_expr: str, cycle_expr: str,
              need_port: bool) -> List[str]:
        """Materialise architectural state and leave after position ``k``."""
        j = len(self.exit_static)
        pairs: Dict[int, int] = {}
        for i in range(k + 1):
            for index, n in self.exec_static[i].items():
                pairs[index] = pairs.get(index, 0) + n
        if taken:
            t_brt = self.t_base + _T_BRT
            pairs[t_brt] = pairs.get(t_brt, 0) + 1
            if self.penalty:
                t_bub = self.t_base + _T_BUB
                pairs[t_bub] = pairs.get(t_bub, 0) + self.penalty
        self.exit_static.append(sorted(pairs.items()))

        lines = [f"EX[{j}] += 1"]
        if need_port:
            self.used.add("C")
            lines.append(f"C[{self.t_base + _T_PORT}] += _x")
        # Dirty promoted locals back to the register files.
        for (space, index), name in self.bind.items():
            file_name = "GPB"[space]
            self.used.add(file_name)
            lines.append(f"{file_name}[{index}] = {name}")
        # Still-in-flight write-backs into the pending queue, in
        # (ready, issue-order) order — the drain's pop order.
        flush = [w for w in self.writes
                 if w.k <= k and (w.land is None or w.land > k)]
        flush.sort(key=lambda w: (w.ready, w.seq))
        if flush:
            self.used.add("PD")
        i = 0
        while i < len(flush):
            w = flush[i]
            if w.flag is not None:
                lines.append(f"if {w.flag}:")
                lines.extend("    " + line for line in self._push_one(w))
                i += 1
                continue
            group = [w]
            while (i + len(group) < len(flush)
                   and flush[i + len(group)].flag is None
                   and flush[i + len(group)].ready == w.ready):
                group.append(flush[i + len(group)])
            lines.extend(self._push_group(group))
            i += len(group)
        lines.append(f"return {pc_expr}, {cycle_expr}")
        return lines

    def _push_one(self, w: _Write) -> List[str]:
        return self._push_group([w])

    def _push_group(self, group: List[_Write]) -> List[str]:
        ready = group[0].ready
        lines = [
            f"_q = PD.get(cycle0 + {ready})",
            "if _q is None:",
            f"    _q = PD[cycle0 + {ready}] = []",
        ]
        for w in group:
            lines.append(f"_q.append(({w.space}, {w.dest}, {w.var}))")
        return lines

    def _emit_exits(self, k: int, control, need_port: bool,
                    body: List[str]) -> None:
        last = len(self.pcs) - 1
        o_next = self.offsets[k + 1] if k < last else self.o_end
        px = " + _x" if need_port else ""
        kind = control.kind if control is not None else None
        if kind in (dec.K_BR, dec.K_BRL):
            body.extend(self._exit(
                k, True, "_tg",
                f"cycle0 + {o_next + self.penalty}{px}", need_port))
        elif kind == dec.K_HALT:
            body.extend(self._exit(
                k, False, "-1", f"cycle0 + {o_next}{px}", need_port))
        elif kind in (dec.K_BRCT, dec.K_BRCF):
            taken = self._exit(k, True, "_tg",
                               f"cycle0 + {o_next + self.penalty}{px}",
                               need_port)
            body.append("if _tk:")
            body.extend("    " + line for line in taken)
            if k == last:
                body.extend(self._exit(
                    k, False, str(self.pcs[k] + 1),
                    f"cycle0 + {o_next}{px}", need_port))
            elif need_port:
                body.append("if _x:")
                stall = self._exit(k, False, str(self.pcs[k + 1]),
                                   f"cycle0 + {o_next} + _x", True)
                body.extend("    " + line for line in stall)
        else:
            if k == last:
                body.extend(self._exit(
                    k, False, str(self.pcs[k] + 1),
                    f"cycle0 + {o_next}{px}", need_port))
            elif need_port:
                body.append("if _x:")
                stall = self._exit(k, False, str(self.pcs[k + 1]),
                                   f"cycle0 + {o_next} + _x", True)
                body.extend("    " + line for line in stall)

    # -- assembly -------------------------------------------------------

    def build(self, name: str, salt: Optional[str]) -> _TraceCode:
        body: List[str] = []
        trap_bundles: List[int] = []
        for k, pc in enumerate(self.pcs):
            wl_static, wl_flags = self._emit_landings(k, body)
            reads_expr, n_reads = self._emit_reads(k, body)
            self._can_trap = False
            ops_body: List[str] = []
            control = self._emit_ops(k, pc, ops_body)
            if self._can_trap:
                self.used.add("BI")
                body.append(f"BI[0] = {k}")
                trap_bundles.append(k)
            body.extend(ops_body)
            # Port-stall test: bundle 0 sees externally-landing writes
            # (dynamic count), later positions only in-trace landings
            # (static upper bound decides whether the test is needed).
            need_port = self.model_ports and (
                k == 0
                or n_reads + wl_static + len(wl_flags) > self.budget
            )
            if need_port:
                if k == 0:
                    wl_expr = "_wl0"
                else:
                    wl_expr = " + ".join([str(wl_static)] + wl_flags)
                body.append(f"_po = {reads_expr} + {wl_expr}")
                body.append(f"if _po > {self.budget}:")
                body.append(
                    f"    _x = (_po + {self.budget - 1}) "
                    f"// {self.budget} - 1")
                body.append("else:")
                body.append("    _x = 0")
            self._emit_exits(k, control, need_port, body)

        # Trap fold tables: a trap at position k has executed bundles
        # 0..k (the usual hoisted-counter asymmetry on aborted runs)
        # but never charged the trapping bundle's fetch stall.
        trap_info: Dict[int, Tuple[int, List[Tuple[int, int]]]] = {}
        t_fetch = self.t_base + _T_FETCH
        for k in trap_bundles:
            pairs: Dict[int, int] = {}
            for i in range(k + 1):
                for index, n in self.exec_static[i].items():
                    pairs[index] = pairs.get(index, 0) + n
            if self.fetch[k]:
                pairs[t_fetch] -= self.fetch[k]
                if not pairs[t_fetch]:
                    del pairs[t_fetch]
            trap_info[k] = (self.pcs[k], sorted(pairs.items()))

        # A trap aborts the run, but the architectural state it leaves
        # behind must still match the instrumented loop: every write
        # landed by the trap cycle lives in a promoted local, so flush
        # whichever of them exist yet (a trap at position k leaves
        # later positions' locals unbound) before re-raising.
        handler: List[str] = []
        if trap_bundles and self.bind:
            handler.append("_loc = locals()")
            for (space, index), local in self.bind.items():
                file_name = "GPB"[space]
                self.used.add(file_name)
                handler.append(f"if {local!r} in _loc:")
                handler.append(f"    {file_name}[{index}] = _loc[{local!r}]")
            handler.append("raise")
            self.used.add("TE")

        params = ["cycle0", "_wl0"]
        params += [f"{n}={n}" for n in sorted(self.used)]
        lines = [f"def {name}({', '.join(params)}):"]
        lines.extend("    " + line for line in self.flag_inits)
        if handler:
            lines.append("    try:")
            lines.extend("        " + line for line in body)
            lines.append("    except TE:")
            lines.extend("        " + line for line in handler)
        else:
            lines.extend("    " + line for line in body)
        source = "\n".join(lines)
        return _TraceCode(
            entry_pc=self.pcs[0], pcs=list(self.pcs), name=name,
            source=source, offsets=list(self.offsets),
            o_last=self.offsets[-1], exit_static=self.exit_static,
            trap_info=trap_info, fn_refs=self.fn_refs,
            uses=sorted(self.used), program=self.machine.program,
            salt=salt,
        )


class TraceSim:
    """The trace engine: fast-path run loop + superblock dispatch.

    Layered on a :class:`~repro.core.fastpath.FastSim` — cold bundles
    execute through the specialised bundle functions exactly as the
    fast path would; hot taken-branch targets are compiled into
    superblocks and dispatched whenever their entry guards hold.
    """

    def __init__(self, machine, fastsim, hotness: int = 16,
                 cap: int = 64, cache: Optional[TraceCache] = None):
        self._machine = machine
        self._fastsim = fastsim
        self._hotness = max(1, hotness)
        self._cap = max(1, cap)
        self._min_len = 2 if self._cap >= 2 else 1
        self._cache = cache
        n_bundles = len(machine._bundles)
        self._traces: List[Optional[_TraceRuntime]] = [None] * n_bundles
        self._hot = [0] * n_bundles
        self._blacklist: Set[int] = set()
        self._runtimes: List[_TraceRuntime] = []
        self._bi = [0]  # chain position of the bundle that may trap
        counts = fastsim._counts
        self._t_base = len(counts)
        counts.extend([0] * _T_SLOTS)
        #: Superblocks compiled by this engine (cache hits included).
        self.traces_compiled = 0
        # A shared cache warmed by an earlier run makes this engine hot
        # from cycle one: every applicable record is instantiated up
        # front instead of re-profiled back up to the hotness threshold.
        if cache is not None:
            for code in cache.entries(machine):
                self._traces[code.entry_pc] = self._instantiate(code)
                self.traces_compiled += 1

    @property
    def trace_count(self) -> int:
        return len(self._runtimes)

    # -- trace formation ------------------------------------------------

    def _chain(self, entry_pc: int) -> List[int]:
        """Walk the static fall-through chain from ``entry_pc``.

        Ends at an unconditional control transfer (which joins the
        trace), a loop-back onto the chain, the edge of the program,
        the length cap, or *before* a guarded unconditional transfer
        (those stay on the bundle engine).  Conditional branches fall
        through: the taken direction becomes a side exit.
        """
        bundles = self._machine._bundles
        n_bundles = len(bundles)
        pcs: List[int] = []
        seen: Set[int] = set()
        pc = entry_pc
        capped = True  # until another terminator fires first
        while len(pcs) < self._cap:
            if not 0 <= pc < n_bundles or pc in seen:
                capped = False
                break
            bundle = bundles[pc]
            control = next((op for op in bundle.ops
                            if op.kind in _CONTROL_KINDS), None)
            if (control is not None and control.guard
                    and control.kind in _UNCONDITIONAL_KINDS):
                capped = False
                break
            pcs.append(pc)
            seen.add(pc)
            if control is not None and control.kind in _UNCONDITIONAL_KINDS:
                capped = False
                break
            pc += 1
        if capped:
            pcs = self._trim_quiescent(pcs)
        return pcs

    def _trim_quiescent(self, pcs: List[int]) -> List[int]:
        """Trim a cap-cut chain back to a quiescent hand-over point.

        A chain cut mid-block can leave write-backs in flight past its
        fall-through exit, so the continuation trace (formed by exit
        profiling below) would fail its pending-empty entry guard on
        every single dispatch.  Trim to the longest prefix whose writes
        all land by the prefix's exit cycle; linked traces then hand
        over cleanly.  When no such point exists in the back half,
        keep the raw cut — still correct, just slower.
        """
        machine = self._machine
        config = machine.config
        share = config.lsu_shares_fetch_bandwidth
        fetch_bits = config.issue_width * 64
        bank_bits = config.n_mem_banks * 32 * 2
        offsets = [0]
        #: Latest write-back ready cycle among bundles [0, k).
        last_ready = [0] * (len(pcs) + 1)
        latest = 0
        for k, pc in enumerate(pcs):
            bundle = machine._bundles[pc]
            o_k = offsets[k]
            for op in bundle.ops:
                if op.kind in _WRITER_KINDS:
                    ready = o_k + op.latency
                    if ready > latest:
                        latest = ready
            stall = 0
            if share and bundle.n_mem:
                demand = fetch_bits + 32 * bundle.n_mem
                stall = (demand + bank_bits - 1) // bank_bits - 1
            offsets.append(o_k + 1 + stall)
            last_ready[k + 1] = latest
        floor = max(self._min_len, len(pcs) // 2)
        for m in range(len(pcs), floor - 1, -1):
            if last_ready[m] <= offsets[m]:
                return pcs[:m]
        return pcs

    def _compile_trace(self, entry_pc: int) -> None:
        machine = self._machine
        code = None
        if self._cache is not None:
            code = self._cache.get(machine, entry_pc)
        if code is None:
            pcs = self._chain(entry_pc)
            if len(pcs) < self._min_len:
                self._blacklist.add(entry_pc)
                return
            builder = _TraceBuilder(machine, self._fastsim, pcs,
                                    self._t_base)
            code = builder.build(f"_t{entry_pc}", salt=_current_salt())
            if self._cache is not None:
                self._cache.put(machine, entry_pc, code)
        self._traces[entry_pc] = self._instantiate(code)
        self.traces_compiled += 1

    def _instantiate(self, code: _TraceCode) -> _TraceRuntime:
        machine = self._machine
        fastsim = self._fastsim
        ex = [0] * code.n_exits
        providers = {
            "G": fastsim._gpr_values,
            "P": fastsim._pred_values,
            "B": fastsim._btr_values,
            "RA": fastsim._ready_at,
            "C": fastsim._counts,
            "PD": fastsim._pending,
            "MEM": machine.memory._words,
            "MR": machine.memory.read,
            "MC": machine.memory.check_write,
            "BI": self._bi,
            "EX": ex,
            "TE": TrapError,
        }
        for fn_name, pc, slot in code.fn_refs:
            providers[fn_name] = machine._bundles[pc].ops[slot].fn
        namespace = {name: providers[name] for name in code.uses}
        exec(code.compiled, namespace)  # noqa: S102 - our generated source
        runtime = _TraceRuntime(namespace[code.name], code, ex)
        self._runtimes.append(runtime)
        return runtime

    # -- run loop -------------------------------------------------------

    def run(self, max_cycles: int, watchdog_cycles: Optional[int],
            until_cycle: Optional[int] = None,
            start_cycle: int = 0,
            start_pc: Optional[int] = None) -> int:
        """Execute until HALT; returns the final cycle count.

        Identical contract to :meth:`FastSim.run`: statistics fold into
        the machine's :class:`SimStats` (also on abnormal exits), the
        exceptions raised are exactly the instrumented path's, and
        ``until_cycle``/``start_cycle``/``start_pc`` give the same
        quiescent pause/resume semantics.  Pauses only happen on the
        bundle path — a trace is never entered once the pause target is
        reached (the dispatch guard below requires an empty pending
        queue, which is exactly the pause condition, and the pause test
        runs first).
        """
        machine = self._machine
        fastsim = self._fastsim
        config = machine.config
        stats = machine.stats
        fns = fastsim._fns
        n_mem = fastsim._n_mem
        n_bundles = len(fns)
        gmask = config.mask

        gpr = fastsim._gpr_values
        pred = fastsim._pred_values
        btr = fastsim._btr_values
        counts = fastsim._counts
        pending = fastsim._pending
        pending_pop = pending.pop
        ready_at = fastsim._ready_at

        # Fresh per-run context (a prior aborted run may have leftovers).
        for i in range(len(counts)):
            counts[i] = 0
        pending.clear()
        ready_at[:] = [-1] * len(ready_at)

        port_budget = config.regfile_ops_per_cycle
        model_ports = config.model_port_limit
        share_bandwidth = config.lsu_shares_fetch_bandwidth
        fetch_bits = config.issue_width * 64
        bank_bits = config.n_mem_banks * 32 * 2
        branch_penalty = config.taken_branch_penalty

        traces = self._traces
        blacklist = self._blacklist
        hot = self._hot
        hotness = self._hotness
        bi = self._bi

        visits = [0] * n_bundles
        branches_taken = 0
        branch_bubbles = 0
        port_stalls = 0
        fetch_stalls = 0
        regfile_writes = 0
        traps_seen = 0

        limit = max_cycles
        if watchdog_cycles is not None and watchdog_cycles < limit:
            limit = watchdog_cycles

        cycle = start_cycle
        pc = start_pc if start_pc is not None else machine.program.entry
        try:
            while True:
                if cycle >= limit:
                    if cycle >= max_cycles:
                        raise CycleLimitExceeded(
                            "cycle budget exhausted (runaway program?)",
                            cycle=cycle, pc=pc, limit=max_cycles,
                        )
                    raise HangDetected(
                        "watchdog fired: execution ran far past the "
                        "expected cycle count",
                        cycle=cycle, pc=pc, limit=watchdog_cycles,
                    )
                if until_cycle is not None and cycle >= until_cycle \
                        and not pending:
                    # Quiescent pause: nothing in flight, state purely
                    # architectural (budget checks stay first — limits
                    # are absolute across segments).
                    machine._paused = True
                    machine._resume_cycle = cycle
                    machine._resume_pc = pc
                    break
                if not 0 <= pc < n_bundles:
                    raise TrapError(
                        "control fell outside the program (missing HALT "
                        "or corrupted branch target?)",
                        cause=TRAP_ILLEGAL_INSTRUCTION, cycle=cycle, pc=pc,
                    )

                # Write-backs due by now, ascending ready cycle, list
                # order preserving issue order — the heap's pop order.
                # Traces can advance the clock by dozens of cycles per
                # dispatch, so unlike FastSim's scan-forward this walks
                # the (few) populated ready cycles, not every cycle.
                writes_landing = 0
                if pending:
                    for ready in sorted(pending):
                        if ready > cycle:
                            break
                        queue = pending_pop(ready)
                        for space, index, value in queue:
                            if space == 0:
                                if index:
                                    gpr[index] = value & gmask
                                ready_at[index] = ready
                                regfile_writes += 1
                                if ready == cycle:
                                    writes_landing += 1
                            elif space == 1:
                                if index:
                                    pred[index] = 1 if value else 0
                            else:
                                btr[index] = value

                # -- superblock dispatch --------------------------------
                # Entry guards: the pending queue must be empty (the
                # compiled schedule assumes no external landings at
                # in-trace cycles) and the whole trace must issue
                # inside the limit (limit precedence stays with the
                # bundle loop above).
                runtime = traces[pc]
                if (runtime is not None and not pending
                        and cycle + runtime.o_last < limit):
                    try:
                        pc, cycle = runtime.fn(cycle, writes_landing)
                    except TrapError as trap:
                        k = bi[0]
                        trap_pc, pairs = runtime.trap_info[k]
                        trap.annotate(cycle + runtime.offsets[k], trap_pc)
                        machine.traps.append(trap)
                        traps_seen += 1
                        for index, n in pairs:
                            counts[index] += n
                        raise
                    if pc < 0:  # HALT inside the trace
                        break
                    # Side-exit targets are profiled too (trace
                    # linking): a cap-split loop body's continuation
                    # is only ever reached through a trace exit, never
                    # through a taken branch on the bundle path.
                    if traces[pc] is None and pc not in blacklist:
                        count = hot[pc] + 1
                        hot[pc] = count
                        if count >= hotness:
                            self._compile_trace(pc)
                    continue

                visits[pc] += 1
                try:
                    result = fns[pc](cycle)
                except TrapError as trap:
                    trap.annotate(cycle, pc)
                    machine.traps.append(trap)
                    traps_seen += 1
                    raise  # the trace engine requires the "halt" policy
                if result.__class__ is int:  # non-control bundle
                    reads = result
                    target = None
                else:
                    reads, target = result

                extra = 0
                if model_ports:
                    port_ops = reads + writes_landing
                    if port_ops > port_budget:
                        stall = (port_ops + port_budget - 1) \
                            // port_budget - 1
                        port_stalls += stall
                        extra += stall
                if share_bandwidth and n_mem[pc]:
                    demand = fetch_bits + 32 * n_mem[pc]
                    stall = (demand + bank_bits - 1) // bank_bits - 1
                    fetch_stalls += stall
                    extra += stall

                if target is None:
                    pc += 1
                elif target >= 0:
                    branches_taken += 1
                    branch_bubbles += branch_penalty
                    extra += branch_penalty
                    pc = target
                    # Taken-branch targets are the profile: loop heads
                    # cross the threshold after a few iterations, cold
                    # code never pays more than this counter bump.
                    if traces[pc] is None and pc not in blacklist:
                        count = hot[pc] + 1
                        hot[pc] = count
                        if count >= hotness:
                            self._compile_trace(pc)
                else:  # HALT
                    cycle += 1 + extra
                    break
                cycle += 1 + extra
        finally:
            # Fold everything into the shared stats object — also on
            # abnormal exits.  Exit counters multiply out the per-exit
            # static tables first, then the counts list (fast-path
            # layout plus the trace slots) folds as usual.
            for runtime in self._runtimes:
                ex = runtime.ex
                for j, n in enumerate(ex):
                    if n:
                        for index, k in runtime.exit_static[j]:
                            counts[index] += n * k
                        ex[j] = 0
            bundles_issued = 0
            statics = fastsim._static
            for i, n in enumerate(visits):
                if n:
                    bundles_issued += n
                    for index, k in statics[i]:
                        counts[index] += n * k
            tb = self._t_base
            stats.bundles += bundles_issued + counts[tb + _T_BUNDLES]
            stats.branches_taken += branches_taken + counts[tb + _T_BRT]
            stats.branch_bubble_cycles += (
                branch_bubbles + counts[tb + _T_BUB])
            stats.port_stall_cycles += port_stalls + counts[tb + _T_PORT]
            stats.fetch_stall_cycles += fetch_stalls + counts[tb + _T_FETCH]
            stats.regfile_writes += regfile_writes + counts[tb + _T_RFW]
            stats.traps += traps_seen
            stats.ops_executed += counts[_C_EXEC]
            stats.ops_squashed += counts[_C_SQUASH]
            stats.nops += counts[_C_NOPS]
            stats.branches += counts[_C_BRANCHES]
            stats.memory_reads += counts[_C_MEMR]
            stats.memory_writes += counts[_C_MEMW]
            stats.regfile_reads += counts[_C_READS]
            stats.regfile_reads_forwarded += counts[_C_FWD]
            fu_busy = stats.fu_busy
            for fu_class, index in fastsim._fu_index.items():
                if counts[index]:
                    fu_busy[fu_class] = (
                        fu_busy.get(fu_class, 0) + counts[index]
                    )
            for i in range(len(counts)):
                counts[i] = 0

        # Drain outstanding write-backs so final state is architectural.
        for ready in sorted(pending):
            for space, index, value in pending[ready]:
                if space == 0:
                    if index:
                        gpr[index] = value & gmask
                elif space == 1:
                    if index:
                        pred[index] = 1 if value else 0
                else:
                    btr[index] = value
        pending.clear()

        stats.cycles = cycle
        return cycle

