"""The customisable EPIC processor core (paper §3).

`repro.core` is a cycle-accurate model of the 2-stage-pipeline datapath
of Fig. 2: a Fetch/Decode/Issue stage feeding N ALUs, a load/store unit,
a comparison unit and a branch unit (with branch-target registers), with
results collected by a write-back unit into a block-RAM register file
whose controller enforces the 8-operations-per-cycle port budget and
forwards freshly computed results (§3.2).

Timing follows the EPIC/HPL-PD contract the paper's toolchain relies on:
latencies are *architecturally visible* — the compiler schedules
consumers no earlier than the producer's latency, and the hardware does
not interlock.  This is exactly what Trimaran's ReaCT-ILP cycle-level
simulator (the source of the paper's cycle counts) assumes.
"""

from repro.core.machine import EpicProcessor, SimulationResult
from repro.core.memory import DataMemory
from repro.core.regfile import BtrFile, GprFile, PredFile
from repro.core.stats import SimStats
from repro.core.trace import Tracer

__all__ = [
    "EpicProcessor",
    "SimulationResult",
    "DataMemory",
    "GprFile",
    "PredFile",
    "BtrFile",
    "SimStats",
    "Tracer",
]
