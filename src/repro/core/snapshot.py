"""Exact snapshot/restore and golden checkpoint streams for the EPIC core.

Fault-injection campaigns re-simulate the *fault-free prefix* of every
injected run from cycle 0 — under the instrumented engine, because the
fault injector forces it.  This module removes that cost:

* :class:`CoreSnapshot` captures the machine's complete state —
  GPR/predicate/BTR files including their parity-poison sets, data
  memory, the program counter, the statistics counters and any recorded
  traps — and restores it in place, so a run resumed from a snapshot is
  bit-identical to one that executed the prefix.
* :func:`capture_checkpoints` runs the *fault-free* program once (on
  the fast engine whenever it is eligible) and snapshots it at a grid
  of **quiescent cycles** — ``run(until_cycle=...)`` pause points where
  the pending write-back queue is empty, the trace engine's own
  empty-pending entry condition.  At such a point there is no
  microarchitectural state left to save: no write-back is in flight,
  the store buffer is empty, and stale forwarding ages can never equal
  a future cycle, so the snapshot is purely architectural *and* exact.
* :class:`CheckpointStore` is a content-addressed on-disk home for
  checkpoint streams, keyed like the serve result cache (machine
  configuration digest + program identity + repro code salt), so
  parallel campaign shards — separate processes — share one golden
  checkpoint stream per (workload, machine) pair.

Exactness argument
==================

Restoring the golden snapshot at cycle ``C <= min(fault.cycle)`` and
resuming under an injector is trajectory-identical to running the
injected machine from cycle 0:

* the fault-free prefix of the injected run *is* the golden run — the
  injector's hooks are no-ops before the first fault's cycle (state
  cursors only advance once ``fault.cycle <= cycle``, the stuck-at list
  is empty until a stuck fault applies);
* cycle budgets (``max_cycles``, the hang watchdog) are absolute cycle
  values checked before the pause test, so limit exceptions fire at the
  same cycle in segmented and uninterrupted runs;
* per-run working state reset at a resume (forwarding ages, write-back
  queues) is invisible, because quiescence means none of it was live.

The same quiescence argument powers the checker's *convergence cut*
(see :mod:`repro.reliability.lockstep`): if the injected run, paused at
a golden checkpoint's exact cycle with the injector quiescent and no
trap recorded, matches the golden snapshot's architectural state
bit-for-bit, its continuation is provably the reference continuation —
the run can be classified MASKED immediately with the reference's final
cycle count.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field, fields
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.core.stats import SimStats
from repro.errors import SimulationError, TrapError

#: Version of the on-disk checkpoint record schema; a mismatch
#: invalidates (a stale stream must never be restored as fresh).
CHECKPOINT_SCHEMA_VERSION = 1

#: One serialised trap: (message, cause, cycle, pc, slot).
TrapTuple = Tuple[str, str, int, int, int]


def _stats_payload(stats: SimStats) -> Dict[str, object]:
    payload: Dict[str, object] = {}
    for spec in fields(SimStats):
        value = getattr(stats, spec.name)
        payload[spec.name] = dict(value) if spec.name == "fu_busy" else value
    return payload


def _traps_payload(traps) -> List[TrapTuple]:
    return [(trap.raw_message, trap.cause, trap.cycle, trap.pc, trap.slot)
            for trap in traps]


@dataclass
class CoreSnapshot:
    """The complete state of one :class:`~repro.core.EpicProcessor`.

    Snapshots may only be captured on a *fresh* machine (never run) or
    one *paused* at a quiescent cycle by ``run(until_cycle=...)`` — the
    two situations in which no write-back is in flight and the state
    below is the whole machine.  Restoring (:meth:`apply`) mutates the
    target's storage in place, which keeps the fast/trace engines'
    pre-bound references (they alias the raw value lists) valid.
    """

    cycle: int
    pc: int
    gpr: List[int]
    pred: List[int]
    btr: List[int]
    gpr_poison: FrozenSet[int]
    pred_poison: FrozenSet[int]
    btr_poison: FrozenSet[int]
    mem: List[int]
    mem_poison: FrozenSet[int]
    stats: Dict[str, object]
    traps: List[TrapTuple] = field(default_factory=list)

    # -- capture / restore ---------------------------------------------

    @classmethod
    def capture(cls, cpu) -> "CoreSnapshot":
        if cpu.last_engine and not cpu._paused:
            raise SimulationError(
                "snapshot requires a fresh machine or one paused at a "
                "quiescent cycle (run(until_cycle=...)); a completed or "
                "aborted run cannot be snapshotted for resume"
            )
        return cls(
            cycle=cpu._resume_cycle,
            pc=cpu._resume_pc,
            gpr=list(cpu.gpr._values),
            pred=list(cpu.pred._values),
            btr=list(cpu.btr._values),
            gpr_poison=frozenset(cpu.gpr._poisoned),
            pred_poison=frozenset(cpu.pred._poisoned),
            btr_poison=frozenset(cpu.btr._poisoned),
            mem=list(cpu.memory._words),
            mem_poison=frozenset(cpu.memory._poisoned),
            stats=_stats_payload(cpu.stats),
            traps=_traps_payload(cpu.traps),
        )

    def apply(self, cpu) -> None:
        """Restore this state into ``cpu``; the next run resumes here."""
        if len(cpu.gpr._values) != len(self.gpr) \
                or len(cpu.pred._values) != len(self.pred) \
                or len(cpu.btr._values) != len(self.btr) \
                or len(cpu.memory._words) != len(self.mem):
            raise SimulationError(
                "snapshot does not fit this machine: register-file or "
                "memory sizes differ (wrong config or mem_words?)"
            )
        # In-place slice/set mutation: the specialised engines bind the
        # raw lists at build time and must observe the restored values.
        cpu.gpr._values[:] = self.gpr
        cpu.pred._values[:] = self.pred
        cpu.btr._values[:] = self.btr
        cpu.memory._words[:] = self.mem
        cpu.gpr._poisoned.clear()
        cpu.gpr._poisoned.update(self.gpr_poison)
        cpu.pred._poisoned.clear()
        cpu.pred._poisoned.update(self.pred_poison)
        cpu.btr._poisoned.clear()
        cpu.btr._poisoned.update(self.btr_poison)
        cpu.memory._poisoned.clear()
        cpu.memory._poisoned.update(self.mem_poison)
        for spec in fields(SimStats):
            value = self.stats[spec.name]
            setattr(cpu.stats, spec.name,
                    dict(value) if spec.name == "fu_busy" else value)
        cpu.traps[:] = [
            TrapError(message, cause=cause, cycle=cycle, pc=pc, slot=slot)
            for message, cause, cycle, pc, slot in self.traps
        ]
        cpu._paused = True
        cpu._resume_cycle = self.cycle
        cpu._resume_pc = self.pc

    # -- comparison ----------------------------------------------------

    def matches_state(self, cpu) -> bool:
        """Exact architectural equality against a *paused* processor.

        Early-exit list comparisons ordered cheapest-first; the result
        is exactly ``state_hash() == state-hash-of(cpu)`` without the
        hashing cost on the per-checkpoint hot path.
        """
        return (cpu._resume_pc == self.pc
                and cpu.gpr._values == self.gpr
                and cpu.pred._values == self.pred
                and cpu.btr._values == self.btr
                and cpu.gpr._poisoned == self.gpr_poison
                and cpu.pred._poisoned == self.pred_poison
                and cpu.btr._poisoned == self.btr_poison
                and cpu.memory._poisoned == self.mem_poison
                and cpu.memory._words == self.mem)

    def state_hash(self) -> str:
        """Digest of the architectural state (pc, files, poison, memory).

        Statistics and the cycle number are excluded: two runs in the
        same architectural state continue identically regardless of how
        they got there.
        """
        digest = hashlib.sha256()
        canonical = (
            self.pc, self.gpr, self.pred, self.btr,
            sorted(self.gpr_poison), sorted(self.pred_poison),
            sorted(self.btr_poison), self.mem, sorted(self.mem_poison),
        )
        digest.update(repr(canonical).encode("utf-8"))
        return digest.hexdigest()

    # -- JSON round-trip (sparse memory against a base image) ----------

    def to_payload(self, base_mem: List[int]) -> Dict[str, object]:
        """JSON form; memory stored as a delta against ``base_mem``."""
        delta = {
            str(address): word
            for address, (word, base) in enumerate(zip(self.mem, base_mem))
            if word != base
        }
        return {
            "cycle": self.cycle,
            "pc": self.pc,
            "gpr": list(self.gpr),
            "pred": list(self.pred),
            "btr": list(self.btr),
            "gpr_poison": sorted(self.gpr_poison),
            "pred_poison": sorted(self.pred_poison),
            "btr_poison": sorted(self.btr_poison),
            "mem_delta": delta,
            "mem_poison": sorted(self.mem_poison),
            "stats": dict(self.stats),
            "traps": [list(trap) for trap in self.traps],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object],
                     base_mem: List[int]) -> "CoreSnapshot":
        mem = list(base_mem)
        for address, word in payload["mem_delta"].items():
            mem[int(address)] = word
        stats = dict(payload["stats"])
        stats["fu_busy"] = dict(stats.get("fu_busy", {}))
        return cls(
            cycle=payload["cycle"],
            pc=payload["pc"],
            gpr=list(payload["gpr"]),
            pred=list(payload["pred"]),
            btr=list(payload["btr"]),
            gpr_poison=frozenset(payload["gpr_poison"]),
            pred_poison=frozenset(payload["pred_poison"]),
            btr_poison=frozenset(payload["btr_poison"]),
            mem=mem,
            mem_poison=frozenset(payload["mem_poison"]),
            stats=stats,
            traps=[tuple(trap) for trap in payload["traps"]],
        )


@dataclass
class CheckpointStream:
    """One golden run's checkpoints, ascending by cycle (first at 0)."""

    interval: int
    reference_cycles: int
    snapshots: List[CoreSnapshot]

    def __len__(self) -> int:
        return len(self.snapshots)

    def nearest(self, cycle: int) -> Optional[CoreSnapshot]:
        """The latest checkpoint at or before ``cycle`` (None if none)."""
        best = None
        for snap in self.snapshots:
            if snap.cycle > cycle:
                break
            best = snap
        return best

    def after(self, cycle: int) -> Iterator[CoreSnapshot]:
        """Checkpoints strictly after ``cycle``, ascending."""
        for snap in self.snapshots:
            if snap.cycle > cycle:
                yield snap


def capture_checkpoints(config, program, mem_words: int, interval: int,
                        max_cycles: int = 200_000_000) -> CheckpointStream:
    """Run the fault-free program once, snapshotting every ~``interval``
    cycles at quiescent pause points.

    The capture run uses ``engine="auto"`` — the fast path whenever the
    program is eligible — so building a stream costs far less than one
    instrumented run.  Checkpoint cycles land at the first quiescent
    cycle at or after each target, so actual spacing can exceed
    ``interval`` (and a program with no quiescent window simply yields
    fewer checkpoints; the cycle-0 snapshot always exists).
    """
    from repro.core.machine import EpicProcessor

    if interval < 1:
        raise SimulationError("checkpoint interval must be >= 1 cycle")
    cpu = EpicProcessor(config, program, mem_words=mem_words)
    snapshots = [CoreSnapshot.capture(cpu)]
    target = interval
    while True:
        result = cpu.run(max_cycles=max_cycles, until_cycle=target)
        if result.halted:
            return CheckpointStream(interval=interval,
                                    reference_cycles=result.cycles,
                                    snapshots=snapshots)
        snapshots.append(CoreSnapshot.capture(cpu))
        target = result.cycles + interval


def program_digest(config, program) -> str:
    """Content identity of a loaded program under ``config``.

    Hashes the *encoded* instruction words (padded to the issue width)
    plus the data image, entry point and datapath width — the bits that
    decide every cycle of execution.  Falls back to the textual listing
    for programs the encoder cannot round-trip (e.g. hand-built bundles
    outside the encodable space).
    """
    digest = hashlib.sha256()
    digest.update(f"entry={program.entry};width={config.datapath_width};"
                  .encode("utf-8"))
    try:
        from repro.isa.encoding import InstructionFormat

        fmt = InstructionFormat(config)
        n_bytes = (fmt.instruction_bits + 7) // 8
        for bundle in program.bundles:
            for instruction in bundle.padded(config.issue_width).slots:
                digest.update(fmt.encode(instruction)
                              .to_bytes(n_bytes, "little"))
            digest.update(b";")
    except Exception:
        digest.update(program.listing().encode("utf-8"))
    digest.update(b"|data|")
    digest.update(repr(program.data).encode("utf-8"))
    return digest.hexdigest()


def _base_image(config, program, mem_words: int) -> List[int]:
    """The initial data-memory contents (what a fresh machine holds)."""
    mask = config.mask
    base = [word & mask for word in program.data]
    base.extend([0] * (mem_words - len(base)))
    return base


class CheckpointStore:
    """Content-addressed on-disk store of golden checkpoint streams.

    Keyed like :class:`repro.serve.cache.ResultCache`: the machine
    configuration's canonical digest, the program's content identity,
    the memory size, the checkpoint interval, and the repro code salt.
    A record whose salt or schema no longer matches is invalidated on
    read — a stale golden stream must never fast-forward a campaign.

    Layout mirrors the result cache: one JSON record per stream under
    ``<root>/<digest[:2]>/<digest>.json``, written atomically.
    """

    def __init__(self, root: str, salt: Optional[str] = None):
        self.root = root
        if salt is None:
            try:
                from repro.serve.cache import code_salt

                salt = code_salt()
            except Exception:  # pragma: no cover - partial checkout
                salt = "unsalted"
        self.salt = salt
        self.stats = {"hits": 0, "misses": 0, "puts": 0, "invalidations": 0}
        os.makedirs(self.root, exist_ok=True)

    # -- keying --------------------------------------------------------

    def key(self, config, program, mem_words: int, interval: int) -> str:
        canonical = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "config": config.canonical(),
            "program": program_digest(config, program),
            "mem_words": mem_words,
            "interval": interval,
        }
        rendered = json.dumps(canonical, sort_keys=True,
                              separators=(",", ":"))
        return hashlib.sha256(rendered.encode("utf-8")).hexdigest()

    def path_for(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2], digest + ".json")

    # -- lookup --------------------------------------------------------

    def get(self, config, program, mem_words: int,
            interval: int) -> Optional[CheckpointStream]:
        digest = self.key(config, program, mem_words, interval)
        path = self.path_for(digest)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            self.stats["misses"] += 1
            return None
        except (OSError, json.JSONDecodeError):
            self._invalidate(path)
            return None
        if (not isinstance(record, dict)
                or record.get("schema") != CHECKPOINT_SCHEMA_VERSION
                or record.get("salt") != self.salt
                or record.get("key") != digest
                or "snapshots" not in record):
            self._invalidate(path)
            return None
        self.stats["hits"] += 1
        base = _base_image(config, program, mem_words)
        return CheckpointStream(
            interval=record["interval"],
            reference_cycles=record["reference_cycles"],
            snapshots=[CoreSnapshot.from_payload(entry, base)
                       for entry in record["snapshots"]],
        )

    def _invalidate(self, path: str) -> None:
        self.stats["invalidations"] += 1
        self.stats["misses"] += 1
        try:
            os.remove(path)
        except OSError:  # pragma: no cover - already gone / read-only
            pass

    # -- store ---------------------------------------------------------

    def put(self, config, program, mem_words: int,
            stream: CheckpointStream) -> None:
        digest = self.key(config, program, mem_words, stream.interval)
        path = self.path_for(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        base = _base_image(config, program, mem_words)
        record = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "salt": self.salt,
            "key": digest,
            "interval": stream.interval,
            "reference_cycles": stream.reference_cycles,
            "snapshots": [snap.to_payload(base)
                          for snap in stream.snapshots],
        }
        temporary = path + f".tmp.{os.getpid()}"
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(record, handle, sort_keys=True)
            handle.write("\n")
        os.replace(temporary, path)
        self.stats["puts"] += 1
