"""Execution statistics collected by the EPIC core.

The paper's evaluation (§5.2) is driven entirely by *clock cycles*;
the stall breakdown and utilisation counters here additionally support
the ablation benchmarks (register-file port budget, forwarding, memory
bandwidth sharing) and design-space exploration reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class SimStats:
    """Counters accumulated over one simulation run."""

    cycles: int = 0
    bundles: int = 0
    ops_executed: int = 0       # guard-true, non-NOP operations
    ops_squashed: int = 0       # guard-false operations (predication)
    nops: int = 0
    branches: int = 0
    branches_taken: int = 0
    memory_reads: int = 0
    memory_writes: int = 0
    port_stall_cycles: int = 0
    fetch_stall_cycles: int = 0
    branch_bubble_cycles: int = 0
    regfile_reads: int = 0
    regfile_reads_forwarded: int = 0
    regfile_writes: int = 0
    traps: int = 0              # architectural traps (reliability subsystem)
    fu_busy: Dict[str, int] = field(default_factory=dict)
    #: Why the loaded program fell back to the instrumented loop
    #: (empty when the specialised engines are available).  Descriptive
    #: only: excluded from cycle-exactness fingerprints.
    fastpath_reject_reason: str = ""

    def note_fu(self, fu_class: str) -> None:
        self.fu_busy[fu_class] = self.fu_busy.get(fu_class, 0) + 1

    @property
    def ilp(self) -> float:
        """Achieved instruction-level parallelism (useful ops per cycle)."""
        return self.ops_executed / self.cycles if self.cycles else 0.0

    @property
    def stall_cycles(self) -> int:
        return (
            self.port_stall_cycles
            + self.fetch_stall_cycles
            + self.branch_bubble_cycles
        )

    def summary(self) -> str:
        lines = [
            f"cycles            : {self.cycles}",
            f"bundles issued    : {self.bundles}",
            f"ops executed      : {self.ops_executed}",
            f"ops squashed      : {self.ops_squashed}",
            f"achieved ILP      : {self.ilp:.2f}",
            f"branches (taken)  : {self.branches} ({self.branches_taken})",
            f"memory r/w        : {self.memory_reads}/{self.memory_writes}",
            f"stalls port/fetch/branch: "
            f"{self.port_stall_cycles}/{self.fetch_stall_cycles}/"
            f"{self.branch_bubble_cycles}",
            f"regfile reads     : {self.regfile_reads} "
            f"({self.regfile_reads_forwarded} forwarded)",
            f"regfile writes    : {self.regfile_writes}",
        ]
        if self.traps:
            lines.append(f"traps             : {self.traps}")
        if self.fastpath_reject_reason:
            lines.append(f"fast path rejected: {self.fastpath_reject_reason}")
        if self.fu_busy:
            busy = ", ".join(
                f"{name}={count}" for name, count in sorted(self.fu_busy.items())
            )
            lines.append(f"FU ops            : {busy}")
        return "\n".join(lines)
