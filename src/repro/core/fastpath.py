"""Pre-specialised fast execution path for the EPIC core.

The instrumented run loop in :mod:`repro.core.machine` re-dispatches on
``op.kind`` for every dynamic operation, funnels every write-back
through one global heap, and keeps its forwarding bookkeeping in a
dictionary.  That generality is only needed when a tracer, a fault
injector, strict NUAL checking or a non-``halt`` trap policy is
configured — the common benchmarking case (design-space sweeps,
Table 1 regeneration) pays for hooks it never uses.

This module removes that per-cycle overhead by *pre-specialising* each
decoded bundle once, at program-load time, into a compact execution
record: one generated Python function per static bundle with

* operand accessors resolved (literals folded to constants, register
  reads compiled to direct list indexing),
* the per-op ``kind`` dispatch unrolled into straight-line code,
* the common ALU/CMPP semantics inlined as direct masked expressions
  (``(a + b) & 0xFFFFFFFF`` instead of a call into
  :mod:`repro.isa.semantics` — operands are invariantly masked, so the
  results are bit-identical by construction),
* loads and stores compiled to direct word-array indexing with the
  bounds check inline (out-of-range addresses fall back to the
  :class:`~repro.core.memory.DataMemory` methods, which raise the
  architectural trap), and
* latencies, destination indices, the read-port set and guard checks
  (emitted only for non-``p0`` guards) inlined as constants.

Write-back scheduling replaces the global ``(ready, seq)`` heap with a
dictionary of per-ready-cycle lists: every write-back latency is at
least one cycle, so the drain simply scans forward from the last
drained cycle — ascending ready order, list order preserving issue
order, exactly the heap's pop order.  Forwarding bookkeeping is a flat
list indexed by register number.

Cycle-exactness guarantee
=========================

The fast path is an *optimisation*, never a semantic fork: for every
program it accepts it produces bit-identical cycle counts, statistics
and architectural state to the instrumented path.  Differential tests
(``tests/core/test_fastpath.py``) enforce this over all four paper
workloads across the 1-4 ALU presets, and ``repro-bench`` re-asserts
it on every benchmarking run.  Two intentional asymmetries exist only
on *aborted* runs, which neither path completes:

* per-op counters of a bundle whose later operation traps may include
  statically-hoisted increments for operations after the trap point;
* the ``halt`` trap policy is required, so a trap always propagates.

Programs the specialiser cannot prove safe (register indices outside
the configured files, more than one control operation or store per
bundle, sub-cycle write-back latencies) are rejected at load time and
the processor silently uses the instrumented path instead.  Planted
parity faults (``poison``) are a run-time condition with the same
effect: :meth:`~repro.core.machine.EpicProcessor.run` routes runs with
a non-empty poison set to the instrumented loop, whose register reads
go through the parity-checking accessors.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core import decode as dec
from repro.errors import (
    CycleLimitExceeded,
    HangDetected,
    TrapError,
    TRAP_ILLEGAL_INSTRUCTION,
)
from repro.isa.semantics import ALU_SEMANTICS, CMP_SEMANTICS, to_signed

# Layout of the shared counts list ``C`` referenced by generated code.
_C_EXEC = 0        # ops_executed
_C_SQUASH = 1      # ops_squashed
_C_NOPS = 2
_C_BRANCHES = 3
_C_MEMR = 4        # memory_reads
_C_MEMW = 5        # memory_writes
_C_READS = 6       # regfile_reads (ports + forwarded)
_C_FWD = 7         # regfile_reads_forwarded
_C_FU0 = 8         # first per-FU-class slot; more appended as discovered

#: Control-transfer kinds — at most one may appear per bundle for the
#: specialiser's single branch-decision variable to be faithful.
_CONTROL_KINDS = frozenset({
    dec.K_BR, dec.K_BRCT, dec.K_BRCF, dec.K_BRL, dec.K_HALT,
})

#: Kinds that never schedule a write-back (everything else must have a
#: latency of at least one cycle for the forward-scanning drain to see
#: its pending entry).
_NO_WRITEBACK_KINDS = frozenset({
    dec.K_STORE, dec.K_BR, dec.K_BRCT, dec.K_BRCF, dec.K_HALT,
})

#: CMPP mnemonics comparing the raw (unsigned) register values, which
#: are invariantly masked — inlined as a bare Python comparison.
_CMP_UNSIGNED = {
    "CMPP_EQ": "==", "CMPP_NE": "!=", "CMPP_ULT": "<", "CMPP_UGE": ">=",
}

#: CMPP mnemonics comparing two's-complement values — inlined with the
#: sign conversion open-coded.
_CMP_SIGNED = {
    "CMPP_LT": "<", "CMPP_LE": "<=", "CMPP_GT": ">", "CMPP_GE": ">=",
}


class _Ineligible(Exception):
    """Internal: the program cannot be specialised; use the slow path."""


def _src_expr(lit: bool, payload: int, mask: int, used: Set[str],
              reg_expr=None) -> str:
    """Expression for one source operand (literal folded, reg indexed).

    ``reg_expr``, if given, maps a register number to the expression
    reading it — the trace compiler passes a resolver that substitutes
    promoted Python locals for ``G[n]`` indexing.
    """
    if lit:
        return repr(payload & mask)
    if reg_expr is not None:
        return reg_expr(payload)
    used.add("G")
    return f"G[{payload}]"


def _signed_operand(lit: bool, payload: int, config, used: Set[str],
                    var: str, reg_expr=None) -> Tuple[List[str], str]:
    """Prelude lines + expression for a two's-complement source operand."""
    width = config.datapath_width
    if lit:
        return [], repr(to_signed(payload & config.mask, width))
    if reg_expr is not None:
        source = reg_expr(payload)
    else:
        used.add("G")
        source = f"G[{payload}]"
    return [
        f"{var} = {source}",
        f"if {var} >= {1 << (width - 1)}:",
        f"    {var} -= {1 << width}",
    ], var


def _alu_inline(op, config, used: Set[str],
                reg_expr=None) -> Optional[Tuple[List[str], str]]:
    """Open-coded expression for a built-in ALU op, if one exists.

    Register values and folded literals are invariantly in
    ``[0, mask]``, which is what lets the ``to_unsigned`` clamps of
    :mod:`repro.isa.semantics` reduce to a single ``& mask`` (or vanish
    for the bitwise ops, whose results cannot leave the range).
    """
    mask = config.mask
    shift_mask = config.datapath_width - 1
    a = _src_expr(op.s1_lit, op.s1, mask, used, reg_expr)
    b = _src_expr(op.s2_lit, op.s2, mask, used, reg_expr)
    mnemonic = op.mnemonic
    if mnemonic == "ADD":
        return [], f"({a} + {b}) & {mask}"
    if mnemonic == "SUB":
        return [], f"({a} - {b}) & {mask}"
    if mnemonic == "MUL":
        return [], f"({a} * {b}) & {mask}"
    if mnemonic == "AND":
        return [], f"{a} & {b}"
    if mnemonic == "OR":
        return [], f"{a} | {b}"
    if mnemonic == "XOR":
        return [], f"{a} ^ {b}"
    if mnemonic == "ANDCM":
        return [], f"{a} & ~{b}"
    if mnemonic == "SHL":
        return [], f"({a} << ({b} & {shift_mask})) & {mask}"
    if mnemonic == "SHR":
        return [], f"{a} >> ({b} & {shift_mask})"
    if mnemonic == "SHRA":
        pre, signed_a = _signed_operand(op.s1_lit, op.s1, config, used,
                                        "_x", reg_expr)
        return pre, f"({signed_a} >> ({b} & {shift_mask})) & {mask}"
    return None  # DIV/REM/MIN/MAX stay on the semantics call


def _cmp_inline(op, config, used: Set[str],
                reg_expr=None) -> Optional[Tuple[List[str], str]]:
    """Open-coded 0/1 expression for a built-in CMPP op, if one exists."""
    mnemonic = op.mnemonic
    if mnemonic in _CMP_UNSIGNED:
        a = _src_expr(op.s1_lit, op.s1, config.mask, used, reg_expr)
        b = _src_expr(op.s2_lit, op.s2, config.mask, used, reg_expr)
        return [], f"{a} {_CMP_UNSIGNED[mnemonic]} {b}"
    if mnemonic in _CMP_SIGNED:
        pre_a, a = _signed_operand(op.s1_lit, op.s1, config, used,
                                   "_x", reg_expr)
        pre_b, b = _signed_operand(op.s2_lit, op.s2, config, used,
                                   "_y", reg_expr)
        return pre_a + pre_b, f"{a} {_CMP_SIGNED[mnemonic]} {b}"
    return None


def _push_lines(space: int, index: int, value_expr: str, latency: int,
                used: Set[str]) -> List[str]:
    """Schedule ``value_expr`` to land on ``space[index]`` after ``latency``.

    Mirrors the instrumented path's heap push: entries grouped by ready
    cycle, applied by the drain in ``(ready, issue-order)`` order.
    """
    used.add("PD")
    return [
        f"_v = {value_expr}",
        f"_t = cycle + {latency}",
        "_q = PD.get(_t)",
        "if _q is None:",
        "    _q = PD[_t] = []",
        f"_q.append(({space}, {index}, _v))",
    ]


def _check_index(value: int, limit: int, what: str) -> None:
    if not 0 <= value < limit:
        raise _Ineligible(f"{what} index {value} outside configured file "
                          f"(limit {limit})")


def _op_body(op, pc: int, slot: int, config, namespace: Dict[str, object],
             used: Set[str]) -> Tuple[List[str], bool, List[Tuple[int, int]]]:
    """Generate the body of one pre-decoded op.

    Returns ``(lines, is_control, counter_bumps)`` where
    ``counter_bumps`` lists ``(counts_index, increment)`` pairs the op
    contributes whenever it executes — emitted as code only under a
    guard, otherwise folded into the bundle's static visit counts.
    Raises :class:`_Ineligible` for anything the fast path cannot
    reproduce bit-exactly.
    """
    kind = op.kind
    mask = config.mask
    width = config.datapath_width
    n_gprs = config.n_gprs
    n_preds = config.n_preds
    n_btrs = config.n_btrs
    for reg in op.gpr_reads:
        _check_index(reg, n_gprs, "GPR read")
    _check_index(op.guard, n_preds, "guard predicate")
    if op.latency < 1 and kind not in _NO_WRITEBACK_KINDS:
        # The forward-scanning drain only looks at cycles it has not
        # drained yet; a same-cycle write-back would be missed.
        raise _Ineligible("write-back latency below one cycle")

    def addr_lines(var: str) -> List[str]:
        """Effective address: wrap onto the datapath, then sign."""
        base = _src_expr(op.s1_lit, op.s1, mask, used)
        offset = _src_expr(op.s2_lit, op.s2, mask, used)
        return [
            f"{var} = ({base} + {offset}) & {mask}",
            f"if {var} >= {1 << (width - 1)}:",
            f"    {var} -= {1 << width}",
        ]

    if kind in (dec.K_ALU, dec.K_CUSTOM):
        _check_index(op.d1, n_gprs, "GPR destination")
        a = _src_expr(op.s1_lit, op.s1, mask, used)
        if op.fn is None:  # MOVE: plain copy of src1
            return _push_lines(0, op.d1, a, op.latency, used), False, []
        inline = None
        if kind == dec.K_ALU and op.fn is ALU_SEMANTICS.get(op.mnemonic):
            inline = _alu_inline(op, config, used)
        if inline is not None:
            prelude, expr = inline
            return prelude + _push_lines(0, op.d1, expr,
                                         op.latency, used), False, []
        b = _src_expr(op.s2_lit, op.s2, mask, used)
        fn_name = f"F{pc}_{slot}"
        namespace[fn_name] = op.fn
        used.add(fn_name)
        third = mask if kind == dec.K_CUSTOM else width
        return _push_lines(0, op.d1, f"{fn_name}({a}, {b}, {third})",
                           op.latency, used), False, []

    if kind == dec.K_MOVI:
        _check_index(op.d1, n_gprs, "GPR destination")
        return _push_lines(0, op.d1, repr(op.s1 & mask),
                           op.latency, used), False, []

    if kind == dec.K_CMP:
        _check_index(op.d1, n_preds, "predicate destination")
        _check_index(op.d2, n_preds, "predicate destination")
        inline = None
        if op.fn is CMP_SEMANTICS.get(op.mnemonic):
            inline = _cmp_inline(op, config, used)
        if inline is not None:
            prelude, expr = inline
            condition = expr
        else:
            a = _src_expr(op.s1_lit, op.s1, mask, used)
            b = _src_expr(op.s2_lit, op.s2, mask, used)
            fn_name = f"F{pc}_{slot}"
            namespace[fn_name] = op.fn
            used.add(fn_name)
            prelude, condition = [], f"{fn_name}({a}, {b}, {width})"
        used.add("PD")
        return prelude + [
            f"_v = {condition}",
            f"_t = cycle + {op.latency}",
            "_q = PD.get(_t)",
            "if _q is None:",
            "    _q = PD[_t] = []",
            f"_q.append((1, {op.d1}, _v))",
            f"_q.append((1, {op.d2}, 1 - _v))",
        ], False, []

    if kind in (dec.K_LOAD, dec.K_LOAD_SPEC):
        _check_index(op.d1, n_gprs, "GPR destination")
        lines = addr_lines("_a")
        n_words = namespace["_N_MEM_WORDS"]
        used.add("MEM")
        if kind == dec.K_LOAD_SPEC:
            # Dismissible load: bad addresses read as zero.
            lines.append(f"_v = MEM[_a] if 0 <= _a < {n_words} else 0")
        else:
            # In-range reads index the word array directly; anything
            # else goes through DataMemory.read for the OOB trap.
            used.add("MR")
            lines.append(f"_v = MEM[_a] if 0 <= _a < {n_words} else MR(_a)")
        lines += _push_lines(0, op.d1, "_v", op.latency, used)
        return lines, False, [(_C_MEMR, 1)]

    if kind == dec.K_STORE:
        _check_index(op.d1, n_gprs, "store source")
        n_words = namespace["_N_MEM_WORDS"]
        used.update(("MC", "G"))
        return addr_lines("_ta") + [
            f"if not 0 <= _ta < {n_words}:",
            "    MC(_ta)",  # raises the OOB store trap
            "_sa = _ta",
            f"_sv = G[{op.d1}]",
        ], False, [(_C_MEMW, 1)]

    if kind == dec.K_PBR:
        _check_index(op.d1, n_btrs, "BTR destination")
        if op.s1 < 0:
            raise _Ineligible("PBR with negative target")
        return _push_lines(2, op.d1, repr(op.s1), op.latency, used), False, []

    if kind == dec.K_MOVGBP:
        _check_index(op.d1, n_btrs, "BTR destination")
        value = _src_expr(op.s1_lit, op.s1, mask, used)
        return _push_lines(2, op.d1, value, op.latency, used), False, []

    if kind in (dec.K_BR, dec.K_BRL):
        _check_index(op.s1, n_btrs, "branch-target read")
        used.add("B")
        lines = [f"_tg = B[{op.s1}]"]
        if kind == dec.K_BRL:
            _check_index(op.d1, n_gprs, "link destination")
            lines += _push_lines(0, op.d1, repr((pc + 1) & mask),
                                 op.latency, used)
        return lines, True, [(_C_BRANCHES, 1)]

    if kind in (dec.K_BRCT, dec.K_BRCF):
        _check_index(op.s1, n_btrs, "branch-target read")
        _check_index(op.s2, n_preds, "branch condition")
        used.update(("B", "P"))
        test = f"P[{op.s2}]" if kind == dec.K_BRCT else f"not P[{op.s2}]"
        return [
            f"if {test}:",
            f"    _tg = B[{op.s1}]",
        ], True, [(_C_BRANCHES, 1)]

    if kind == dec.K_HALT:
        return ["_tg = -1"], True, []

    raise _Ineligible(f"unsupported op kind {kind}")


def _bundle_source(pc: int, bundle, config, namespace: Dict[str, object],
                   fu_slot, forwarding: bool
                   ) -> Tuple[str, str, List[Tuple[int, int]]]:
    """Generate one bundle's execution function.

    Returns ``(name, source, static_counts)``.  ``static_counts`` holds
    the counter increments every execution of the bundle is known to
    make (ops not behind a guard, NOP slots, the static read set): the
    run loop only counts *visits* per bundle and multiplies these out
    at the end, so the generated code carries no bookkeeping for them.
    Guarded ops keep their increments inline, inside the guard test.
    """
    used: Set[str] = set()
    body: List[str] = []
    static: Dict[int, int] = {}

    # -- stage 1: read-port accounting (read set known statically) ------
    read_set = [r for r in bundle.gpr_read_set if r]
    if read_set:
        static[_C_READS] = len(read_set)
    if forwarding and read_set:
        used.update(("RA", "C"))
        # A read is forwarded exactly when its producer's write-back
        # landed this very cycle; total ports used is invariant, so the
        # per-register test collapses to one branch-free sum.
        forwarded = " + ".join(f"(RA[{reg}] == cycle)" for reg in read_set)
        body.append(f"_f = {forwarded}")
        body.append(f"reads = {len(read_set)} - _f")
        body.append(f"C[{_C_FWD}] += _f")
    else:
        body.append(f"reads = {len(read_set)}")

    # -- stage 2: execute, with per-op code unrolled --------------------
    has_control = any(op.kind in _CONTROL_KINDS for op in bundle.ops)
    if sum(op.kind in _CONTROL_KINDS for op in bundle.ops) > 1:
        raise _Ineligible("more than one control operation in a bundle")
    has_store = any(op.kind == dec.K_STORE for op in bundle.ops)
    if sum(op.kind == dec.K_STORE for op in bundle.ops) > 1:
        # The generated code holds one buffered store in (_sa, _sv).
        raise _Ineligible("more than one store in a bundle")
    if has_control:
        body.append("_tg = None")
    if has_store:
        body.append("_sa = -1")

    for slot, op in enumerate(bundle.ops):
        if op.kind == dec.K_NOP:
            static[_C_NOPS] = static.get(_C_NOPS, 0) + 1
            continue
        lines, _, bumps = _op_body(op, pc, slot, config, namespace, used)
        fu_index = fu_slot(op.fu)
        if op.guard:
            used.update(("P", "C"))
            body.append(f"if P[{op.guard}]:")
            body.append(f"    C[{_C_EXEC}] += 1")
            body.append(f"    C[{fu_index}] += 1")
            for index, k in bumps:
                body.append(f"    C[{index}] += {k}")
            body.extend("    " + line for line in lines)
            body.append("else:")
            body.append(f"    C[{_C_SQUASH}] += 1")
        else:
            static[_C_EXEC] = static.get(_C_EXEC, 0) + 1
            static[fu_index] = static.get(fu_index, 0) + 1
            for index, k in bumps:
                static[index] = static.get(index, 0) + k
            body.extend(lines)

    # -- buffered stores land once the whole bundle has executed -------
    tail: List[str] = []
    if has_store:
        used.add("MEM")
        tail.append("if _sa >= 0:")
        tail.append("    MEM[_sa] = _sv")  # G values are pre-masked
    # Non-control bundles return a bare int: no per-cycle tuple.
    tail.append("return reads, _tg" if has_control else "return reads")

    name = f"_b{pc}"
    params = ["cycle"] + [f"{n}={n}" for n in sorted(used)]
    lines = [f"def {name}({', '.join(params)}):"]
    lines.extend("    " + line for line in body + tail)
    return name, "\n".join(lines), sorted(static.items())


def specialise(machine) -> Optional["FastSim"]:
    """Build the fast execution engine for ``machine``'s loaded program.

    Returns ``None`` when the program contains something the fast path
    cannot reproduce bit-exactly (the caller then stays on the
    instrumented loop); the rejection reason is recorded on the machine
    as ``fastpath_reject_reason`` so the downgrade is never silent.
    """
    try:
        sim = FastSim(machine)
    except _Ineligible as reason:
        machine.fastpath_reject_reason = str(reason)
        machine.stats.fastpath_reject_reason = str(reason)
        return None
    machine.fastpath_reject_reason = ""
    return sim


@dataclass
class _Generated:
    """Machine-independent output of the bundle code generator."""

    code: object
    names: List[str]
    statics: List[List[Tuple[int, int]]]
    counts_len: int
    fu_index: Dict[str, int]
    base_namespace: Dict[str, object]
    n_mem: List[int]


def _generate(machine) -> _Generated:
    config = machine.config
    counts_len = _C_FU0
    fu_index: Dict[str, int] = {}

    def fu_slot(fu_class: str) -> int:
        nonlocal counts_len
        if fu_class not in fu_index:
            fu_index[fu_class] = counts_len
            counts_len += 1
        return fu_index[fu_class]

    namespace: Dict[str, object] = {
        # Memory size is fixed for the machine's lifetime; the code
        # generator inlines it into the bounds checks.
        "_N_MEM_WORDS": len(machine.memory),
    }
    names: List[str] = []
    sources: List[str] = []
    statics: List[List[Tuple[int, int]]] = []
    for pc, bundle in enumerate(machine._bundles):
        name, source, static_counts = _bundle_source(
            pc, bundle, config, namespace, fu_slot,
            forwarding=config.forwarding,
        )
        names.append(name)
        sources.append(source)
        statics.append(static_counts)
    code = compile("\n\n".join(sources), "<repro.core.fastpath>", "exec")
    return _Generated(
        code=code, names=names, statics=statics, counts_len=counts_len,
        fu_index=fu_index, base_namespace=namespace,
        n_mem=[bundle.n_mem for bundle in machine._bundles],
    )


def _generated_code(machine) -> _Generated:
    """Codegen for ``machine``'s program, cached on the program object.

    Generation and ``compile()`` depend only on the program, the
    machine configuration (keyed by its canonical rendering, like the
    serve result cache) and the memory size — not on the machine
    instance — so fault-injection harnesses that build many processors
    for one program pay for code generation once.  Ineligibility is
    cached too, as the rejection reason.
    """
    program = machine.program
    key = (json.dumps(machine.config.canonical(), sort_keys=True),
           len(machine.memory))
    cache = program.__dict__.setdefault("_fastpath_codegen", {})
    hit = cache.get(key)
    if hit is not None:
        kind, payload = hit
        if kind == "ineligible":
            raise _Ineligible(payload)
        return payload
    try:
        generated = _generate(machine)
    except _Ineligible as reason:
        cache[key] = ("ineligible", str(reason))
        raise
    cache[key] = ("ok", generated)
    return generated


class FastSim:
    """Compiled per-bundle execution records plus the fast run loop."""

    def __init__(self, machine):
        config = machine.config
        generated = _generated_code(machine)
        counts = [0] * generated.counts_len
        pending: Dict[int, List[Tuple[int, int, int]]] = {}
        # Shared mutable context the generated functions bind directly
        # (as default arguments, at exec time below): the raw register
        # and memory lists, the forwarding ages, the counters.
        namespace = dict(generated.base_namespace)
        namespace.update(
            G=machine.gpr._values,
            P=machine.pred._values,
            B=machine.btr._values,
            RA=[-1] * config.n_gprs,
            C=counts,
            PD=pending,
            MEM=machine.memory._words,
            MR=machine.memory.read,
            MC=machine.memory.check_write,
        )
        exec(generated.code, namespace)  # noqa: S102 - our own generated source

        self._machine = machine
        self._fns = [namespace[name] for name in generated.names]
        self._static = generated.statics
        self._n_mem = generated.n_mem
        self._counts = counts
        self._fu_index = generated.fu_index
        self._pending = pending
        self._ready_at = namespace["RA"]
        self._gpr_values = machine.gpr._values
        self._pred_values = machine.pred._values
        self._btr_values = machine.btr._values

    # -- run loop ----------------------------------------------------------

    def run(self, max_cycles: int, watchdog_cycles: Optional[int],
            until_cycle: Optional[int] = None,
            start_cycle: int = 0,
            start_pc: Optional[int] = None) -> int:
        """Execute until HALT; returns the final cycle count.

        Statistics are folded into the machine's :class:`SimStats` (also
        on abnormal exits, so a partially-run processor still reports
        what it did).  Raises exactly what the instrumented path would:
        :class:`~repro.errors.CycleLimitExceeded`,
        :class:`~repro.errors.HangDetected` or a propagating
        :class:`~repro.errors.TrapError` under the ``halt`` policy.

        ``until_cycle`` pauses at the first quiescent cycle at or after
        it (machine resume state is set, the partial cycle count is
        returned); ``start_cycle``/``start_pc`` resume a paused or
        restored machine.  Per-run working state (counts, pending,
        forwarding ages) is reset here, which is exact *because* resume
        points are quiescent: nothing was in flight, and stale
        forwarding ages can never equal a future cycle.
        """
        machine = self._machine
        config = machine.config
        stats = machine.stats
        fns = self._fns
        n_mem = self._n_mem
        n_bundles = len(fns)
        gmask = config.mask

        gpr = self._gpr_values
        pred = self._pred_values
        btr = self._btr_values
        counts = self._counts
        pending = self._pending
        pending_pop = pending.pop
        ready_at = self._ready_at

        # Fresh per-run context (a prior aborted run may have leftovers).
        for i in range(len(counts)):
            counts[i] = 0
        pending.clear()
        ready_at[:] = [-1] * len(ready_at)

        port_budget = config.regfile_ops_per_cycle
        model_ports = config.model_port_limit
        share_bandwidth = config.lsu_shares_fetch_bandwidth
        fetch_bits = config.issue_width * 64
        bank_bits = config.n_mem_banks * 32 * 2
        branch_penalty = config.taken_branch_penalty

        # Per-bundle visit counts: each visit implies the bundle's
        # static counter increments, multiplied out in the fold below.
        visits = [0] * n_bundles
        branches_taken = 0
        branch_bubbles = 0
        port_stalls = 0
        fetch_stalls = 0
        regfile_writes = 0
        traps_seen = 0

        # One hoisted limit check per cycle; which limit tripped decides
        # the exception, preserving the instrumented path's precedence
        # (cycle budget checked before the watchdog).
        limit = max_cycles
        if watchdog_cycles is not None and watchdog_cycles < limit:
            limit = watchdog_cycles

        cycle = start_cycle
        next_ready = start_cycle  # lowest write-back cycle not yet drained
        pc = start_pc if start_pc is not None else machine.program.entry
        try:
            while True:
                if cycle >= limit:
                    if cycle >= max_cycles:
                        raise CycleLimitExceeded(
                            "cycle budget exhausted (runaway program?)",
                            cycle=cycle, pc=pc, limit=max_cycles,
                        )
                    raise HangDetected(
                        "watchdog fired: execution ran far past the "
                        "expected cycle count",
                        cycle=cycle, pc=pc, limit=watchdog_cycles,
                    )
                if until_cycle is not None and cycle >= until_cycle \
                        and not pending:
                    # Quiescent pause (see the instrumented loop): no
                    # write-back in flight, checked after the absolute
                    # cycle budgets so limits fire at the same cycle as
                    # an uninterrupted run.
                    machine._paused = True
                    machine._resume_cycle = cycle
                    machine._resume_pc = pc
                    break
                if not 0 <= pc < n_bundles:
                    raise TrapError(
                        "control fell outside the program (missing HALT "
                        "or corrupted branch target?)",
                        cause=TRAP_ILLEGAL_INSTRUCTION, cycle=cycle, pc=pc,
                    )

                # Write-backs due by now, in (ready, issue-order) order.
                # Every pending entry is scheduled at least one cycle
                # ahead, so scanning forward from the last drained cycle
                # visits each ready cycle exactly once.
                while next_ready < cycle:
                    queue = pending_pop(next_ready, None)
                    if queue is not None:
                        for space, index, value in queue:
                            if space == 0:
                                if index:
                                    gpr[index] = value & gmask
                                ready_at[index] = next_ready
                                regfile_writes += 1
                            elif space == 1:
                                if index:
                                    pred[index] = 1 if value else 0
                            else:
                                btr[index] = value
                    next_ready += 1
                writes_landing = 0
                queue = pending_pop(cycle, None)
                if queue is not None:
                    for space, index, value in queue:
                        if space == 0:
                            if index:
                                gpr[index] = value & gmask
                            ready_at[index] = cycle
                            regfile_writes += 1
                            writes_landing += 1
                        elif space == 1:
                            if index:
                                pred[index] = 1 if value else 0
                        else:
                            btr[index] = value
                next_ready = cycle + 1

                visits[pc] += 1
                try:
                    result = fns[pc](cycle)
                except TrapError as trap:
                    trap.annotate(cycle, pc)
                    machine.traps.append(trap)
                    traps_seen += 1
                    raise  # fast path requires the "halt" trap policy
                if result.__class__ is int:  # non-control bundle
                    reads = result
                    target = None
                else:
                    reads, target = result

                extra = 0
                if model_ports:
                    port_ops = reads + writes_landing
                    if port_ops > port_budget:
                        stall = (port_ops + port_budget - 1) // port_budget - 1
                        port_stalls += stall
                        extra += stall
                if share_bandwidth and n_mem[pc]:
                    demand = fetch_bits + 32 * n_mem[pc]
                    stall = (demand + bank_bits - 1) // bank_bits - 1
                    fetch_stalls += stall
                    extra += stall

                if target is None:
                    pc += 1
                elif target >= 0:
                    branches_taken += 1
                    branch_bubbles += branch_penalty
                    extra += branch_penalty
                    pc = target
                else:  # HALT
                    cycle += 1 + extra
                    break
                cycle += 1 + extra
        finally:
            # Fold local and generated-code counters into the shared
            # stats object — also on abnormal exits.  Static per-bundle
            # counts are multiplied out by visit count here, which is
            # what lets the generated code skip them entirely.
            bundles_issued = 0
            statics = self._static
            for i, n in enumerate(visits):
                if n:
                    bundles_issued += n
                    for index, k in statics[i]:
                        counts[index] += n * k
            stats.bundles += bundles_issued
            stats.branches_taken += branches_taken
            stats.branch_bubble_cycles += branch_bubbles
            stats.port_stall_cycles += port_stalls
            stats.fetch_stall_cycles += fetch_stalls
            stats.regfile_writes += regfile_writes
            stats.traps += traps_seen
            stats.ops_executed += counts[_C_EXEC]
            stats.ops_squashed += counts[_C_SQUASH]
            stats.nops += counts[_C_NOPS]
            stats.branches += counts[_C_BRANCHES]
            stats.memory_reads += counts[_C_MEMR]
            stats.memory_writes += counts[_C_MEMW]
            stats.regfile_reads += counts[_C_READS]
            stats.regfile_reads_forwarded += counts[_C_FWD]
            fu_busy = stats.fu_busy
            for fu_class, index in self._fu_index.items():
                if counts[index]:
                    fu_busy[fu_class] = (
                        fu_busy.get(fu_class, 0) + counts[index]
                    )
            for i in range(len(counts)):
                counts[i] = 0

        # Drain outstanding write-backs so final state is architectural.
        # All remaining entries are at ``next_ready`` or later (pushes
        # land at least one cycle after their issue cycle).
        while pending:
            queue = pending_pop(next_ready, None)
            next_ready += 1
            if queue is None:
                continue
            for space, index, value in queue:
                if space == 0:
                    if index:
                        gpr[index] = value & gmask
                elif space == 1:
                    if index:
                        pred[index] = 1 if value else 0
                else:
                    btr[index] = value

        stats.cycles = cycle
        return cycle
