"""Register files: general-purpose, predicate and branch-target.

The general-purpose file models the paper's conventions (§3.2): it is
held in dual-port block RAM whose controller runs at 4x the processor
clock, giving a budget of eight read/write operations per processor
cycle (port accounting itself lives in the core's issue logic, since it
is a property of a whole issue group).  Register 0 is hardwired to zero
and predicate register 0 is hardwired true — the toolchain's "always
execute" guard.

Fault-injection surface
=======================

Each file exposes ``flip_bit``/``force_bit`` (used by
:class:`repro.reliability.FaultInjector` to model single-event upsets
and stuck-at faults) and ``poison``/``clear_poison``.  A *poisoned*
entry models a word whose parity no longer checks: reading it raises a
:class:`~repro.errors.TrapError` with the ``parity-error`` cause, and
overwriting it repairs it.  The poison set is empty unless an injector
planted a fault, so fault-free runs never pay for the check beyond one
truthiness test.

Out-of-range indices raise a ``register-port-overflow`` trap rather
than a plain :class:`~repro.errors.SimulationError`: with a verified
program they cannot occur, so reaching one means a corrupted
instruction word addressed a register port that does not exist.
"""

from __future__ import annotations

from typing import List, Set

from repro.errors import (
    SimulationError,
    TrapError,
    TRAP_PARITY,
    TRAP_REGISTER_OVERFLOW,
)


class _FaultySet:
    """Mixin: bit-level fault injection and parity poisoning."""

    _values: List[int]
    _poisoned: Set[int]
    _kind = "register"

    def flip_bit(self, index: int, bit: int) -> int:
        """XOR one stored bit (SEU model); returns the new value."""
        self._bounds(index)
        self._values[index] ^= 1 << bit
        return self._values[index]

    def force_bit(self, index: int, bit: int, level: int) -> int:
        """Force one stored bit to ``level`` (stuck-at model)."""
        self._bounds(index)
        if level:
            self._values[index] |= 1 << bit
        else:
            self._values[index] &= ~(1 << bit)
        return self._values[index]

    def peek(self, index: int) -> int:
        """Read without side effects or parity checking (debug/injector)."""
        self._bounds(index)
        return self._values[index]

    def poison(self, index: int) -> None:
        """Mark an entry as failing its parity check on the next read."""
        self._bounds(index)
        self._poisoned.add(index)

    def clear_poison(self, index: int) -> None:
        self._poisoned.discard(index)

    def _bounds(self, index: int) -> None:
        if not 0 <= index < len(self._values):
            raise TrapError(
                f"{self._kind} index {index} out of range",
                cause=TRAP_REGISTER_OVERFLOW,
            )

    def _check_parity(self, index: int) -> None:
        raise TrapError(
            f"parity mismatch reading {self._kind} {index}",
            cause=TRAP_PARITY,
        )


class GprFile(_FaultySet):
    """General-purpose registers; ``r0`` reads as zero, writes ignored."""

    _kind = "GPR"

    def __init__(self, count: int, width: int):
        if count < 1:
            raise SimulationError("GPR file needs at least one register")
        self._count = count
        self._mask = (1 << width) - 1
        self._values: List[int] = [0] * count
        self._poisoned: Set[int] = set()

    def __len__(self) -> int:
        return self._count

    def read(self, index: int) -> int:
        if not 0 <= index < self._count:
            raise TrapError(
                f"GPR index {index} out of range",
                cause=TRAP_REGISTER_OVERFLOW,
            )
        if self._poisoned and index in self._poisoned:
            self._check_parity(index)
        return self._values[index]

    def write(self, index: int, value: int) -> None:
        if not 0 <= index < self._count:
            raise TrapError(
                f"GPR index {index} out of range",
                cause=TRAP_REGISTER_OVERFLOW,
            )
        if index == 0:
            return  # hardwired zero
        if self._poisoned:
            self._poisoned.discard(index)  # a full-word write repairs parity
        self._values[index] = value & self._mask

    def flip_bit(self, index: int, bit: int) -> int:
        if index == 0:
            return 0  # no storage behind the hardwired zero
        value = super().flip_bit(index, bit)
        self._values[index] = value & self._mask
        return self._values[index]

    def force_bit(self, index: int, bit: int, level: int) -> int:
        if index == 0:
            return 0
        value = super().force_bit(index, bit, level)
        self._values[index] = value & self._mask
        return self._values[index]

    def dump(self) -> List[int]:
        return list(self._values)


class PredFile(_FaultySet):
    """1-bit predicate registers; ``p0`` reads true, writes ignored."""

    _kind = "predicate"

    def __init__(self, count: int):
        if count < 1:
            raise SimulationError("predicate file needs at least one register")
        self._count = count
        self._values: List[int] = [0] * count
        self._values[0] = 1
        self._poisoned: Set[int] = set()

    def __len__(self) -> int:
        return self._count

    def read(self, index: int) -> int:
        if not 0 <= index < self._count:
            raise TrapError(
                f"predicate index {index} out of range",
                cause=TRAP_REGISTER_OVERFLOW,
            )
        if self._poisoned and index in self._poisoned:
            self._check_parity(index)
        return self._values[index]

    def write(self, index: int, value: int) -> None:
        if not 0 <= index < self._count:
            raise TrapError(
                f"predicate index {index} out of range",
                cause=TRAP_REGISTER_OVERFLOW,
            )
        if index == 0:
            return  # hardwired true; also the CMPP "discard" destination
        if self._poisoned:
            self._poisoned.discard(index)
        self._values[index] = 1 if value else 0

    def flip_bit(self, index: int, bit: int) -> int:
        # Predicates are one bit wide; any requested bit flips bit 0.
        if index == 0:
            return 1  # no storage behind the hardwired-true guard
        return super().flip_bit(index, 0)

    def force_bit(self, index: int, bit: int, level: int) -> int:
        if index == 0:
            return 1
        return super().force_bit(index, 0, level)

    def dump(self) -> List[int]:
        return list(self._values)


class BtrFile(_FaultySet):
    """Branch-target registers: "destination addresses which are
    calculated in advance and are likely to be required in the near
    future" (paper §3.2).  Values are bundle addresses."""

    _kind = "BTR"

    def __init__(self, count: int):
        if count < 1:
            raise SimulationError("BTR file needs at least one register")
        self._count = count
        self._values: List[int] = [0] * count
        self._poisoned: Set[int] = set()

    def __len__(self) -> int:
        return self._count

    def read(self, index: int) -> int:
        if not 0 <= index < self._count:
            raise TrapError(
                f"BTR index {index} out of range",
                cause=TRAP_REGISTER_OVERFLOW,
            )
        if self._poisoned and index in self._poisoned:
            self._check_parity(index)
        return self._values[index]

    def write(self, index: int, value: int) -> None:
        if not 0 <= index < self._count:
            raise TrapError(
                f"BTR index {index} out of range",
                cause=TRAP_REGISTER_OVERFLOW,
            )
        if value < 0:
            raise SimulationError(f"negative branch target {value}")
        if self._poisoned:
            self._poisoned.discard(index)
        self._values[index] = value

    def dump(self) -> List[int]:
        return list(self._values)
