"""Register files: general-purpose, predicate and branch-target.

The general-purpose file models the paper's conventions (§3.2): it is
held in dual-port block RAM whose controller runs at 4x the processor
clock, giving a budget of eight read/write operations per processor
cycle (port accounting itself lives in the core's issue logic, since it
is a property of a whole issue group).  Register 0 is hardwired to zero
and predicate register 0 is hardwired true — the toolchain's "always
execute" guard.
"""

from __future__ import annotations

from typing import List

from repro.errors import SimulationError


class GprFile:
    """General-purpose registers; ``r0`` reads as zero, writes ignored."""

    def __init__(self, count: int, width: int):
        if count < 1:
            raise SimulationError("GPR file needs at least one register")
        self._count = count
        self._mask = (1 << width) - 1
        self._values: List[int] = [0] * count

    def __len__(self) -> int:
        return self._count

    def read(self, index: int) -> int:
        if not 0 <= index < self._count:
            raise SimulationError(f"GPR index {index} out of range")
        return self._values[index]

    def write(self, index: int, value: int) -> None:
        if not 0 <= index < self._count:
            raise SimulationError(f"GPR index {index} out of range")
        if index == 0:
            return  # hardwired zero
        self._values[index] = value & self._mask

    def dump(self) -> List[int]:
        return list(self._values)


class PredFile:
    """1-bit predicate registers; ``p0`` reads true, writes ignored."""

    def __init__(self, count: int):
        if count < 1:
            raise SimulationError("predicate file needs at least one register")
        self._count = count
        self._values: List[int] = [0] * count
        self._values[0] = 1

    def __len__(self) -> int:
        return self._count

    def read(self, index: int) -> int:
        if not 0 <= index < self._count:
            raise SimulationError(f"predicate index {index} out of range")
        return self._values[index]

    def write(self, index: int, value: int) -> None:
        if not 0 <= index < self._count:
            raise SimulationError(f"predicate index {index} out of range")
        if index == 0:
            return  # hardwired true; also the CMPP "discard" destination
        self._values[index] = 1 if value else 0

    def dump(self) -> List[int]:
        return list(self._values)


class BtrFile:
    """Branch-target registers: "destination addresses which are
    calculated in advance and are likely to be required in the near
    future" (paper §3.2).  Values are bundle addresses."""

    def __init__(self, count: int):
        if count < 1:
            raise SimulationError("BTR file needs at least one register")
        self._count = count
        self._values: List[int] = [0] * count

    def __len__(self) -> int:
        return self._count

    def read(self, index: int) -> int:
        if not 0 <= index < self._count:
            raise SimulationError(f"BTR index {index} out of range")
        return self._values[index]

    def write(self, index: int, value: int) -> None:
        if not 0 <= index < self._count:
            raise SimulationError(f"BTR index {index} out of range")
        if value < 0:
            raise SimulationError(f"negative branch target {value}")
        self._values[index] = value

    def dump(self) -> List[int]:
        return list(self._values)
