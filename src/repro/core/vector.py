"""Batched vectorised fault-campaign engine: N injected lanes, one pass.

Fault campaigns are thousands of near-identical runs: every injected
machine executes the *golden* (fault-free) trajectory up to its fault
cycle, diverges — usually locally and briefly — and in the common case
converges right back onto the golden trajectory (MASKED).  The scalar
checker pays one full simulator run per fault; this engine walks the
golden trajectory **once** and carries N injected machines along as
*lanes* of lane-major 2-D state:

* the data-memory plane is a ``(lanes, mem_words)`` matrix — a NumPy
  ``int64`` array when NumPy is importable, a list of row lists
  otherwise — so lane activation (row copy), convergence compares
  (row equality) and final output diffs vectorise;
* register/predicate/BTR planes are rows of Python lists (row 0 is the
  golden machine, one row per lane), because per-operation scalar
  access dominates there and the rows are tiny.

Exactness contract
==================

The walk replays ``EpicProcessor._run_instrumented`` exactly — same
drain order, same port/bandwidth stall arithmetic, same store buffering,
same operation semantics (it calls the *same* ``PreOp.fn`` callables) —
so row 0 reproduces the reference run cycle-for-cycle.  A lane only
stays in the vector while its future is provably identical to the
golden machine's *control flow*:

* a lane whose guard predicate disagrees with the golden guard retires
  (``guard-divergence``) — per-lane squash would change the write-back
  schedule and hence the port-stall timing;
* a lane whose branch condition or branch target disagrees retires
  (``branch-divergence``);
* under the ``halt`` trap policy a lane that would trap (out-of-bounds
  load/store) retires (``trap-risk``); under ``squash-bundle`` and
  ``record-and-continue`` the trap is *recorded in-lane* instead — the
  lane keeps riding with its squashed write-backs pinned to ``_KEEP``
  in the value columns, and only retires if the recorded trap bends its
  control flow or port-stall timing away from the golden machine's
  (``trap-timing``).  Division by zero always retires (``trap-risk``):
  the scalar machine raises it past every policy;
* instruction-fetch faults are resolved at the fetch they corrupt: a
  word that no longer decodes under the ``halt`` policy is classified
  DETECTED on the spot (the caller supplies the exact trap text via the
  ``ifetch`` callback); a fetch that deterministically *rewrites* the
  program (it still decodes, or the recorded decode trap skips the
  bundle) yields a :class:`RewalkTicket` so the caller can classify
  every lane sharing the same rewritten fetch with **one** scalar
  re-walk (the grouped second pass) instead of one run per lane;
* parity-protected targets retire (``parity-protected``) — poison
  bookkeeping belongs to the scalar machine;
* out-of-range or malformed fault specs retire (``fault-out-of-range``)
  so the scalar path reproduces today's error behaviour;
* any internal surprise retires every unresolved lane
  (``engine-error``) — the engine may only ever *decline* work.

Retired lanes are re-run by the scalar ``LockstepChecker``, which is
ground truth, so retirement can never change an outcome table.  For
lanes that survive, matched guards + matched branches + no trap imply
the lane issues the same bundles at the same cycles as the golden run
(write-back schedules, forwarding ages and stall arithmetic are
lane-invariant), so its final cycle count *is* ``reference_cycles`` and
in-vector classification is exact:

* **convergence cut** — at a quiescent cycle (empty write-back queue),
  an activated non-stuck lane whose whole state equals row 0 can never
  diverge again: MASKED immediately (PR 5 semantics);
* **end of walk** — surviving lanes halt with the golden machine and
  are classified by diffing their outputs against the golden model in
  exactly the scalar checker's order (SDC on the first mismatch,
  MASKED otherwise);
* faults whose cycle lies beyond the last issue cycle never fire:
  MASKED with the reference cycle count, as in the scalar run.

Between activations with no live lane the walk fast-forwards along the
shared golden checkpoint stream (``golden-jump``), and it stops early
once every lane is resolved — so sparse campaigns do not pay for the
whole trajectory.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import decode as dec
from repro.errors import (
    TRAP_OOB_LOAD,
    TRAP_OOB_STORE,
    SimulationError,
    TrapError,
)
from repro.isa import semantics as sem
from repro.isa.semantics import to_signed
from repro.mdes import Mdes

try:  # NumPy is optional; the pure-Python plane is exact, just slower.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    _np = None

#: Fault target spaces / models, mirrored locally (``repro.reliability``
#: imports the core, not the other way around).
_SPACE_GPR = "gpr"
_SPACE_PRED = "pred"
_SPACE_BTR = "btr"
_SPACE_MEM = "mem"
_SPACE_IFETCH = "ifetch"
_STATE_SPACES = (_SPACE_GPR, _SPACE_PRED, _SPACE_BTR, _SPACE_MEM)
_MODEL_SEU = "seu"
_MODEL_STUCK0 = "stuck-at-0"
_MODEL_STUCK1 = "stuck-at-1"
_MODELS = (_MODEL_SEU, _MODEL_STUCK0, _MODEL_STUCK1)

#: Retirement reasons (stats keys; every retired lane re-runs scalar).
RETIRE_GUARD = "guard-divergence"
RETIRE_BRANCH = "branch-divergence"
RETIRE_TRAP = "trap-risk"
RETIRE_TRAP_TIMING = "trap-timing"
RETIRE_IFETCH = "ifetch-rewrite"
RETIRE_PARITY = "parity-protected"
RETIRE_BOUNDS = "fault-out-of-range"
RETIRE_ENGINE = "engine-error"

#: Default lane count per pass; bounds the memory plane at
#: ``(DEFAULT_LANES + 1) * mem_words`` words.
DEFAULT_LANES = 64

# Pending write-back spaces (same codes as the scalar core).
_P_GPR = 0
_P_PRED = 1
_P_BTR = 2

#: Sentinel for squashed per-lane write-backs (non-halt trap policies):
#: a ``vec[row]`` of ``_KEEP`` means the lane's machine never issued
#: the write, so the drain must leave the lane's current value alone.
_KEEP = object()

#: Minimum *divergent* rows before the NumPy column path beats per-lane
#: Python calls.  The sparse overlay walk already skips non-divergent
#: lanes and short-circuits golden operands, so the column's
#: gather/scatter overhead only pays off once the divergent population
#: is fairly large (measured crossover on the quick campaigns: ~16).
_COLUMN_MIN_LANES = 16


def _column_tables():
    """Build int64 column twins of the scalar ALU/CMP semantics.

    Keyed by the *callable* stored in ``PreOp.fn`` so dispatch is one
    dict probe.  Each twin is exact over NumPy int64 for datapath
    widths up to 32 bits: operands are masked machine words (below
    ``2**32``), so sums, shifted values and two's-complement
    conversions all stay inside int64.  MUL (the full product can need
    64 bits) and DIV/REM (zero divisors raise) keep the per-lane
    scalar path.
    """

    def unsigned(a, width):
        return a & ((1 << width) - 1)

    def signed(a, width):
        u = a & ((1 << width) - 1)
        return u - ((u >> (width - 1)) << width)

    def shift(b, width):
        return b & (width - 1)

    def col_shra(a, b, width):
        return unsigned(signed(a, width) >> shift(b, width), width)

    def col_min(a, b, width):
        return _np.where(signed(a, width) <= signed(b, width), a, b)

    def col_max(a, b, width):
        return _np.where(signed(a, width) >= signed(b, width), a, b)

    def flag(condition):
        return condition.astype(_np.int64)

    alu = {
        sem.add: lambda a, b, w: unsigned(a + b, w),
        sem.sub: lambda a, b, w: unsigned(a - b, w),
        sem.and_: lambda a, b, w: unsigned(a & b, w),
        sem.or_: lambda a, b, w: unsigned(a | b, w),
        sem.xor: lambda a, b, w: unsigned(a ^ b, w),
        sem.andcm: lambda a, b, w: unsigned(a & ~b, w),
        sem.shl: lambda a, b, w: unsigned(a << shift(b, w), w),
        sem.shr: lambda a, b, w: unsigned(a, w) >> shift(b, w),
        sem.shra: col_shra,
        sem.min_: col_min,
        sem.max_: col_max,
    }
    cmp = {
        sem.cmp_eq: lambda a, b, w: flag(unsigned(a, w) == unsigned(b, w)),
        sem.cmp_ne: lambda a, b, w: flag(unsigned(a, w) != unsigned(b, w)),
        sem.cmp_lt: lambda a, b, w: flag(signed(a, w) < signed(b, w)),
        sem.cmp_le: lambda a, b, w: flag(signed(a, w) <= signed(b, w)),
        sem.cmp_gt: lambda a, b, w: flag(signed(a, w) > signed(b, w)),
        sem.cmp_ge: lambda a, b, w: flag(signed(a, w) >= signed(b, w)),
        sem.cmp_ult: lambda a, b, w: flag(unsigned(a, w) < unsigned(b, w)),
        sem.cmp_uge: lambda a, b, w: flag(unsigned(a, w) >= unsigned(b, w)),
    }
    return alu, cmp


if _np is not None:
    _COLUMN_ALU, _COLUMN_CMP = _column_tables()
else:  # pragma: no cover - exercised via the no-NumPy CI job
    _COLUMN_ALU, _COLUMN_CMP = {}, {}


@dataclass
class LaneOutcome:
    """One lane classified in-vector.

    ``outcome`` uses the checker's wire values (``"masked"``,
    ``"detected"``, ``"sdc"``) so the caller can map it straight onto
    its ``Outcome`` enum.
    """

    outcome: str
    detail: str
    cycles: int
    trap_cause: Optional[str] = None


@dataclass(frozen=True)
class RewalkTicket:
    """One lane deferred to the grouped second pass.

    The fault corrupts exactly one fetch: at ``cycle`` the bundle at
    ``pc`` is replaced by the decode of ``word`` (slot ``slot``
    re-encoded with one bit flipped).  Machine state at that fetch is
    still golden — ifetch faults touch no architectural state before
    they fire — so the continuation is a pure function of this key:
    every lane sharing it runs a byte-identical trajectory.  The caller
    groups tickets by :attr:`key` and classifies each group with one
    scalar re-walk of the rewritten program (the group's own "golden
    row"), sharing the outcome across the group instead of retiring
    each lane individually.

    ``bundle`` (when the resolver attaches it) is the re-decoded
    :class:`~repro.core.decode.PreBundle` of the rewritten fetch and
    ``one_shot`` marks a transient (SEU) fault.  Both are advisory:
    the walk may use them to *absorb* the rewritten fetch in-vector
    (see ``_try_absorb``) instead of issuing the ticket, and must fall
    back to the ticket whenever it cannot prove timing congruence.
    They deliberately stay out of :attr:`key` — the grouped re-walk
    contract depends only on the rewritten fetch itself.
    """

    cycle: int
    pc: int
    slot: int
    word: int
    bundle: object = None
    one_shot: bool = False

    @property
    def key(self) -> Tuple[int, int, int, int]:
        return (self.cycle, self.pc, self.slot, self.word)


class _VectorAbort(Exception):
    """Internal invariant violation: decline the pass, retire lanes."""


class _Lane:
    """One injected machine riding the walk."""

    __slots__ = ("index", "fault", "row", "gpr", "pred", "btr", "mem",
                 "stuck", "dirty", "traps", "born", "running")

    def __init__(self, index: int, fault, row: int):
        self.index = index       # position in the caller's fault list
        self.fault = fault
        self.row = row           # row in the lane-major planes
        #: Register state is a sparse *overlay* over the live golden
        #: row: ``gpr[i]`` present means the lane's register ``i``
        #: holds that value; absent means it equals ``g_gpr[i]`` right
        #: now.  Reads go through ``.get(i, golden)``; the walk's
        #: divergence sets index which (register, row) pairs carry an
        #: overlay entry, so per-op work scales with *divergent* lanes
        #: instead of active lanes.
        self.gpr: Dict[int, int] = {}
        self.pred: Dict[int, int] = {}
        self.btr: Dict[int, int] = {}
        self.mem = None          # row of the memory plane
        #: True while the lane is in ``active`` (a runner); cleared on
        #: retire/cut/freeze so stale divergence-set rows are skippable
        #: without list membership tests.
        self.running = False
        self.stuck = fault.model != _MODEL_SEU
        #: Traps recorded in-lane under non-halt trap policies, in the
        #: order the lane's machine would raise them.
        self.traps: List[TrapError] = []
        #: ``stats["iterations"]`` value at activation; -1 until then.
        #: Used to attribute walked cycles to lanes that later retire.
        self.born = -1
        #: While *frozen* (registers equal to the golden row, memory
        #: differing only at these addresses) the lane skips per-op
        #: execution entirely; ``None`` when the lane is a runner.
        self.dirty: Optional[set] = None


class VectorEngine:
    """Walks the golden trajectory once, carrying N injected lanes.

    Construction mirrors the scalar checker's knowledge: the compiled
    program, the golden outputs (``(name, base_address, expected)``
    tuples in the checker's diff order), the golden checksum and the
    reference cycle count.  :meth:`run_pass` then classifies a batch of
    fault specs, returning ``None`` for every lane it retires to the
    scalar path.
    """

    def __init__(self, config, program, mem_words: int,
                 outputs: Sequence[Tuple[str, int, Sequence[int]]] = (),
                 golden_checksum: Optional[int] = None,
                 reference_cycles: int = 0,
                 watchdog_cycles: Optional[int] = None,
                 max_cycles: int = 200_000_000):
        self.config = config
        self.program = program
        self.mem_words = mem_words
        self.outputs = tuple((name, base, tuple(values))
                             for name, base, values in outputs)
        self.golden_checksum = golden_checksum
        self.reference_cycles = reference_cycles
        self.watchdog_cycles = watchdog_cycles
        self.max_cycles = max_cycles

        if len(program.data) > mem_words:
            raise SimulationError(
                f"program data ({len(program.data)} words) exceeds memory "
                f"({mem_words} words)")
        mask = config.mask
        self._base_mem = [word & mask for word in program.data]
        self._base_mem.extend([0] * (mem_words - len(self._base_mem)))

        self._mdes = Mdes(config)
        self._bundles = [dec.predecode_bundle(bundle, self._mdes, address)
                         for address, bundle in enumerate(program.bundles)]

    # -- fault triage ------------------------------------------------------

    def _space_limit(self, space: str) -> int:
        config = self.config
        return {_SPACE_GPR: config.n_gprs,
                _SPACE_PRED: config.n_preds,
                _SPACE_BTR: config.n_btrs,
                _SPACE_MEM: self.mem_words}[space]

    def _protection(self, space: str) -> str:
        if space == _SPACE_MEM:
            return self.config.memory_protection
        return self.config.regfile_protection

    def _masked(self) -> LaneOutcome:
        return LaneOutcome("masked", "outputs match", self.reference_cycles)

    def _resolve_converged(self, lane: "_Lane") -> LaneOutcome:
        """Classify a lane whose state reconverged onto the golden row.

        State convergence is MASKED *unless* the lane recorded traps on
        the way (non-halt policies keep running through them): the
        scalar checker reports those DETECTED before it ever diffs
        outputs, with the reference cycle count — the recorded trap
        provably never bent the lane's timing, or it would have
        retired.
        """
        if lane.traps:
            trap = lane.traps[0]
            return LaneOutcome(
                "detected",
                f"{len(lane.traps)} trap(s), first: {trap}",
                self.reference_cycles, trap_cause=trap.cause)
        return self._masked()

    # -- the pass ----------------------------------------------------------

    def run_pass(self, faults: Sequence,
                 stream=None,
                 ifetch: Optional[Callable] = None,
                 strict: bool = False):
        """Classify ``faults``; returns ``(outcomes, stats)``.

        ``outcomes[i]`` is a :class:`LaneOutcome`, a
        :class:`RewalkTicket` (classify the lane in the caller's
        grouped second pass) or ``None`` (lane retired — re-run it on
        the scalar checker).  ``stream`` is an optional golden
        :class:`~repro.core.snapshot.CheckpointStream` used for
        golden-jumps between activations.  ``ifetch`` resolves
        instruction-fetch faults: called as ``ifetch(cycle, pc, fault)``
        at the exact fetch the fault corrupts, it returns a
        :class:`LaneOutcome` (the word no longer decodes under the
        ``halt`` policy — DETECTED with the scalar trap text), a
        :class:`RewalkTicket` (the fetch deterministically rewrites the
        program) or ``None`` (the lane retires).  ``strict`` re-raises
        internal errors instead of retiring, for tests.
        """
        faults = list(faults)
        outcomes: List[Optional[object]] = [None] * len(faults)
        reasons: Dict[int, str] = {}
        stats = {
            "numpy": _np is not None,
            "faults": len(faults),
            "classified": 0,
            "activated": 0,
            "cuts": 0,
            "jumps": 0,
            "iterations": 0,
            "lane_cycles": 0,
            "frozen_cycles": 0,
            "wasted_lane_cycles": 0,
            "rewalk": 0,
            "absorbed": 0,
            "capacity": 0,
            "column_ops": 0,
            "retired": {},
        }

        def retire(index: int, reason: str) -> None:
            reasons[index] = reason

        try:
            walk: List[Tuple[int, object]] = []
            fetch_queue: List[Tuple[int, object]] = []
            for position, fault in enumerate(faults):
                space = fault.space
                model = fault.model
                if (space not in _STATE_SPACES + (_SPACE_IFETCH,)
                        or model not in _MODELS
                        or fault.index < 0 or fault.bit < 0
                        or fault.cycle < 0):
                    # The scalar injector rejects these with an
                    # exception; reproduce that behaviour there.
                    retire(position, RETIRE_BOUNDS)
                    continue
                if space == _SPACE_IFETCH:
                    if ifetch is None:
                        retire(position, RETIRE_IFETCH)
                    else:
                        fetch_queue.append((position, fault))
                    continue
                if fault.index >= self._space_limit(space):
                    retire(position, RETIRE_BOUNDS)
                    continue
                # Triage order mirrors FaultInjector._apply_state.
                if space in (_SPACE_GPR, _SPACE_PRED) and fault.index == 0:
                    outcomes[position] = self._masked()  # no storage
                    continue
                protection = self._protection(space)
                if protection == "ecc":
                    outcomes[position] = self._masked()  # corrected
                    continue
                if protection == "parity":
                    retire(position, RETIRE_PARITY)
                    continue
                walk.append((position, fault))

            if walk or fetch_queue:
                self._walk(walk, fetch_queue, outcomes, stats, retire,
                           stream, ifetch)
        except Exception:
            if strict:
                raise
            # Safety net: the engine may only decline work.  Anything
            # unresolved goes back to the scalar checker.  (Tickets
            # already issued stay valid: a rewritten fetch is a pure
            # function of its key, independent of the walk's health.)
            for position, outcome in enumerate(outcomes):
                if outcome is None and position not in reasons:
                    reasons[position] = RETIRE_ENGINE
            stats["wasted_lane_cycles"] = stats["lane_cycles"]
        retired: Dict[str, int] = stats["retired"]
        for reason in reasons.values():
            retired[reason] = retired.get(reason, 0) + 1
        stats["classified"] = sum(
            1 for o in outcomes if isinstance(o, LaneOutcome))
        return outcomes, stats

    # -- the golden-trajectory walk ---------------------------------------

    def _walk(self, walk, fetch_queue, outcomes, stats, retire,
              stream, ifetch) -> None:
        config = self.config
        mask = config.mask
        width = config.datapath_width
        bundles = self._bundles
        n_bundles = len(bundles)
        n_gprs = config.n_gprs

        port_budget = config.regfile_ops_per_cycle
        model_ports = config.model_port_limit
        forwarding = config.forwarding
        share_bandwidth = config.lsu_shares_fetch_bandwidth
        fetch_bits = config.issue_width * 64
        bank_bits = config.n_mem_banks * 32 * 2
        branch_penalty = config.taken_branch_penalty
        reference_cycles = self.reference_cycles
        policy = config.trap_policy
        policy_halt = policy == "halt"

        # Golden row (row 0) — fresh-machine state.
        g_gpr = [0] * n_gprs
        g_gpr[1] = self.mem_words  # stack grows down from the top
        g_pred = [0] * config.n_preds
        g_pred[0] = 1
        g_btr = [0] * config.n_btrs

        lanes = [_Lane(position, fault, row + 1)
                 for row, (position, fault) in enumerate(walk)]
        # Fetch-fault lanes get rows too: a rewritten fetch that proves
        # timing-congruent with the golden bundle is *absorbed* as a
        # normal divergent lane (see ``absorb`` below) instead of being
        # deferred to the scalar re-walk.  Rows stay parked (not
        # ``running``) until absorption succeeds.
        fetch_queue = sorted(fetch_queue, key=lambda item: item[1].cycle)
        fetch_lanes = [_Lane(position, fault, len(lanes) + 1 + i)
                       for i, (position, fault) in enumerate(fetch_queue)]
        n_rows = len(lanes) + len(fetch_lanes) + 1
        row_lane = {lane.row: lane for lane in lanes}
        for lane in fetch_lanes:
            row_lane[lane.row] = lane
        stats["capacity"] = max(1, len(lanes) + len(fetch_queue))

        # Divergence sets: for each architectural register, the rows
        # whose overlay carries an entry there.  Conservative supersets
        # are sound (a stale row costs a ``.get`` that returns golden);
        # a *missing* divergent row would be a correctness bug, so
        # every overlay write adds the row and only a landing golden
        # value (or lane release) removes it.  Op dispatch iterates
        # these unions instead of the active list, so the per-cycle
        # cost is O(divergent lanes), not O(active lanes).
        div_gpr: List[set] = [set() for _ in range(n_gprs)]
        div_pred: List[set] = [set() for _ in range(config.n_preds)]
        div_btr: List[set] = [set() for _ in range(config.n_btrs)]
        # Frozen lanes indexed by dirty address, so golden loads and
        # stores find the (rare) affected lanes without scanning the
        # whole frozen population every memory op.
        frozen_index: Dict[int, List[_Lane]] = {}

        if _np is not None:
            mem_plane = _np.empty((n_rows, self.mem_words), dtype=_np.int64)
            # Every row starts at base memory (not zeros): golden column
            # stores keep unactivated rows in sync, so the K_LOAD column
            # compare does not chase phantom divergence through them.
            mem_plane[:] = self._base_mem
            g_mem = mem_plane[0]
            for lane in lanes:
                lane.mem = mem_plane[lane.row]
            for lane in fetch_lanes:
                lane.mem = mem_plane[lane.row]
        else:
            g_mem = list(self._base_mem)
            for lane in lanes:
                lane.mem = None  # allocated (copied) at activation

        # Activation queues, ascending by fault cycle (stable).
        activations = sorted(lanes, key=lambda lane: lane.fault.cycle)
        act_at = 0
        fetch_at = 0

        # ``active`` lanes (runners) carry full private register state
        # and execute every op; ``frozen`` lanes are provably identical
        # to the golden row except at the memory addresses in their
        # ``dirty`` set, so they skip per-op execution entirely — they
        # only watch golden loads (a hit on a dirty word unfreezes the
        # lane) and golden stores (which overwrite, and thereby *clean*,
        # dirty words; an empty dirty set is an immediate MASKED cut).
        active: List[_Lane] = []
        frozen: List[_Lane] = []
        stuck: List[_Lane] = []
        # The injector re-asserts stuck-at bits every cycle, but the
        # assert is idempotent: between writes to the target the value
        # cannot drift.  Re-asserting only when a write actually lands
        # on the target (drain or store flush) is therefore exact and
        # saves a per-cycle loop.  ``stuck_reg`` keys register-space
        # targets by their drain coordinates; ``stuck_mem`` lanes are
        # checked against the address their own row received.
        stuck_reg: Dict[tuple, List[_Lane]] = {}
        stuck_mem: List[_Lane] = []

        # Pending write-backs: (ready, seq, space, index, golden, vec)
        # where ``vec`` is None (value identical in every lane) or a
        # {row: value} dict; rows absent from the dict take the golden
        # value — which is exactly right for lanes activated after the
        # push, so activation needs no queue fix-up.
        pending: List[tuple] = []
        seq = 0
        seq_start = 0
        gpr_ready_at = [-1] * n_gprs
        store_buffer: List[tuple] = []

        # Non-halt trap policies: a lane that traps keeps riding.  Its
        # machine records the trap, skips the rest of the bundle
        # (``squashed_rows``) and — under squash-bundle — retracts the
        # bundle's earlier effects; the walk models both by pinning the
        # lane's rows in the affected value columns to ``_KEEP``.
        # ``keep_watch`` latches True at the first recorded trap, so the
        # halt-policy hot path pays nothing for any of this.
        squashed_rows: set = set()
        trapped_bundle: List[tuple] = []
        control_events: List[tuple] = []
        have_squash = False
        keep_watch = False

        # Convergence cuts compare lanes against the *live* golden row,
        # not against stored checkpoints, so the cut cadence is free to
        # be much denser than the checkpoint spacing: a lane whose
        # divergence dies is dropped within a few dozen cycles instead
        # of riding along to the halt.  Purely a perf knob — a cut lane
        # and a survivor whose outputs match classify identically.
        cut_interval = max(32, reference_cycles // 192)
        next_cut = cut_interval

        # Overlay accessors for the drain's space dispatch.
        def lane_gpr(lane: _Lane) -> dict:
            return lane.gpr

        def lane_pred(lane: _Lane) -> dict:
            return lane.pred

        def lane_btr(lane: _Lane) -> dict:
            return lane.btr

        def stuck_key(lane: _Lane) -> tuple:
            space = lane.fault.space
            code = _P_GPR if space == _SPACE_GPR else \
                _P_PRED if space == _SPACE_PRED else _P_BTR
            return (code, lane.fault.index)

        def release_rows(lane: _Lane) -> None:
            # Purge the lane's row from every divergence set it sits
            # in (its overlay keys are a superset of those sets) and
            # reset the overlays.
            row = lane.row
            for r in lane.gpr:
                div_gpr[r].discard(row)
            for r in lane.pred:
                div_pred[r].discard(row)
            for r in lane.btr:
                div_btr[r].discard(row)
            lane.gpr.clear()
            lane.pred.clear()
            lane.btr.clear()

        def drop(lane: _Lane) -> None:
            active.remove(lane)
            lane.running = False
            release_rows(lane)
            if lane in stuck:
                stuck.remove(lane)
                if lane.fault.space == _SPACE_MEM:
                    stuck_mem.remove(lane)
                else:
                    stuck_reg[stuck_key(lane)].remove(lane)

        def retire_lane(lane: _Lane, reason: str) -> None:
            drop(lane)
            retire(lane.index, reason)
            if lane.born >= 0:
                # Cycles this lane rode the vector are sunk cost — the
                # scalar checker reruns it from scratch.
                stats["wasted_lane_cycles"] += \
                    stats["iterations"] - lane.born

        def vec_out(vec):
            # Normalise a value column before pushing it: squashed
            # lanes are pinned to _KEEP, and an empty column degrades
            # to None so the drain takes its all-golden fast path.
            if have_squash:
                if vec is None:
                    vec = {}
                for row in squashed_rows:
                    vec[row] = _KEEP
                return vec
            return vec or None

        def lane_trap(lane: _Lane, message: str, cause: str,
                      slot: int) -> None:
            # Mirrors the machine's non-halt TrapError handler: record
            # the annotated trap, squash the rest of the bundle for
            # this lane, and — under squash-bundle — retract the
            # bundle's earlier write-backs and buffered stores by
            # pinning this lane's rows to _KEEP.
            nonlocal have_squash, keep_watch
            trap = TrapError(message, cause=cause)
            trap.annotate(cycle, pc)
            lane.traps.append(trap)
            row = lane.row
            squashed_rows.add(row)
            trapped_bundle.append((lane, slot))
            have_squash = True
            keep_watch = True
            if policy == "squash-bundle":
                for i, entry in enumerate(pending):
                    if entry[1] > seq_start:
                        vec = entry[5]
                        if vec is None:
                            # (ready, seq) lead the tuple and are
                            # untouched, so the heap order stands.
                            pending[i] = entry[:5] + ({row: _KEEP},)
                        else:
                            vec[row] = _KEEP
                for i, (saddr, sgold, svec) in enumerate(store_buffer):
                    if svec is None:
                        store_buffer[i] = (saddr, sgold, {row: _KEEP})
                    else:
                        svec[row] = _KEEP

        #: Freezing is only sound with no write-backs in flight (a
        #: pending column could still land a divergent value), so it
        #: happens at cut checks (pending provably empty) or at a
        #: mem-fault activation (earlier pushes carry no entry for a
        #: not-yet-activated row, and the drain default is golden).
        FREEZE_MAX_DIRTY = 32

        def freeze(lane: _Lane, dirty: set) -> None:
            active.remove(lane)
            lane.running = False
            release_rows(lane)
            lane.dirty = dirty
            frozen.append(lane)
            for a in dirty:
                frozen_index.setdefault(a, []).append(lane)

        def unfreeze(lane: _Lane) -> None:
            frozen.remove(lane)
            for a in lane.dirty:
                frozen_index[a].remove(lane)
            lane.dirty = None
            lane.gpr.clear()
            lane.pred.clear()
            lane.btr.clear()
            lane.running = True
            active.append(lane)

        # ---- in-lane absorption of rewritten fetches ---------------------
        # A transient ifetch fault rewrites exactly one fetched word; the
        # machine then runs the original program with one bundle swapped
        # for its re-decode.  When that swap provably cannot bend the
        # machine's timing — same write-back schedule, same read-port and
        # memory-bank demand, no control-flow ops, no trap potential —
        # the fault is just a *value* divergence at the differing slot:
        # the lane rides the vector like any register fault, and the
        # grouped scalar re-walk is skipped entirely.  Any check that
        # fails falls back to the ticket, so absorption can only ever
        # trade a scalar re-walk for an in-vector ride, never change an
        # outcome.
        _CONTROL_KINDS = (dec.K_BR, dec.K_BRCT, dec.K_BRCF, dec.K_BRL,
                          dec.K_HALT)
        _GPR_KINDS = (dec.K_ALU, dec.K_MOVI, dec.K_CUSTOM,
                      dec.K_LOAD, dec.K_LOAD_SPEC)
        # absorb_map: op slot -> [(row, payload)] merged into the value
        # columns the golden dispatch pushes this cycle.  Payload shape
        # follows the slot's write shape: a value for GPR/BTR writers, a
        # flag for K_CMP (the site derives both destinations), an
        # (address, value) pair for K_STORE.
        absorb_map: Dict[int, list] = {}

        def op_writes(op) -> tuple:
            kind = op.kind
            if kind in _GPR_KINDS:
                return ((_P_GPR, op.d1, op.latency),)
            if kind == dec.K_CMP:
                return ((_P_PRED, op.d1, op.latency),
                        (_P_PRED, op.d2, op.latency))
            if kind in (dec.K_PBR, dec.K_MOVGBP):
                return ((_P_BTR, op.d1, op.latency),)
            return ()

        def stage1_reads(read_set) -> int:
            # The exact stage-1 read-port count; ``gpr_ready_at`` is
            # stable between the drain and stage 1, so evaluating it at
            # fetch resolution matches what stage 1 will see.
            n = 0
            for reg in read_set:
                if reg == 0:
                    continue
                if forwarding and reg < n_gprs \
                        and gpr_ready_at[reg] == cycle:
                    continue
                n += 1
            return n

        def absorb(lane: _Lane, ticket) -> bool:
            corrupted = ticket.bundle
            golden_pb = bundles[pc]
            slot = ticket.slot
            gop = golden_pb.ops[slot] \
                if slot < len(golden_pb.ops) else None
            lop = corrupted.ops[slot] \
                if slot < len(corrupted.ops) else None
            gkind = gop.kind if gop is not None else dec.K_NOP
            lkind = lop.kind if lop is not None else dec.K_NOP
            if gkind in _CONTROL_KINDS or lkind in _CONTROL_KINDS:
                return False
            if share_bandwidth and corrupted.n_mem != golden_pb.n_mem:
                # Different memory-bank demand this cycle: the lane's
                # fetch/LSU stall arithmetic may diverge from row 0.
                g_demand = fetch_bits + 32 * golden_pb.n_mem
                l_demand = fetch_bits + 32 * corrupted.n_mem
                if (g_demand + bank_bits - 1) // bank_bits \
                        != (l_demand + bank_bits - 1) // bank_bits:
                    return False
            if model_ports:
                # Equal read counts are sufficient but not necessary:
                # only the *stall* (port ops over budget) must match,
                # and ``writes_landing`` — already drained this cycle —
                # is identical for a lane with no squashed writes.
                g_ops = stage1_reads(golden_pb.gpr_read_set) \
                    + writes_landing
                l_ops = stage1_reads(corrupted.gpr_read_set) \
                    + writes_landing
                g_stall = (g_ops + port_budget - 1) // port_budget \
                    if g_ops > port_budget else 1
                l_stall = (l_ops + port_budget - 1) // port_budget \
                    if l_ops > port_budget else 1
                if g_stall != l_stall:
                    return False
            # A corrupted register field can land outside the
            # configured file — the scalar machine machine-checks on
            # that read (DETECTED), which absorption cannot model.
            if lop is not None and lop.guard \
                    and lop.guard >= len(g_pred):
                return False
            # Guards read predicates that cannot change mid-bundle
            # (write-backs land at the drain), so execute/squash is
            # decided here once for both machines.
            g_exec = gkind != dec.K_NOP \
                and (not gop.guard or g_pred[gop.guard])
            l_exec = lkind != dec.K_NOP \
                and (not lop.guard or g_pred[lop.guard])
            if g_exec != l_exec:
                return False
            payload = None
            if g_exec:
                if op_writes(gop) != op_writes(lop):
                    return False
                # The lane's value at the differing slot, computed
                # against the live golden state (the lane's registers
                # and memory are golden at this fetch — ifetch faults
                # touch no architectural state before they fire).
                try:
                    if lkind == dec.K_ALU:
                        la = lop.s1 & mask if lop.s1_lit \
                            else g_gpr[lop.s1]
                        if lop.fn is None:
                            payload = la
                        else:
                            lb = lop.s2 & mask if lop.s2_lit \
                                else g_gpr[lop.s2]
                            payload = lop.fn(la, lb, width)
                    elif lkind == dec.K_CUSTOM:
                        la = lop.s1 & mask if lop.s1_lit \
                            else g_gpr[lop.s1]
                        lb = lop.s2 & mask if lop.s2_lit \
                            else g_gpr[lop.s2]
                        payload = lop.fn(la, lb, mask)
                    elif lkind == dec.K_MOVI:
                        payload = lop.s1 & mask
                    elif lkind == dec.K_CMP:
                        la = lop.s1 & mask if lop.s1_lit \
                            else g_gpr[lop.s1]
                        lb = lop.s2 & mask if lop.s2_lit \
                            else g_gpr[lop.s2]
                        payload = lop.fn(la, lb, width)
                    elif lkind in (dec.K_LOAD, dec.K_LOAD_SPEC):
                        lb = lop.s1 & mask if lop.s1_lit \
                            else g_gpr[lop.s1]
                        lo = lop.s2 & mask if lop.s2_lit \
                            else g_gpr[lop.s2]
                        laddr = to_signed(lb + lo & mask, width)
                        if not 0 <= laddr < self.mem_words:
                            if lkind == dec.K_LOAD:
                                return False  # would trap
                            payload = 0  # dismissible
                        else:
                            payload = int(g_mem[laddr]) \
                                if _np is not None else g_mem[laddr]
                    elif lkind == dec.K_PBR:
                        payload = lop.s1
                    elif lkind == dec.K_MOVGBP:
                        payload = lop.s1 & mask if lop.s1_lit \
                            else g_gpr[lop.s1]
                    elif lkind == dec.K_STORE:
                        lb = lop.s1 & mask if lop.s1_lit \
                            else g_gpr[lop.s1]
                        lo = lop.s2 & mask if lop.s2_lit \
                            else g_gpr[lop.s2]
                        laddr = to_signed(lb + lo & mask, width)
                        if not 0 <= laddr < self.mem_words:
                            return False  # would trap
                        payload = (laddr, g_gpr[lop.d1])
                    else:
                        return False  # unknown kind: decline
                except SimulationError:
                    return False  # e.g. division by zero: would trap
                except IndexError:
                    # Source register outside the configured file:
                    # the scalar machine machine-checks on the read.
                    return False
            # Congruent: activate the lane as a normal runner.  The
            # delta (if any) rides the golden push for this slot, so
            # the pending-queue guard keeps convergence cuts honest
            # until it lands and registers in the divergence sets.
            lane.born = stats["iterations"]
            if _np is not None:
                lane.mem[:] = g_mem
            else:
                lane.mem = list(g_mem)
            lane.running = True
            active.append(lane)
            stats["activated"] += 1
            if g_exec:
                absorb_map.setdefault(slot, []).append(
                    (lane.row, payload))
            return True

        cycle = 0
        pc = self.program.entry
        halted = False
        # Squashed-landing bookkeeping (refreshed each drain once
        # keep_watch latches; None until the first recorded trap, and
        # correctly empty ON the trap cycle — a write squashed this
        # bundle cannot land before the next one).
        land_keeps = keep_regs = landing_counts = None

        while not halted:
            if cycle >= reference_cycles:
                raise _VectorAbort(
                    f"walk overran the reference run ({cycle} >= "
                    f"{reference_cycles} cycles)")
            if not active and not frozen and act_at >= len(activations) \
                    and fetch_at >= len(fetch_queue):
                # Every lane resolved; the golden continuation is known.
                break
            if not pending:
                if active and cycle >= next_cut:
                    for lane in list(active):
                        if lane.stuck:
                            continue
                        # An overlay entry equal to golden is a stale
                        # divergence; only a real mismatch keeps the
                        # lane running.
                        if any(v != g_gpr[r]
                               for r, v in lane.gpr.items()) \
                                or any(v != g_pred[r]
                                       for r, v in lane.pred.items()) \
                                or any(v != g_btr[r]
                                       for r, v in lane.btr.items()):
                            continue
                        # Registers reconverged; diff the memory row.
                        if _np is not None:
                            diff = (lane.mem != g_mem).nonzero()[0]
                            dirty = set(int(a) for a in diff)
                        else:
                            dirty = set(
                                a for a, (mine, gold)
                                in enumerate(zip(lane.mem, g_mem))
                                if mine != gold)
                        if not dirty:
                            drop(lane)
                            outcomes[lane.index] = \
                                self._resolve_converged(lane)
                            stats["cuts"] += 1
                        elif len(dirty) <= FREEZE_MAX_DIRTY:
                            freeze(lane, dirty)
                    next_cut = cycle + cut_interval
                elif not active and not frozen and stream is not None:
                    # Golden-jump: fast-forward row 0 to the nearest
                    # checkpoint at or before the next activation.
                    targets = []
                    if act_at < len(activations):
                        targets.append(activations[act_at].fault.cycle)
                    if fetch_at < len(fetch_queue):
                        targets.append(fetch_queue[fetch_at][1].cycle)
                    snap = stream.nearest(min(targets))
                    if snap is not None and snap.cycle > cycle:
                        if snap.traps or snap.gpr_poison \
                                or snap.pred_poison or snap.btr_poison \
                                or snap.mem_poison:
                            raise _VectorAbort(
                                "golden checkpoint carries traps/poison")
                        g_gpr[:] = snap.gpr
                        g_pred[:] = snap.pred
                        g_btr[:] = snap.btr
                        if _np is not None:
                            # No lane is live here (jump precondition),
                            # so a whole-plane refresh keeps parked
                            # fetch rows in sync with the golden row;
                            # dead rows are harmlessly overwritten.
                            mem_plane[:] = snap.mem
                        else:
                            g_mem[:] = snap.mem
                        cycle = snap.cycle
                        pc = snap.pc
                        stats["jumps"] += 1
                        continue
            if not 0 <= pc < n_bundles:
                raise _VectorAbort(f"golden pc {pc} out of program")

            # ---- write-back drain (landing writes count port ops) ----
            writes_landing = 0
            if keep_watch:
                # Per-cycle squashed-landing bookkeeping for the port
                # timing guard: rows -> skipped landing writes, rows ->
                # squashed destination regs, reg -> landing writes.
                land_keeps = {}
                keep_regs = {}
                landing_counts = {}
            while pending and pending[0][0] <= cycle:
                ready, _, space, index, golden, vec = heapq.heappop(pending)
                if space == _P_GPR:
                    gpr_ready_at[index] = ready
                    if ready == cycle:
                        writes_landing += 1
                        if keep_watch:
                            landing_counts[index] = \
                                landing_counts.get(index, 0) + 1
                            if vec is not None:
                                for row, value in vec.items():
                                    if value is not _KEEP:
                                        continue
                                    land_keeps[row] = \
                                        land_keeps.get(row, 0) + 1
                                    keep_regs.setdefault(
                                        row, []).append(index)
                    if index:
                        files = lane_gpr
                        rows = div_gpr[index]
                        old_gold = g_gpr[index]
                        g_gpr[index] = golden
                    else:
                        rows = None
                elif space == _P_PRED:
                    if index:
                        files = lane_pred
                        rows = div_pred[index]
                        old_gold = g_pred[index]
                        g_pred[index] = golden
                    else:
                        rows = None
                else:
                    files = lane_btr
                    rows = div_btr[index]
                    old_gold = g_btr[index]
                    g_btr[index] = golden
                if rows is not None:
                    # Landing a value clears or rewrites each row's
                    # overlay entry at this register: rows absent from
                    # ``vec`` take the golden value (entry popped,
                    # divergence gone); rows in ``vec`` stay divergent;
                    # a ``_KEEP`` row retains its pre-landing value —
                    # which, for a previously-converged row, was the
                    # OLD golden and must now be written out explicitly.
                    if vec is None:
                        if rows:
                            for row in rows:
                                files(row_lane[row]).pop(index, None)
                            rows.clear()
                    else:
                        if rows:
                            stale = rows.difference(vec)
                            if stale:
                                for row in stale:
                                    files(row_lane[row]).pop(index, None)
                                rows.difference_update(stale)
                        if not keep_watch:
                            for row, value in vec.items():
                                lane = row_lane[row]
                                if lane.running:
                                    files(lane)[index] = value
                                    rows.add(row)
                        else:
                            for row, value in vec.items():
                                lane = row_lane[row]
                                if not lane.running:
                                    continue
                                file = files(lane)
                                if value is _KEEP:
                                    if index in file:
                                        rows.add(row)
                                    elif old_gold != golden:
                                        file[index] = old_gold
                                        rows.add(row)
                                else:
                                    file[index] = value
                                    rows.add(row)
                if stuck_reg and (index or space == _P_BTR):
                    hits = stuck_reg.get((space, index))
                    if hits:
                        # The landing write clobbered a stuck-at target;
                        # the injector forces the bit back before reads.
                        srows = div_gpr[index] if space == _P_GPR else \
                            div_pred[index] if space == _P_PRED else \
                            div_btr[index]
                        for s in hits:
                            self._assert_stuck(s, mask,
                                               g_gpr, g_pred, g_btr)
                            srows.add(s.row)

            # ---- injector position: activations ----------------------
            while act_at < len(activations) \
                    and activations[act_at].fault.cycle <= cycle:
                lane = activations[act_at]
                act_at += 1
                lane.born = stats["iterations"]
                if _np is not None:
                    lane.mem[:] = g_mem
                else:
                    lane.mem = list(g_mem)
                if lane.fault.space == _SPACE_MEM and not lane.stuck:
                    # A transient memory flip leaves the registers
                    # golden and dirties exactly one word: the lane is
                    # born frozen.  (An SEU flip always changes the
                    # word, so the dirty set is never vacuously stale.)
                    self._apply_fault(lane, mask, g_gpr, g_pred, g_btr)
                    lane.dirty = {lane.fault.index}
                    frozen.append(lane)
                    frozen_index.setdefault(
                        lane.fault.index, []).append(lane)
                else:
                    lane.running = True
                    active.append(lane)
                    if lane.stuck:
                        stuck.append(lane)
                        if lane.fault.space == _SPACE_MEM:
                            stuck_mem.append(lane)
                        else:
                            stuck_reg.setdefault(
                                stuck_key(lane), []).append(lane)
                    self._apply_fault(lane, mask, g_gpr, g_pred, g_btr)
                    space = lane.fault.space
                    if space == _SPACE_GPR:
                        div_gpr[lane.fault.index].add(lane.row)
                    elif space == _SPACE_PRED:
                        div_pred[lane.fault.index].add(lane.row)
                    elif space == _SPACE_BTR:
                        div_btr[lane.fault.index].add(lane.row)
                stats["activated"] += 1
            while fetch_at < len(fetch_queue) \
                    and fetch_queue[fetch_at][1].cycle <= cycle:
                position, fault = fetch_queue[fetch_at]
                resolved = ifetch(cycle, pc, fault)
                if resolved is None:
                    retire(position, RETIRE_IFETCH)
                elif isinstance(resolved, RewalkTicket):
                    if resolved.one_shot and resolved.bundle is not None \
                            and absorb(fetch_lanes[fetch_at], resolved):
                        # Timing-congruent rewrite: absorbed in-lane,
                        # no scalar re-walk needed.
                        stats["absorbed"] += 1
                    else:
                        # Deferred to the caller's grouped second pass
                        # (one scalar re-walk shared by every lane with
                        # this key).
                        outcomes[position] = resolved
                        stats["rewalk"] += 1
                else:
                    outcomes[position] = resolved
                fetch_at += 1

            bundle = bundles[pc]
            stats["iterations"] += 1
            stats["lane_cycles"] += len(active) + len(frozen)
            stats["frozen_cycles"] += len(frozen)
            if have_squash:
                squashed_rows.clear()
                have_squash = False
            if control_events:
                del control_events[:]
            seq_start = seq

            # ---- stage 1: read-port accounting (lane-invariant) ------
            reads = 0
            for reg in bundle.gpr_read_set:
                if reg == 0:
                    continue
                if forwarding and reg < n_gprs \
                        and gpr_ready_at[reg] == cycle:
                    continue  # forwarded
                reads += 1

            # ---- stage 2: execute ------------------------------------
            taken = False
            target = 0
            for op_slot, op in enumerate(bundle.ops):
                kind = op.kind
                if kind == dec.K_NOP:
                    continue
                guard = op.guard
                if guard:
                    g_guard = g_pred[guard]
                    grows = div_pred[guard]
                    if grows:
                        for row in list(grows):
                            lane = row_lane[row]
                            if not lane.running:
                                continue
                            if have_squash and row in squashed_rows:
                                continue
                            if lane.pred.get(guard, g_guard) != g_guard:
                                retire_lane(lane, RETIRE_GUARD)
                    if not g_guard:
                        continue  # squashed in the golden machine

                if kind == dec.K_ALU:
                    fn = op.fn
                    a = op.s1 & mask if op.s1_lit else g_gpr[op.s1]
                    if fn is None:  # MOVE
                        golden = a
                    else:
                        b = op.s2 & mask if op.s2_lit else g_gpr[op.s2]
                        golden = fn(a, b, width)
                    vec = None
                    d1 = () if op.s1_lit else div_gpr[op.s1]
                    d2 = () if op.s2_lit or fn is None \
                        else div_gpr[op.s2]
                    if op.gpr_reads and (d1 or d2):
                        # Only rows divergent at an operand can compute
                        # a non-golden result; everyone else is covered
                        # by the drain's golden default.
                        if not d2:
                            drows = list(d1)
                        elif not d1:
                            drows = list(d2)
                        else:
                            drows = list(d1 | d2)
                        column = _COLUMN_ALU.get(fn) \
                            if _np is not None and not have_squash \
                            and len(drows) >= _COLUMN_MIN_LANES else None
                        if column is not None:
                            # Whole-column int64 arithmetic over the
                            # divergent rows.  Only rows whose RESULT
                            # diverges enter the dict; the drain cannot
                            # tell that apart from the per-lane operand
                            # short-circuit (absent rows default to the
                            # golden value either way), so both paths
                            # are byte-identical.
                            cols = [row_lane[row] for row in drows]
                            cols = [l for l in cols if l.running]
                            n_cols = len(cols)
                            av = a if op.s1_lit else _np.fromiter(
                                (l.gpr.get(op.s1, a) for l in cols),
                                _np.int64, n_cols)
                            bv = b if op.s2_lit else _np.fromiter(
                                (l.gpr.get(op.s2, b) for l in cols),
                                _np.int64, n_cols)
                            res = column(av, bv, width)
                            stats["column_ops"] += 1
                            hits = (res != golden).nonzero()[0]
                            if hits.size:
                                values = res.tolist()
                                vec = {cols[i].row: values[i]
                                       for i in hits.tolist()}
                        else:
                            # Lanes whose operands match the golden
                            # machine's compute the golden result: leave
                            # them out of the column (the drain's .get()
                            # default fills it in) and skip the fn call.
                            vec = {}
                            for row in drows:
                                lane = row_lane[row]
                                if not lane.running:
                                    continue
                                if have_squash and row in squashed_rows:
                                    continue
                                la = a if op.s1_lit \
                                    else lane.gpr.get(op.s1, a)
                                if fn is None:
                                    if la != a:
                                        vec[row] = la
                                    continue
                                lb = b if op.s2_lit \
                                    else lane.gpr.get(op.s2, b)
                                if la == a and lb == b:
                                    continue
                                try:
                                    vec[row] = fn(la, lb, width)
                                except SimulationError:
                                    # Division by zero in this lane only
                                    # (raised past every trap policy).
                                    retire_lane(lane, RETIRE_TRAP)
                    if absorb_map and op_slot in absorb_map:
                        for arow, aval in absorb_map[op_slot]:
                            if aval != golden:
                                if vec is None:
                                    vec = {}
                                vec[arow] = aval
                    seq += 1
                    heapq.heappush(pending, (cycle + op.latency, seq,
                                             _P_GPR, op.d1, golden,
                                             vec_out(vec)))
                elif kind == dec.K_CUSTOM:
                    a = op.s1 & mask if op.s1_lit else g_gpr[op.s1]
                    b = op.s2 & mask if op.s2_lit else g_gpr[op.s2]
                    golden = op.fn(a, b, mask)
                    vec = None
                    d1 = () if op.s1_lit else div_gpr[op.s1]
                    d2 = () if op.s2_lit else div_gpr[op.s2]
                    if op.gpr_reads and (d1 or d2):
                        if not d2:
                            drows = list(d1)
                        elif not d1:
                            drows = list(d2)
                        else:
                            drows = list(d1 | d2)
                        vec = {}
                        for row in drows:
                            lane = row_lane[row]
                            if not lane.running:
                                continue
                            if have_squash and row in squashed_rows:
                                continue
                            la = a if op.s1_lit \
                                else lane.gpr.get(op.s1, a)
                            lb = b if op.s2_lit \
                                else lane.gpr.get(op.s2, b)
                            if la == a and lb == b:
                                continue
                            try:
                                vec[row] = op.fn(la, lb, mask)
                            except SimulationError:
                                retire_lane(lane, RETIRE_TRAP)
                    if absorb_map and op_slot in absorb_map:
                        for arow, aval in absorb_map[op_slot]:
                            if aval != golden:
                                if vec is None:
                                    vec = {}
                                vec[arow] = aval
                    seq += 1
                    heapq.heappush(pending, (cycle + op.latency, seq,
                                             _P_GPR, op.d1, golden,
                                             vec_out(vec)))
                elif kind == dec.K_MOVI:
                    golden = op.s1 & mask
                    vec = None
                    if absorb_map and op_slot in absorb_map:
                        for arow, aval in absorb_map[op_slot]:
                            if aval != golden:
                                if vec is None:
                                    vec = {}
                                vec[arow] = aval
                    seq += 1
                    heapq.heappush(pending, (cycle + op.latency, seq,
                                             _P_GPR, op.d1, golden,
                                             vec_out(vec)))
                elif kind == dec.K_CMP:
                    fn = op.fn
                    a = op.s1 & mask if op.s1_lit else g_gpr[op.s1]
                    b = op.s2 & mask if op.s2_lit else g_gpr[op.s2]
                    condition = fn(a, b, width)
                    vec1 = None
                    vec2 = None
                    d1 = () if op.s1_lit else div_gpr[op.s1]
                    d2 = () if op.s2_lit else div_gpr[op.s2]
                    if op.gpr_reads and (d1 or d2):
                        if not d2:
                            drows = list(d1)
                        elif not d1:
                            drows = list(d2)
                        else:
                            drows = list(d1 | d2)
                        column = _COLUMN_CMP.get(fn) \
                            if _np is not None and not have_squash \
                            and len(drows) >= _COLUMN_MIN_LANES else None
                        if column is not None:
                            cols = [row_lane[row] for row in drows]
                            cols = [l for l in cols if l.running]
                            n_cols = len(cols)
                            av = a if op.s1_lit else _np.fromiter(
                                (l.gpr.get(op.s1, a) for l in cols),
                                _np.int64, n_cols)
                            bv = b if op.s2_lit else _np.fromiter(
                                (l.gpr.get(op.s2, b) for l in cols),
                                _np.int64, n_cols)
                            res = column(av, bv, width)
                            stats["column_ops"] += 1
                            hits = (res != condition).nonzero()[0]
                            if hits.size:
                                values = res.tolist()
                                vec1 = {}
                                vec2 = {}
                                for i in hits.tolist():
                                    row = cols[i].row
                                    flag = values[i]
                                    vec1[row] = flag
                                    vec2[row] = 1 - flag
                        else:
                            vec1 = {}
                            vec2 = {}
                            for row in drows:
                                lane = row_lane[row]
                                if not lane.running:
                                    continue
                                if have_squash and row in squashed_rows:
                                    continue
                                la = a if op.s1_lit \
                                    else lane.gpr.get(op.s1, a)
                                lb = b if op.s2_lit \
                                    else lane.gpr.get(op.s2, b)
                                if la == a and lb == b:
                                    continue
                                lc = fn(la, lb, width)
                                vec1[row] = lc
                                vec2[row] = 1 - lc
                    if absorb_map and op_slot in absorb_map:
                        for arow, aflag in absorb_map[op_slot]:
                            if aflag != condition:
                                if vec1 is None:
                                    vec1 = {}
                                    vec2 = {}
                                vec1[arow] = aflag
                                vec2[arow] = 1 - aflag
                    seq += 1
                    heapq.heappush(pending, (cycle + op.latency, seq,
                                             _P_PRED, op.d1, condition,
                                             vec_out(vec1)))
                    seq += 1
                    heapq.heappush(pending, (cycle + op.latency, seq,
                                             _P_PRED, op.d2, 1 - condition,
                                             vec_out(vec2)))
                elif kind in (dec.K_LOAD, dec.K_LOAD_SPEC):
                    base = op.s1 & mask if op.s1_lit else g_gpr[op.s1]
                    offset = op.s2 & mask if op.s2_lit else g_gpr[op.s2]
                    address = to_signed(base + offset & mask, width)
                    if not 0 <= address < self.mem_words:
                        if kind == dec.K_LOAD:
                            raise _VectorAbort(
                                f"golden load from {address}")
                        golden = 0
                    else:
                        golden = int(g_mem[address]) if _np is not None \
                            else g_mem[address]
                    vec = None
                    if active or frozen:
                        vec = {}
                        # Rows divergent at an address operand compute
                        # their own address (with the OOB/trap paths).
                        d1 = () if op.s1_lit else div_gpr[op.s1]
                        d2 = () if op.s2_lit else div_gpr[op.s2]
                        du = ()
                        if d1 or d2:
                            du = (d1 | d2) if (d1 and d2) \
                                else set(d1 or d2)
                            for row in list(du):
                                lane = row_lane[row]
                                if not lane.running:
                                    continue
                                if have_squash and row in squashed_rows:
                                    continue
                                lb = base if op.s1_lit \
                                    else lane.gpr.get(op.s1, base)
                                lo = offset if op.s2_lit \
                                    else lane.gpr.get(op.s2, offset)
                                if lb == base and lo == offset:
                                    laddr = address
                                else:
                                    laddr = to_signed(
                                        lb + lo & mask, width)
                                if not 0 <= laddr < self.mem_words:
                                    if kind != dec.K_LOAD:
                                        if golden:
                                            vec[row] = 0  # dismissible
                                    elif policy_halt:
                                        # Would trap OOB: exact
                                        # classification is the
                                        # scalar's job under the halt
                                        # policy.
                                        retire_lane(lane, RETIRE_TRAP)
                                    else:
                                        lane_trap(
                                            lane,
                                            f"load from invalid "
                                            f"address {laddr}",
                                            TRAP_OOB_LOAD, op_slot)
                                    continue
                                value = lane.mem[laddr]
                                if value != golden:
                                    vec[row] = int(value) \
                                        if _np is not None else value
                        if 0 <= address < self.mem_words:
                            # Golden-address rows: divergent only where
                            # the memory plane's column differs.
                            if _np is not None:
                                col_hits = (mem_plane[:, address]
                                            != golden).nonzero()[0]
                                for r in col_hits.tolist():
                                    if r in du:
                                        continue
                                    lane = row_lane.get(r)
                                    if lane is None or not lane.running:
                                        continue
                                    if have_squash \
                                            and r in squashed_rows:
                                        continue
                                    vec[r] = int(mem_plane[r, address])
                            else:
                                for lane in active:
                                    row = lane.row
                                    if row in du:
                                        continue
                                    if have_squash \
                                            and row in squashed_rows:
                                        continue
                                    value = lane.mem[address]
                                    if value != golden:
                                        vec[row] = value
                            if frozen:
                                # Frozen lanes load from the golden
                                # address; a hit on a dirty word
                                # diverges the lane.
                                hit_f = frozen_index.get(address)
                                if hit_f:
                                    for lane in list(hit_f):
                                        unfreeze(lane)
                                        value = lane.mem[address]
                                        vec[lane.row] = int(value) \
                                            if _np is not None \
                                            else value
                    if absorb_map and op_slot in absorb_map:
                        for arow, aval in absorb_map[op_slot]:
                            if aval != golden:
                                if vec is None:
                                    vec = {}
                                vec[arow] = aval
                    seq += 1
                    heapq.heappush(pending, (cycle + op.latency, seq,
                                             _P_GPR, op.d1, golden,
                                             vec_out(vec)))
                elif kind == dec.K_STORE:
                    base = op.s1 & mask if op.s1_lit else g_gpr[op.s1]
                    offset = op.s2 & mask if op.s2_lit else g_gpr[op.s2]
                    address = to_signed(base + offset & mask, width)
                    if not 0 <= address < self.mem_words:
                        raise _VectorAbort(f"golden store to {address}")
                    golden = g_gpr[op.d1]  # store value travels in DEST1
                    vec = None
                    d1 = () if op.s1_lit else div_gpr[op.s1]
                    d2 = () if op.s2_lit else div_gpr[op.s2]
                    dv = div_gpr[op.d1]
                    if d1 or d2 or dv:
                        vec = {}
                        union = set()
                        for dset in (d1, d2, dv):
                            if dset:
                                union |= dset
                        for row in list(union):
                            lane = row_lane[row]
                            if not lane.running:
                                continue
                            if have_squash and row in squashed_rows:
                                continue
                            lb = base if op.s1_lit \
                                else lane.gpr.get(op.s1, base)
                            lo = offset if op.s2_lit \
                                else lane.gpr.get(op.s2, offset)
                            if lb == base and lo == offset:
                                lvalue = lane.gpr.get(op.d1, golden)
                                if lvalue != golden:
                                    vec[row] = (address, lvalue)
                                continue
                            laddr = to_signed(lb + lo & mask, width)
                            if not 0 <= laddr < self.mem_words:
                                if policy_halt:
                                    retire_lane(lane, RETIRE_TRAP)
                                else:
                                    lane_trap(
                                        lane,
                                        f"store to invalid address "
                                        f"{laddr}",
                                        TRAP_OOB_STORE, op_slot)
                                continue
                            vec[row] = (laddr,
                                        lane.gpr.get(op.d1, golden))
                    if absorb_map and op_slot in absorb_map:
                        for arow, aentry in absorb_map[op_slot]:
                            if aentry != (address, golden):
                                if vec is None:
                                    vec = {}
                                vec[arow] = aentry
                    store_buffer.append((address, golden, vec_out(vec)))
                elif kind == dec.K_PBR:
                    golden = op.s1
                    vec = None
                    if absorb_map and op_slot in absorb_map:
                        for arow, aval in absorb_map[op_slot]:
                            if aval != golden:
                                if vec is None:
                                    vec = {}
                                vec[arow] = aval
                    seq += 1
                    heapq.heappush(pending, (cycle + op.latency, seq,
                                             _P_BTR, op.d1, golden,
                                             vec_out(vec)))
                elif kind == dec.K_MOVGBP:
                    golden = op.s1 & mask if op.s1_lit else g_gpr[op.s1]
                    vec = None
                    if not op.s1_lit and div_gpr[op.s1]:
                        # vec_out overrides squashed rows with _KEEP, so
                        # the comprehension need not exclude them.
                        vec = {row: value for row in div_gpr[op.s1]
                               if row_lane[row].running
                               and (value := row_lane[row].gpr.get(
                                   op.s1, golden)) != golden}
                    if absorb_map and op_slot in absorb_map:
                        for arow, aval in absorb_map[op_slot]:
                            if aval != golden:
                                if vec is None:
                                    vec = {}
                                vec[arow] = aval
                    seq += 1
                    heapq.heappush(pending, (cycle + op.latency, seq,
                                             _P_BTR, op.d1, golden,
                                             vec_out(vec)))
                elif kind == dec.K_BR:
                    taken = True
                    target = g_btr[op.s1]
                    if not policy_halt:
                        control_events.append((op_slot, False, target))
                    if div_btr[op.s1]:
                        for row in list(div_btr[op.s1]):
                            lane = row_lane[row]
                            if not lane.running:
                                continue
                            if have_squash and row in squashed_rows:
                                continue
                            if lane.btr.get(op.s1, target) != target:
                                retire_lane(lane, RETIRE_BRANCH)
                elif kind in (dec.K_BRCT, dec.K_BRCF):
                    condition = g_pred[op.s2]
                    if div_pred[op.s2]:
                        for row in list(div_pred[op.s2]):
                            lane = row_lane[row]
                            if not lane.running:
                                continue
                            if have_squash and row in squashed_rows:
                                continue
                            if lane.pred.get(op.s2, condition) \
                                    != condition:
                                retire_lane(lane, RETIRE_BRANCH)
                    branches = condition if kind == dec.K_BRCT \
                        else not condition
                    if branches:
                        taken = True
                        target = g_btr[op.s1]
                        if not policy_halt:
                            control_events.append((op_slot, False, target))
                        if div_btr[op.s1]:
                            for row in list(div_btr[op.s1]):
                                lane = row_lane[row]
                                if not lane.running:
                                    continue
                                if have_squash \
                                        and row in squashed_rows:
                                    continue
                                if lane.btr.get(op.s1, target) \
                                        != target:
                                    retire_lane(lane, RETIRE_BRANCH)
                elif kind == dec.K_BRL:
                    taken = True
                    target = g_btr[op.s1]
                    if not policy_halt:
                        control_events.append((op_slot, False, target))
                    if div_btr[op.s1]:
                        for row in list(div_btr[op.s1]):
                            lane = row_lane[row]
                            if not lane.running:
                                continue
                            if have_squash and row in squashed_rows:
                                continue
                            if lane.btr.get(op.s1, target) != target:
                                retire_lane(lane, RETIRE_BRANCH)
                    seq += 1
                    heapq.heappush(pending, (cycle + op.latency, seq,
                                             _P_GPR, op.d1,
                                             (pc + 1) & mask,
                                             vec_out(None)))
                elif kind == dec.K_HALT:
                    halted = True
                    if not policy_halt:
                        control_events.append((op_slot, True, 0))
                else:
                    raise _VectorAbort(f"unhandled op kind {kind}")

            if absorb_map:
                # One-shot by construction: the deltas rode the pushes
                # of the bundle issued this cycle.
                absorb_map.clear()

            # ---- recorded-trap lanes: control-flow check -------------
            if trapped_bundle:
                # The trapping machine skipped every slot from the
                # trapping op on (squash-bundle: the whole bundle), so
                # its next-pc decision comes from the control events it
                # still executed.  Any difference from the golden
                # decision breaks lane-invariant timing: retire.
                for lane, slot in trapped_bundle:
                    if not lane.running:
                        continue
                    lane_taken = False
                    lane_target = 0
                    lane_halted = False
                    if policy != "squash-bundle":
                        for done, was_halt, done_target in control_events:
                            if done >= slot:
                                break
                            if was_halt:
                                lane_halted = True
                            else:
                                lane_taken = True
                                lane_target = done_target
                    if halted:
                        same = lane_halted
                    elif lane_halted:
                        same = False
                    elif taken:
                        same = lane_taken and lane_target == target
                    else:
                        same = not lane_taken
                    if not same:
                        retire_lane(lane, RETIRE_TRAP_TIMING)
                del trapped_bundle[:]

            # ---- buffered stores land (validated at issue) -----------
            if store_buffer:
                for address, golden, vec in store_buffer:
                    if _np is not None:
                        # Column write: every row (golden, active,
                        # frozen, even dead — harmless) takes the
                        # golden store; divergent entries then restore
                        # or redirect their own rows.  A _KEEP row and
                        # a row storing elsewhere both need the word's
                        # PRE-store value back, so capture it first.
                        prior = None
                        if vec:
                            prior = {}
                            for row, entry in vec.items():
                                if entry is _KEEP \
                                        or entry[0] != address:
                                    prior[row] = \
                                        int(mem_plane[row, address])
                        mem_plane[:, address] = golden
                        if vec:
                            for row, entry in vec.items():
                                lane = row_lane[row]
                                if not lane.running:
                                    continue
                                if entry is _KEEP:
                                    lane.mem[address] = prior[row]
                                else:
                                    laddr, lvalue = entry
                                    if laddr != address:
                                        lane.mem[address] = prior[row]
                                    lane.mem[laddr] = lvalue
                    else:
                        g_mem[address] = golden
                        if vec is None:
                            for lane in active:
                                lane.mem[address] = golden
                        elif not keep_watch:
                            for lane in active:
                                laddr, lvalue = vec.get(
                                    lane.row, (address, golden))
                                lane.mem[laddr] = lvalue
                        else:
                            for lane in active:
                                entry = vec.get(lane.row)
                                if entry is None:
                                    lane.mem[address] = golden
                                elif entry is not _KEEP:
                                    laddr, lvalue = entry
                                    lane.mem[laddr] = lvalue
                        for lane in frozen:
                            lane.mem[address] = golden
                    for s in stuck_mem:
                        # Each lane stored to its own address; if that
                        # hit the lane's stuck word, force the bit back.
                        if vec is None:
                            hit = address
                        else:
                            entry = vec.get(s.row)
                            hit = address if entry is None \
                                else None if entry is _KEEP else entry[0]
                        if hit == s.fault.index:
                            self._assert_stuck(s, mask,
                                               g_gpr, g_pred, g_btr)
                    # A frozen lane stores the golden value to the
                    # golden address — overwriting a dirty word cleans
                    # it, and a lane with nothing dirty left IS the
                    # golden machine: immediate MASKED cut.
                    hit_f = frozen_index.pop(address, None)
                    if hit_f:
                        for lane in hit_f:
                            lane.dirty.discard(address)
                            if not lane.dirty:
                                frozen.remove(lane)
                                lane.dirty = None
                                outcomes[lane.index] = \
                                    self._resolve_converged(lane)
                                stats["cuts"] += 1
                del store_buffer[:]

            # ---- issue-cost accounting -------------------------------
            extra = 0
            port_extra = 0
            if model_ports:
                port_ops = reads + writes_landing
                if port_ops > port_budget:
                    port_extra = \
                        (port_ops + port_budget - 1) // port_budget - 1
                    extra += port_extra
                if keep_watch and land_keeps:
                    # Port-timing guard: a lane whose machine squashed
                    # write-backs landing THIS cycle sees fewer landing
                    # port ops (and possibly an unforwarded read where
                    # the golden machine forwarded) than row 0.  If its
                    # stall arithmetic diverges, its timing is no
                    # longer lane-invariant: retire.
                    gpr_read_set = bundle.gpr_read_set
                    for row, skipped in land_keeps.items():
                        lane = row_lane.get(row)
                        if lane is None or not lane.running:
                            continue
                        lane_reads = reads
                        if forwarding:
                            regs = keep_regs[row]
                            for reg in set(regs):
                                if reg and reg in gpr_read_set \
                                        and gpr_ready_at[reg] == cycle \
                                        and regs.count(reg) \
                                        >= landing_counts.get(reg, 0):
                                    # The lane squashed every write
                                    # landing on this forwarded reg:
                                    # its machine reads it via a port.
                                    lane_reads += 1
                        lane_ops = lane_reads + writes_landing - skipped
                        lane_extra = 0
                        if lane_ops > port_budget:
                            lane_extra = \
                                (lane_ops + port_budget - 1) \
                                // port_budget - 1
                        if lane_extra != port_extra:
                            retire_lane(lane, RETIRE_TRAP_TIMING)
            if share_bandwidth and bundle.n_mem:
                demand = fetch_bits + 32 * bundle.n_mem
                extra += (demand + bank_bits - 1) // bank_bits - 1

            if taken and not halted:
                extra += branch_penalty
                pc = target
            else:
                pc += 1

            cycle += 1 + extra

        if not halted:
            # Early stop: every lane resolved before the golden halt.
            return

        # Final drain: outstanding write-backs become architectural.
        # Same overlay bookkeeping as the in-loop drain (a later golden
        # landing on the same register must still clear earlier
        # divergence), always honouring _KEEP.
        while pending:
            _, _, space, index, golden, vec = heapq.heappop(pending)
            if space == _P_GPR and index:
                files = lane_gpr
                rows = div_gpr[index]
                old_gold = g_gpr[index]
                g_gpr[index] = golden
            elif space == _P_PRED and index:
                files = lane_pred
                rows = div_pred[index]
                old_gold = g_pred[index]
                g_pred[index] = golden
            elif space == _P_BTR:
                files = lane_btr
                rows = div_btr[index]
                old_gold = g_btr[index]
                g_btr[index] = golden
            else:
                continue
            if vec is None:
                if rows:
                    for row in rows:
                        files(row_lane[row]).pop(index, None)
                    rows.clear()
                continue
            if rows:
                stale = rows.difference(vec)
                if stale:
                    for row in stale:
                        files(row_lane[row]).pop(index, None)
                    rows.difference_update(stale)
            for row, value in vec.items():
                lane = row_lane[row]
                if not lane.running:
                    continue
                file = files(lane)
                if value is _KEEP:
                    if index in file:
                        rows.add(row)
                    elif old_gold != golden:
                        file[index] = old_gold
                        rows.add(row)
                else:
                    file[index] = value
                    rows.add(row)

        if cycle != reference_cycles:
            raise _VectorAbort(
                f"walk halted at cycle {cycle}, reference says "
                f"{reference_cycles}")

        # Surviving lanes halted in lockstep with the golden machine:
        # classify by output diff, in the scalar checker's exact order.
        # A frozen lane's overlays are empty (its registers ARE the
        # golden row), so the same effective read covers both kinds.
        for lane in active + frozen:
            outcomes[lane.index] = self._classify_outputs(lane, g_gpr)
        # Faults whose cycle lay beyond the last issue cycle never
        # fired; the machine ran the golden trajectory to completion.
        while act_at < len(activations):
            outcomes[activations[act_at].index] = self._masked()
            act_at += 1
        while fetch_at < len(fetch_queue):
            outcomes[fetch_queue[fetch_at][0]] = self._masked()
            fetch_at += 1

    # -- lane fault application -------------------------------------------

    def _apply_fault(self, lane: _Lane, mask: int,
                     g_gpr, g_pred, g_btr) -> None:
        """Apply the lane's fault to its (overlay) register row.

        Bit semantics mirror ``GprFile``/``PredFile``/``BtrFile``/
        ``DataMemory`` exactly (masking included).  Register reads go
        through the overlay with the live golden value as default; the
        caller registers the row in the matching divergence set.
        """
        fault = lane.fault
        space, index, bit = fault.space, fault.index, fault.bit
        seu = fault.model == _MODEL_SEU
        level = 1 if fault.model == _MODEL_STUCK1 else 0
        if space == _SPACE_GPR:
            value = lane.gpr.get(index, g_gpr[index])
            if seu:
                value ^= 1 << bit
            elif level:
                value |= 1 << bit
            else:
                value &= ~(1 << bit)
            lane.gpr[index] = value & mask
        elif space == _SPACE_PRED:
            # Predicates are one bit wide; any requested bit is bit 0.
            if seu:
                lane.pred[index] = lane.pred.get(index,
                                                 g_pred[index]) ^ 1
            else:
                lane.pred[index] = level
        elif space == _SPACE_BTR:
            value = lane.btr.get(index, g_btr[index])
            if seu:
                value ^= 1 << bit
            elif level:
                value |= 1 << bit
            else:
                value &= ~(1 << bit)
            lane.btr[index] = value
        else:  # mem
            value = int(lane.mem[index])
            if seu:
                value = (value ^ (1 << bit)) & mask
            elif level:
                value |= (1 << bit) & mask
            else:
                value &= ~(1 << bit)
            lane.mem[index] = value

    def _assert_stuck(self, lane: _Lane, mask: int,
                      g_gpr, g_pred, g_btr) -> None:
        """Re-assert a stuck-at bit (the injector does this every cycle)."""
        fault = lane.fault
        space, index, bit = fault.space, fault.index, fault.bit
        level = 1 if fault.model == _MODEL_STUCK1 else 0
        if space == _SPACE_GPR:
            value = lane.gpr.get(index, g_gpr[index])
            value = (value | (1 << bit)) if level else (value & ~(1 << bit))
            lane.gpr[index] = value & mask
        elif space == _SPACE_PRED:
            lane.pred[index] = level
        elif space == _SPACE_BTR:
            value = lane.btr.get(index, g_btr[index])
            lane.btr[index] = (value | (1 << bit)) if level \
                else (value & ~(1 << bit))
        else:
            value = int(lane.mem[index])
            if level:
                value |= (1 << bit) & mask
            else:
                value &= ~(1 << bit)
            lane.mem[index] = value

    # -- end-of-walk classification ---------------------------------------

    def _classify_outputs(self, lane: _Lane, g_gpr) -> LaneOutcome:
        """Diff a surviving lane against the golden outputs.

        Byte-compatible with ``LockstepChecker.diff_outputs`` +
        ``run_one``: first mismatching output word (or the checksum)
        yields SDC with the same detail string; no mismatch is MASKED.
        The cycle count is ``reference_cycles`` — the lane issued every
        bundle in lockstep with the golden machine (that is what kept
        it in the vector), so its halt cycle is the reference's.
        Recorded traps win over the diff, exactly as ``run_one`` checks
        ``result.traps`` before it ever diffs outputs.
        """
        if lane.traps:
            return self._resolve_converged(lane)
        for name, base, expected_values in self.outputs:
            row = lane.mem
            for offset, expected in enumerate(expected_values):
                got = int(row[base + offset]) if _np is not None \
                    else row[base + offset]
                if got != expected:
                    return LaneOutcome(
                        "sdc",
                        f"output {name}[{offset}] = {got:#x}, "
                        f"golden {expected:#x}",
                        self.reference_cycles)
        if self.golden_checksum is not None:
            expected = self.golden_checksum & self.config.mask
            # r2 carries main's return value; the overlay defaults to
            # the (post-final-drain) golden row.
            got = lane.gpr.get(2, g_gpr[2])
            if got != expected:
                return LaneOutcome(
                    "sdc",
                    f"checksum {got:#x}, golden {expected:#x}",
                    self.reference_cycles)
        return self._masked()
