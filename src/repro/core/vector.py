"""Batched vectorised fault-campaign engine: N injected lanes, one pass.

Fault campaigns are thousands of near-identical runs: every injected
machine executes the *golden* (fault-free) trajectory up to its fault
cycle, diverges — usually locally and briefly — and in the common case
converges right back onto the golden trajectory (MASKED).  The scalar
checker pays one full simulator run per fault; this engine walks the
golden trajectory **once** and carries N injected machines along as
*lanes* of lane-major 2-D state:

* the data-memory plane is a ``(lanes, mem_words)`` matrix — a NumPy
  ``int64`` array when NumPy is importable, a list of row lists
  otherwise — so lane activation (row copy), convergence compares
  (row equality) and final output diffs vectorise;
* register/predicate/BTR planes are rows of Python lists (row 0 is the
  golden machine, one row per lane), because per-operation scalar
  access dominates there and the rows are tiny.

Exactness contract
==================

The walk replays ``EpicProcessor._run_instrumented`` exactly — same
drain order, same port/bandwidth stall arithmetic, same store buffering,
same operation semantics (it calls the *same* ``PreOp.fn`` callables) —
so row 0 reproduces the reference run cycle-for-cycle.  A lane only
stays in the vector while its future is provably identical to the
golden machine's *control flow*:

* a lane whose guard predicate disagrees with the golden guard retires
  (``guard-divergence``) — per-lane squash would change the write-back
  schedule and hence the port-stall timing;
* a lane whose branch condition or branch target disagrees retires
  (``branch-divergence``);
* a lane that would trap (out-of-bounds load/store, division by zero)
  retires (``trap-risk``);
* instruction-fetch faults are resolved at the fetch they corrupt: a
  word that no longer decodes is classified DETECTED on the spot (the
  caller supplies the exact trap text via the ``ifetch`` callback); one
  that still decodes retires (``ifetch-rewrite``);
* parity-protected targets retire (``parity-protected``) — poison
  bookkeeping belongs to the scalar machine;
* out-of-range or malformed fault specs retire (``fault-out-of-range``)
  so the scalar path reproduces today's error behaviour;
* any internal surprise retires every unresolved lane
  (``engine-error``) — the engine may only ever *decline* work.

Retired lanes are re-run by the scalar ``LockstepChecker``, which is
ground truth, so retirement can never change an outcome table.  For
lanes that survive, matched guards + matched branches + no trap imply
the lane issues the same bundles at the same cycles as the golden run
(write-back schedules, forwarding ages and stall arithmetic are
lane-invariant), so its final cycle count *is* ``reference_cycles`` and
in-vector classification is exact:

* **convergence cut** — at a quiescent cycle (empty write-back queue),
  an activated non-stuck lane whose whole state equals row 0 can never
  diverge again: MASKED immediately (PR 5 semantics);
* **end of walk** — surviving lanes halt with the golden machine and
  are classified by diffing their outputs against the golden model in
  exactly the scalar checker's order (SDC on the first mismatch,
  MASKED otherwise);
* faults whose cycle lies beyond the last issue cycle never fire:
  MASKED with the reference cycle count, as in the scalar run.

Between activations with no live lane the walk fast-forwards along the
shared golden checkpoint stream (``golden-jump``), and it stops early
once every lane is resolved — so sparse campaigns do not pay for the
whole trajectory.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import decode as dec
from repro.errors import SimulationError
from repro.isa.semantics import to_signed
from repro.mdes import Mdes

try:  # NumPy is optional; the pure-Python plane is exact, just slower.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    _np = None

#: Fault target spaces / models, mirrored locally (``repro.reliability``
#: imports the core, not the other way around).
_SPACE_GPR = "gpr"
_SPACE_PRED = "pred"
_SPACE_BTR = "btr"
_SPACE_MEM = "mem"
_SPACE_IFETCH = "ifetch"
_STATE_SPACES = (_SPACE_GPR, _SPACE_PRED, _SPACE_BTR, _SPACE_MEM)
_MODEL_SEU = "seu"
_MODEL_STUCK0 = "stuck-at-0"
_MODEL_STUCK1 = "stuck-at-1"
_MODELS = (_MODEL_SEU, _MODEL_STUCK0, _MODEL_STUCK1)

#: Retirement reasons (stats keys; every retired lane re-runs scalar).
RETIRE_GUARD = "guard-divergence"
RETIRE_BRANCH = "branch-divergence"
RETIRE_TRAP = "trap-risk"
RETIRE_IFETCH = "ifetch-rewrite"
RETIRE_PARITY = "parity-protected"
RETIRE_BOUNDS = "fault-out-of-range"
RETIRE_ENGINE = "engine-error"

#: Default lane count per pass; bounds the memory plane at
#: ``(DEFAULT_LANES + 1) * mem_words`` words.
DEFAULT_LANES = 64

# Pending write-back spaces (same codes as the scalar core).
_P_GPR = 0
_P_PRED = 1
_P_BTR = 2


@dataclass
class LaneOutcome:
    """One lane classified in-vector.

    ``outcome`` uses the checker's wire values (``"masked"``,
    ``"detected"``, ``"sdc"``) so the caller can map it straight onto
    its ``Outcome`` enum.
    """

    outcome: str
    detail: str
    cycles: int
    trap_cause: Optional[str] = None


class _VectorAbort(Exception):
    """Internal invariant violation: decline the pass, retire lanes."""


class _Lane:
    """One injected machine riding the walk."""

    __slots__ = ("index", "fault", "row", "gpr", "pred", "btr", "mem",
                 "stuck", "dirty")

    def __init__(self, index: int, fault, row: int):
        self.index = index       # position in the caller's fault list
        self.fault = fault
        self.row = row           # row in the lane-major planes
        self.gpr: List[int] = []
        self.pred: List[int] = []
        self.btr: List[int] = []
        self.mem = None          # row of the memory plane
        self.stuck = fault.model != _MODEL_SEU
        #: While *frozen* (registers equal to the golden row, memory
        #: differing only at these addresses) the lane skips per-op
        #: execution entirely; ``None`` when the lane is a runner.
        self.dirty: Optional[set] = None


class VectorEngine:
    """Walks the golden trajectory once, carrying N injected lanes.

    Construction mirrors the scalar checker's knowledge: the compiled
    program, the golden outputs (``(name, base_address, expected)``
    tuples in the checker's diff order), the golden checksum and the
    reference cycle count.  :meth:`run_pass` then classifies a batch of
    fault specs, returning ``None`` for every lane it retires to the
    scalar path.
    """

    def __init__(self, config, program, mem_words: int,
                 outputs: Sequence[Tuple[str, int, Sequence[int]]] = (),
                 golden_checksum: Optional[int] = None,
                 reference_cycles: int = 0,
                 watchdog_cycles: Optional[int] = None,
                 max_cycles: int = 200_000_000):
        self.config = config
        self.program = program
        self.mem_words = mem_words
        self.outputs = tuple((name, base, tuple(values))
                             for name, base, values in outputs)
        self.golden_checksum = golden_checksum
        self.reference_cycles = reference_cycles
        self.watchdog_cycles = watchdog_cycles
        self.max_cycles = max_cycles

        if len(program.data) > mem_words:
            raise SimulationError(
                f"program data ({len(program.data)} words) exceeds memory "
                f"({mem_words} words)")
        mask = config.mask
        self._base_mem = [word & mask for word in program.data]
        self._base_mem.extend([0] * (mem_words - len(self._base_mem)))

        self._mdes = Mdes(config)
        self._bundles = [dec.predecode_bundle(bundle, self._mdes, address)
                         for address, bundle in enumerate(program.bundles)]

    # -- fault triage ------------------------------------------------------

    def _space_limit(self, space: str) -> int:
        config = self.config
        return {_SPACE_GPR: config.n_gprs,
                _SPACE_PRED: config.n_preds,
                _SPACE_BTR: config.n_btrs,
                _SPACE_MEM: self.mem_words}[space]

    def _protection(self, space: str) -> str:
        if space == _SPACE_MEM:
            return self.config.memory_protection
        return self.config.regfile_protection

    def _masked(self) -> LaneOutcome:
        return LaneOutcome("masked", "outputs match", self.reference_cycles)

    # -- the pass ----------------------------------------------------------

    def run_pass(self, faults: Sequence,
                 stream=None,
                 ifetch: Optional[Callable] = None,
                 strict: bool = False):
        """Classify ``faults``; returns ``(outcomes, stats)``.

        ``outcomes[i]`` is a :class:`LaneOutcome` or ``None`` (lane
        retired — re-run it on the scalar checker).  ``stream`` is an
        optional golden :class:`~repro.core.snapshot.CheckpointStream`
        used for golden-jumps between activations.  ``ifetch`` resolves
        instruction-fetch faults: called as ``ifetch(cycle, pc, fault)``
        at the exact fetch the fault corrupts, it returns a
        :class:`LaneOutcome` (the word no longer decodes — DETECTED
        with the scalar trap text) or ``None`` (still decodes; the lane
        retires).  ``strict`` re-raises internal errors instead of
        retiring, for tests.
        """
        faults = list(faults)
        outcomes: List[Optional[LaneOutcome]] = [None] * len(faults)
        reasons: Dict[int, str] = {}
        stats = {
            "numpy": _np is not None,
            "faults": len(faults),
            "classified": 0,
            "activated": 0,
            "cuts": 0,
            "jumps": 0,
            "iterations": 0,
            "lane_cycles": 0,
            "frozen_cycles": 0,
            "capacity": 0,
            "retired": {},
        }

        def retire(index: int, reason: str) -> None:
            reasons[index] = reason

        try:
            walk: List[Tuple[int, object]] = []
            fetch_queue: List[Tuple[int, object]] = []
            for position, fault in enumerate(faults):
                space = fault.space
                model = fault.model
                if (space not in _STATE_SPACES + (_SPACE_IFETCH,)
                        or model not in _MODELS
                        or fault.index < 0 or fault.bit < 0
                        or fault.cycle < 0):
                    # The scalar injector rejects these with an
                    # exception; reproduce that behaviour there.
                    retire(position, RETIRE_BOUNDS)
                    continue
                if space == _SPACE_IFETCH:
                    if ifetch is None:
                        retire(position, RETIRE_IFETCH)
                    else:
                        fetch_queue.append((position, fault))
                    continue
                if fault.index >= self._space_limit(space):
                    retire(position, RETIRE_BOUNDS)
                    continue
                # Triage order mirrors FaultInjector._apply_state.
                if space in (_SPACE_GPR, _SPACE_PRED) and fault.index == 0:
                    outcomes[position] = self._masked()  # no storage
                    continue
                protection = self._protection(space)
                if protection == "ecc":
                    outcomes[position] = self._masked()  # corrected
                    continue
                if protection == "parity":
                    retire(position, RETIRE_PARITY)
                    continue
                walk.append((position, fault))

            if walk or fetch_queue:
                self._walk(walk, fetch_queue, outcomes, stats, retire,
                           stream, ifetch)
        except Exception:
            if strict:
                raise
            # Safety net: the engine may only decline work.  Anything
            # unresolved goes back to the scalar checker.
            for position, outcome in enumerate(outcomes):
                if outcome is None and position not in reasons:
                    reasons[position] = RETIRE_ENGINE
        retired: Dict[str, int] = stats["retired"]
        for reason in reasons.values():
            retired[reason] = retired.get(reason, 0) + 1
        stats["classified"] = sum(1 for o in outcomes if o is not None)
        return outcomes, stats

    # -- the golden-trajectory walk ---------------------------------------

    def _walk(self, walk, fetch_queue, outcomes, stats, retire,
              stream, ifetch) -> None:
        config = self.config
        mask = config.mask
        width = config.datapath_width
        bundles = self._bundles
        n_bundles = len(bundles)
        n_gprs = config.n_gprs

        port_budget = config.regfile_ops_per_cycle
        model_ports = config.model_port_limit
        forwarding = config.forwarding
        share_bandwidth = config.lsu_shares_fetch_bandwidth
        fetch_bits = config.issue_width * 64
        bank_bits = config.n_mem_banks * 32 * 2
        branch_penalty = config.taken_branch_penalty
        reference_cycles = self.reference_cycles

        # Golden row (row 0) — fresh-machine state.
        g_gpr = [0] * n_gprs
        g_gpr[1] = self.mem_words  # stack grows down from the top
        g_pred = [0] * config.n_preds
        g_pred[0] = 1
        g_btr = [0] * config.n_btrs

        lanes = [_Lane(position, fault, row + 1)
                 for row, (position, fault) in enumerate(walk)]
        n_rows = len(lanes) + 1
        stats["capacity"] = max(1, len(lanes) + len(fetch_queue))

        if _np is not None:
            mem_plane = _np.zeros((n_rows, self.mem_words), dtype=_np.int64)
            mem_plane[0] = self._base_mem
            g_mem = mem_plane[0]
            for lane in lanes:
                lane.mem = mem_plane[lane.row]
        else:
            g_mem = list(self._base_mem)
            for lane in lanes:
                lane.mem = None  # allocated (copied) at activation

        # Activation queues, ascending by fault cycle (stable).
        activations = sorted(lanes, key=lambda lane: lane.fault.cycle)
        act_at = 0
        fetch_queue = sorted(fetch_queue, key=lambda item: item[1].cycle)
        fetch_at = 0

        # ``active`` lanes (runners) carry full private register state
        # and execute every op; ``frozen`` lanes are provably identical
        # to the golden row except at the memory addresses in their
        # ``dirty`` set, so they skip per-op execution entirely — they
        # only watch golden loads (a hit on a dirty word unfreezes the
        # lane) and golden stores (which overwrite, and thereby *clean*,
        # dirty words; an empty dirty set is an immediate MASKED cut).
        active: List[_Lane] = []
        frozen: List[_Lane] = []
        stuck: List[_Lane] = []
        # The injector re-asserts stuck-at bits every cycle, but the
        # assert is idempotent: between writes to the target the value
        # cannot drift.  Re-asserting only when a write actually lands
        # on the target (drain or store flush) is therefore exact and
        # saves a per-cycle loop.  ``stuck_reg`` keys register-space
        # targets by their drain coordinates; ``stuck_mem`` lanes are
        # checked against the address their own row received.
        stuck_reg: Dict[tuple, List[_Lane]] = {}
        stuck_mem: List[_Lane] = []

        # Pending write-backs: (ready, seq, space, index, golden, vec)
        # where ``vec`` is None (value identical in every lane) or a
        # {row: value} dict; rows absent from the dict take the golden
        # value — which is exactly right for lanes activated after the
        # push, so activation needs no queue fix-up.
        pending: List[tuple] = []
        seq = 0
        gpr_ready_at = [-1] * n_gprs
        store_buffer: List[tuple] = []

        # Convergence cuts compare lanes against the *live* golden row,
        # not against stored checkpoints, so the cut cadence is free to
        # be much denser than the checkpoint spacing: a lane whose
        # divergence dies is dropped within a few dozen cycles instead
        # of riding along to the halt.  Purely a perf knob — a cut lane
        # and a survivor whose outputs match classify identically.
        cut_interval = max(32, reference_cycles // 192)
        next_cut = cut_interval

        def stuck_key(lane: _Lane) -> tuple:
            space = lane.fault.space
            code = _P_GPR if space == _SPACE_GPR else \
                _P_PRED if space == _SPACE_PRED else _P_BTR
            return (code, lane.fault.index)

        def drop(lane: _Lane) -> None:
            active.remove(lane)
            if lane in stuck:
                stuck.remove(lane)
                if lane.fault.space == _SPACE_MEM:
                    stuck_mem.remove(lane)
                else:
                    stuck_reg[stuck_key(lane)].remove(lane)

        def retire_lane(lane: _Lane, reason: str) -> None:
            drop(lane)
            retire(lane.index, reason)

        #: Freezing is only sound with no write-backs in flight (a
        #: pending column could still land a divergent value), so it
        #: happens at cut checks (pending provably empty) or at a
        #: mem-fault activation (earlier pushes carry no entry for a
        #: not-yet-activated row, and the drain default is golden).
        FREEZE_MAX_DIRTY = 32

        def freeze(lane: _Lane, dirty: set) -> None:
            active.remove(lane)
            lane.dirty = dirty
            frozen.append(lane)

        def unfreeze(lane: _Lane) -> None:
            frozen.remove(lane)
            lane.dirty = None
            lane.gpr = list(g_gpr)
            lane.pred = list(g_pred)
            lane.btr = list(g_btr)
            active.append(lane)

        cycle = 0
        pc = self.program.entry
        halted = False

        while not halted:
            if cycle >= reference_cycles:
                raise _VectorAbort(
                    f"walk overran the reference run ({cycle} >= "
                    f"{reference_cycles} cycles)")
            if not active and not frozen and act_at >= len(activations) \
                    and fetch_at >= len(fetch_queue):
                # Every lane resolved; the golden continuation is known.
                break
            if not pending:
                if active and cycle >= next_cut:
                    for lane in list(active):
                        if lane.stuck:
                            continue
                        if lane.gpr != g_gpr or lane.pred != g_pred \
                                or lane.btr != g_btr:
                            continue
                        # Registers reconverged; diff the memory row.
                        if _np is not None:
                            diff = (lane.mem != g_mem).nonzero()[0]
                            dirty = set(int(a) for a in diff)
                        else:
                            dirty = set(
                                a for a, (mine, gold)
                                in enumerate(zip(lane.mem, g_mem))
                                if mine != gold)
                        if not dirty:
                            drop(lane)
                            outcomes[lane.index] = self._masked()
                            stats["cuts"] += 1
                        elif len(dirty) <= FREEZE_MAX_DIRTY:
                            freeze(lane, dirty)
                    next_cut = cycle + cut_interval
                elif not active and not frozen and stream is not None:
                    # Golden-jump: fast-forward row 0 to the nearest
                    # checkpoint at or before the next activation.
                    targets = []
                    if act_at < len(activations):
                        targets.append(activations[act_at].fault.cycle)
                    if fetch_at < len(fetch_queue):
                        targets.append(fetch_queue[fetch_at][1].cycle)
                    snap = stream.nearest(min(targets))
                    if snap is not None and snap.cycle > cycle:
                        if snap.traps or snap.gpr_poison \
                                or snap.pred_poison or snap.btr_poison \
                                or snap.mem_poison:
                            raise _VectorAbort(
                                "golden checkpoint carries traps/poison")
                        g_gpr[:] = snap.gpr
                        g_pred[:] = snap.pred
                        g_btr[:] = snap.btr
                        g_mem[:] = snap.mem
                        cycle = snap.cycle
                        pc = snap.pc
                        stats["jumps"] += 1
                        continue
            if not 0 <= pc < n_bundles:
                raise _VectorAbort(f"golden pc {pc} out of program")

            # ---- write-back drain (landing writes count port ops) ----
            writes_landing = 0
            while pending and pending[0][0] <= cycle:
                ready, _, space, index, golden, vec = heapq.heappop(pending)
                if space == _P_GPR:
                    gpr_ready_at[index] = ready
                    if ready == cycle:
                        writes_landing += 1
                    if index:
                        g_gpr[index] = golden
                        if vec is None:
                            for lane in active:
                                lane.gpr[index] = golden
                        else:
                            for lane in active:
                                lane.gpr[index] = vec.get(lane.row, golden)
                elif space == _P_PRED:
                    if index:
                        g_pred[index] = golden
                        if vec is None:
                            for lane in active:
                                lane.pred[index] = golden
                        else:
                            for lane in active:
                                lane.pred[index] = vec.get(lane.row, golden)
                else:
                    g_btr[index] = golden
                    if vec is None:
                        for lane in active:
                            lane.btr[index] = golden
                    else:
                        for lane in active:
                            lane.btr[index] = vec.get(lane.row, golden)
                if stuck_reg and (index or space == _P_BTR):
                    hits = stuck_reg.get((space, index))
                    if hits:
                        # The landing write clobbered a stuck-at target;
                        # the injector forces the bit back before reads.
                        for s in hits:
                            self._assert_stuck(s, mask)

            # ---- injector position: activations ----------------------
            while act_at < len(activations) \
                    and activations[act_at].fault.cycle <= cycle:
                lane = activations[act_at]
                act_at += 1
                if _np is not None:
                    lane.mem[:] = g_mem
                else:
                    lane.mem = list(g_mem)
                if lane.fault.space == _SPACE_MEM and not lane.stuck:
                    # A transient memory flip leaves the registers
                    # golden and dirties exactly one word: the lane is
                    # born frozen.  (An SEU flip always changes the
                    # word, so the dirty set is never vacuously stale.)
                    self._apply_fault(lane, mask)
                    lane.dirty = {lane.fault.index}
                    frozen.append(lane)
                else:
                    lane.gpr = list(g_gpr)
                    lane.pred = list(g_pred)
                    lane.btr = list(g_btr)
                    active.append(lane)
                    if lane.stuck:
                        stuck.append(lane)
                        if lane.fault.space == _SPACE_MEM:
                            stuck_mem.append(lane)
                        else:
                            stuck_reg.setdefault(
                                stuck_key(lane), []).append(lane)
                    self._apply_fault(lane, mask)
                stats["activated"] += 1
            while fetch_at < len(fetch_queue) \
                    and fetch_queue[fetch_at][1].cycle <= cycle:
                position, fault = fetch_queue[fetch_at]
                fetch_at += 1
                resolved = ifetch(cycle, pc, fault)
                if resolved is not None:
                    outcomes[position] = resolved
                else:
                    retire(position, RETIRE_IFETCH)

            bundle = bundles[pc]
            stats["iterations"] += 1
            stats["lane_cycles"] += len(active) + len(frozen)
            stats["frozen_cycles"] += len(frozen)

            # ---- stage 1: read-port accounting (lane-invariant) ------
            reads = 0
            for reg in bundle.gpr_read_set:
                if reg == 0:
                    continue
                if forwarding and reg < n_gprs \
                        and gpr_ready_at[reg] == cycle:
                    continue  # forwarded
                reads += 1

            # ---- stage 2: execute ------------------------------------
            taken = False
            target = 0
            for op in bundle.ops:
                kind = op.kind
                if kind == dec.K_NOP:
                    continue
                guard = op.guard
                if guard:
                    g_guard = g_pred[guard]
                    for lane in list(active):
                        if lane.pred[guard] != g_guard:
                            retire_lane(lane, RETIRE_GUARD)
                    if not g_guard:
                        continue  # squashed in the golden machine

                if kind == dec.K_ALU:
                    a = op.s1 & mask if op.s1_lit else g_gpr[op.s1]
                    if op.fn is None:  # MOVE
                        golden = a
                    else:
                        b = op.s2 & mask if op.s2_lit else g_gpr[op.s2]
                        golden = op.fn(a, b, width)
                    vec = None
                    if active and op.gpr_reads:
                        # Lanes whose operands match the golden machine's
                        # compute the golden result: leave them out of the
                        # column (the drain's .get() default fills it in)
                        # and skip the fn call entirely.
                        vec = {}
                        for lane in list(active):
                            la = a if op.s1_lit else lane.gpr[op.s1]
                            if op.fn is None:
                                if la != a:
                                    vec[lane.row] = la
                                continue
                            lb = b if op.s2_lit else lane.gpr[op.s2]
                            if la == a and lb == b:
                                continue
                            try:
                                vec[lane.row] = op.fn(la, lb, width)
                            except SimulationError:
                                # Division by zero in this lane only.
                                retire_lane(lane, RETIRE_TRAP)
                    seq += 1
                    heapq.heappush(pending, (cycle + op.latency, seq,
                                             _P_GPR, op.d1, golden, vec))
                elif kind == dec.K_CUSTOM:
                    a = op.s1 & mask if op.s1_lit else g_gpr[op.s1]
                    b = op.s2 & mask if op.s2_lit else g_gpr[op.s2]
                    golden = op.fn(a, b, mask)
                    vec = None
                    if active and op.gpr_reads:
                        vec = {}
                        for lane in list(active):
                            la = a if op.s1_lit else lane.gpr[op.s1]
                            lb = b if op.s2_lit else lane.gpr[op.s2]
                            if la == a and lb == b:
                                continue
                            try:
                                vec[lane.row] = op.fn(la, lb, mask)
                            except SimulationError:
                                retire_lane(lane, RETIRE_TRAP)
                    seq += 1
                    heapq.heappush(pending, (cycle + op.latency, seq,
                                             _P_GPR, op.d1, golden, vec))
                elif kind == dec.K_MOVI:
                    seq += 1
                    heapq.heappush(pending, (cycle + op.latency, seq,
                                             _P_GPR, op.d1, op.s1 & mask,
                                             None))
                elif kind == dec.K_CMP:
                    a = op.s1 & mask if op.s1_lit else g_gpr[op.s1]
                    b = op.s2 & mask if op.s2_lit else g_gpr[op.s2]
                    condition = op.fn(a, b, width)
                    vec1 = None
                    vec2 = None
                    if active and op.gpr_reads:
                        vec1 = {}
                        vec2 = {}
                        for lane in active:
                            la = a if op.s1_lit else lane.gpr[op.s1]
                            lb = b if op.s2_lit else lane.gpr[op.s2]
                            if la == a and lb == b:
                                continue
                            lc = op.fn(la, lb, width)
                            vec1[lane.row] = lc
                            vec2[lane.row] = 1 - lc
                    seq += 1
                    heapq.heappush(pending, (cycle + op.latency, seq,
                                             _P_PRED, op.d1, condition,
                                             vec1))
                    seq += 1
                    heapq.heappush(pending, (cycle + op.latency, seq,
                                             _P_PRED, op.d2, 1 - condition,
                                             vec2))
                elif kind in (dec.K_LOAD, dec.K_LOAD_SPEC):
                    base = op.s1 & mask if op.s1_lit else g_gpr[op.s1]
                    offset = op.s2 & mask if op.s2_lit else g_gpr[op.s2]
                    address = to_signed(base + offset & mask, width)
                    if not 0 <= address < self.mem_words:
                        if kind == dec.K_LOAD:
                            raise _VectorAbort(
                                f"golden load from {address}")
                        golden = 0
                    else:
                        golden = int(g_mem[address]) if _np is not None \
                            else g_mem[address]
                    vec = None
                    if active or frozen:
                        vec = {}
                        for lane in list(active):
                            lb = base if op.s1_lit else lane.gpr[op.s1]
                            lo = offset if op.s2_lit else lane.gpr[op.s2]
                            if lb == base and lo == offset:
                                laddr = address
                            else:
                                laddr = to_signed(lb + lo & mask, width)
                            if not 0 <= laddr < self.mem_words:
                                if kind == dec.K_LOAD:
                                    # Would trap OOB (or diverge): exact
                                    # classification is the scalar's job.
                                    retire_lane(lane, RETIRE_TRAP)
                                elif golden:
                                    vec[lane.row] = 0  # dismissible
                                continue
                            value = lane.mem[laddr]
                            if value != golden:
                                vec[lane.row] = int(value) \
                                    if _np is not None else value
                        if frozen and 0 <= address < self.mem_words:
                            # Frozen lanes load from the golden address;
                            # a hit on a dirty word diverges the lane.
                            for lane in list(frozen):
                                if address in lane.dirty:
                                    unfreeze(lane)
                                    value = lane.mem[address]
                                    vec[lane.row] = int(value) \
                                        if _np is not None else value
                    seq += 1
                    heapq.heappush(pending, (cycle + op.latency, seq,
                                             _P_GPR, op.d1, golden, vec))
                elif kind == dec.K_STORE:
                    base = op.s1 & mask if op.s1_lit else g_gpr[op.s1]
                    offset = op.s2 & mask if op.s2_lit else g_gpr[op.s2]
                    address = to_signed(base + offset & mask, width)
                    if not 0 <= address < self.mem_words:
                        raise _VectorAbort(f"golden store to {address}")
                    golden = g_gpr[op.d1]  # store value travels in DEST1
                    vec = None
                    if active:
                        vec = {}
                        for lane in list(active):
                            lb = base if op.s1_lit else lane.gpr[op.s1]
                            lo = offset if op.s2_lit else lane.gpr[op.s2]
                            if lb == base and lo == offset:
                                lvalue = lane.gpr[op.d1]
                                if lvalue != golden:
                                    vec[lane.row] = (address, lvalue)
                                continue
                            laddr = to_signed(lb + lo & mask, width)
                            if not 0 <= laddr < self.mem_words:
                                retire_lane(lane, RETIRE_TRAP)
                                continue
                            vec[lane.row] = (laddr, lane.gpr[op.d1])
                    store_buffer.append((address, golden, vec))
                elif kind == dec.K_PBR:
                    seq += 1
                    heapq.heappush(pending, (cycle + op.latency, seq,
                                             _P_BTR, op.d1, op.s1, None))
                elif kind == dec.K_MOVGBP:
                    golden = op.s1 & mask if op.s1_lit else g_gpr[op.s1]
                    vec = None
                    if active and not op.s1_lit:
                        vec = {lane.row: value for lane in active
                               if (value := lane.gpr[op.s1]) != golden}
                    seq += 1
                    heapq.heappush(pending, (cycle + op.latency, seq,
                                             _P_BTR, op.d1, golden, vec))
                elif kind == dec.K_BR:
                    taken = True
                    target = g_btr[op.s1]
                    for lane in list(active):
                        if lane.btr[op.s1] != target:
                            retire_lane(lane, RETIRE_BRANCH)
                elif kind in (dec.K_BRCT, dec.K_BRCF):
                    condition = g_pred[op.s2]
                    for lane in list(active):
                        if lane.pred[op.s2] != condition:
                            retire_lane(lane, RETIRE_BRANCH)
                    branches = condition if kind == dec.K_BRCT \
                        else not condition
                    if branches:
                        taken = True
                        target = g_btr[op.s1]
                        for lane in list(active):
                            if lane.btr[op.s1] != target:
                                retire_lane(lane, RETIRE_BRANCH)
                elif kind == dec.K_BRL:
                    taken = True
                    target = g_btr[op.s1]
                    for lane in list(active):
                        if lane.btr[op.s1] != target:
                            retire_lane(lane, RETIRE_BRANCH)
                    seq += 1
                    heapq.heappush(pending, (cycle + op.latency, seq,
                                             _P_GPR, op.d1,
                                             (pc + 1) & mask, None))
                elif kind == dec.K_HALT:
                    halted = True
                else:
                    raise _VectorAbort(f"unhandled op kind {kind}")

            # ---- buffered stores land (validated at issue) -----------
            if store_buffer:
                for address, golden, vec in store_buffer:
                    g_mem[address] = golden
                    if vec is None:
                        for lane in active:
                            lane.mem[address] = golden
                    else:
                        for lane in active:
                            laddr, lvalue = vec.get(lane.row,
                                                    (address, golden))
                            lane.mem[laddr] = lvalue
                    for s in stuck_mem:
                        # Each lane stored to its own address; if that
                        # hit the lane's stuck word, force the bit back.
                        hit = address if vec is None \
                            else vec.get(s.row, (address, 0))[0]
                        if hit == s.fault.index:
                            self._assert_stuck(s, mask)
                    # A frozen lane stores the golden value to the
                    # golden address — overwriting a dirty word cleans
                    # it, and a lane with nothing dirty left IS the
                    # golden machine: immediate MASKED cut.
                    for lane in list(frozen):
                        lane.mem[address] = golden
                        if address in lane.dirty:
                            lane.dirty.discard(address)
                            if not lane.dirty:
                                frozen.remove(lane)
                                lane.dirty = None
                                outcomes[lane.index] = self._masked()
                                stats["cuts"] += 1
                del store_buffer[:]

            # ---- issue-cost accounting -------------------------------
            extra = 0
            if model_ports:
                port_ops = reads + writes_landing
                if port_ops > port_budget:
                    extra += (port_ops + port_budget - 1) // port_budget - 1
            if share_bandwidth and bundle.n_mem:
                demand = fetch_bits + 32 * bundle.n_mem
                extra += (demand + bank_bits - 1) // bank_bits - 1

            if taken and not halted:
                extra += branch_penalty
                pc = target
            else:
                pc += 1

            cycle += 1 + extra

        if not halted:
            # Early stop: every lane resolved before the golden halt.
            return

        # Final drain: outstanding write-backs become architectural.
        while pending:
            _, _, space, index, golden, vec = heapq.heappop(pending)
            if space == _P_GPR and index:
                g_gpr[index] = golden
                for lane in active:
                    lane.gpr[index] = golden if vec is None \
                        else vec.get(lane.row, golden)
            elif space == _P_PRED and index:
                g_pred[index] = golden
                for lane in active:
                    lane.pred[index] = golden if vec is None \
                        else vec.get(lane.row, golden)
            elif space == _P_BTR:
                g_btr[index] = golden
                for lane in active:
                    lane.btr[index] = golden if vec is None \
                        else vec.get(lane.row, golden)

        if cycle != reference_cycles:
            raise _VectorAbort(
                f"walk halted at cycle {cycle}, reference says "
                f"{reference_cycles}")

        # Surviving lanes halted in lockstep with the golden machine:
        # classify by output diff, in the scalar checker's exact order.
        # Frozen lanes' registers ARE the golden row (their private
        # lists went stale the moment they froze) — re-point before the
        # checksum diff.
        for lane in frozen:
            lane.gpr = g_gpr
        for lane in active + frozen:
            outcomes[lane.index] = self._classify_outputs(lane)
        # Faults whose cycle lay beyond the last issue cycle never
        # fired; the machine ran the golden trajectory to completion.
        while act_at < len(activations):
            outcomes[activations[act_at].index] = self._masked()
            act_at += 1
        while fetch_at < len(fetch_queue):
            outcomes[fetch_queue[fetch_at][0]] = self._masked()
            fetch_at += 1

    # -- lane fault application -------------------------------------------

    def _apply_fault(self, lane: _Lane, mask: int) -> None:
        """Apply the lane's fault to its freshly-copied row.

        Bit semantics mirror ``GprFile``/``PredFile``/``BtrFile``/
        ``DataMemory`` exactly (masking included).
        """
        fault = lane.fault
        space, index, bit = fault.space, fault.index, fault.bit
        seu = fault.model == _MODEL_SEU
        level = 1 if fault.model == _MODEL_STUCK1 else 0
        if space == _SPACE_GPR:
            value = lane.gpr[index]
            if seu:
                value ^= 1 << bit
            elif level:
                value |= 1 << bit
            else:
                value &= ~(1 << bit)
            lane.gpr[index] = value & mask
        elif space == _SPACE_PRED:
            # Predicates are one bit wide; any requested bit is bit 0.
            if seu:
                lane.pred[index] ^= 1
            else:
                lane.pred[index] = level
        elif space == _SPACE_BTR:
            value = lane.btr[index]
            if seu:
                value ^= 1 << bit
            elif level:
                value |= 1 << bit
            else:
                value &= ~(1 << bit)
            lane.btr[index] = value
        else:  # mem
            value = int(lane.mem[index])
            if seu:
                value = (value ^ (1 << bit)) & mask
            elif level:
                value |= (1 << bit) & mask
            else:
                value &= ~(1 << bit)
            lane.mem[index] = value

    def _assert_stuck(self, lane: _Lane, mask: int) -> None:
        """Re-assert a stuck-at bit (the injector does this every cycle)."""
        fault = lane.fault
        space, index, bit = fault.space, fault.index, fault.bit
        level = 1 if fault.model == _MODEL_STUCK1 else 0
        if space == _SPACE_GPR:
            value = lane.gpr[index]
            value = (value | (1 << bit)) if level else (value & ~(1 << bit))
            lane.gpr[index] = value & mask
        elif space == _SPACE_PRED:
            lane.pred[index] = level
        elif space == _SPACE_BTR:
            value = lane.btr[index]
            lane.btr[index] = (value | (1 << bit)) if level \
                else (value & ~(1 << bit))
        else:
            value = int(lane.mem[index])
            if level:
                value |= (1 << bit) & mask
            else:
                value &= ~(1 << bit)
            lane.mem[index] = value

    # -- end-of-walk classification ---------------------------------------

    def _classify_outputs(self, lane: _Lane) -> LaneOutcome:
        """Diff a surviving lane against the golden outputs.

        Byte-compatible with ``LockstepChecker.diff_outputs`` +
        ``run_one``: first mismatching output word (or the checksum)
        yields SDC with the same detail string; no mismatch is MASKED.
        The cycle count is ``reference_cycles`` — the lane issued every
        bundle in lockstep with the golden machine (that is what kept
        it in the vector), so its halt cycle is the reference's.
        """
        for name, base, expected_values in self.outputs:
            row = lane.mem
            for offset, expected in enumerate(expected_values):
                got = int(row[base + offset]) if _np is not None \
                    else row[base + offset]
                if got != expected:
                    return LaneOutcome(
                        "sdc",
                        f"output {name}[{offset}] = {got:#x}, "
                        f"golden {expected:#x}",
                        self.reference_cycles)
        if self.golden_checksum is not None:
            expected = self.golden_checksum & self.config.mask
            got = lane.gpr[2]  # r2 carries main's return value
            if got != expected:
                return LaneOutcome(
                    "sdc",
                    f"checksum {got:#x}, golden {expected:#x}",
                    self.reference_cycles)
        return self._masked()
