"""Pre-decoding of bundles into an efficient executable form.

The Fetch/Decode/Issue stage's *decode* work is done once per static
bundle instead of once per dynamic execution: each instruction becomes a
:class:`PreOp` with resolved semantics, operand accessors and latency.
This keeps the per-cycle simulation loop small without changing observable
behaviour.  Structural legality (at most N ALU ops, one LSU/CMPU/BRU op
per issue group — the conflicts the compiler must avoid, §4.1) is checked
here, at program-load time.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.isa.bundle import Bundle
from repro.isa.opcodes import FuClass, OpcodeTable
from repro.isa.operands import Btr, Lit, Pred, Reg
from repro.isa.semantics import ALU_SEMANTICS, CMP_SEMANTICS
from repro.mdes import Mdes

# Execution kinds dispatched by the core loop.
K_ALU = 0       # binary ALU op (includes MOVE with literal/register src)
K_MOVI = 1      # long-immediate move
K_CMP = 2       # CMPP family -> two predicate destinations
K_LOAD = 3
K_LOAD_SPEC = 4
K_STORE = 5
K_PBR = 6
K_MOVGBP = 7
K_BR = 8        # unconditional
K_BRCT = 9
K_BRCF = 10
K_BRL = 11
K_HALT = 12
K_NOP = 13
K_CUSTOM = 14


class PreOp:
    """One pre-decoded operation."""

    __slots__ = (
        "kind", "mnemonic", "fu", "fn", "latency",
        "d1", "d2", "s1_lit", "s1", "s2_lit", "s2", "guard",
        "gpr_reads", "writes_gpr",
    )

    def __init__(self, kind: int, mnemonic: str, fu: str, fn, latency: int,
                 d1: int, d2: int, s1_lit: bool, s1: int,
                 s2_lit: bool, s2: int, guard: int,
                 gpr_reads: Tuple[int, ...], writes_gpr: Optional[int]):
        self.kind = kind
        self.mnemonic = mnemonic
        self.fu = fu
        self.fn = fn
        self.latency = latency
        self.d1 = d1
        self.d2 = d2
        self.s1_lit = s1_lit
        self.s1 = s1
        self.s2_lit = s2_lit
        self.s2 = s2
        self.guard = guard
        self.gpr_reads = gpr_reads
        self.writes_gpr = writes_gpr


class PreBundle:
    """A pre-decoded issue group plus its static issue metadata.

    ``source`` keeps the architectural :class:`~repro.isa.Bundle` the
    group was decoded from, so tracers can render what actually entered
    the pipeline — essential when a fault injector substitutes a
    corrupted fetch for the program's own bundle.
    """

    __slots__ = ("ops", "n_mem", "gpr_read_set", "n_real", "source")

    def __init__(self, ops: List[PreOp], n_mem: int,
                 gpr_read_set: Tuple[int, ...], n_real: int,
                 source: Bundle):
        self.ops = ops
        self.n_mem = n_mem
        self.gpr_read_set = gpr_read_set
        self.n_real = n_real
        self.source = source


def _src(op) -> Tuple[bool, int]:
    """Split a source operand into (is_literal, payload)."""
    if op is None:
        return True, 0
    if isinstance(op, Lit):
        return True, op.value
    if isinstance(op, (Reg, Pred, Btr)):
        return False, op.index
    raise SimulationError(f"unsupported source operand {op!r}")


_KIND_BY_MNEMONIC = {
    "MOVI": K_MOVI,
    "LW": K_LOAD,
    "LWS": K_LOAD_SPEC,
    "SW": K_STORE,
    "PBR": K_PBR,
    "MOVGBP": K_MOVGBP,
    "BR": K_BR,
    "BRCT": K_BRCT,
    "BRCF": K_BRCF,
    "BRL": K_BRL,
    "HALT": K_HALT,
    "NOP": K_NOP,
}


def predecode_bundle(bundle: Bundle, mdes: Mdes, address: int) -> PreBundle:
    """Pre-decode one bundle and validate its structural legality."""
    table: OpcodeTable = mdes.table
    if len(bundle) > mdes.issue_width:
        raise SimulationError(
            f"bundle {address} has {len(bundle)} slots, issue width is "
            f"{mdes.issue_width}"
        )

    ops: List[PreOp] = []
    fu_counts = {cls: 0 for cls in FuClass}
    n_mem = 0
    read_set = set()
    n_real = 0

    for instr in bundle:
        info = table.lookup(instr.mnemonic)
        fu_counts[info.fu_class] += 1
        latency = mdes.latency_of(info)

        d1 = instr.dest1.index if instr.dest1 is not None else 0
        d2 = instr.dest2.index if instr.dest2 is not None else 0
        s1_lit, s1 = _src(instr.src1)
        s2_lit, s2 = _src(instr.src2)
        guard = instr.guard.index

        mnemonic = instr.mnemonic
        fn = None
        writes_gpr: Optional[int] = None
        gpr_reads: List[int] = []

        if info.is_custom:
            kind = K_CUSTOM
            fn = info.custom_spec.evaluate
            writes_gpr = d1
        elif mnemonic in _KIND_BY_MNEMONIC:
            kind = _KIND_BY_MNEMONIC[mnemonic]
        elif mnemonic in CMP_SEMANTICS:
            kind = K_CMP
            fn = CMP_SEMANTICS[mnemonic]
        elif mnemonic == "MOVE":
            kind = K_ALU
            fn = None  # copy of src1
            writes_gpr = d1
        elif mnemonic in ALU_SEMANTICS:
            kind = K_ALU
            fn = ALU_SEMANTICS[mnemonic]
            writes_gpr = d1
        else:
            raise SimulationError(f"cannot pre-decode opcode {mnemonic!r}")

        if kind in (K_ALU, K_CUSTOM, K_CMP, K_LOAD, K_LOAD_SPEC, K_STORE):
            if not s1_lit:
                gpr_reads.append(s1)
            if not s2_lit:
                gpr_reads.append(s2)
        if kind in (K_LOAD, K_LOAD_SPEC):
            writes_gpr = d1
        if kind == K_STORE:
            gpr_reads.append(d1)  # store value travels in DEST1
        if kind == K_MOVI:
            writes_gpr = d1
        if kind == K_MOVGBP and not s1_lit:
            gpr_reads.append(s1)
        if kind == K_BRL:
            writes_gpr = d1

        if kind != K_NOP:
            n_real += 1
            read_set.update(gpr_reads)

        ops.append(PreOp(
            kind=kind, mnemonic=mnemonic, fu=info.fu_class.value, fn=fn,
            latency=latency, d1=d1, d2=d2,
            s1_lit=s1_lit, s1=s1, s2_lit=s2_lit, s2=s2, guard=guard,
            gpr_reads=tuple(gpr_reads), writes_gpr=writes_gpr,
        ))
        if info.is_memory:
            n_mem += 1

    for fu_class in (FuClass.ALU, FuClass.LSU, FuClass.CMPU, FuClass.BRU):
        available = mdes.resource_count(fu_class)
        if fu_counts[fu_class] > available:
            raise SimulationError(
                f"bundle {address} needs {fu_counts[fu_class]} "
                f"{fu_class.value} units but only {available} exist "
                "(the compiler must avoid resource conflicts)"
            )

    return PreBundle(ops=ops, n_mem=n_mem,
                     gpr_read_set=tuple(sorted(read_set)), n_real=n_real,
                     source=bundle)
