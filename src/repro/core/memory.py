"""Data memory: four external 32-bit banks behind a 2x-clock controller.

The paper's design (§3.2) assumes four external 32-bit memory banks; a
memory controller at twice the processor clock supplies the 256 bits per
cycle needed to fetch a full issue group.  The data side is modelled as a
flat word-addressed array (the toolchain compiles all scalars and arrays
to 32-bit words); the bandwidth interaction between instruction fetch and
data access is an ablation switch handled in the core's issue logic.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.errors import (
    SimulationError,
    TrapError,
    TRAP_OOB_LOAD,
    TRAP_OOB_STORE,
    TRAP_PARITY,
)


class DataMemory:
    """Word-addressed data memory with bounds checking.

    Speculative loads (HPL-PD's dismissible loads, surfaced here as the
    ``LWS`` opcode) read out-of-range addresses as zero instead of
    faulting — the paper lists speculative loading among the EPIC
    features its architecture supports (§2).  Non-speculative accesses to
    invalid addresses raise an architectural :class:`TrapError`.

    Like the register files, the memory exposes a fault-injection
    surface (``flip_bit``/``force_bit``/``poison``) used by
    :class:`repro.reliability.FaultInjector`; a poisoned word raises a
    parity trap on its next non-speculative read.  Dismissible loads
    never trap — a corrupted word behind an ``LWS`` is returned as
    stored, matching hardware where the parity network sits on the
    committing path only.
    """

    def __init__(self, words: int, image: Optional[Iterable[int]] = None,
                 width: int = 32):
        if words < 1:
            raise SimulationError("memory must contain at least one word")
        self._mask = (1 << width) - 1
        self._words: List[int] = [0] * words
        self._poisoned: Set[int] = set()
        if image is not None:
            image = list(image)
            if len(image) > words:
                raise SimulationError(
                    f"initial image ({len(image)} words) exceeds memory size "
                    f"({words} words)"
                )
            for address, value in enumerate(image):
                self._words[address] = value & self._mask

    def __len__(self) -> int:
        return len(self._words)

    def read(self, address: int) -> int:
        if not 0 <= address < len(self._words):
            raise TrapError(
                f"load from invalid address {address}", cause=TRAP_OOB_LOAD
            )
        if self._poisoned and address in self._poisoned:
            raise TrapError(
                f"parity mismatch reading memory word {address}",
                cause=TRAP_PARITY,
            )
        return self._words[address]

    def read_speculative(self, address: int) -> int:
        """Dismissible load: bad addresses read as zero (LWS)."""
        if not 0 <= address < len(self._words):
            return 0
        return self._words[address]

    def check_write(self, address: int) -> None:
        """Raise the store trap a ``write`` to ``address`` would raise.

        The core validates store addresses at issue time and buffers the
        actual writes to the end of the bundle, so a trapping bundle can
        be squashed without leaving half its stores behind.
        """
        if not 0 <= address < len(self._words):
            raise TrapError(
                f"store to invalid address {address}", cause=TRAP_OOB_STORE
            )

    def write(self, address: int, value: int) -> None:
        if not 0 <= address < len(self._words):
            raise TrapError(
                f"store to invalid address {address}", cause=TRAP_OOB_STORE
            )
        if self._poisoned:
            self._poisoned.discard(address)  # full-word write repairs parity
        self._words[address] = value & self._mask

    # -- fault-injection surface (repro.reliability) -----------------------

    def flip_bit(self, address: int, bit: int) -> int:
        """XOR one stored bit (SEU model); returns the new word."""
        self.check_write(address)
        self._words[address] = (self._words[address] ^ (1 << bit)) & self._mask
        return self._words[address]

    def force_bit(self, address: int, bit: int, level: int) -> int:
        """Force one stored bit to ``level`` (stuck-at model)."""
        self.check_write(address)
        if level:
            self._words[address] |= (1 << bit) & self._mask
        else:
            self._words[address] &= ~(1 << bit)
        return self._words[address]

    def peek(self, address: int) -> int:
        """Read without parity checking (debug/injector use)."""
        self.check_write(address)
        return self._words[address]

    def poison(self, address: int) -> None:
        """Mark a word as failing parity on its next committed read."""
        self.check_write(address)
        self._poisoned.add(address)

    def clear_poison(self, address: int) -> None:
        self._poisoned.discard(address)

    def read_block(self, address: int, count: int) -> List[int]:
        if count < 0 or not 0 <= address <= len(self._words) - count:
            raise SimulationError(
                f"block read [{address}, {address + count}) out of range"
            )
        return self._words[address:address + count]

    def write_block(self, address: int, values: Iterable[int]) -> None:
        for offset, value in enumerate(values):
            self.write(address + offset, value)
