"""Data memory: four external 32-bit banks behind a 2x-clock controller.

The paper's design (§3.2) assumes four external 32-bit memory banks; a
memory controller at twice the processor clock supplies the 256 bits per
cycle needed to fetch a full issue group.  The data side is modelled as a
flat word-addressed array (the toolchain compiles all scalars and arrays
to 32-bit words); the bandwidth interaction between instruction fetch and
data access is an ablation switch handled in the core's issue logic.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.errors import SimulationError


class DataMemory:
    """Word-addressed data memory with bounds checking.

    Speculative loads (HPL-PD's dismissible loads, surfaced here as the
    ``LWS`` opcode) read out-of-range addresses as zero instead of
    faulting — the paper lists speculative loading among the EPIC
    features its architecture supports (§2).
    """

    def __init__(self, words: int, image: Optional[Iterable[int]] = None,
                 width: int = 32):
        if words < 1:
            raise SimulationError("memory must contain at least one word")
        self._mask = (1 << width) - 1
        self._words: List[int] = [0] * words
        if image is not None:
            image = list(image)
            if len(image) > words:
                raise SimulationError(
                    f"initial image ({len(image)} words) exceeds memory size "
                    f"({words} words)"
                )
            for address, value in enumerate(image):
                self._words[address] = value & self._mask

    def __len__(self) -> int:
        return len(self._words)

    def read(self, address: int) -> int:
        if not 0 <= address < len(self._words):
            raise SimulationError(f"load from invalid address {address}")
        return self._words[address]

    def read_speculative(self, address: int) -> int:
        """Dismissible load: bad addresses read as zero (LWS)."""
        if not 0 <= address < len(self._words):
            return 0
        return self._words[address]

    def write(self, address: int, value: int) -> None:
        if not 0 <= address < len(self._words):
            raise SimulationError(f"store to invalid address {address}")
        self._words[address] = value & self._mask

    def read_block(self, address: int, count: int) -> List[int]:
        if count < 0 or not 0 <= address <= len(self._words) - count:
            raise SimulationError(
                f"block read [{address}, {address + count}) out of range"
            )
        return self._words[address:address + count]

    def write_block(self, address: int, values: Iterable[int]) -> None:
        for offset, value in enumerate(values):
            self.write(address + offset, value)
