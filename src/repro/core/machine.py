"""The cycle-accurate EPIC processor model (paper Fig. 2).

Timing model
============

* **2-stage pipeline.**  Stage 1 (Fetch/Decode/Issue) launches one bundle
  per cycle; stage 2 executes and writes back.  A *taken* branch is
  resolved in stage 2 and flushes stage 1, costing one bubble cycle.
* **Architecturally visible latencies** (the HPL-PD/Trimaran contract):
  an operation issued in cycle ``T`` with latency ``L`` makes its result
  visible to bundles issued at ``T+L`` or later.  The hardware does not
  interlock — the compiler guarantees consumers are scheduled far enough
  away, exactly as the paper's elcor-based toolchain does (§4.1).
  Operations in the *same* bundle read the old register values (VLIW
  parallel semantics).
* **Register-file port budget** (§3.2): the dual-port block-RAM file is
  driven by a controller at 4x the clock, allowing eight read/write
  operations per processor cycle.  "Exceeding this limit would result in
  processor stall.  Fortunately, this limitation is mitigated by
  forwarding of recently calculated results."  We count the distinct GPRs
  read by a bundle (reads satisfied by a value that completed in this
  very cycle are forwarded when forwarding is on) plus the GPR write-backs
  landing this cycle; every started group of eight beyond the first
  costs one stall cycle.
* **Memory bandwidth** (§3.2): four 32-bit banks behind a 2x-clock
  controller deliver the 256 bits/cycle needed for a full fetch.  When
  ``lsu_shares_fetch_bandwidth`` is set, data accesses steal fetch slots
  and stall the front end (ablation A-series).
* **Predication** (§2): an operation whose guard predicate reads false is
  squashed — "only those instructions associated with a predicate
  register showing a true condition will be committed; others will be
  discarded."
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import MachineConfig
from repro.core import decode as dec
from repro.core.memory import DataMemory
from repro.core.regfile import BtrFile, GprFile, PredFile
from repro.core.stats import SimStats
from repro.errors import (
    CycleLimitExceeded,
    HangDetected,
    SimulationError,
    TrapError,
    TRAP_ILLEGAL_INSTRUCTION,
)
from repro.isa.bundle import Program
from repro.isa.semantics import to_signed
from repro.mdes import Mdes

#: Default data-memory size in 32-bit words (256 KiB).
DEFAULT_MEM_WORDS = 1 << 16

# Pending-write target spaces.
_SPACE_GPR = 0
_SPACE_PRED = 1
_SPACE_BTR = 2


@dataclass
class SimulationResult:
    """Outcome of one run: cycle count, statistics and final state.

    ``traps`` lists the architectural traps recorded during the run; it
    is only non-empty under the ``squash-bundle`` and
    ``record-and-continue`` trap policies (under ``halt`` the first trap
    propagates as a :class:`~repro.errors.TrapError` instead).
    """

    cycles: int
    stats: SimStats
    halted: bool
    traps: List[TrapError] = field(default_factory=list)

    def __str__(self) -> str:
        return f"SimulationResult(cycles={self.cycles}, halted={self.halted})"


class EpicProcessor:
    """One configured EPIC core, loaded with a program.

    >>> from repro.config import epic_config
    >>> from repro.asm import assemble
    >>> program = assemble("HALT", epic_config())
    >>> EpicProcessor(epic_config(), program).run().cycles
    1
    """

    def __init__(self, config: MachineConfig, program: Program,
                 mem_words: int = DEFAULT_MEM_WORDS,
                 mdes: Optional[Mdes] = None,
                 strict_nual: bool = False,
                 injector=None,
                 trace_hotness: int = 16,
                 trace_cap: int = 64,
                 trace_cache=None):
        #: Strict NUAL checking: raise if any operation reads a location
        #: with a write still in flight from an *earlier* cycle.  The
        #: compiler guarantees this never happens (consumers are
        #: scheduled past producer latencies), so with compiled code this
        #: mode is a scheduler validator; hand-written assembly may rely
        #: on reading old values and should leave it off.
        self.strict_nual = strict_nual
        self.config = config
        self.mdes = mdes if mdes is not None else Mdes(config)
        self.program = program
        self.gpr = GprFile(config.n_gprs, config.datapath_width)
        self.pred = PredFile(config.n_preds)
        self.btr = BtrFile(config.n_btrs)
        if len(program.data) > mem_words:
            raise SimulationError(
                f"program data ({len(program.data)} words) exceeds memory "
                f"({mem_words} words)"
            )
        self.memory = DataMemory(mem_words, program.data, config.datapath_width)
        self.stats = SimStats()
        self._bundles = [
            dec.predecode_bundle(bundle, self.mdes, address)
            for address, bundle in enumerate(program.bundles)
        ]
        self._mask = config.mask
        self._width = config.datapath_width
        #: Architectural traps recorded under the non-halting policies.
        self.traps: List[TrapError] = []
        #: Optional :class:`repro.reliability.FaultInjector`.  ``None``
        #: (the default) keeps the run loop on the exact pre-reliability
        #: path: the hook is a single ``is not None`` test per cycle and
        #: injection-free runs are cycle-identical.
        self.injector = injector
        if injector is not None:
            injector.attach(self)
        #: Lazily-built fast execution engine (``False`` once the
        #: program has been found ineligible for specialisation).
        self._fastsim = None
        #: Lazily-built trace engine (``False`` once found ineligible).
        self._tracesim = None
        #: Why the loaded program cannot use the specialised engines
        #: ("" while undetermined or when the fast path is available).
        self.fastpath_reject_reason = ""
        #: Which engine the most recent :meth:`run` actually used
        #: ("instrumented", "fast" or "trace"; "" before any run).
        self.last_engine = ""
        #: Trace-engine tuning: bundle-entry count at a taken-branch
        #: target before a superblock is compiled, and the maximum
        #: number of bundles chained into one trace.
        self._trace_hotness = trace_hotness
        self._trace_cap = trace_cap
        self._trace_cache = trace_cache
        #: Pause/resume state (see ``run(until_cycle=...)`` and
        #: :mod:`repro.core.snapshot`): when ``_paused`` is true the next
        #: :meth:`run` continues from ``(_resume_cycle, _resume_pc)``
        #: instead of ``(0, program.entry)``.  Set by a quiescent pause
        #: or by restoring a :class:`~repro.core.snapshot.CoreSnapshot`.
        self._paused = False
        self._resume_cycle = 0
        self._resume_pc = program.entry
        # Stack grows down from the top of data memory.
        self.gpr.write(1, mem_words)

    # -- operand access ----------------------------------------------------

    def _value(self, lit: bool, payload: int) -> int:
        if lit:
            return payload & self._mask
        return self.gpr.read(payload)

    # -- main loop ----------------------------------------------------------

    def run(self, max_cycles: int = 200_000_000,
            trace=None,
            watchdog_cycles: Optional[int] = None,
            fast: Optional[bool] = None,
            engine: Optional[str] = None,
            until_cycle: Optional[int] = None) -> SimulationResult:
        """Execute until HALT; returns the cycle count and statistics.

        ``trace``, if given, is called once per issued bundle with
        ``(cycle, pc, bundle)`` where ``bundle`` is the architectural
        :class:`~repro.isa.Bundle` that actually entered the pipeline —
        when a fault injector substitutes a corrupted fetch, the
        corrupted bundle is passed with ``corrupted=True`` as an extra
        keyword argument.  See :mod:`repro.core.trace` for a ready-made
        text tracer.

        Exhausting ``max_cycles`` raises
        :class:`~repro.errors.CycleLimitExceeded`.  ``watchdog_cycles``,
        if given, is a much tighter budget (fault-injection harnesses set
        it to a small multiple of the fault-free cycle count); blowing
        through it raises :class:`~repro.errors.HangDetected` so a
        fault-induced livelock is cut off long before the 200M-cycle
        safety net.

        ``engine`` selects the execution engine by name:

        * ``"auto"`` (the default) picks the pre-specialised fast path
          (:mod:`repro.core.fastpath`) whenever no tracer, no fault
          injector, no strict-NUAL checking and the ``halt`` trap
          policy are in effect, the instrumented loop otherwise;
        * ``"reference"`` (alias ``"instrumented"``) forces the
          instrumented loop — the behavioural reference for
          differential testing;
        * ``"fast"`` demands the bundle-specialised engine and raises
          :class:`~repro.errors.SimulationError` (citing
          ``fastpath_reject_reason``) if it cannot honour the
          configuration or program;
        * ``"trace"`` demands the profile-guided superblock engine
          (:mod:`repro.core.tracejit`), with the same eligibility
          rules as the fast path.

        ``fast`` is the legacy boolean spelling (``None``/``True``/
        ``False`` map to ``auto``/``fast``/``reference``); passing both
        is an error.  All engines are cycle-exact: they produce
        bit-identical cycle counts, statistics and architectural state.
        ``last_engine`` records which engine actually ran.

        ``until_cycle``, if given, pauses the run at the first
        *quiescent* cycle at or after it: a top-of-loop point with no
        write-back in flight (the trace engine's empty-pending entry
        condition), where machine state is purely architectural.  A
        paused run returns ``halted=False`` and the next :meth:`run`
        call resumes exactly where it stopped; the concatenated
        segments are bit-identical to one uninterrupted run.  Cycle
        budgets stay absolute (checked before the pause), so limit
        exceptions fire at the same cycle either way.  A run that halts
        before reaching ``until_cycle`` returns normally.
        """
        if engine is None:
            engine = {None: "auto", True: "fast", False: "reference"}[fast]
        elif fast is not None:
            raise SimulationError(
                "pass either engine= or the legacy fast= flag, not both"
            )
        if engine == "instrumented":
            engine = "reference"
        if engine not in ("auto", "fast", "trace", "reference"):
            raise SimulationError(
                f"unknown engine {engine!r}: expected one of auto, fast, "
                "trace, reference (alias instrumented)"
            )
        eligible = (trace is None and self.injector is None
                    and not self.strict_nual
                    and self.config.trap_policy == "halt"
                    and not (self.memory._poisoned or self.gpr._poisoned
                             or self.pred._poisoned or self.btr._poisoned))
        if engine in ("fast", "trace") and not eligible:
            raise SimulationError(
                "fast path requested but unavailable: it supports neither "
                "tracing, fault injection, strict NUAL checking, non-halt "
                "trap policies nor planted parity faults"
            )
        # Consume the resume point (a pause or a snapshot restore); a
        # completed run leaves the machine starting fresh again.
        start_cycle, start_pc = 0, self.program.entry
        if self._paused:
            start_cycle, start_pc = self._resume_cycle, self._resume_pc
            self._paused = False
        if engine == "trace":
            sim = self._trace_sim()
            if sim is None:
                raise SimulationError(
                    "trace engine requested but the loaded program cannot "
                    f"be specialised: {self.fastpath_reject_reason}"
                )
            self.last_engine = "trace"
            cycles = sim.run(max_cycles=max_cycles,
                             watchdog_cycles=watchdog_cycles,
                             until_cycle=until_cycle,
                             start_cycle=start_cycle, start_pc=start_pc)
            return SimulationResult(cycles=cycles, stats=self.stats,
                                    halted=not self._paused,
                                    traps=list(self.traps))
        if engine in ("auto", "fast") and eligible:
            sim = self._fast_sim()
            if sim is not None:
                self.last_engine = "fast"
                cycles = sim.run(max_cycles=max_cycles,
                                 watchdog_cycles=watchdog_cycles,
                                 until_cycle=until_cycle,
                                 start_cycle=start_cycle, start_pc=start_pc)
                return SimulationResult(cycles=cycles, stats=self.stats,
                                        halted=not self._paused,
                                        traps=list(self.traps))
            if engine == "fast":
                raise SimulationError(
                    "fast path requested but the loaded program cannot be "
                    f"specialised: {self.fastpath_reject_reason}"
                )
        self.last_engine = "instrumented"
        return self._run_instrumented(max_cycles=max_cycles, trace=trace,
                                      watchdog_cycles=watchdog_cycles,
                                      until_cycle=until_cycle,
                                      start_cycle=start_cycle,
                                      start_pc=start_pc)

    def _fast_sim(self):
        """The cached fast engine, or ``None`` if the program is ineligible."""
        if self._fastsim is None:
            from repro.core.fastpath import specialise

            self._fastsim = specialise(self) or False
        return self._fastsim or None

    def _trace_sim(self):
        """The cached trace engine, or ``None`` if the program is ineligible.

        The trace engine is layered on the fast path (it reuses the
        specialised per-bundle functions for cold code), so eligibility
        is exactly fast-path eligibility.
        """
        if self._tracesim is None:
            fastsim = self._fast_sim()
            if fastsim is None:
                self._tracesim = False
            else:
                from repro.core.tracejit import TraceSim

                self._tracesim = TraceSim(
                    self, fastsim,
                    hotness=self._trace_hotness,
                    cap=self._trace_cap,
                    cache=self._trace_cache,
                )
        return self._tracesim or None

    # -- snapshot/restore ---------------------------------------------------

    def snapshot(self):
        """Capture the machine's exact state (see :mod:`repro.core.snapshot`).

        Only meaningful on a fresh machine or one paused at a quiescent
        cycle via ``run(until_cycle=...)`` — at those points all state
        is architectural (nothing in flight).
        """
        from repro.core.snapshot import CoreSnapshot

        return CoreSnapshot.capture(self)

    def restore(self, snap) -> None:
        """Restore a :class:`~repro.core.snapshot.CoreSnapshot` in place.

        The next :meth:`run` resumes from the snapshot's cycle and PC;
        the continuation is bit-identical to a run that paused there.
        """
        snap.apply(self)

    def _run_instrumented(self, max_cycles: int = 200_000_000,
                          trace=None,
                          watchdog_cycles: Optional[int] = None,
                          until_cycle: Optional[int] = None,
                          start_cycle: int = 0,
                          start_pc: Optional[int] = None
                          ) -> SimulationResult:
        """The fully-hooked reference loop (tracing, injection, strict NUAL).

        This is the behavioural definition of the machine; the fast path
        must match it bit-for-bit (see :mod:`repro.core.fastpath`).
        """
        config = self.config
        stats = self.stats
        bundles = self._bundles
        n_bundles = len(bundles)
        mask = self._mask
        width = self._width
        gpr = self.gpr
        pred = self.pred
        btr = self.btr
        memory = self.memory

        port_budget = config.regfile_ops_per_cycle
        model_ports = config.model_port_limit
        forwarding = config.forwarding
        share_bandwidth = config.lsu_shares_fetch_bandwidth
        fetch_bits = config.issue_width * 64
        bank_bits = config.n_mem_banks * 32 * 2  # 2x-clock controller
        branch_penalty = config.taken_branch_penalty

        # Pending write-backs: heap of (ready_cycle, seq, space, index, value).
        pending: List[Tuple[int, int, int, int, int]] = []
        seq = 0
        # Cycle at which each GPR last received a write-back (for
        # forwarding) — a flat list indexed by register number.
        n_gprs = config.n_gprs
        gpr_ready_at: List[int] = [-1] * n_gprs
        # Strict-NUAL bookkeeping: writes in flight from earlier cycles.
        strict = self.strict_nual
        inflight: Dict[Tuple[int, int], int] = {}

        def check_read(space: int, index: int, pc_now: int,
                       cycle_now: int) -> None:
            if inflight.get((space, index), 0):
                kind = {_SPACE_GPR: "r", _SPACE_PRED: "p",
                        _SPACE_BTR: "b"}[space]
                raise SimulationError(
                    f"NUAL violation: read of {kind}{index} while a write "
                    "is still in flight (scheduler bug?)",
                    cycle=cycle_now, pc=pc_now,
                )

        injector = self.injector
        policy = config.trap_policy
        traps = self.traps
        # Stores buffered within the current bundle: addresses are
        # validated (trapping) at issue time, the writes land when the
        # whole bundle has executed, so a squashed bundle leaves memory
        # untouched.  Same-bundle loads legally see pre-bundle memory
        # (VLIW parallel semantics), so this is unobservable otherwise.
        store_buffer: List[Tuple[int, int]] = []

        cycle = start_cycle
        pc = start_pc if start_pc is not None else self.program.entry
        halted = False

        while not halted:
            if cycle >= max_cycles:
                raise CycleLimitExceeded(
                    "cycle budget exhausted (runaway program?)",
                    cycle=cycle, pc=pc, limit=max_cycles,
                )
            if watchdog_cycles is not None and cycle >= watchdog_cycles:
                raise HangDetected(
                    "watchdog fired: execution ran far past the expected "
                    "cycle count",
                    cycle=cycle, pc=pc, limit=watchdog_cycles,
                )
            # Quiescent pause point: nothing in flight at all (checked
            # before the drain), so state is purely architectural.
            # Limit checks come first — budgets are absolute, and a
            # segmented run must trip them at the same cycle as an
            # uninterrupted one.
            if until_cycle is not None and cycle >= until_cycle \
                    and not pending:
                self._paused = True
                self._resume_cycle = cycle
                self._resume_pc = pc
                stats.cycles = cycle
                return SimulationResult(cycles=cycle, stats=stats,
                                        halted=False, traps=list(traps))
            if not 0 <= pc < n_bundles:
                raise TrapError(
                    "control fell outside the program (missing HALT or "
                    "corrupted branch target?)",
                    cause=TRAP_ILLEGAL_INSTRUCTION, cycle=cycle, pc=pc,
                )

            # Apply write-backs due by the start of this cycle; count those
            # landing exactly now against this cycle's port budget.
            writes_landing = 0
            while pending and pending[0][0] <= cycle:
                ready, _, space, index, value = heapq.heappop(pending)
                if strict:
                    inflight[(space, index)] -= 1
                try:
                    if space == _SPACE_GPR:
                        gpr.write(index, value)
                        gpr_ready_at[index] = ready
                        stats.regfile_writes += 1
                        if ready == cycle:
                            writes_landing += 1
                    elif space == _SPACE_PRED:
                        pred.write(index, value)
                    else:
                        btr.write(index, value)
                except TrapError as trap:
                    # Only reachable with corrupted state/instructions: a
                    # write-back addressed a port that does not exist.
                    trap.annotate(cycle, pc)
                    traps.append(trap)
                    stats.traps += 1
                    if policy == "halt":
                        raise

            bundle = bundles[pc]
            stats.bundles += 1

            seq_start = seq
            taken = False
            target = 0
            reads = 0
            forwarded = 0
            try:
                corrupted_fetch = False
                if injector is not None:
                    injector.on_cycle(cycle)
                    corrupted = injector.fetch_bundle(cycle, pc)
                    if corrupted is not None:
                        bundle = corrupted
                        corrupted_fetch = True
                # Trace the bundle that actually entered the pipeline: a
                # corrupted fetch substitutes for the program's own bundle
                # and is flagged so fault-campaign traces are honest.  (If
                # the corrupted word no longer decodes at all, the fetch
                # raises before anything executes and no line is traced.)
                if trace is not None:
                    if corrupted_fetch:
                        trace(cycle, pc, bundle.source, corrupted=True)
                    else:
                        trace(cycle, pc, self.program.bundles[pc])
                if strict:
                    for op in bundle.ops:
                        if op.guard:
                            check_read(_SPACE_PRED, op.guard, pc, cycle)
                        if not pred.read(op.guard):
                            continue
                        for reg in op.gpr_reads:
                            if reg:
                                check_read(_SPACE_GPR, reg, pc, cycle)
                        kind = op.kind
                        if kind in (dec.K_BR, dec.K_BRL):
                            check_read(_SPACE_BTR, op.s1, pc, cycle)
                        elif kind in (dec.K_BRCT, dec.K_BRCF):
                            check_read(_SPACE_BTR, op.s1, pc, cycle)
                            check_read(_SPACE_PRED, op.s2, pc, cycle)

                # ---- stage 1: read operands (reads see pre-cycle state) --
                for reg in bundle.gpr_read_set:
                    if reg == 0:
                        continue  # r0 is not a real port
                    # A corrupted fetch can name a register beyond the
                    # file; it still occupies a read port here and traps
                    # when stage 2 actually reads it.
                    if forwarding and reg < n_gprs \
                            and gpr_ready_at[reg] == cycle:
                        forwarded += 1
                    else:
                        reads += 1
                stats.regfile_reads += reads + forwarded
                stats.regfile_reads_forwarded += forwarded

                # ---- stage 2: execute ------------------------------------
                for op in bundle.ops:
                    kind = op.kind
                    if kind == dec.K_NOP:
                        stats.nops += 1
                        continue
                    if not pred.read(op.guard):
                        stats.ops_squashed += 1
                        continue
                    stats.ops_executed += 1
                    stats.note_fu(op.fu)

                    if kind == dec.K_ALU:
                        a = self._value(op.s1_lit, op.s1)
                        if op.fn is None:  # MOVE
                            result = a
                        else:
                            result = op.fn(a, self._value(op.s2_lit, op.s2),
                                           width)
                        seq += 1
                        heapq.heappush(
                            pending,
                            (cycle + op.latency, seq, _SPACE_GPR, op.d1,
                             result),
                        )
                    elif kind == dec.K_CUSTOM:
                        a = self._value(op.s1_lit, op.s1)
                        b = self._value(op.s2_lit, op.s2)
                        result = op.fn(a, b, mask)
                        seq += 1
                        heapq.heappush(
                            pending,
                            (cycle + op.latency, seq, _SPACE_GPR, op.d1,
                             result),
                        )
                    elif kind == dec.K_MOVI:
                        seq += 1
                        heapq.heappush(
                            pending,
                            (cycle + op.latency, seq, _SPACE_GPR, op.d1,
                             op.s1 & mask),
                        )
                    elif kind == dec.K_CMP:
                        a = self._value(op.s1_lit, op.s1)
                        b = self._value(op.s2_lit, op.s2)
                        condition = op.fn(a, b, width)
                        seq += 1
                        heapq.heappush(
                            pending,
                            (cycle + op.latency, seq, _SPACE_PRED, op.d1,
                             condition),
                        )
                        seq += 1
                        heapq.heappush(
                            pending,
                            (cycle + op.latency, seq, _SPACE_PRED, op.d2,
                             1 - condition),
                        )
                    elif kind in (dec.K_LOAD, dec.K_LOAD_SPEC):
                        base = self._value(op.s1_lit, op.s1)
                        offset = self._value(op.s2_lit, op.s2)
                        address = to_signed(base + offset & mask, width)
                        if kind == dec.K_LOAD_SPEC:
                            value = memory.read_speculative(address)
                        else:
                            value = memory.read(address)
                        stats.memory_reads += 1
                        seq += 1
                        heapq.heappush(
                            pending,
                            (cycle + op.latency, seq, _SPACE_GPR, op.d1,
                             value),
                        )
                    elif kind == dec.K_STORE:
                        base = self._value(op.s1_lit, op.s1)
                        offset = self._value(op.s2_lit, op.s2)
                        address = to_signed(base + offset & mask, width)
                        memory.check_write(address)
                        store_buffer.append((address, gpr.read(op.d1)))
                        stats.memory_writes += 1
                    elif kind == dec.K_PBR:
                        seq += 1
                        heapq.heappush(
                            pending,
                            (cycle + op.latency, seq, _SPACE_BTR, op.d1,
                             op.s1),
                        )
                    elif kind == dec.K_MOVGBP:
                        seq += 1
                        heapq.heappush(
                            pending,
                            (cycle + op.latency, seq, _SPACE_BTR, op.d1,
                             self._value(op.s1_lit, op.s1)),
                        )
                    elif kind == dec.K_BR:
                        stats.branches += 1
                        taken = True
                        target = btr.read(op.s1)
                    elif kind == dec.K_BRCT:
                        stats.branches += 1
                        if pred.read(op.s2):
                            taken = True
                            target = btr.read(op.s1)
                    elif kind == dec.K_BRCF:
                        stats.branches += 1
                        if not pred.read(op.s2):
                            taken = True
                            target = btr.read(op.s1)
                    elif kind == dec.K_BRL:
                        stats.branches += 1
                        taken = True
                        target = btr.read(op.s1)
                        seq += 1
                        heapq.heappush(
                            pending,
                            (cycle + op.latency, seq, _SPACE_GPR, op.d1,
                             (pc + 1) & mask),
                        )
                    elif kind == dec.K_HALT:
                        halted = True
                    else:  # pragma: no cover - defensive
                        raise SimulationError(
                            f"unhandled op kind {kind}", cycle=cycle, pc=pc
                        )
            except TrapError as trap:
                trap.annotate(cycle, pc)
                traps.append(trap)
                stats.traps += 1
                if policy == "halt":
                    raise
                if policy == "squash-bundle":
                    # Discard every effect of the trapping bundle: its
                    # buffered stores, its in-flight write-backs, its
                    # branch decision — then fall through to the next PC.
                    del store_buffer[:]
                    if seq != seq_start:
                        pending = [entry for entry in pending
                                   if entry[1] <= seq_start]
                        heapq.heapify(pending)
                    taken = False
                    halted = False
                # record-and-continue keeps whatever the bundle did before
                # the trap; the remaining slots of the bundle are skipped.

            # Buffered stores land now (addresses were validated at issue).
            if store_buffer:
                for address, value in store_buffer:
                    memory.write(address, value)
                del store_buffer[:]

            if strict:
                # Writes enqueued by THIS bundle become "in flight" only
                # for later cycles (same-cycle reads legally see the old
                # values).
                for entry in pending:
                    if entry[1] > seq_start:
                        key = (entry[2], entry[3])
                        inflight[key] = inflight.get(key, 0) + 1

            # ---- issue-cost accounting ----------------------------------
            extra = 0
            if model_ports:
                port_ops = reads + writes_landing
                if port_ops > port_budget:
                    port_stall = (port_ops + port_budget - 1) // port_budget - 1
                    stats.port_stall_cycles += port_stall
                    extra += port_stall
            if share_bandwidth and bundle.n_mem:
                demand = fetch_bits + 32 * bundle.n_mem
                fetch_stall = (demand + bank_bits - 1) // bank_bits - 1
                stats.fetch_stall_cycles += fetch_stall
                extra += fetch_stall

            if taken and not halted:
                stats.branches_taken += 1
                stats.branch_bubble_cycles += branch_penalty
                extra += branch_penalty
                pc = target
            else:
                pc += 1

            cycle += 1 + extra

        # Drain outstanding write-backs so final state is architectural.
        while pending:
            _, _, space, index, value = heapq.heappop(pending)
            try:
                if space == _SPACE_GPR:
                    gpr.write(index, value)
                elif space == _SPACE_PRED:
                    pred.write(index, value)
                else:
                    btr.write(index, value)
            except TrapError as trap:
                trap.annotate(cycle, pc)
                traps.append(trap)
                stats.traps += 1
                if policy == "halt":
                    raise

        stats.cycles = cycle
        return SimulationResult(cycles=cycle, stats=stats, halted=True,
                                traps=list(traps))
