"""Execution tracing for the EPIC core.

A :class:`Tracer` is a callable suitable for
:meth:`~repro.core.EpicProcessor.run`'s ``trace`` parameter; it records
one line per issued bundle (cycle, bundle address, slots).  Useful for
debugging compiler output and for teaching — the trace shows exactly
which operations launch together and where the pipeline bubbles are.
"""

from __future__ import annotations

from typing import List, Optional, TextIO

from repro.isa.bundle import Bundle


class Tracer:
    """Collects (and optionally streams) a per-bundle execution trace."""

    def __init__(self, stream: Optional[TextIO] = None,
                 max_lines: int = 100_000, show_nops: bool = False):
        self.stream = stream
        self.max_lines = max_lines
        self.show_nops = show_nops
        self.lines: List[str] = []
        self._last_cycle: Optional[int] = None
        self.truncated = False

    def __call__(self, cycle: int, pc: int, bundle: Bundle,
                 corrupted: bool = False) -> None:
        """Record one issued bundle.

        ``corrupted`` is set by the core when a fault injector
        substituted this bundle for the program's own at fetch time; the
        line is marked so campaign traces show what actually executed.
        """
        if len(self.lines) >= self.max_lines:
            self.truncated = True
            return
        if self._last_cycle is not None and cycle > self._last_cycle + 1:
            stalls = cycle - self._last_cycle - 1
            self._emit(f"{'':>10}  ... {stalls} stall/bubble cycle(s)")
        slots = [
            str(instr) for instr in bundle.slots
            if self.show_nops or not instr.is_nop
        ]
        rendered = " ; ".join(slots) if slots else "(empty)"
        marker = "!" if corrupted else "@"
        suffix = "   <corrupted fetch>" if corrupted else ""
        self._emit(f"{cycle:>10}  {marker}{pc:<6} {rendered}{suffix}")
        self._last_cycle = cycle

    def _emit(self, line: str) -> None:
        self.lines.append(line)
        if self.stream is not None:
            print(line, file=self.stream)

    def text(self) -> str:
        suffix = "\n... trace truncated ..." if self.truncated else ""
        return "\n".join(self.lines) + suffix

    def __len__(self) -> int:
        return len(self.lines)
