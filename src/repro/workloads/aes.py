"""AES benchmark (paper §5.2).

"The AES benchmark encrypts 'Hello AES World!' 1000 times and then
decrypts it."

The MiniC program is a byte-oriented AES-128: key expansion, then
``n_iter`` chained encryptions of the 16-byte block, then ``n_iter``
chained decryptions (recovering the plaintext — a built-in self-check).
S-box lookups are data-dependent loads through the single LSU, which is
why — exactly as the paper observes — adding ALUs barely moves this
benchmark.

The golden reference is an independent pure-Python AES-128
implementation validated against the FIPS-197 test vector.
"""

from __future__ import annotations

from typing import List

from repro.errors import WorkloadError
from repro.workloads.common import WorkloadSpec, format_words

# -- reference AES-128 (byte lists) ----------------------------------------


def _build_sbox() -> List[int]:
    # Multiplicative inverse table via exp/log over GF(2^8), generator 3.
    exp = [0] * 512
    log = [0] * 256
    value = 1
    for power in range(255):
        exp[power] = value
        log[value] = power
        value ^= ((value << 1) ^ (0x1B if value & 0x80 else 0)) & 0xFF
    for power in range(255, 512):
        exp[power] = exp[power - 255]
    sbox = [0] * 256
    for byte in range(256):
        inverse = 0 if byte == 0 else exp[255 - log[byte]]
        # Affine transform, bit by bit.
        result = 0
        for bit in range(8):
            b = (
                ((inverse >> bit) & 1)
                ^ ((inverse >> ((bit + 4) % 8)) & 1)
                ^ ((inverse >> ((bit + 5) % 8)) & 1)
                ^ ((inverse >> ((bit + 6) % 8)) & 1)
                ^ ((inverse >> ((bit + 7) % 8)) & 1)
                ^ ((0x63 >> bit) & 1)
            )
            result |= b << bit
        sbox[byte] = result
    return sbox


SBOX = _build_sbox()
INV_SBOX = [0] * 256
for _index, _value in enumerate(SBOX):
    INV_SBOX[_value] = _index

RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _xtime(byte: int) -> int:
    return ((byte << 1) ^ (0x1B if byte & 0x80 else 0)) & 0xFF


def _gmul(a: int, b: int) -> int:
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        b >>= 1
        a = _xtime(a)
    return result


def expand_key(key: List[int]) -> List[int]:
    """176 round-key bytes from a 16-byte key."""
    w = list(key)
    for i in range(4, 44):
        temp = w[4 * (i - 1):4 * i]
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [SBOX[b] for b in temp]
            temp[0] ^= RCON[i // 4 - 1]
        prev = w[4 * (i - 4):4 * (i - 3)]
        w.extend(p ^ t for p, t in zip(prev, temp))
    return w


def _add_round_key(state: List[int], w: List[int], rnd: int) -> None:
    for index in range(16):
        state[index] ^= w[16 * rnd + index]


_SHIFT = [0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11]
_INV_SHIFT = [0, 13, 10, 7, 4, 1, 14, 11, 8, 5, 2, 15, 12, 9, 6, 3]


def encrypt_block(block: List[int], w: List[int]) -> List[int]:
    state = list(block)
    _add_round_key(state, w, 0)
    for rnd in range(1, 10):
        state = [SBOX[b] for b in state]
        state = [state[_SHIFT[i]] for i in range(16)]
        mixed = [0] * 16
        for col in range(4):
            a = state[4 * col:4 * col + 4]
            mixed[4 * col + 0] = _gmul(a[0], 2) ^ _gmul(a[1], 3) ^ a[2] ^ a[3]
            mixed[4 * col + 1] = a[0] ^ _gmul(a[1], 2) ^ _gmul(a[2], 3) ^ a[3]
            mixed[4 * col + 2] = a[0] ^ a[1] ^ _gmul(a[2], 2) ^ _gmul(a[3], 3)
            mixed[4 * col + 3] = _gmul(a[0], 3) ^ a[1] ^ a[2] ^ _gmul(a[3], 2)
        state = mixed
        _add_round_key(state, w, rnd)
    state = [SBOX[b] for b in state]
    state = [state[_SHIFT[i]] for i in range(16)]
    _add_round_key(state, w, 10)
    return state


def decrypt_block(block: List[int], w: List[int]) -> List[int]:
    state = list(block)
    _add_round_key(state, w, 10)
    state = [state[_INV_SHIFT[i]] for i in range(16)]
    state = [INV_SBOX[b] for b in state]
    for rnd in range(9, 0, -1):
        _add_round_key(state, w, rnd)
        mixed = [0] * 16
        for col in range(4):
            a = state[4 * col:4 * col + 4]
            mixed[4 * col + 0] = (_gmul(a[0], 14) ^ _gmul(a[1], 11)
                                  ^ _gmul(a[2], 13) ^ _gmul(a[3], 9))
            mixed[4 * col + 1] = (_gmul(a[0], 9) ^ _gmul(a[1], 14)
                                  ^ _gmul(a[2], 11) ^ _gmul(a[3], 13))
            mixed[4 * col + 2] = (_gmul(a[0], 13) ^ _gmul(a[1], 9)
                                  ^ _gmul(a[2], 14) ^ _gmul(a[3], 11))
            mixed[4 * col + 3] = (_gmul(a[0], 11) ^ _gmul(a[1], 13)
                                  ^ _gmul(a[2], 9) ^ _gmul(a[3], 14))
        state = mixed
        state = [state[_INV_SHIFT[i]] for i in range(16)]
        state = [INV_SBOX[b] for b in state]
    _add_round_key(state, w, 0)
    return state


# -- the MiniC program --------------------------------------------------------

_TEMPLATE = """
// AES-128: {n_iter} chained encryptions then decryptions of a 16-byte
// block ("Hello AES World!"), byte-oriented, table-driven.
const int sbox[256] = {{{sbox}}};
const int inv_sbox[256] = {{{inv_sbox}}};
const int rcon[10] = {{{rcon}}};
const int key[16] = {{{key}}};
int plaintext[16] = {{{plaintext}}};
int n_iter = {n_iter};
int w[176];
int state[16];
int mixed[16];
int ciphertext[16];
int recovered[16];

int xtime(int a) {{
  return ((a << 1) ^ ((a >> 7) * 27)) & 255;
}}

void expand_key() {{
  int i; int j; int t0; int t1; int t2; int t3; int s;
  for (i = 0; i < 16; i += 1) {{ w[i] = key[i]; }}
  for (i = 4; i < 44; i += 1) {{
    t0 = w[4 * i - 4]; t1 = w[4 * i - 3];
    t2 = w[4 * i - 2]; t3 = w[4 * i - 1];
    if ((i & 3) == 0) {{
      s = t0;
      t0 = sbox[t1] ^ rcon[(i >> 2) - 1];
      t1 = sbox[t2];
      t2 = sbox[t3];
      t3 = sbox[s];
    }}
    j = 4 * i;
    w[j] = w[j - 16] ^ t0;
    w[j + 1] = w[j - 15] ^ t1;
    w[j + 2] = w[j - 14] ^ t2;
    w[j + 3] = w[j - 13] ^ t3;
  }}
}}

void add_round_key(int rnd) {{
  int i; int base;
  base = rnd * 16;
  unroll(4) for (i = 0; i < 16; i += 1) {{
    state[i] = state[i] ^ w[base + i];
  }}
}}

void sub_shift() {{
  int i;
  // Combined SubBytes + ShiftRows (encrypt direction).
  unroll(4) for (i = 0; i < 16; i += 1) {{
    mixed[i] = sbox[state[({shift_expr}) & 15]];
  }}
  unroll(4) for (i = 0; i < 16; i += 1) {{ state[i] = mixed[i]; }}
}}

void inv_shift_sub() {{
  int i;
  unroll(4) for (i = 0; i < 16; i += 1) {{
    mixed[i] = inv_sbox[state[({inv_shift_expr}) & 15]];
  }}
  unroll(4) for (i = 0; i < 16; i += 1) {{ state[i] = mixed[i]; }}
}}

void mix_columns() {{
  int c; int a0; int a1; int a2; int a3; int x01; int all;
  for (c = 0; c < 16; c += 4) {{
    a0 = state[c]; a1 = state[c + 1]; a2 = state[c + 2]; a3 = state[c + 3];
    all = a0 ^ a1 ^ a2 ^ a3;
    state[c] = a0 ^ all ^ xtime(a0 ^ a1);
    state[c + 1] = a1 ^ all ^ xtime(a1 ^ a2);
    state[c + 2] = a2 ^ all ^ xtime(a2 ^ a3);
    state[c + 3] = a3 ^ all ^ xtime(a3 ^ a0);
  }}
}}

int gmul(int a, int b) {{
  int result; int i;
  result = 0;
  unroll for (i = 0; i < 4; i += 1) {{
    if (b & (1 << i)) {{ result = result ^ a; }}
    a = xtime(a);
  }}
  return result;
}}

void inv_mix_columns() {{
  int c; int a0; int a1; int a2; int a3;
  for (c = 0; c < 16; c += 4) {{
    a0 = state[c]; a1 = state[c + 1]; a2 = state[c + 2]; a3 = state[c + 3];
    state[c] = gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9);
    state[c + 1] = gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13);
    state[c + 2] = gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11);
    state[c + 3] = gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14);
  }}
}}

void encrypt() {{
  int rnd;
  add_round_key(0);
  for (rnd = 1; rnd < 10; rnd += 1) {{
    sub_shift();
    mix_columns();
    add_round_key(rnd);
  }}
  sub_shift();
  add_round_key(10);
}}

void decrypt() {{
  int rnd;
  add_round_key(10);
  inv_shift_sub();
  for (rnd = 9; rnd > 0; rnd -= 1) {{
    add_round_key(rnd);
    inv_mix_columns();
    inv_shift_sub();
  }}
  add_round_key(0);
}}

int main() {{
  int it; int i; int check;
  expand_key();
  for (i = 0; i < 16; i += 1) {{ state[i] = plaintext[i]; }}
  for (it = 0; it < n_iter; it += 1) {{ encrypt(); }}
  for (i = 0; i < 16; i += 1) {{ ciphertext[i] = state[i]; }}
  for (it = 0; it < n_iter; it += 1) {{ decrypt(); }}
  for (i = 0; i < 16; i += 1) {{ recovered[i] = state[i]; }}
  check = 0;
  for (i = 0; i < 16; i += 1) {{
    check = (check << 1) ^ ciphertext[i] ^ recovered[i];
  }}
  return check;
}}
"""

#: ShiftRows as an index expression: encrypt reads state[(i + 4*(i%4))%16]
#: — equivalently the table {0,5,10,15,...}; we inline the arithmetic
#: form so no extra table is needed.
_SHIFT_EXPR = "i + ((i & 3) << 2)"
_INV_SHIFT_EXPR = "i - ((i & 3) << 2) + 16"


def aes_workload(n_iter: int = 25) -> WorkloadSpec:
    """Build the AES benchmark (paper used 1000 iterations)."""
    if n_iter < 1:
        raise WorkloadError("n_iter must be >= 1")
    plaintext = [b for b in b"Hello AES World!"]
    key = [((7 * i + 13) * 31 + 5) & 0xFF for i in range(16)]

    w = expand_key(key)
    state = list(plaintext)
    for _ in range(n_iter):
        state = encrypt_block(state, w)
    ciphertext = list(state)
    for _ in range(n_iter):
        state = decrypt_block(state, w)
    recovered = list(state)
    if recovered != plaintext:
        raise WorkloadError("reference AES failed its round trip")

    check = 0
    for index in range(16):
        check = ((check << 1) ^ ciphertext[index] ^ recovered[index]) \
            & 0xFFFFFFFF

    source = _TEMPLATE.format(
        sbox=format_words(SBOX),
        inv_sbox=format_words(INV_SBOX),
        rcon=format_words(RCON),
        key=format_words(key),
        plaintext=format_words(plaintext),
        n_iter=n_iter,
        shift_expr=_SHIFT_EXPR,
        inv_shift_expr=_INV_SHIFT_EXPR,
    )
    return WorkloadSpec(
        name="AES",
        source=source,
        expected={"ciphertext": ciphertext, "recovered": recovered},
        expected_return=check,
        scale_note=(
            f"{n_iter} encrypt+decrypt iterations "
            "(paper: 1000; cycles scale linearly)"
        ),
        instance_args=(n_iter,),
    )
