"""Shared workload infrastructure."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

_MASK = 0xFFFFFFFF


@dataclass
class WorkloadSpec:
    """One benchmark instance: source, expected outputs, metadata."""

    name: str
    source: str
    #: Global arrays to read back and compare, mapped to expected words.
    expected: Dict[str, List[int]]
    #: Expected return value of main (a checksum), if defined.
    expected_return: Optional[int] = None
    #: Human-readable description of the instance size.
    scale_note: str = ""
    #: Data-memory words the simulators should provision.
    mem_words: int = 1 << 16
    #: Positional arguments the workload constructor was called with, so
    #: another process can rebuild this exact instance via
    #: ``WORKLOADS[name](*instance_args)`` (the job-serving layer's
    #: serialisation hook; empty means "constructor defaults").
    instance_args: Tuple[int, ...] = ()

    @property
    def output_names(self) -> List[str]:
        return list(self.expected)


class XorShift32:
    """Deterministic 32-bit xorshift PRNG for input generation."""

    def __init__(self, seed: int = 0x2545F491):
        if seed == 0:
            seed = 1
        self.state = seed & _MASK

    def next(self) -> int:
        x = self.state
        x ^= (x << 13) & _MASK
        x ^= x >> 17
        x ^= (x << 5) & _MASK
        self.state = x
        return x

    def below(self, bound: int) -> int:
        return self.next() % bound


def words_from_bytes(data: bytes) -> List[int]:
    """Pack bytes into big-endian 32-bit words, zero-padding the tail."""
    padded = data + b"\x00" * (-len(data) % 4)
    return [
        int.from_bytes(padded[index:index + 4], "big")
        for index in range(0, len(padded), 4)
    ]


def signed(value: int) -> int:
    """Two's-complement interpretation of a 32-bit word."""
    value &= _MASK
    return value - (1 << 32) if value & 0x80000000 else value


def unsigned(value: int) -> int:
    return value & _MASK


def format_words(values: Sequence[int]) -> str:
    """Render an initialiser list for a MiniC global array."""
    return ", ".join(str(signed(v)) for v in values)
