"""Dijkstra benchmark (paper §5.2).

"The Dijkstra benchmark finds the shortest path between every pair of
nodes in a large graph represented by an adjacency matrix using
Dijkstra's algorithm."

All-pairs shortest paths by running a simple O(V^2) scan-based Dijkstra
from every source node (the MiBench formulation — no heap).  The inner
loops are dominated by data-dependent compares, branches and pointer
chasing, so — as the paper observes — extra ALUs do not help; the small
``if (alt < dd[j])`` relaxation diamond is what the EPIC backend
if-converts into predicated code.
"""

from __future__ import annotations

from typing import List

from repro.errors import WorkloadError
from repro.workloads.common import WorkloadSpec, XorShift32, format_words

#: "No edge" / "unreached" sentinel, far above any real path weight.
INF = 1 << 24


def generate_graph(n_nodes: int, density_percent: int = 35,
                   seed: int = 23) -> List[int]:
    """A deterministic directed graph as an adjacency matrix."""
    if n_nodes < 2:
        raise WorkloadError("graph needs at least 2 nodes")
    rng = XorShift32(seed)
    matrix = [INF] * (n_nodes * n_nodes)
    for src in range(n_nodes):
        matrix[src * n_nodes + src] = 0
        for dst in range(n_nodes):
            if src == dst:
                continue
            if rng.below(100) < density_percent:
                matrix[src * n_nodes + dst] = 1 + rng.below(15)
    # A deterministic ring keeps the graph connected.
    for src in range(n_nodes):
        dst = (src + 1) % n_nodes
        if matrix[src * n_nodes + dst] == INF:
            matrix[src * n_nodes + dst] = 1 + rng.below(15)
    return matrix


def reference_all_pairs(matrix: List[int], n_nodes: int) -> List[int]:
    """All-pairs distances via the same scan-based Dijkstra."""
    result = [0] * (n_nodes * n_nodes)
    for source in range(n_nodes):
        dist = [INF] * n_nodes
        visited = [False] * n_nodes
        dist[source] = 0
        for _ in range(n_nodes):
            best = INF + 1
            best_index = -1
            for node in range(n_nodes):
                if not visited[node] and dist[node] < best:
                    best = dist[node]
                    best_index = node
            if best_index < 0:
                break
            visited[best_index] = True
            base = best_index * n_nodes
            for node in range(n_nodes):
                alt = dist[best_index] + matrix[base + node]
                if alt < dist[node]:
                    dist[node] = alt
        for node in range(n_nodes):
            result[source * n_nodes + node] = dist[node]
    return result


_TEMPLATE = """
// All-pairs shortest paths ({n} nodes, scan-based Dijkstra).
int adj[{n2}] = {{{adj_words}}};
int dist[{n2}];
int dd[{n}];
int visited[{n}];

int main() {{
  int src; int i; int j; int it;
  int best; int bi; int base; int alt; int check;
  for (src = 0; src < {n}; src += 1) {{
    for (i = 0; i < {n}; i += 1) {{
      dd[i] = {inf};
      visited[i] = 0;
    }}
    dd[src] = 0;
    for (it = 0; it < {n}; it += 1) {{
      best = {inf} + 1;
      bi = -1;
      for (i = 0; i < {n}; i += 1) {{
        if (!visited[i] && dd[i] < best) {{
          best = dd[i];
          bi = i;
        }}
      }}
      if (bi < 0) {{ break; }}
      visited[bi] = 1;
      base = bi * {n};
      for (j = 0; j < {n}; j += 1) {{
        alt = dd[bi] + adj[base + j];
        if (alt < dd[j]) {{
          dd[j] = alt;
        }}
      }}
    }}
    base = src * {n};
    for (i = 0; i < {n}; i += 1) {{
      dist[base + i] = dd[i];
    }}
  }}
  check = 0;
  for (i = 0; i < {n2}; i += 1) {{
    check = check ^ (dist[i] + i);
  }}
  return check;
}}
"""


def dijkstra_workload(n_nodes: int = 24, density_percent: int = 35,
                      seed: int = 23) -> WorkloadSpec:
    """Build the Dijkstra benchmark for an ``n_nodes``-node graph."""
    matrix = generate_graph(n_nodes, density_percent, seed)
    expected = reference_all_pairs(matrix, n_nodes)

    check = 0
    for index, value in enumerate(expected):
        check ^= (value + index) & 0xFFFFFFFF
    check &= 0xFFFFFFFF

    source = _TEMPLATE.format(
        n=n_nodes,
        n2=n_nodes * n_nodes,
        inf=INF,
        adj_words=format_words(matrix),
    )
    return WorkloadSpec(
        name="Dijkstra",
        source=source,
        expected={"dist": expected},
        expected_return=check,
        scale_note=(
            f"{n_nodes}-node all-pairs (paper: 'a large graph'; cycles "
            "scale ~V^3)"
        ),
        instance_args=(n_nodes, density_percent, seed),
    )
