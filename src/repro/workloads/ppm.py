"""PPM image generation and parsing.

The paper's SHA and DCT benchmarks both operate on "a 256 by 256 image
in the PPM format".  We generate deterministic pseudo-random images:
binary P6 (RGB) for the hash benchmark — SHA consumes the raw file
bytes, header included — and P5 (greyscale) pixel planes for the DCT.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import WorkloadError
from repro.workloads.common import XorShift32


def generate_p6(width: int, height: int, seed: int = 7) -> bytes:
    """A deterministic binary P6 (RGB) PPM file."""
    if width < 1 or height < 1:
        raise WorkloadError("image dimensions must be positive")
    rng = XorShift32(seed)
    header = f"P6\n{width} {height}\n255\n".encode("ascii")
    pixels = bytearray()
    for _ in range(width * height):
        word = rng.next()
        pixels.append(word & 0xFF)
        pixels.append((word >> 8) & 0xFF)
        pixels.append((word >> 16) & 0xFF)
    return header + bytes(pixels)


def generate_gray(width: int, height: int, seed: int = 11) -> List[int]:
    """A deterministic greyscale pixel plane (0..255 per pixel).

    Smoothly varying (a blurred random field) so the DCT sees natural-ish
    spectra rather than white noise.
    """
    if width < 1 or height < 1:
        raise WorkloadError("image dimensions must be positive")
    rng = XorShift32(seed)
    noise = [rng.below(256) for _ in range(width * height)]
    # One box-blur pass smooths the field.
    pixels: List[int] = []
    for y in range(height):
        for x in range(width):
            total = 0
            count = 0
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    nx, ny = x + dx, y + dy
                    if 0 <= nx < width and 0 <= ny < height:
                        total += noise[ny * width + nx]
                        count += 1
            pixels.append(total // count)
    return pixels


def parse_header(blob: bytes) -> Tuple[str, int, int, int, int]:
    """Parse a P5/P6 header; returns (magic, w, h, maxval, data_offset)."""
    fields: List[bytes] = []
    index = 0
    while len(fields) < 4:
        if index >= len(blob):
            raise WorkloadError("truncated PPM header")
        if blob[index:index + 1] == b"#":
            while index < len(blob) and blob[index] not in b"\n":
                index += 1
            index += 1
            continue
        if blob[index] in b" \t\r\n":
            index += 1
            continue
        start = index
        while index < len(blob) and blob[index] not in b" \t\r\n":
            index += 1
        fields.append(blob[start:index])
    index += 1  # single whitespace after maxval
    magic = fields[0].decode("ascii")
    if magic not in ("P5", "P6"):
        raise WorkloadError(f"unsupported PPM magic {magic!r}")
    width, height, maxval = (int(f) for f in fields[1:])
    return magic, width, height, maxval, index
