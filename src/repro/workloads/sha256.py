"""SHA benchmark: SHA-256 of a PPM image (paper §5.2).

"The SHA benchmark calculates the SHA-256 secure hash of a 256 by 256
image in the PPM format."  The MiniC program implements full SHA-256
compression (message schedule + 64 rounds, rotations written inline so
the kernel stays a leaf function); padding is performed by the input
generator, so the program iterates over whole 512-bit blocks.  The
expected digest comes from :mod:`hashlib` — an oracle entirely
independent of this toolchain.
"""

from __future__ import annotations

import hashlib
from typing import List

from repro.workloads.common import WorkloadSpec, format_words, words_from_bytes
from repro.workloads.ppm import generate_p6

_K = [
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5,
    0x3956C25B, 0x59F111F1, 0x923F82A4, 0xAB1C5ED5,
    0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174,
    0xE49B69C1, 0xEFBE4786, 0x0FC19DC6, 0x240CA1CC,
    0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7,
    0xC6E00BF3, 0xD5A79147, 0x06CA6351, 0x14292967,
    0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85,
    0xA2BFE8A1, 0xA81A664B, 0xC24B8B70, 0xC76C51A3,
    0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5,
    0x391C0CB3, 0x4ED8AA4A, 0x5B9CCA4F, 0x682E6FF3,
    0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
]

_IV = [
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
]


def pad_message(data: bytes) -> bytes:
    """Standard SHA-256 padding: 0x80, zeros, 64-bit bit length."""
    bit_length = 8 * len(data)
    padded = data + b"\x80"
    padded += b"\x00" * (-(len(padded) + 8) % 64)
    padded += bit_length.to_bytes(8, "big")
    return padded


_TEMPLATE = """
// SHA-256 of a pre-padded message ({note}).
const int K[64] = {{{k_words}}};
int msg[{n_words}] = {{{msg_words}}};
int n_blocks = {n_blocks};
int hash[8];
int W[64];

void sha_block(int base) {{
  int a; int b; int c; int d; int e; int f; int g; int h;
  int t; int t1; int t2; int s0; int s1; int w15; int w2;
  unroll(8) for (t = 0; t < 16; t += 1) {{ W[t] = msg[base + t]; }}
  unroll(4) for (t = 16; t < 64; t += 1) {{
    w15 = W[t - 15];
    w2 = W[t - 2];
    s0 = ((w15 >>> 7) | (w15 << 25)) ^ ((w15 >>> 18) | (w15 << 14))
       ^ (w15 >>> 3);
    s1 = ((w2 >>> 17) | (w2 << 15)) ^ ((w2 >>> 19) | (w2 << 13))
       ^ (w2 >>> 10);
    W[t] = W[t - 16] + s0 + W[t - 7] + s1;
  }}
  a = hash[0]; b = hash[1]; c = hash[2]; d = hash[3];
  e = hash[4]; f = hash[5]; g = hash[6]; h = hash[7];
  unroll(4) for (t = 0; t < 64; t += 1) {{
    s1 = ((e >>> 6) | (e << 26)) ^ ((e >>> 11) | (e << 21))
       ^ ((e >>> 25) | (e << 7));
    t1 = h + s1 + ((e & f) ^ (~e & g)) + K[t] + W[t];
    s0 = ((a >>> 2) | (a << 30)) ^ ((a >>> 13) | (a << 19))
       ^ ((a >>> 22) | (a << 10));
    t2 = s0 + ((a & b) ^ (a & c) ^ (b & c));
    h = g; g = f; f = e; e = d + t1;
    d = c; c = b; b = a; a = t1 + t2;
  }}
  hash[0] += a; hash[1] += b; hash[2] += c; hash[3] += d;
  hash[4] += e; hash[5] += f; hash[6] += g; hash[7] += h;
}}

int main() {{
  int i;
  hash[0] = 0x6a09e667; hash[1] = 0xbb67ae85; hash[2] = 0x3c6ef372;
  hash[3] = 0xa54ff53a; hash[4] = 0x510e527f; hash[5] = 0x9b05688c;
  hash[6] = 0x1f83d9ab; hash[7] = 0x5be0cd19;
  for (i = 0; i < n_blocks; i += 1) {{
    sha_block(i * 16);
  }}
  return hash[0] ^ hash[7];
}}
"""


def sha_workload(width: int = 32, height: int = 32,
                 seed: int = 7) -> WorkloadSpec:
    """Build the SHA benchmark for a ``width`` x ``height`` P6 image."""
    image = generate_p6(width, height, seed)
    padded = pad_message(image)
    words = words_from_bytes(padded)
    assert len(words) % 16 == 0

    digest = hashlib.sha256(image).digest()
    expected_hash = [
        int.from_bytes(digest[index:index + 4], "big")
        for index in range(0, 32, 4)
    ]

    note = f"{width}x{height} P6 PPM, {len(image)} bytes"
    source = _TEMPLATE.format(
        note=note,
        k_words=format_words(_K),
        n_words=len(words),
        msg_words=format_words(words),
        n_blocks=len(words) // 16,
    )
    checksum = (expected_hash[0] ^ expected_hash[7]) & 0xFFFFFFFF
    return WorkloadSpec(
        name="SHA",
        source=source,
        expected={"hash": expected_hash},
        expected_return=checksum,
        scale_note=(
            f"{note} (paper: 256x256; cycle counts scale with the "
            f"{len(words) // 16} compression blocks)"
        ),
        instance_args=(width, height, seed),
    )
