"""DCT benchmark: fixed-point 8x8 DCT encode + decode (paper §5.2).

"The DCT benchmark does fixed-point Discrete Cosine Transform (DCT)
encoding and decoding of a 256 by 256 image in the PPM format."

The MiniC program performs the orthonormal 2-D DCT-II on every 8x8
block (row pass then column pass, Q4.12 cosine tables, rounded shifts),
then the inverse transform back to pixels.  The inner 8-term dot
products are fully unrolled — this is the multiply-accumulate-rich
kernel where EPIC's parallel ALUs shine (the paper's biggest win).
The golden reference repeats the identical integer arithmetic in
Python, so all engines must agree bit-for-bit.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.errors import WorkloadError
from repro.workloads.common import WorkloadSpec, format_words
from repro.workloads.ppm import generate_gray

_SCALE_BITS = 12
_ROUND = 1 << (_SCALE_BITS - 1)


def cosine_table() -> List[int]:
    """Q4.12 orthonormal DCT-II basis: C[u*8+x]."""
    table: List[int] = []
    for u in range(8):
        alpha = math.sqrt(1.0 / 8.0) if u == 0 else math.sqrt(2.0 / 8.0)
        for x in range(8):
            value = alpha * math.cos((2 * x + 1) * u * math.pi / 16.0)
            table.append(int(round(value * (1 << _SCALE_BITS))))
    return table


def _dct_block(block: List[int], table: List[int],
               inverse: bool) -> List[int]:
    """One 8x8 transform with the exact integer ops of the MiniC code."""

    def wrap(value: int) -> int:
        value &= 0xFFFFFFFF
        return value - (1 << 32) if value & 0x80000000 else value

    tmp = [0] * 64
    out = [0] * 64
    for y in range(8):
        for u in range(8):
            acc = 0
            for x in range(8):
                c = table[u * 8 + x] if not inverse else table[x * 8 + u]
                acc = wrap(acc + c * wrap(block[y * 8 + x]))
            tmp[y * 8 + u] = wrap(acc + _ROUND) >> _SCALE_BITS
    for u in range(8):
        for v in range(8):
            acc = 0
            for y in range(8):
                c = table[v * 8 + y] if not inverse else table[y * 8 + v]
                acc = wrap(acc + c * tmp[y * 8 + u])
            out[v * 8 + u] = wrap(acc + _ROUND) >> _SCALE_BITS
    return out


def reference_dct(pixels: List[int], width: int,
                  height: int) -> Tuple[List[int], List[int]]:
    """(coefficients, reconstruction) over all 8x8 blocks."""
    table = cosine_table()
    coeffs = [0] * (width * height)
    recon = [0] * (width * height)
    for by in range(height // 8):
        for bx in range(width // 8):
            block = [
                pixels[(by * 8 + y) * width + bx * 8 + x]
                for y in range(8) for x in range(8)
            ]
            forward = _dct_block(block, table, inverse=False)
            backward = _dct_block(forward, table, inverse=True)
            for y in range(8):
                for x in range(8):
                    index = (by * 8 + y) * width + bx * 8 + x
                    coeffs[index] = forward[y * 8 + x] & 0xFFFFFFFF
                    recon[index] = backward[y * 8 + x] & 0xFFFFFFFF
    return coeffs, recon


_TEMPLATE = """
// Fixed-point 8x8 DCT encode + decode ({note}).
const int C[64] = {{{cos_words}}};
int image[{pixels}] = {{{image_words}}};
int coeffs[{pixels}];
int recon[{pixels}];
int tmp[64];

// Forward 2-D DCT of the 8x8 block at address src (row stride {width});
// result written at address dst.  Each 8-point pass first pulls the
// vector into scalars, then computes all eight fully unrolled dot
// products against the const basis — whose entries fold to immediates,
// leaving only 8 loads per vector and a wide field of independent
// multiply-adds for the parallel ALUs.
void dct_forward(int src, int dst) {{
  int y; int u; int acc; int row; int drow;
  int x0; int x1; int x2; int x3; int x4; int x5; int x6; int x7;
  unroll(2) for (y = 0; y < 8; y += 1) {{
    row = src + y * {width};
    x0 = row[0]; x1 = row[1]; x2 = row[2]; x3 = row[3];
    x4 = row[4]; x5 = row[5]; x6 = row[6]; x7 = row[7];
    unroll for (u = 0; u < 8; u += 1) {{
      acc = C[u * 8] * x0 + C[u * 8 + 1] * x1 + C[u * 8 + 2] * x2
          + C[u * 8 + 3] * x3 + C[u * 8 + 4] * x4 + C[u * 8 + 5] * x5
          + C[u * 8 + 6] * x6 + C[u * 8 + 7] * x7;
      tmp[y * 8 + u] = (acc + {round_const}) >> {scale};
    }}
  }}
  unroll(2) for (u = 0; u < 8; u += 1) {{
    x0 = tmp[u]; x1 = tmp[8 + u]; x2 = tmp[16 + u]; x3 = tmp[24 + u];
    x4 = tmp[32 + u]; x5 = tmp[40 + u]; x6 = tmp[48 + u];
    x7 = tmp[56 + u];
    drow = dst + u;
    unroll for (y = 0; y < 8; y += 1) {{
      acc = C[y * 8] * x0 + C[y * 8 + 1] * x1 + C[y * 8 + 2] * x2
          + C[y * 8 + 3] * x3 + C[y * 8 + 4] * x4 + C[y * 8 + 5] * x5
          + C[y * 8 + 6] * x6 + C[y * 8 + 7] * x7;
      drow[y * {width}] = (acc + {round_const}) >> {scale};
    }}
  }}
}}

// Inverse 2-D DCT (the orthonormal basis transposed).
void dct_inverse(int src, int dst) {{
  int y; int u; int acc; int row; int drow;
  int x0; int x1; int x2; int x3; int x4; int x5; int x6; int x7;
  unroll(2) for (y = 0; y < 8; y += 1) {{
    row = src + y * {width};
    x0 = row[0]; x1 = row[1]; x2 = row[2]; x3 = row[3];
    x4 = row[4]; x5 = row[5]; x6 = row[6]; x7 = row[7];
    unroll for (u = 0; u < 8; u += 1) {{
      acc = C[u] * x0 + C[8 + u] * x1 + C[16 + u] * x2
          + C[24 + u] * x3 + C[32 + u] * x4 + C[40 + u] * x5
          + C[48 + u] * x6 + C[56 + u] * x7;
      tmp[y * 8 + u] = (acc + {round_const}) >> {scale};
    }}
  }}
  unroll(2) for (u = 0; u < 8; u += 1) {{
    x0 = tmp[u]; x1 = tmp[8 + u]; x2 = tmp[16 + u]; x3 = tmp[24 + u];
    x4 = tmp[32 + u]; x5 = tmp[40 + u]; x6 = tmp[48 + u];
    x7 = tmp[56 + u];
    drow = dst + u;
    unroll for (y = 0; y < 8; y += 1) {{
      acc = C[y] * x0 + C[8 + y] * x1 + C[16 + y] * x2
          + C[24 + y] * x3 + C[32 + y] * x4 + C[40 + y] * x5
          + C[48 + y] * x6 + C[56 + y] * x7;
      drow[y * {width}] = (acc + {round_const}) >> {scale};
    }}
  }}
}}

int main() {{
  int bx; int by; int top; int check;
  for (by = 0; by < {blocks_y}; by += 1) {{
    for (bx = 0; bx < {blocks_x}; bx += 1) {{
      top = by * 8 * {width} + bx * 8;
      dct_forward(image + top, coeffs + top);
      dct_inverse(coeffs + top, recon + top);
    }}
  }}
  check = 0;
  for (bx = 0; bx < {pixels}; bx += 1) {{
    check = check ^ coeffs[bx] ^ (recon[bx] << 1);
  }}
  return check;
}}
"""


def dct_workload(width: int = 32, height: int = 32,
                 seed: int = 11) -> WorkloadSpec:
    """Build the DCT benchmark for a ``width`` x ``height`` image."""
    if width % 8 or height % 8:
        raise WorkloadError("image dimensions must be multiples of 8")
    pixels = generate_gray(width, height, seed)
    coeffs, recon = reference_dct(pixels, width, height)

    check = 0
    for index in range(width * height):
        check ^= coeffs[index] ^ ((recon[index] << 1) & 0xFFFFFFFF)
    check &= 0xFFFFFFFF

    note = f"{width}x{height} greyscale"
    source = _TEMPLATE.format(
        note=note,
        cos_words=format_words(cosine_table()),
        pixels=width * height,
        image_words=format_words(pixels),
        width=width,
        blocks_x=width // 8,
        blocks_y=height // 8,
        round_const=_ROUND,
        scale=_SCALE_BITS,
    )
    return WorkloadSpec(
        name="DCT",
        source=source,
        expected={"coeffs": coeffs, "recon": recon},
        expected_return=check,
        scale_note=(
            f"{note} (paper: 256x256; cycle counts scale with the "
            f"{(width // 8) * (height // 8)} 8x8 blocks)"
        ),
        instance_args=(width, height, seed),
    )
