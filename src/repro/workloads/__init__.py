"""The paper's four benchmarks (§5.2), as MiniC programs plus golden
Python references.

* **SHA** — SHA-256 of a PPM image (paper: 256x256; default here 32x32,
  recorded as a scale factor in EXPERIMENTS.md);
* **AES** — AES-128 repeatedly encrypting and then decrypting
  "Hello AES World!" (paper: 1000 iterations; default here 25);
* **DCT** — fixed-point 8x8 discrete cosine transform encode + decode
  of a PPM image (paper: 256x256; default 32x32);
* **Dijkstra** — all-pairs shortest paths on an adjacency-matrix graph
  (paper: "a large graph"; default 24 nodes).

Every workload ships its inputs embedded as initialised globals, so the
compiled program is self-contained, and exposes the named output arrays
plus a checksum return value for cross-simulator validation.
"""

from repro.workloads.common import WorkloadSpec, XorShift32
from repro.workloads.sha256 import sha_workload
from repro.workloads.aes import aes_workload
from repro.workloads.dct import dct_workload
from repro.workloads.dijkstra import dijkstra_workload

#: Benchmark constructors keyed by the paper's names (Table 1 order).
WORKLOADS = {
    "SHA": sha_workload,
    "AES": aes_workload,
    "DCT": dct_workload,
    "Dijkstra": dijkstra_workload,
}

__all__ = [
    "WorkloadSpec",
    "XorShift32",
    "WORKLOADS",
    "sha_workload",
    "aes_workload",
    "dct_workload",
    "dijkstra_workload",
]
