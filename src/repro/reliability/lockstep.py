"""Lockstep divergence checking against the IR-interpreter golden model.

Every injected run is compared, after the fact, with the program the
compiler *meant* to execute: the IR interpreter
(:mod:`repro.ir.interp`) runs the same module the EPIC binary was
compiled from and supplies the golden architectural outputs (the
workload's named global arrays plus the checksum return value).  The
checker then classifies each run into exactly one outcome:

* **masked** — the machine halted normally and every architectural
  output matches the golden model; the fault had no visible effect.
* **detected** — an architectural trap fired (illegal instruction,
  out-of-bounds access, register-port overflow, parity error) or the
  machine otherwise refused to continue; the hardware *knows* something
  went wrong.
* **hung** — the watchdog cut the run off after it blew far past the
  fault-free cycle count (fault-induced livelock or runaway loop).
* **sdc** — silent data corruption: the machine halted normally but an
  output differs from the golden model.  The worst case — nothing
  noticed, wrong answer.

This mirrors the classic FPGA fault-injection methodology (and the
golden-model functional-test harness of Rodrigues & Cardoso): run the
design against a reference executor and diff the observable state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.backend import compile_ir_to_epic
from repro.config import MachineConfig
from repro.core import EpicProcessor
from repro.errors import (
    CycleLimitExceeded,
    SimulationError,
    TrapError,
)
from repro.ir.interp import Interpreter
from repro.reliability.fault import FaultInjector, FaultSpec
from repro.workloads import WorkloadSpec


class Outcome(enum.Enum):
    """Classification of one injected run (see module docstring)."""

    MASKED = "masked"
    DETECTED = "detected"
    HUNG = "hung"
    SDC = "sdc"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class InjectionResult:
    """One injected run, classified."""

    fault: Optional[FaultSpec]
    outcome: Outcome
    detail: str
    cycles: int
    trap_cause: Optional[str] = None

    def __str__(self) -> str:
        fault = self.fault.describe() if self.fault else "no fault"
        return f"{fault}: {self.outcome.value} ({self.detail})"


class LockstepChecker:
    """Compile once, run the golden model once, then classify many runs.

    The expensive parts — MiniC -> IR -> EPIC compilation, the IR
    interpreter's golden execution, and the fault-free reference run —
    happen in the constructor; each :meth:`run_one` call then costs one
    simulator run.  The fault-free reference doubles as a self-check
    (its outputs must match the golden model exactly) and sizes the
    watchdog: an injected run is declared *hung* once it exceeds
    ``watchdog_factor`` times the reference cycle count.
    """

    def __init__(self, spec: WorkloadSpec, config: MachineConfig,
                 watchdog_factor: float = 4.0,
                 max_cycles: int = 200_000_000):
        from repro.lang.compile import compile_minic  # local: avoid cycle

        self.spec = spec
        self.config = config
        self.max_cycles = max_cycles
        module = compile_minic(spec.source)
        self.compilation = compile_ir_to_epic(module, config)

        interpreter = Interpreter(module, spec.mem_words)
        self.golden_return = interpreter.call("main")
        self.golden_outputs: Dict[str, List[int]] = {
            name: interpreter.read_global(name)[:len(expected)]
            for name, expected in spec.expected.items()
        }

        reference = EpicProcessor(config, self.compilation.program,
                                  mem_words=spec.mem_words)
        result = reference.run(max_cycles=max_cycles)
        mismatch = self.diff_outputs(reference)
        if mismatch:
            raise SimulationError(
                f"lockstep baseline broken on {spec.name}: {mismatch}")
        self.reference_cycles = result.cycles
        self.watchdog_cycles = int(result.cycles * watchdog_factor) + 1024

    # -- output comparison -------------------------------------------------

    def diff_outputs(self, cpu: EpicProcessor) -> Optional[str]:
        """First divergence between ``cpu`` and the golden model, if any.

        Reads bypass the parity network (``peek``): the diff is an
        oracle outside the machine, and a poisoned-but-unread output
        word must still count as corrupted data.
        """
        symbols = self.compilation.symbols
        for name, golden in self.golden_outputs.items():
            base = symbols[name]
            for offset, expected in enumerate(golden):
                got = cpu.memory.peek(base + offset)
                if got != expected:
                    return (f"output {name}[{offset}] = {got:#x}, "
                            f"golden {expected:#x}")
        if self.golden_return is not None:
            expected = self.golden_return & self.config.mask
            got = cpu.gpr.peek(2)  # r2 carries main's return value
            if got != expected:
                return f"checksum {got:#x}, golden {expected:#x}"
        return None

    # -- classification ----------------------------------------------------

    def run_one(self,
                fault: Union[FaultSpec, Sequence[FaultSpec], None]
                ) -> InjectionResult:
        """Run the workload with ``fault`` injected and classify it."""
        if fault is None:
            faults: List[FaultSpec] = []
            first = None
        elif isinstance(fault, FaultSpec):
            faults = [fault]
            first = fault
        else:
            faults = list(fault)
            first = faults[0] if faults else None

        injector = FaultInjector(faults)
        cpu = EpicProcessor(self.config, self.compilation.program,
                            mem_words=self.spec.mem_words,
                            injector=injector)
        try:
            result = cpu.run(max_cycles=self.max_cycles,
                             watchdog_cycles=self.watchdog_cycles)
        except CycleLimitExceeded as error:
            # HangDetected (the watchdog) or the outer safety net: either
            # way the run did not converge.
            return InjectionResult(first, Outcome.HUNG, str(error),
                                   max(error.cycle, 0))
        except TrapError as error:
            return InjectionResult(first, Outcome.DETECTED, str(error),
                                   max(error.cycle, 0),
                                   trap_cause=error.cause)
        except SimulationError as error:
            # The model refused to continue (e.g. a strict-NUAL check):
            # an anomaly the machinery noticed, so it counts as detected.
            return InjectionResult(first, Outcome.DETECTED,
                                   f"machine check: {error}",
                                   max(error.cycle, 0))

        if result.traps:
            trap = result.traps[0]
            return InjectionResult(first, Outcome.DETECTED,
                                   f"{len(result.traps)} trap(s), first: "
                                   f"{trap}",
                                   result.cycles, trap_cause=trap.cause)
        mismatch = self.diff_outputs(cpu)
        if mismatch:
            return InjectionResult(first, Outcome.SDC, mismatch,
                                   result.cycles)
        return InjectionResult(first, Outcome.MASKED, "outputs match",
                               result.cycles)
