"""Lockstep divergence checking against the IR-interpreter golden model.

Every injected run is compared, after the fact, with the program the
compiler *meant* to execute: the IR interpreter
(:mod:`repro.ir.interp`) runs the same module the EPIC binary was
compiled from and supplies the golden architectural outputs (the
workload's named global arrays plus the checksum return value).  The
checker then classifies each run into exactly one outcome:

* **masked** — the machine halted normally and every architectural
  output matches the golden model; the fault had no visible effect.
* **detected** — an architectural trap fired (illegal instruction,
  out-of-bounds access, register-port overflow, parity error) or the
  machine otherwise refused to continue; the hardware *knows* something
  went wrong.
* **hung** — the watchdog cut the run off after it blew far past the
  fault-free cycle count (fault-induced livelock or runaway loop).
* **sdc** — silent data corruption: the machine halted normally but an
  output differs from the golden model.  The worst case — nothing
  noticed, wrong answer.

This mirrors the classic FPGA fault-injection methodology (and the
golden-model functional-test harness of Rodrigues & Cardoso): run the
design against a reference executor and diff the observable state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.backend import compile_ir_to_epic
from repro.config import MachineConfig
from repro.core import EpicProcessor
from repro.core.snapshot import CheckpointStore, capture_checkpoints
from repro.errors import (
    CycleLimitExceeded,
    SimulationError,
    TrapError,
)
from repro.ir.interp import Interpreter
from repro.reliability.fault import FaultInjector, FaultSpec
from repro.workloads import WorkloadSpec

#: Checkpoint spacing defaults: aim for ~``_CHECKPOINT_COUNT`` golden
#: checkpoints per workload but never space them closer than
#: ``_MIN_CHECKPOINT_INTERVAL`` cycles (a snapshot costs more than
#: simulating a few dozen cycles).
_MIN_CHECKPOINT_INTERVAL = 64
_CHECKPOINT_COUNT = 24


class Outcome(enum.Enum):
    """Classification of one injected run (see module docstring)."""

    MASKED = "masked"
    DETECTED = "detected"
    HUNG = "hung"
    SDC = "sdc"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class InjectionResult:
    """One injected run, classified."""

    fault: Optional[FaultSpec]
    outcome: Outcome
    detail: str
    cycles: int
    trap_cause: Optional[str] = None

    def __str__(self) -> str:
        fault = self.fault.describe() if self.fault else "no fault"
        return f"{fault}: {self.outcome.value} ({self.detail})"


class LockstepChecker:
    """Compile once, run the golden model once, then classify many runs.

    The expensive parts — MiniC -> IR -> EPIC compilation, the IR
    interpreter's golden execution, and the fault-free reference run —
    happen in the constructor; each :meth:`run_one` call then costs one
    simulator run.  The fault-free reference doubles as a self-check
    (its outputs must match the golden model exactly) and sizes the
    watchdog: an injected run is declared *hung* once it exceeds
    ``watchdog_factor`` times the reference cycle count.
    """

    def __init__(self, spec: WorkloadSpec, config: MachineConfig,
                 watchdog_factor: float = 4.0,
                 max_cycles: int = 200_000_000,
                 checkpoints: bool = True,
                 checkpoint_interval: Optional[int] = None,
                 checkpoint_store: Optional[CheckpointStore] = None):
        from repro.lang.compile import compile_minic  # local: avoid cycle

        self.spec = spec
        self.config = config
        self.max_cycles = max_cycles
        module = compile_minic(spec.source)
        self.compilation = compile_ir_to_epic(module, config)

        interpreter = Interpreter(module, spec.mem_words)
        self.golden_return = interpreter.call("main")
        self.golden_outputs: Dict[str, List[int]] = {
            name: interpreter.read_global(name)[:len(expected)]
            for name, expected in spec.expected.items()
        }

        reference = EpicProcessor(config, self.compilation.program,
                                  mem_words=spec.mem_words)
        result = reference.run(max_cycles=max_cycles)
        mismatch = self.diff_outputs(reference)
        if mismatch:
            raise SimulationError(
                f"lockstep baseline broken on {spec.name}: {mismatch}")
        self.reference_cycles = result.cycles
        self.watchdog_cycles = int(result.cycles * watchdog_factor) + 1024

        #: Checkpoint fast-forwarding (see :mod:`repro.core.snapshot`).
        #: ``checkpoints`` may be toggled at any time; the golden
        #: checkpoint stream is built lazily on the first injected run
        #: that can use it.  A reference run that traps disables the
        #: machinery outright: the convergence cut assumes a trap-free
        #: golden trajectory.
        self.checkpoints = checkpoints
        self.checkpoint_interval = checkpoint_interval
        self.checkpoint_store = checkpoint_store
        self._checkpoints_ok = not result.traps
        self._stream = None
        self._campaign_cpu = None
        self._vector = None
        self._ifetch_fmt = None
        #: Cumulative vector-batch telemetry (see :meth:`run_batch`).
        self.vector_stats: Dict[str, object] = {}
        #: Fast-forward telemetry, cumulative over :meth:`run_one` calls.
        self.ff_restores = 0
        self.ff_cycles_skipped = 0
        self.ff_convergence_cuts = 0

    # -- checkpointing -----------------------------------------------------

    def fastforward_stats(self) -> Dict[str, int]:
        """Cumulative fast-forward counters (for campaign timing)."""
        return {
            "restores": self.ff_restores,
            "cycles_skipped": self.ff_cycles_skipped,
            "convergence_cuts": self.ff_convergence_cuts,
            "checkpoints": len(self._stream) if self._stream else 0,
        }

    def prepare_checkpoints(self) -> bool:
        """Build (or fetch) the golden checkpoint stream eagerly.

        Returns whether checkpointing is active.  Useful before forking
        campaign workers, so they inherit the stream instead of each
        rebuilding it.
        """
        if not (self.checkpoints and self._checkpoints_ok):
            return False
        self._checkpoint_stream()
        return True

    def _checkpoint_stream(self):
        """The golden checkpoint stream (built or fetched on demand)."""
        if self._stream is None:
            interval = self.checkpoint_interval
            if interval is None:
                interval = max(_MIN_CHECKPOINT_INTERVAL,
                               self.reference_cycles // _CHECKPOINT_COUNT)
            program = self.compilation.program
            stream = None
            if self.checkpoint_store is not None:
                stream = self.checkpoint_store.get(
                    self.config, program, self.spec.mem_words, interval)
            if stream is None:
                stream = capture_checkpoints(
                    self.config, program, self.spec.mem_words, interval,
                    max_cycles=self.max_cycles)
                if self.checkpoint_store is not None:
                    self.checkpoint_store.put(
                        self.config, program, self.spec.mem_words, stream)
            if stream.reference_cycles != self.reference_cycles:
                raise SimulationError(
                    f"golden checkpoint stream disagrees with the "
                    f"reference run ({stream.reference_cycles} vs "
                    f"{self.reference_cycles} cycles); stale store?")
            self._stream = stream
        return self._stream

    def _campaign_machine(self) -> EpicProcessor:
        """One persistent machine reused across injected runs.

        Every run starts by restoring a golden snapshot, which resets
        the *complete* machine state in place, so reuse is exact — and
        it lets the predecoded bundles and the specialised fast engine
        (compiled on the first post-quiescence handoff) amortise over
        the whole campaign instead of being rebuilt per fault.
        """
        if self._campaign_cpu is None:
            self._campaign_cpu = EpicProcessor(
                self.config, self.compilation.program,
                mem_words=self.spec.mem_words)
        return self._campaign_cpu

    # -- output comparison -------------------------------------------------

    def diff_outputs(self, cpu: EpicProcessor) -> Optional[str]:
        """First divergence between ``cpu`` and the golden model, if any.

        Reads bypass the parity network (``peek``): the diff is an
        oracle outside the machine, and a poisoned-but-unread output
        word must still count as corrupted data.
        """
        symbols = self.compilation.symbols
        for name, golden in self.golden_outputs.items():
            base = symbols[name]
            for offset, expected in enumerate(golden):
                got = cpu.memory.peek(base + offset)
                if got != expected:
                    return (f"output {name}[{offset}] = {got:#x}, "
                            f"golden {expected:#x}")
        if self.golden_return is not None:
            expected = self.golden_return & self.config.mask
            got = cpu.gpr.peek(2)  # r2 carries main's return value
            if got != expected:
                return f"checksum {got:#x}, golden {expected:#x}"
        return None

    # -- batched (vector-engine) classification ----------------------------

    def _vector_engine(self):
        """The cached :class:`repro.core.vector.VectorEngine`."""
        if self._vector is None:
            from repro.core.vector import VectorEngine

            symbols = self.compilation.symbols
            outputs = [(name, symbols[name], tuple(golden))
                       for name, golden in self.golden_outputs.items()]
            self._vector = VectorEngine(
                self.config, self.compilation.program,
                mem_words=self.spec.mem_words,
                outputs=outputs,
                golden_checksum=self.golden_return,
                reference_cycles=self.reference_cycles,
                watchdog_cycles=self.watchdog_cycles,
                max_cycles=self.max_cycles)
        return self._vector

    def _ifetch_outcome(self, cycle: int, pc: int, fault: FaultSpec):
        """Resolve an instruction-fetch fault at the fetch it corrupts.

        Three resolutions, all fully determined at the fetch (the fault
        is one-shot and machine state at the fetch is still golden):

        * the word no longer decodes and the trap policy is ``halt`` —
          the scalar run raises a ``TrapError`` before anything
          executes, so the outcome (DETECTED, the trap text, the fetch
          cycle) is a ``LaneOutcome`` right here;
        * the word still decodes into a different-but-legal bundle, or
          it no longer decodes but a non-halt policy records the trap
          and skips the bundle — either way the program is
          deterministically *rewritten* at this fetch, and the
          continuation depends only on ``(cycle, pc, slot, word)``:
          return a :class:`~repro.core.vector.RewalkTicket` so
          :meth:`run_batch` classifies the whole group with one scalar
          re-walk.
        """
        from repro.core.vector import LaneOutcome, RewalkTicket
        from repro.errors import TRAP_ILLEGAL_INSTRUCTION
        from repro.reliability.fault import corrupt_fetched_word

        if self._ifetch_fmt is None:
            from repro.isa.encoding import InstructionFormat
            from repro.mdes import Mdes

            mdes = Mdes(self.config)
            self._ifetch_fmt = (InstructionFormat(self.config, mdes.table),
                                mdes)
        fmt, mdes = self._ifetch_fmt
        corrupted, word, slot, error = corrupt_fetched_word(
            fmt, mdes, self.compilation.program, self.config.issue_width,
            pc, fault.index, fault.bit)
        if corrupted is not None or self.config.trap_policy != "halt":
            # Every rewritten fetch is transient: the injector consumes
            # an ifetch fault at its first fetch regardless of model
            # (``fetch_bundle`` advances past it), so stuck-at ifetch
            # faults corrupt exactly one bundle too.
            return RewalkTicket(cycle, pc, slot, word,
                                bundle=corrupted,
                                one_shot=True)
        trap = TrapError(
            f"corrupted instruction word {word:#x} does not decode: "
            f"{error}",
            cause=TRAP_ILLEGAL_INSTRUCTION, slot=slot,
        )
        trap.annotate(cycle, pc)
        return LaneOutcome("detected", str(trap), max(trap.cycle, 0),
                           trap_cause=trap.cause)

    def run_batch(self, faults: Sequence[FaultSpec],
                  lane_cap: Optional[int] = None):
        """Classify a batch of faults, vector-first.

        Chunks of up to ``lane_cap`` faults ride the vector engine
        (:mod:`repro.core.vector`); every lane the engine cannot
        classify *exactly* retires to :meth:`run_one`, so the returned
        results — in input order — are byte-identical to a pure-scalar
        campaign.  Returns ``(results, stats)``; cumulative stats are
        also kept on :attr:`vector_stats`.

        Instruction-fetch faults that deterministically rewrite the
        program come back as :class:`~repro.core.vector.RewalkTicket`
        markers; all lanes sharing a ticket key are byte-identical
        machines, so each *group* is classified with a single
        :meth:`run_one` (the grouped second pass) whose outcome every
        member shares.

        The walk handles all trap policies (non-halt policies record
        per-lane traps in the lane plane) but still requires a
        trap-free golden reference; when ineligible every fault runs
        scalar and ``stats["engine_downgrade_reason"]`` says why.
        """
        from repro.core.vector import DEFAULT_LANES, RewalkTicket

        faults = list(faults)
        if lane_cap is None:
            lane_cap = DEFAULT_LANES
        stats: Dict[str, object] = {
            "vector_faults": 0, "scalar_faults": 0, "classified": 0,
            "activated": 0, "cuts": 0, "jumps": 0, "iterations": 0,
            "lane_cycles": 0, "frozen_cycles": 0,
            "wasted_lane_cycles": 0, "lane_capacity": 0,
            "rewalk_lanes": 0, "rewalk_groups": 0,
            "rewalk_lane_cycles": 0, "absorbed_lanes": 0,
            "column_ops": 0,
            "retired": {}, "numpy": False, "passes": 0,
            "engine_downgrade_reason": None,
        }
        if lane_cap <= 0:
            stats["engine_downgrade_reason"] = "lane-cap-disabled"
        elif not self._checkpoints_ok:
            stats["engine_downgrade_reason"] = "golden-run-traps"
        eligible = stats["engine_downgrade_reason"] is None
        results: List[Optional[InjectionResult]] = [None] * len(faults)
        rewalk: Dict[tuple, List[tuple]] = {}
        if eligible:
            engine = self._vector_engine()
            stream = None
            if self.checkpoints and self._checkpoints_ok:
                stream = self._checkpoint_stream()
            for start in range(0, len(faults), lane_cap):
                chunk = faults[start:start + lane_cap]
                outcomes, pass_stats = engine.run_pass(
                    chunk, stream=stream, ifetch=self._ifetch_outcome)
                stats["numpy"] = pass_stats["numpy"]
                stats["passes"] += 1
                stats["vector_faults"] += len(chunk)
                stats["classified"] += pass_stats["classified"]
                stats["activated"] += pass_stats["activated"]
                stats["cuts"] += pass_stats["cuts"]
                stats["jumps"] += pass_stats["jumps"]
                stats["iterations"] += pass_stats["iterations"]
                stats["lane_cycles"] += pass_stats["lane_cycles"]
                stats["frozen_cycles"] += pass_stats["frozen_cycles"]
                stats["wasted_lane_cycles"] += \
                    pass_stats["wasted_lane_cycles"]
                stats["column_ops"] += pass_stats["column_ops"]
                stats["absorbed_lanes"] += pass_stats["absorbed"]
                stats["lane_capacity"] += (pass_stats["iterations"]
                                           * pass_stats["capacity"])
                for reason, count in pass_stats["retired"].items():
                    stats["retired"][reason] = \
                        stats["retired"].get(reason, 0) + count
                for offset, outcome in enumerate(outcomes):
                    if outcome is None:
                        continue
                    fault = chunk[offset]
                    if isinstance(outcome, RewalkTicket):
                        rewalk.setdefault(outcome.key, []).append(
                            (start + offset, fault))
                        continue
                    results[start + offset] = InjectionResult(
                        fault, Outcome(outcome.outcome), outcome.detail,
                        outcome.cycles, trap_cause=outcome.trap_cause)
        # Grouped second pass: one scalar re-walk per rewritten fetch.
        # Every lane in a group consumed its one-shot fault at the same
        # fetch with the same corrupted word, from golden state, so
        # their trajectories are byte-identical — the representative's
        # classification (outcome, detail, cycle count) IS each
        # member's, only the fault column differs.
        for members in rewalk.values():
            shared = self.run_one(members[0][1])
            stats["rewalk_groups"] += 1
            for position, fault in members:
                results[position] = InjectionResult(
                    fault, shared.outcome, shared.detail, shared.cycles,
                    trap_cause=shared.trap_cause)
                stats["rewalk_lanes"] += 1
                stats["rewalk_lane_cycles"] += shared.cycles
        for position, fault in enumerate(faults):
            if results[position] is None:
                results[position] = self.run_one(fault)
                stats["scalar_faults"] += 1
        self.vector_stats = stats
        return results, stats

    # -- classification ----------------------------------------------------

    def run_one(self,
                fault: Union[FaultSpec, Sequence[FaultSpec], None]
                ) -> InjectionResult:
        """Run the workload with ``fault`` injected and classify it."""
        if fault is None:
            faults: List[FaultSpec] = []
            first = None
        elif isinstance(fault, FaultSpec):
            faults = [fault]
            first = fault
        else:
            faults = list(fault)
            first = faults[0] if faults else None

        injector = FaultInjector(faults)

        # Checkpoint fast-forward: the injector's hooks are no-ops
        # before its earliest fault cycle, so the run may start from
        # the latest golden checkpoint at or before it (exact — see
        # repro.core.snapshot).  Fault-free runs skip the machinery.
        stream = None
        first_cycle = injector.first_cycle
        if self.checkpoints and self._checkpoints_ok \
                and first_cycle is not None:
            stream = self._checkpoint_stream()
        if stream is not None:
            # nearest() always succeeds: a stream starts with the
            # cycle-0 snapshot, so the worst case is a plain cold start
            # on the (reused, fully restored) campaign machine.
            snap = stream.nearest(first_cycle)
            cpu = self._campaign_machine()
            cpu.restore(snap)
            cpu.injector = injector
            injector.attach(cpu)
            if snap.cycle > 0:
                self.ff_restores += 1
                self.ff_cycles_skipped += snap.cycle
        else:
            cpu = EpicProcessor(self.config, self.compilation.program,
                                mem_words=self.spec.mem_words,
                                injector=injector)
        try:
            result = None
            if stream is not None and faults:
                # Early engine handoff: pause at the first quiescent
                # cycle after the last scheduled fault.  If every
                # one-shot fault has been consumed and nothing is
                # stuck, the injector can never act again — detach it
                # so the remainder runs on the fast engine.
                handoff = max(f.cycle for f in faults) + 1
                if handoff > cpu._resume_cycle:
                    segment = cpu.run(max_cycles=self.max_cycles,
                                      watchdog_cycles=self.watchdog_cycles,
                                      until_cycle=handoff)
                    if segment.halted:
                        result = segment
                if result is None and injector.quiescent \
                        and cpu.injector is not None:
                    cpu.injector = None
            if result is None and stream is not None:
                # Segmented run with a convergence cut: pause at each
                # remaining golden checkpoint cycle; once the injector
                # can never fire again and the paused state equals the
                # golden snapshot bit-for-bit, the continuation is the
                # reference trajectory — classify MASKED immediately
                # with the reference's final cycle count.
                for snap in stream.after(cpu._resume_cycle):
                    segment = cpu.run(max_cycles=self.max_cycles,
                                      watchdog_cycles=self.watchdog_cycles,
                                      until_cycle=snap.cycle)
                    if segment.halted:
                        result = segment
                        break
                    if (segment.cycles == snap.cycle
                            and injector.quiescent
                            and not cpu.traps
                            and snap.matches_state(cpu)):
                        self.ff_convergence_cuts += 1
                        return InjectionResult(first, Outcome.MASKED,
                                               "outputs match",
                                               self.reference_cycles)
                    if cpu.injector is not None and injector.quiescent:
                        # Engine handoff: a quiescent injector's hooks
                        # are provably no-ops for the rest of the run,
                        # so detach it — run() then picks the fast
                        # engine when the program (and any planted
                        # parity poison) allows, falling back to the
                        # instrumented loop otherwise.  All engines are
                        # bit-identical, traps and budgets included.
                        cpu.injector = None
            if result is None:
                result = cpu.run(max_cycles=self.max_cycles,
                                 watchdog_cycles=self.watchdog_cycles)
        except CycleLimitExceeded as error:
            # HangDetected (the watchdog) or the outer safety net: either
            # way the run did not converge.
            return InjectionResult(first, Outcome.HUNG, str(error),
                                   max(error.cycle, 0))
        except TrapError as error:
            return InjectionResult(first, Outcome.DETECTED, str(error),
                                   max(error.cycle, 0),
                                   trap_cause=error.cause)
        except SimulationError as error:
            # The model refused to continue (e.g. a strict-NUAL check):
            # an anomaly the machinery noticed, so it counts as detected.
            return InjectionResult(first, Outcome.DETECTED,
                                   f"machine check: {error}",
                                   max(error.cycle, 0))

        if result.traps:
            trap = result.traps[0]
            return InjectionResult(first, Outcome.DETECTED,
                                   f"{len(result.traps)} trap(s), first: "
                                   f"{trap}",
                                   result.cycles, trap_cause=trap.cause)
        mismatch = self.diff_outputs(cpu)
        if mismatch:
            return InjectionResult(first, Outcome.SDC, mismatch,
                                   result.cycles)
        return InjectionResult(first, Outcome.MASKED, "outputs match",
                               result.cycles)
