"""Deterministic, seed-driven fault injection for the EPIC core.

The paper's processor lives on an SRAM-based Virtex-II FPGA, where
single-event upsets (SEUs) in user state are the canonical reliability
threat.  :class:`FaultInjector` models them directly on the
architectural state the core exposes for the purpose:

* **GPR / predicate / BTR files** — a bit flip (SEU) or a persistently
  forced bit (stuck-at) in one register;
* **data memory** — the same, in one word of the external banks;
* **fetched instruction words** — one bit of an encoded instruction is
  flipped on its way through Fetch/Decode/Issue; the corrupted word is
  re-decoded, so the fault may turn into a different-but-legal
  operation, an illegal opcode (an ``illegal-instruction`` trap) or an
  operand index beyond the configured register files (a
  ``register-port-overflow`` trap).

The injector plugs into :class:`~repro.core.EpicProcessor` through two
hooks called from the run loop (``on_cycle`` and ``fetch_bundle``) —
no monkey-patching.  When no injector is installed the hooks cost one
``is not None`` test per cycle and the run is cycle-identical to a
build without the reliability subsystem.

Protection interaction: the machine configuration's
``regfile_protection`` / ``memory_protection`` knobs decide what an
injection does.  Under ``ecc`` a single-bit fault is corrected at the
injection site (logged, no architectural effect).  Under ``parity`` the
bit is flipped *and* the word is poisoned, so the next committed read
raises a ``parity-error`` trap.  Unprotected state simply takes the
flip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.decode import PreBundle, predecode_bundle
from repro.errors import (
    EncodingError,
    SimulationError,
    TrapError,
    TRAP_ILLEGAL_INSTRUCTION,
)
from repro.isa.bundle import Bundle

#: Fault target spaces.
SPACE_GPR = "gpr"
SPACE_PRED = "pred"
SPACE_BTR = "btr"
SPACE_MEM = "mem"
SPACE_IFETCH = "ifetch"

FAULT_SPACES = (SPACE_GPR, SPACE_PRED, SPACE_BTR, SPACE_MEM, SPACE_IFETCH)

#: Fault models.
MODEL_SEU = "seu"
MODEL_STUCK0 = "stuck-at-0"
MODEL_STUCK1 = "stuck-at-1"

FAULT_MODELS = (MODEL_SEU, MODEL_STUCK0, MODEL_STUCK1)


def corrupt_fetched_word(fmt, mdes, program, issue_width: int, pc: int,
                         slot_hint: int, bit_hint: int):
    """Corrupt one encoded instruction of the bundle at ``pc``.

    The single source of truth for what an instruction-fetch fault does
    — used by :meth:`FaultInjector.fetch_bundle` (scalar runs) and by
    the vector engine's fetch-fault resolver, which must predict the
    scalar outcome exactly.  ``slot_hint``/``bit_hint`` are the raw
    fault fields; they wrap modulo the padded slot count and the
    encoded instruction width.

    Returns ``(prebundle, word, slot, error)``: the re-decoded bundle
    (or ``None`` when the corrupted word no longer decodes or no longer
    fits the machine's issue resources), the corrupted instruction
    word, the slot it sat in, and the decode error if any.
    """
    padded = program.bundles[pc].padded(issue_width)
    slot = slot_hint % len(padded.slots)
    bit = bit_hint % fmt.instruction_bits
    word = fmt.encode(padded.slots[slot]) ^ (1 << bit)
    try:
        slots = list(padded.slots)
        slots[slot] = fmt.decode(word)
        corrupted = predecode_bundle(Bundle(tuple(slots)), mdes, pc)
    except (EncodingError, SimulationError) as error:
        return None, word, slot, error
    return corrupted, word, slot, None


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject: where, which bit, when, and which model.

    ``index`` is a register number (``gpr``/``pred``/``btr``), a word
    address (``mem``), or a bundle slot (``ifetch``).  ``cycle`` is the
    earliest processor cycle at which the fault strikes; state faults
    are applied at the first simulated cycle >= ``cycle`` (stall cycles
    are not separately simulated), instruction-fetch faults corrupt the
    first bundle fetched at or after it.
    """

    space: str
    index: int
    bit: int
    cycle: int
    model: str = MODEL_SEU

    def describe(self) -> str:
        return (f"{self.model} {self.space}[{self.index}] bit {self.bit} "
                f"@ cycle {self.cycle}")


@dataclass(frozen=True)
class InjectionEvent:
    """What actually happened when a fault was applied."""

    fault: FaultSpec
    cycle: int
    #: ``flipped``, ``forced``, ``flipped+poisoned``, ``forced+poisoned``,
    #: ``corrected`` (ECC), ``no-storage`` (hardwired r0/p0),
    #: ``fetch-corrupted`` or ``fetch-illegal``.
    disposition: str


class FaultInjector:
    """Applies a fixed list of :class:`FaultSpec` to one processor run.

    An injector is single-use: it is bound to one
    :class:`~repro.core.EpicProcessor` via :meth:`attach` (done by the
    processor constructor) and carries per-run cursors.  The ``log``
    records every applied fault and its disposition.
    """

    def __init__(self, faults):
        faults = list(faults)
        for fault in faults:
            if fault.space not in FAULT_SPACES:
                raise SimulationError(
                    f"unknown fault space {fault.space!r}")
            if fault.model not in FAULT_MODELS:
                raise SimulationError(
                    f"unknown fault model {fault.model!r}")
            if fault.index < 0 or fault.bit < 0 or fault.cycle < 0:
                raise SimulationError(
                    f"fault fields must be non-negative: {fault}")
        order = {space: rank for rank, space in enumerate(FAULT_SPACES)}
        key = lambda f: (f.cycle, order[f.space], f.index, f.bit, f.model)
        self._state_faults = sorted(
            (f for f in faults if f.space != SPACE_IFETCH), key=key)
        self._ifetch_faults = sorted(
            (f for f in faults if f.space == SPACE_IFETCH), key=key)
        self.log: List[InjectionEvent] = []
        self._machine = None
        self._fmt = None
        self._stuck: List[FaultSpec] = []
        self._next_state = 0
        self._next_fetch = 0

    # -- campaign fast-forward hooks ---------------------------------------

    @property
    def first_cycle(self) -> Optional[int]:
        """Cycle of the earliest pending fault (None when fault-free).

        Before this cycle the injector's hooks are provably no-ops, so
        a run may be fast-forwarded to any point at or before it (see
        :mod:`repro.core.snapshot`).
        """
        cycles = []
        if self._state_faults:
            cycles.append(self._state_faults[0].cycle)
        if self._ifetch_faults:
            cycles.append(self._ifetch_faults[0].cycle)
        return min(cycles) if cycles else None

    @property
    def quiescent(self) -> bool:
        """True once the injector can never touch the machine again:
        every one-shot fault has been consumed and no stuck-at bit is
        being re-asserted.  A prerequisite for the convergence cut — a
        state match against the golden run only proves identical
        continuation if no future injection can diverge it.
        """
        return (self._next_state >= len(self._state_faults)
                and self._next_fetch >= len(self._ifetch_faults)
                and not self._stuck)

    # -- machine binding ---------------------------------------------------

    def attach(self, machine) -> None:
        if self._machine is not None and self._machine is not machine:
            raise SimulationError(
                "a FaultInjector is single-use; build a new one per run")
        self._machine = machine
        config = machine.config
        for fault in self._state_faults:
            limit = {
                SPACE_GPR: config.n_gprs,
                SPACE_PRED: config.n_preds,
                SPACE_BTR: config.n_btrs,
                SPACE_MEM: len(machine.memory),
            }[fault.space]
            if fault.index >= limit:
                raise SimulationError(
                    f"fault target {fault.space}[{fault.index}] out of "
                    f"range (limit {limit})")

    def _target(self, space: str):
        machine = self._machine
        config = machine.config
        if space == SPACE_GPR:
            return machine.gpr, config.regfile_protection
        if space == SPACE_PRED:
            return machine.pred, config.regfile_protection
        if space == SPACE_BTR:
            return machine.btr, config.regfile_protection
        return machine.memory, config.memory_protection

    # -- run-loop hooks ----------------------------------------------------

    def on_cycle(self, cycle: int) -> None:
        """Apply state faults due at ``cycle``; re-assert stuck-at bits."""
        faults = self._state_faults
        while self._next_state < len(faults):
            fault = faults[self._next_state]
            if fault.cycle > cycle:
                break
            self._next_state += 1
            self._apply_state(fault, cycle)
        for fault in self._stuck:
            target, protection = self._target(fault.space)
            before = target.peek(fault.index)
            after = target.force_bit(
                fault.index, fault.bit, 1 if fault.model == MODEL_STUCK1 else 0)
            if after != before and protection == "parity":
                target.poison(fault.index)

    def _apply_state(self, fault: FaultSpec, cycle: int) -> None:
        target, protection = self._target(fault.space)
        if fault.space in (SPACE_GPR, SPACE_PRED) and fault.index == 0:
            # Hardwired zero / hardwired-true guard: no storage to upset.
            self.log.append(InjectionEvent(fault, cycle, "no-storage"))
            return
        if protection == "ecc":
            # SEC-DED corrects any single-bit error on the next read; the
            # scrubbed state is indistinguishable from no fault at all.
            self.log.append(InjectionEvent(fault, cycle, "corrected"))
            return
        if fault.model == MODEL_SEU:
            target.flip_bit(fault.index, fault.bit)
            disposition = "flipped"
        else:
            target.force_bit(
                fault.index, fault.bit, 1 if fault.model == MODEL_STUCK1 else 0)
            self._stuck.append(fault)
            disposition = "forced"
        if protection == "parity":
            target.poison(fault.index)
            disposition += "+poisoned"
        self.log.append(InjectionEvent(fault, cycle, disposition))

    def fetch_bundle(self, cycle: int, pc: int) -> Optional[PreBundle]:
        """Return a corrupted replacement for the bundle fetched at
        ``(cycle, pc)``, or ``None`` when no fetch fault is due.

        Raises a :class:`~repro.errors.TrapError` with the
        ``illegal-instruction`` cause when the corrupted word no longer
        decodes or no longer fits the machine's issue resources.
        """
        faults = self._ifetch_faults
        if self._next_fetch >= len(faults):
            return None
        fault = faults[self._next_fetch]
        if fault.cycle > cycle:
            return None
        self._next_fetch += 1

        machine = self._machine
        if self._fmt is None:
            from repro.isa.encoding import InstructionFormat

            self._fmt = InstructionFormat(machine.config, machine.mdes.table)
        corrupted, word, slot, error = corrupt_fetched_word(
            self._fmt, machine.mdes, machine.program,
            machine.config.issue_width, pc, fault.index, fault.bit)
        if corrupted is None:
            self.log.append(InjectionEvent(fault, cycle, "fetch-illegal"))
            raise TrapError(
                f"corrupted instruction word {word:#x} does not decode: "
                f"{error}",
                cause=TRAP_ILLEGAL_INSTRUCTION, slot=slot,
            ) from None
        self.log.append(InjectionEvent(fault, cycle, "fetch-corrupted"))
        return corrupted
