"""Reliability subsystem: SEU fault injection, traps, lockstep checking.

The customisation story of the paper (§3.3) prices a design choice in
slices and MHz; this package adds the third axis — *vulnerability* on
the SRAM-based FPGA substrate, where single-event upsets in user state
are the canonical threat.  It provides:

* :class:`FaultSpec` / :class:`FaultInjector` — deterministic,
  seed-driven bit flips (SEU) and stuck-at faults in the GPR, predicate
  and branch-target files, data memory, and fetched instruction words,
  applied through hooks in the core's run loop;
* :class:`LockstepChecker` / :class:`Outcome` — golden-model
  cross-checking against the IR interpreter, classifying every injected
  run as *masked*, *detected*, *hung* or *sdc* (silent data
  corruption);
* campaign orchestration lives in :mod:`repro.harness.faultcampaign`
  (with the ``repro-faults`` CLI) so reliability sits in the same
  evaluation loop as the cycle/area sweeps.
"""

from repro.reliability.fault import (
    FAULT_MODELS,
    FAULT_SPACES,
    FaultInjector,
    FaultSpec,
    InjectionEvent,
    MODEL_SEU,
    MODEL_STUCK0,
    MODEL_STUCK1,
    SPACE_BTR,
    SPACE_GPR,
    SPACE_IFETCH,
    SPACE_MEM,
    SPACE_PRED,
)
from repro.reliability.lockstep import (
    InjectionResult,
    LockstepChecker,
    Outcome,
)

__all__ = [
    "FAULT_MODELS",
    "FAULT_SPACES",
    "FaultInjector",
    "FaultSpec",
    "InjectionEvent",
    "InjectionResult",
    "LockstepChecker",
    "MODEL_SEU",
    "MODEL_STUCK0",
    "MODEL_STUCK1",
    "Outcome",
    "SPACE_BTR",
    "SPACE_GPR",
    "SPACE_IFETCH",
    "SPACE_MEM",
    "SPACE_PRED",
]
