"""Line-level parsing of EPIC assembly into raw statements.

The grammar is deliberately small and regular::

    line        := [label ':'] (directive | group | instruction)? comment?
    group       := '{' instruction (';' instruction)* '}'
    instruction := ['(' pred ')'] MNEMONIC operand (',' operand)*
    operand     := 'r'N | 'p'N | 'b'N | integer | identifier
    directive   := '.text' | '.data' | '.entry' name
                 | '.word' int (',' int)* | '.space' count
    comment     := ';;'? ';' ... | '//' ...

Lines beginning with ``!`` are simulator directives (the Trimaran
byproducts the paper's assembler filters out) and are skipped.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.errors import AsmError

_LABEL_RE = re.compile(r"^\s*([A-Za-z_.$][\w.$]*)\s*:\s*(.*)$")
_GUARD_RE = re.compile(r"^\s*\(\s*p(\d+)\s*\)\s*(.*)$")
_INT_RE = re.compile(r"^[+-]?(0[xX][0-9a-fA-F]+|\d+)$")
_IDENT_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")


@dataclass
class RawOperand:
    """An operand before kind resolution."""

    kind: str          # "reg" | "pred" | "btr" | "int" | "ident"
    value: Union[int, str]
    line: int


@dataclass
class RawInstruction:
    mnemonic: str
    operands: List[RawOperand]
    guard: int
    line: int


@dataclass
class RawGroup:
    """One issue group (a source bundle)."""

    instructions: List[RawInstruction]
    labels: List[str] = field(default_factory=list)
    line: int = 0


@dataclass
class RawData:
    """One data directive: label(s) plus initial words."""

    words: List[int]
    labels: List[str] = field(default_factory=list)
    line: int = 0


@dataclass
class ParsedUnit:
    groups: List[RawGroup]
    data: List[RawData]
    entry: Optional[str] = None


def _strip_comment(text: str) -> str:
    for marker in (";;", "//"):
        index = text.find(marker)
        if index >= 0:
            text = text[:index]
    # A bare ';' only starts a comment outside a { } group, where it is
    # the instruction separator.  The splitter below handles groups; here
    # we only strip trailing comments on non-group lines.
    return text


def _parse_int(token: str, line: int) -> int:
    match = _INT_RE.match(token)
    if not match:
        raise AsmError(f"invalid integer literal {token!r}", line)
    return int(token, 0)


def parse_operand(token: str, line: int) -> RawOperand:
    token = token.strip()
    if not token:
        raise AsmError("empty operand", line)
    lowered = token.lower()
    for prefix, kind in (("r", "reg"), ("p", "pred"), ("b", "btr")):
        if lowered.startswith(prefix) and lowered[1:].isdigit():
            return RawOperand(kind, int(lowered[1:]), line)
    if _INT_RE.match(token):
        return RawOperand("int", int(token, 0), line)
    if _IDENT_RE.match(token):
        return RawOperand("ident", token, line)
    raise AsmError(f"cannot parse operand {token!r}", line)


def parse_instruction(text: str, line: int) -> RawInstruction:
    text = text.strip()
    guard = 0
    match = _GUARD_RE.match(text)
    if match:
        guard = int(match.group(1))
        text = match.group(2).strip()
    if not text:
        raise AsmError("empty instruction", line)
    parts = text.split(None, 1)
    mnemonic = parts[0].upper()
    operands: List[RawOperand] = []
    if len(parts) == 2:
        for token in parts[1].split(","):
            operands.append(parse_operand(token, line))
    return RawInstruction(mnemonic, operands, guard, line)


def parse(source: str) -> ParsedUnit:
    """Parse assembly text into raw groups, data items and the entry."""
    groups: List[RawGroup] = []
    data: List[RawData] = []
    entry: Optional[str] = None
    section = "text"
    pending_labels: List[str] = []

    for line_no, raw_line in enumerate(source.splitlines(), start=1):
        if raw_line.lstrip().startswith("!"):
            continue  # simulator directive (Trimaran filtering, §4.2)
        text = raw_line.strip()
        if not text:
            continue

        # Peel off leading labels (possibly several on one line).
        while True:
            match = _LABEL_RE.match(text)
            if not match or match.group(1).startswith("."):
                break
            pending_labels.append(match.group(1))
            text = match.group(2).strip()
        if not text or text.startswith(";") or text.startswith("//"):
            continue

        if text.startswith("."):
            fields = _strip_comment(text).split(None, 1)
            directive = fields[0].lower()
            argument = fields[1].strip() if len(fields) == 2 else ""
            if directive == ".text":
                section = "text"
            elif directive == ".data":
                section = "data"
            elif directive == ".entry":
                if not argument:
                    raise AsmError(".entry requires a label", line_no)
                entry = argument
            elif directive == ".word":
                if section != "data":
                    raise AsmError(".word is only valid in .data", line_no)
                words = [
                    _parse_int(token.strip(), line_no)
                    for token in argument.split(",")
                    if token.strip()
                ]
                if not words:
                    raise AsmError(".word requires at least one value", line_no)
                data.append(RawData(words, pending_labels, line_no))
                pending_labels = []
            elif directive == ".space":
                if section != "data":
                    raise AsmError(".space is only valid in .data", line_no)
                count = _parse_int(argument, line_no)
                if count < 0:
                    raise AsmError(".space count must be >= 0", line_no)
                data.append(RawData([0] * count, pending_labels, line_no))
                pending_labels = []
            else:
                raise AsmError(f"unknown directive {directive!r}", line_no)
            continue

        if section != "text":
            raise AsmError("instructions are only allowed in .text", line_no)

        if text.startswith("{"):
            # Only '//' comments are allowed after a group, since ';' is
            # the in-group separator.
            body = text.split("//")[0].strip()
            if not body.rstrip().endswith("}"):
                raise AsmError("issue group must close on the same line", line_no)
            inner = body.strip()[1:-1]
            instrs = [
                parse_instruction(piece, line_no)
                for piece in inner.split(";")
                if piece.strip()
            ]
            if not instrs:
                raise AsmError("empty issue group", line_no)
            groups.append(RawGroup(instrs, pending_labels, line_no))
        else:
            instr = parse_instruction(_strip_comment(text), line_no)
            groups.append(RawGroup([instr], pending_labels, line_no))
        pending_labels = []

    if pending_labels:
        # Trailing labels attach to an implicit terminating point; give
        # them a clear diagnostic instead of silently dropping them.
        raise AsmError(
            f"labels {pending_labels} at end of file label nothing",
            line=len(source.splitlines()),
        )
    return ParsedUnit(groups, data, entry)
