"""Assembler and disassembler for the customisable EPIC processor.

The paper's assembler (§4.2) maps Trimaran's scheduled assembly onto EPIC
machine code: it "filters the instructions for simulation purpose and
counts the number of instructions actually available to execute in
parallel.  If necessary, no-op instructions are used to make up the
difference."  It adapts to any customisation through the configuration
header file, "without the need for recompiling itself".

This package reimplements that contract:

* a line-oriented assembly language with explicit issue groups
  (``{ op ; op ; ... }``), guard prefixes (``(p3) ADD ...``), ``.data`` /
  ``.text`` sections and label resolution;
* simulator-directive lines (prefix ``!``) are filtered out, mirroring
  the Trimaran-output filtering;
* every issue group is padded with NOPs to the configured issue width;
* all operand and opcode validation is driven by the
  :class:`~repro.config.MachineConfig` — custom opcodes become available
  simply by appearing in the configuration (paper: "corresponding opcodes
  should be inserted into the configuration file").
"""

from repro.asm.assembler import assemble, assemble_file
from repro.asm.disassembler import disassemble, disassemble_words

__all__ = ["assemble", "assemble_file", "disassemble", "disassemble_words"]
