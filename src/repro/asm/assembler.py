"""Two-pass assembler: raw statements -> :class:`~repro.isa.Program`.

Pass 1 lays out data words and issue groups (one group = one bundle
address) and collects symbols; pass 2 resolves operands against each
opcode's signature, pads groups with NOPs to the configured issue width
(paper §4.2) and validates everything by encoding it with the parametric
instruction format.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import MachineConfig
from repro.errors import AsmError, EncodingError
from repro.isa import signatures as sig
from repro.isa.bundle import Bundle, Program
from repro.isa.encoding import InstructionFormat
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpcodeInfo
from repro.isa.operands import Btr, Lit, Operand, Pred, Reg
from repro.asm.parser import ParsedUnit, RawGroup, RawInstruction, RawOperand, parse


class _Resolver:
    """Pass-2 operand resolution for one translation unit."""

    def __init__(self, config: MachineConfig, fmt: InstructionFormat,
                 code_labels: Dict[str, int], data_symbols: Dict[str, int]):
        self.config = config
        self.fmt = fmt
        self.code_labels = code_labels
        self.data_symbols = data_symbols

    def _resolve_ident(self, name: str, line: int) -> int:
        if name in self.code_labels:
            return self.code_labels[name]
        if name in self.data_symbols:
            return self.data_symbols[name]
        raise AsmError(f"undefined symbol {name!r}", line)

    def _as_dest(self, kind: str, raw: RawOperand) -> Operand:
        expected = {sig.GPR: "reg", sig.PRD: "pred", sig.BTR: "btr"}[kind]
        if raw.kind != expected:
            raise AsmError(
                f"expected a {expected} operand, got {raw.kind} {raw.value!r}",
                raw.line,
            )
        ctor = {sig.GPR: Reg, sig.PRD: Pred, sig.BTR: Btr}[kind]
        return ctor(int(raw.value))

    def _as_src(self, kind: str, raw: RawOperand,
                mnemonic: str) -> "tuple[Operand, Optional[str]]":
        """Returns (operand, label) where label records a symbolic target."""
        if raw.kind == "ident":
            value = self._resolve_ident(str(raw.value), raw.line)
            if kind not in (sig.FLEX, sig.LIT, sig.LONG):
                raise AsmError(
                    f"symbol {raw.value!r} not allowed as a {kind} operand",
                    raw.line,
                )
            return Lit(value), str(raw.value)
        if raw.kind == "int":
            if kind not in (sig.FLEX, sig.LIT, sig.LONG):
                raise AsmError(
                    f"literal not allowed as a {kind} operand of {mnemonic}",
                    raw.line,
                )
            return Lit(int(raw.value)), None
        expected = {sig.FLEX: "reg", sig.GPR: "reg",
                    sig.PRD: "pred", sig.BTR: "btr"}.get(kind)
        if expected is None or raw.kind != expected:
            raise AsmError(
                f"operand {raw.value!r} ({raw.kind}) does not fit a "
                f"{kind} slot of {mnemonic}",
                raw.line,
            )
        ctor = {"reg": Reg, "pred": Pred, "btr": Btr}[raw.kind]
        return ctor(int(raw.value)), None

    def resolve(self, raw: RawInstruction) -> Instruction:
        try:
            info: OpcodeInfo = self.fmt.table.lookup(raw.mnemonic)
        except EncodingError as error:
            raise AsmError(str(error), raw.line) from None
        signature = sig.signature_of(info)

        slots = [
            ("dest", signature.dest1),
            ("dest", signature.dest2),
            ("src", signature.src1),
            ("src", signature.src2),
        ]
        expected = [slot for slot in slots if slot[1] is not None]
        if signature.src1 == sig.LONG:
            # MOVI consumes SRC1 and SRC2 as a single long literal.
            expected = [slot for slot in expected if slot[1] != sig.LONG]
            expected.append(("src", sig.LONG))
        if len(raw.operands) != len(expected):
            raise AsmError(
                f"{raw.mnemonic} expects {len(expected)} operand(s), "
                f"got {len(raw.operands)}",
                raw.line,
            )

        if not 0 <= raw.guard < self.config.n_preds:
            raise AsmError(f"guard p{raw.guard} out of range", raw.line)

        values: List[Operand] = []
        label: Optional[str] = None
        for (role, kind), operand in zip(expected, raw.operands):
            if role == "dest" and not signature.dest1_is_source:
                values.append(self._as_dest(kind, operand))
            elif role == "dest":
                # SW: the stored value occupies the DEST1 field but is a
                # plain register read.
                values.append(self._as_dest(kind, operand))
            else:
                op_value, op_label = self._as_src(kind, operand, raw.mnemonic)
                if op_label is not None:
                    label = op_label
                values.append(op_value)

        fields = {"dest1": None, "dest2": None, "src1": None, "src2": None}
        index = 0
        for (role, kind), value in zip(expected, values):
            if role == "dest":
                key = "dest1" if fields["dest1"] is None else "dest2"
            else:
                key = "src1" if fields["src1"] is None else "src2"
            fields[key] = value
            index += 1

        instr = Instruction(
            mnemonic=raw.mnemonic,
            dest1=fields["dest1"],
            dest2=fields["dest2"],
            src1=fields["src1"],
            src2=fields["src2"],
            guard=Pred(raw.guard),
            target_label=label,
        )
        try:
            self.fmt.encode(instr)
        except EncodingError as error:
            raise AsmError(str(error), raw.line) from None
        return instr


def assemble_unit(unit: ParsedUnit, config: MachineConfig) -> Program:
    """Assemble a parsed unit under one machine configuration."""
    fmt = InstructionFormat(config)

    # Pass 1: layout.
    data_words: List[int] = []
    data_symbols: Dict[str, int] = {}
    for item in unit.data:
        for name in item.labels:
            if name in data_symbols:
                raise AsmError(f"duplicate data symbol {name!r}", item.line)
            data_symbols[name] = len(data_words)
        data_words.extend(word & config.mask for word in item.words)

    code_labels: Dict[str, int] = {}
    for address, group in enumerate(unit.groups):
        for name in group.labels:
            if name in code_labels or name in data_symbols:
                raise AsmError(f"duplicate label {name!r}", group.line)
            code_labels[name] = address

    # Pass 2: resolve and bundle.
    resolver = _Resolver(config, fmt, code_labels, data_symbols)
    bundles: List[Bundle] = []
    for address, group in enumerate(unit.groups):
        if len(group.instructions) > config.issue_width:
            raise AsmError(
                f"issue group has {len(group.instructions)} operations; "
                f"this configuration issues at most {config.issue_width}",
                group.line,
            )
        instrs = tuple(resolver.resolve(raw) for raw in group.instructions)
        bundles.append(Bundle(instrs).padded(config.issue_width))

    if unit.entry is not None:
        if unit.entry not in code_labels:
            raise AsmError(f".entry label {unit.entry!r} is undefined")
        entry = code_labels[unit.entry]
    else:
        entry = code_labels.get("main", 0)

    return Program(
        bundles=bundles,
        labels=code_labels,
        data=data_words,
        symbols=data_symbols,
        entry=entry,
    )


def assemble(source: str, config: MachineConfig) -> Program:
    """Assemble EPIC assembly text into a program."""
    return assemble_unit(parse(source), config)


def assemble_file(path: str, config: MachineConfig) -> Program:
    with open(path) as handle:
        return assemble(handle.read(), config)
