"""``epic-asm``: assemble a file and print the listing or binary stats."""

from __future__ import annotations

import argparse
import sys

from repro.asm.assembler import assemble_file
from repro.config import epic_config
from repro.errors import ReproError
from repro.isa.encoding import InstructionFormat


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="epic-asm",
        description="Assemble EPIC assembly for a chosen configuration.",
    )
    parser.add_argument("source", help="assembly source file")
    parser.add_argument("--alus", type=int, default=4, help="number of ALUs")
    parser.add_argument("--issue", type=int, default=4, help="issue width")
    parser.add_argument("--gprs", type=int, default=64,
                        help="general-purpose registers")
    parser.add_argument("--listing", action="store_true",
                        help="print the bundle listing")
    parser.add_argument("-o", "--output", help="write big-endian binary image")
    arguments = parser.parse_args(argv)

    config = epic_config(
        n_alus=arguments.alus,
        issue_width=arguments.issue,
        n_gprs=arguments.gprs,
    )
    try:
        program = assemble_file(arguments.source, config)
    except ReproError as error:
        print(f"epic-asm: {error}", file=sys.stderr)
        return 1

    fmt = InstructionFormat(config)
    words = fmt.encode_program(program)
    print(
        f"{arguments.source}: {len(program)} bundles, "
        f"{program.n_operations} operations, "
        f"{len(words) * fmt.instruction_bits // 8} bytes"
    )
    if arguments.listing:
        print(program.listing())
    if arguments.output:
        with open(arguments.output, "wb") as handle:
            handle.write(fmt.to_bytes(words))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
