"""Disassembler: encoded words or programs back to assembly text."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import MachineConfig
from repro.isa.bundle import Bundle, Program
from repro.isa.encoding import InstructionFormat


def _render_bundle(bundle: Bundle) -> str:
    ops = [str(instr) for instr in bundle.slots]
    return "{ " + " ; ".join(ops) + " }"


def disassemble(program: Program, show_labels: bool = True) -> str:
    """Render a program as re-assemblable text."""
    by_address: Dict[int, List[str]] = {}
    if show_labels:
        for name, address in program.labels.items():
            by_address.setdefault(address, []).append(name)
    lines: List[str] = []
    if program.data:
        lines.append(".data")
        by_word: Dict[int, List[str]] = {}
        for name, address in program.symbols.items():
            by_word.setdefault(address, []).append(name)
        cursor = 0
        boundaries = sorted(by_word) + [len(program.data)]
        # Emit data runs between symbol boundaries.
        starts = sorted(set([0] + list(by_word)))
        for index, start in enumerate(starts):
            end = starts[index + 1] if index + 1 < len(starts) else len(program.data)
            if start >= len(program.data):
                continue
            for name in sorted(by_word.get(start, [])):
                lines.append(f"{name}:")
            chunk = program.data[start:end]
            for offset in range(0, len(chunk), 8):
                words = ", ".join(str(word) for word in chunk[offset:offset + 8])
                lines.append(f"  .word {words}")
        lines.append(".text")
    for address, bundle in enumerate(program.bundles):
        for name in sorted(by_address.get(address, [])):
            lines.append(f"{name}:")
        lines.append(f"  {_render_bundle(bundle)}")
    return "\n".join(lines) + "\n"


def disassemble_words(words: List[int], config: MachineConfig,
                      fmt: Optional[InstructionFormat] = None) -> str:
    """Decode a flat binary image and render it."""
    fmt = fmt if fmt is not None else InstructionFormat(config)
    bundles = fmt.decode_program(words)
    program = Program(bundles=bundles)
    return disassemble(program, show_labels=False)
