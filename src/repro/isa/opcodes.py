"""Opcode definitions for the HPL-PD-subset instruction set.

Opcodes are grouped by the functional unit that executes them (paper
§3.2: a collection of ALUs, one load/store unit, one comparison unit and
one branch unit).  Numeric opcode values place the functional-unit class
in the upper bits and a Gray-coded index in the lower bits, following the
paper's remark that "the opcode has been designed to minimise the Hamming
distance between two instructions of the same type" (§3.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.config import AluFeature, MachineConfig
from repro.errors import EncodingError


class FuClass(enum.Enum):
    """Functional-unit classes of the datapath (paper Fig. 2)."""

    ALU = "alu"
    LSU = "lsu"
    CMPU = "cmpu"
    BRU = "bru"
    MISC = "misc"  # NOP / HALT, executed by the issue logic itself


class Opcode(enum.Enum):
    """Built-in operations (HPL-PD integer subset).

    The value is the mnemonic; numeric encodings are assigned by
    :func:`build_opcode_table` so that custom instructions and feature
    exclusions (paper §3.3) can renumber without touching this enum.
    """

    # -- ALU ------------------------------------------------------------
    ADD = "ADD"
    SUB = "SUB"
    MUL = "MUL"          # low word of the product (block multiplier)
    DIV = "DIV"          # signed quotient, truncating
    REM = "REM"          # signed remainder, sign follows the dividend
    AND = "AND"
    OR = "OR"
    XOR = "XOR"
    ANDCM = "ANDCM"      # a & ~b (HPL-PD's andcm)
    SHL = "SHL"          # logical shift left
    SHR = "SHR"          # logical shift right
    SHRA = "SHRA"        # arithmetic shift right
    MOVE = "MOVE"        # register/short-literal copy
    MOVI = "MOVI"        # long-immediate move: SRC1||SRC2 hold a full word
    MIN = "MIN"          # signed minimum (HPL-PD min)
    MAX = "MAX"          # signed maximum (HPL-PD max)

    # -- CMPU (CMPP family: writes up to two predicate registers) --------
    CMPP_EQ = "CMPP_EQ"
    CMPP_NE = "CMPP_NE"
    CMPP_LT = "CMPP_LT"
    CMPP_LE = "CMPP_LE"
    CMPP_GT = "CMPP_GT"
    CMPP_GE = "CMPP_GE"
    CMPP_ULT = "CMPP_ULT"
    CMPP_UGE = "CMPP_UGE"

    # -- LSU --------------------------------------------------------------
    LW = "LW"            # load word:  DEST1 <- mem[SRC1 + SRC2]
    SW = "SW"            # store word: mem[SRC1 + SRC2] <- GPR[DEST1]
    LWS = "LWS"          # speculative load: out-of-range reads return 0
                         # instead of faulting (paper §2, speculative
                         # loading)

    # -- BRU --------------------------------------------------------------
    PBR = "PBR"          # prepare-to-branch: BTR[DEST1] <- literal target
    MOVGBP = "MOVGBP"    # BTR[DEST1] <- GPR[SRC1]  (returns / indirect)
    BR = "BR"            # unconditional branch via BTR[SRC1]
    BRCT = "BRCT"        # branch via BTR[SRC1] if predicate SRC2 is true
    BRCF = "BRCF"        # branch via BTR[SRC1] if predicate SRC2 is false
    BRL = "BRL"          # branch and link: GPR[DEST1] <- return address
    HALT = "HALT"        # stop simulation (testbench convention)

    # -- MISC -------------------------------------------------------------
    NOP = "NOP"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Opcode.{self.name}"


#: Functional-unit class of every built-in opcode.
OPCODE_CLASS: Dict[Opcode, FuClass] = {
    **{
        op: FuClass.ALU
        for op in (
            Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.REM,
            Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.ANDCM,
            Opcode.SHL, Opcode.SHR, Opcode.SHRA,
            Opcode.MOVE, Opcode.MOVI, Opcode.MIN, Opcode.MAX,
        )
    },
    **{
        op: FuClass.CMPU
        for op in (
            Opcode.CMPP_EQ, Opcode.CMPP_NE, Opcode.CMPP_LT, Opcode.CMPP_LE,
            Opcode.CMPP_GT, Opcode.CMPP_GE, Opcode.CMPP_ULT, Opcode.CMPP_UGE,
        )
    },
    Opcode.LW: FuClass.LSU,
    Opcode.SW: FuClass.LSU,
    Opcode.LWS: FuClass.LSU,
    Opcode.PBR: FuClass.BRU,
    Opcode.MOVGBP: FuClass.BRU,
    Opcode.BR: FuClass.BRU,
    Opcode.BRCT: FuClass.BRU,
    Opcode.BRCF: FuClass.BRU,
    Opcode.BRL: FuClass.BRU,
    Opcode.HALT: FuClass.BRU,
    Opcode.NOP: FuClass.MISC,
}

#: Latency class (key into MachineConfig.latencies) of every opcode.
OPCODE_LATENCY_CLASS: Dict[Opcode, str] = {
    **{op: "alu" for op, cls in OPCODE_CLASS.items() if cls is FuClass.ALU},
    Opcode.MUL: "mul",
    Opcode.DIV: "div",
    Opcode.REM: "div",
    **{op: "cmp" for op, cls in OPCODE_CLASS.items() if cls is FuClass.CMPU},
    Opcode.LW: "load",
    Opcode.LWS: "load",
    Opcode.SW: "store",
    Opcode.PBR: "pbr",
    Opcode.MOVGBP: "pbr",
    Opcode.BR: "branch",
    Opcode.BRCT: "branch",
    Opcode.BRCF: "branch",
    Opcode.BRL: "branch",
    Opcode.HALT: "branch",
    Opcode.NOP: "alu",
}

#: ALU opcodes gated by an optional feature (paper §3.3: "ALUs do not
#: need to support division if this operation is not required").
FEATURE_OPCODES: Dict[AluFeature, Tuple[Opcode, ...]] = {
    AluFeature.MULTIPLY: (Opcode.MUL,),
    AluFeature.DIVIDE: (Opcode.DIV, Opcode.REM),
    AluFeature.SHIFT: (Opcode.SHL, Opcode.SHR, Opcode.SHRA),
}


def _gray(value: int) -> int:
    """Binary-reflected Gray code of ``value``."""
    return value ^ (value >> 1)


@dataclass(frozen=True)
class OpcodeInfo:
    """Everything a tool needs to know about one operation."""

    mnemonic: str
    code: int                      # numeric encoding
    fu_class: FuClass
    latency_class: str
    writes_pred: bool = False      # CMPP family: DEST1/DEST2 are predicates
    is_branch: bool = False
    is_memory: bool = False
    is_custom: bool = False
    custom_spec: Optional[object] = None

    @property
    def is_nop(self) -> bool:
        return self.mnemonic == "NOP"


class OpcodeTable:
    """Bidirectional mnemonic/numeric-code mapping for one configuration.

    Built by :func:`build_opcode_table`; excludes opcodes disabled by the
    configuration's ALU feature set and appends any custom instructions.
    """

    def __init__(self, infos: Iterable[OpcodeInfo]):
        self._by_mnemonic: Dict[str, OpcodeInfo] = {}
        self._by_code: Dict[int, OpcodeInfo] = {}
        for info in infos:
            if info.mnemonic in self._by_mnemonic:
                raise EncodingError(f"duplicate mnemonic {info.mnemonic!r}")
            if info.code in self._by_code:
                raise EncodingError(f"duplicate opcode {info.code:#x}")
            self._by_mnemonic[info.mnemonic] = info
            self._by_code[info.code] = info

    def __contains__(self, mnemonic: str) -> bool:
        return mnemonic in self._by_mnemonic

    def __len__(self) -> int:
        return len(self._by_mnemonic)

    def __iter__(self):
        return iter(self._by_mnemonic.values())

    def lookup(self, mnemonic: str) -> OpcodeInfo:
        try:
            return self._by_mnemonic[mnemonic]
        except KeyError:
            raise EncodingError(f"unknown or disabled opcode {mnemonic!r}") from None

    def by_code(self, code: int) -> OpcodeInfo:
        try:
            return self._by_code[code]
        except KeyError:
            raise EncodingError(f"undefined opcode encoding {code:#x}") from None

    @property
    def max_code(self) -> int:
        return max(self._by_code)


#: Class tag placed in the upper bits of the numeric opcode, so that
#: same-class opcodes share a prefix (small Hamming distance, §3.1).
_CLASS_TAG = {
    FuClass.MISC: 0x0,
    FuClass.ALU: 0x1,
    FuClass.CMPU: 0x2,
    FuClass.LSU: 0x3,
    FuClass.BRU: 0x4,
    "custom": 0x5,
}
_CLASS_SHIFT = 8  # low 8 bits carry the Gray-coded per-class index


def build_opcode_table(config: MachineConfig) -> OpcodeTable:
    """Build the opcode table for one machine configuration.

    Feature-gated opcodes are omitted when their :class:`AluFeature` is
    absent (the assembler/compiler will then reject or expand them), and
    the configuration's custom instructions are appended in the
    reserved "custom" class.
    """
    disabled = set()
    for feature, ops in FEATURE_OPCODES.items():
        if not config.has_feature(feature):
            disabled.update(ops)

    infos: List[OpcodeInfo] = []
    counters: Dict[FuClass, int] = {}
    for op in Opcode:
        if op in disabled:
            continue
        fu = OPCODE_CLASS[op]
        index = counters.get(fu, 0)
        counters[fu] = index + 1
        code = (_CLASS_TAG[fu] << _CLASS_SHIFT) | _gray(index)
        infos.append(
            OpcodeInfo(
                mnemonic=op.value,
                code=code,
                fu_class=fu,
                latency_class=OPCODE_LATENCY_CLASS[op],
                writes_pred=fu is FuClass.CMPU,
                is_branch=fu is FuClass.BRU and op is not Opcode.PBR
                and op is not Opcode.MOVGBP,
                is_memory=fu is FuClass.LSU,
            )
        )

    for index, spec in enumerate(config.custom_ops):
        code = (_CLASS_TAG["custom"] << _CLASS_SHIFT) | _gray(index)
        infos.append(
            OpcodeInfo(
                mnemonic=spec.mnemonic,
                code=code,
                fu_class=FuClass(spec.fu_class),
                latency_class=spec.latency_class,
                is_custom=True,
                custom_spec=spec,
            )
        )
    return OpcodeTable(infos)
