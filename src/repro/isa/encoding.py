"""Parametric binary instruction format (paper Fig. 1 and §3.3).

Default layout, MSB first (the design "adopts a big-endian architecture"):

    OPCODE(15) | DEST1(6) | DEST2(6) | SRC1(16) | SRC2(16) | PRED(5) = 64

Each SRC field carries a tag bit (MSB of the field): 0 = register index,
1 = literal, with the remaining bits holding a sign-extended literal or a
register number.  The paper notes that the pre-defined format assumes
ranges for the parameters ("as 6 bits are allocated to index a register,
the maximum number of registers is assumed to be 64. Exceeding this limit
requires a re-design of the instruction format ... provision has been
made for such adjustment, with the instruction width and the width of
each individual field made parameterisable").  :class:`InstructionFormat`
implements exactly that provision: field widths grow automatically when a
configuration exceeds the default ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.config import MachineConfig
from repro.errors import EncodingError
from repro.isa import signatures as sig
from repro.isa.bundle import Bundle, Program
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpcodeTable, build_opcode_table
from repro.isa.operands import Btr, Lit, Operand, Pred, Reg

_DEFAULT_OPCODE_BITS = 15
_DEFAULT_DEST_BITS = 6
_DEFAULT_SRC_BITS = 16
_DEFAULT_PRED_BITS = 5


def _bits_for(count: int) -> int:
    """Bits needed to index ``count`` distinct values (at least 1)."""
    if count <= 1:
        return 1
    return (count - 1).bit_length()


def _sign_extend(value: int, bits: int) -> int:
    mask = (1 << bits) - 1
    value &= mask
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


@dataclass(frozen=True)
class _Layout:
    opcode_bits: int
    dest_bits: int
    src_bits: int
    pred_bits: int

    @property
    def total_bits(self) -> int:
        return (
            self.opcode_bits
            + 2 * self.dest_bits
            + 2 * self.src_bits
            + self.pred_bits
        )


class InstructionFormat:
    """Encoder/decoder for one machine configuration."""

    def __init__(self, config: MachineConfig, table: Optional[OpcodeTable] = None):
        self.config = config
        self.table = table if table is not None else build_opcode_table(config)
        self.layout = self._derive_layout()

    # -- layout ---------------------------------------------------------

    def _derive_layout(self) -> _Layout:
        config = self.config
        reg_bits = max(
            _bits_for(config.regs_per_instruction),
            _bits_for(config.n_gprs),
            _bits_for(config.n_preds),
            _bits_for(config.n_btrs),
        )
        opcode_bits = max(_DEFAULT_OPCODE_BITS, _bits_for(self.table.max_code + 1))
        dest_bits = max(_DEFAULT_DEST_BITS, reg_bits)
        src_bits = max(_DEFAULT_SRC_BITS, reg_bits + 1)
        pred_bits = max(_DEFAULT_PRED_BITS, _bits_for(config.n_preds))
        return _Layout(opcode_bits, dest_bits, src_bits, pred_bits)

    @property
    def instruction_bits(self) -> int:
        """Width of one encoded instruction (64 at paper defaults)."""
        return self.layout.total_bits

    @property
    def literal_bits(self) -> int:
        """Signed literal width of a tagged SRC field (15 at defaults)."""
        return self.layout.src_bits - 1

    @property
    def long_literal_bits(self) -> int:
        """Width of MOVI's concatenated SRC1||SRC2 literal (32 default)."""
        return 2 * self.layout.src_bits

    def literal_fits(self, value: int) -> bool:
        bits = self.literal_bits
        return -(1 << (bits - 1)) <= value < (1 << (bits - 1))

    def long_literal_fits(self, value: int) -> bool:
        bits = self.long_literal_bits
        return -(1 << (bits - 1)) <= value < (1 << bits)

    # -- field encoding ---------------------------------------------------

    def _encode_dest(self, kind: Optional[str], op: Optional[Operand]) -> int:
        if kind is None:
            if op is not None:
                raise EncodingError(f"unexpected destination operand {op}")
            return 0
        if op is None:
            return 0  # "no destination" convention (e.g. CMPP single dest)
        limits = {
            sig.GPR: (Reg, self.config.n_gprs),
            sig.PRD: (Pred, self.config.n_preds),
            sig.BTR: (Btr, self.config.n_btrs),
        }
        expected, limit = limits[kind]
        if not isinstance(op, expected):
            raise EncodingError(f"expected {kind} destination, got {op}")
        if not 0 <= op.index < limit:
            raise EncodingError(f"{kind} index {op.index} out of range 0..{limit - 1}")
        if op.index >= (1 << self.layout.dest_bits):
            raise EncodingError(f"destination {op} does not fit the field width")
        return op.index

    def _encode_src(self, kind: Optional[str], op: Optional[Operand]) -> int:
        if kind is None:
            if op is not None:
                raise EncodingError(f"unexpected source operand {op}")
            return 0
        if op is None:
            raise EncodingError(f"missing {kind} source operand")
        payload_bits = self.layout.src_bits - 1
        tag = 1 << payload_bits
        if isinstance(op, Lit):
            if kind not in (sig.FLEX, sig.LIT):
                raise EncodingError(f"literal not allowed in a {kind} field")
            if not self.literal_fits(op.value):
                raise EncodingError(
                    f"literal {op.value} does not fit {payload_bits}-bit signed field"
                )
            return tag | (op.value & (tag - 1))
        if kind == sig.LIT:
            raise EncodingError(f"expected a literal, got {op}")
        expected = {sig.FLEX: Reg, sig.GPR: Reg, sig.PRD: Pred, sig.BTR: Btr}[kind]
        if not isinstance(op, expected):
            raise EncodingError(f"expected {kind} source, got {op}")
        limit = {
            Reg: self.config.n_gprs,
            Pred: self.config.n_preds,
            Btr: self.config.n_btrs,
        }[expected]
        if not 0 <= op.index < limit:
            raise EncodingError(f"{kind} index {op.index} out of range 0..{limit - 1}")
        return op.index

    # -- instruction encode/decode ---------------------------------------

    def encode(self, instr: Instruction) -> int:
        """Encode one instruction into an ``instruction_bits``-wide word."""
        info = self.table.lookup(instr.mnemonic)
        signature = sig.signature_of(info)
        layout = self.layout

        if not 0 <= instr.guard.index < self.config.n_preds:
            raise EncodingError(f"guard {instr.guard} out of range")

        word = info.code
        word = (word << layout.dest_bits) | self._encode_dest(signature.dest1, instr.dest1)
        word = (word << layout.dest_bits) | self._encode_dest(signature.dest2, instr.dest2)

        if signature.src1 == sig.LONG:
            if not isinstance(instr.src1, Lit):
                raise EncodingError("MOVI requires a literal source")
            if instr.src2 is not None:
                raise EncodingError("MOVI takes a single long literal")
            bits = self.long_literal_bits
            if not self.long_literal_fits(instr.src1.value):
                raise EncodingError(
                    f"long literal {instr.src1.value} does not fit {bits} bits"
                )
            word = (word << bits) | (instr.src1.value & ((1 << bits) - 1))
        else:
            word = (word << layout.src_bits) | self._encode_src(signature.src1, instr.src1)
            word = (word << layout.src_bits) | self._encode_src(signature.src2, instr.src2)

        word = (word << layout.pred_bits) | instr.guard.index
        return word

    def _decode_dest(self, kind: Optional[str], raw: int) -> Optional[Operand]:
        if kind is None:
            return None
        return {sig.GPR: Reg, sig.PRD: Pred, sig.BTR: Btr}[kind](raw)

    def _decode_src(self, kind: Optional[str], raw: int) -> Optional[Operand]:
        if kind is None:
            return None
        payload_bits = self.layout.src_bits - 1
        tag = raw >> payload_bits
        payload = raw & ((1 << payload_bits) - 1)
        if tag:
            return Lit(_sign_extend(payload, payload_bits))
        if kind == sig.LIT:
            # PBR targets are always literals; a clear tag bit with
            # payload zero is the canonical "absent" encoding.
            return Lit(payload)
        return {sig.FLEX: Reg, sig.GPR: Reg, sig.PRD: Pred, sig.BTR: Btr}[kind](payload)

    def decode(self, word: int) -> Instruction:
        """Decode one encoded word back into an :class:`Instruction`."""
        layout = self.layout
        if word < 0 or word >= (1 << layout.total_bits):
            raise EncodingError(f"encoded word {word:#x} out of range")

        pred = word & ((1 << layout.pred_bits) - 1)
        word >>= layout.pred_bits
        src2_raw = word & ((1 << layout.src_bits) - 1)
        word >>= layout.src_bits
        src1_raw = word & ((1 << layout.src_bits) - 1)
        word >>= layout.src_bits
        dest2_raw = word & ((1 << layout.dest_bits) - 1)
        word >>= layout.dest_bits
        dest1_raw = word & ((1 << layout.dest_bits) - 1)
        word >>= layout.dest_bits
        info = self.table.by_code(word)
        signature = sig.signature_of(info)

        if signature.src1 == sig.LONG:
            raw = (src1_raw << layout.src_bits) | src2_raw
            src1: Optional[Operand] = Lit(_sign_extend(raw, self.long_literal_bits))
            src2: Optional[Operand] = None
        else:
            src1 = self._decode_src(signature.src1, src1_raw)
            src2 = self._decode_src(signature.src2, src2_raw)

        dest2 = self._decode_dest(signature.dest2, dest2_raw)
        # CMPP's "discard" second destination round-trips as p0.
        return Instruction(
            mnemonic=info.mnemonic,
            dest1=self._decode_dest(signature.dest1, dest1_raw),
            dest2=dest2,
            src1=src1,
            src2=src2,
            guard=Pred(pred),
        )

    # -- whole-program encode/decode --------------------------------------

    def encode_program(self, program: Program) -> List[int]:
        """Encode a program as a flat list of instruction words.

        Bundles are padded to the issue width first, so the image layout
        matches the fetch hardware: ``issue_width`` consecutive words per
        cycle (256 bits at paper defaults, §3.2).
        """
        words: List[int] = []
        for bundle in program.bundles:
            for instr in bundle.padded(self.config.issue_width):
                words.append(self.encode(instr))
        return words

    def decode_program(self, words: List[int]) -> List[Bundle]:
        """Decode a flat word image back into issue-width bundles."""
        width = self.config.issue_width
        if len(words) % width != 0:
            raise EncodingError(
                f"image length {len(words)} is not a multiple of issue width {width}"
            )
        bundles = []
        for base in range(0, len(words), width):
            slots = tuple(self.decode(word) for word in words[base:base + width])
            bundles.append(Bundle(slots))
        return bundles

    def to_bytes(self, words: List[int]) -> bytes:
        """Serialise instruction words big-endian (paper §3.1)."""
        width_bytes = (self.instruction_bits + 7) // 8
        return b"".join(word.to_bytes(width_bytes, "big") for word in words)

    def from_bytes(self, blob: bytes) -> List[int]:
        width_bytes = (self.instruction_bits + 7) // 8
        if len(blob) % width_bytes != 0:
            raise EncodingError("byte image is not a whole number of instructions")
        return [
            int.from_bytes(blob[i:i + width_bytes], "big")
            for i in range(0, len(blob), width_bytes)
        ]
