"""Operand signatures: how each opcode interprets the six fields.

The fixed-width format (paper Fig. 1) is shared by all instructions, but
each opcode reads the fields differently — e.g. CMPP destinations are
predicate registers while PBR's destination is a branch-target register.
This module is the single source of truth used by the encoder, decoder,
assembler parser and the simulator's issue logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import EncodingError
from repro.isa.opcodes import FuClass, OpcodeInfo

#: Operand-kind tokens.
GPR = "gpr"        # general-purpose register index
PRD = "pred"       # predicate register index
BTR = "btr"        # branch-target register index
FLEX = "flex"      # register or short literal (tagged SRC field)
LIT = "lit"        # short literal only
LONG = "long"      # full-width literal spanning SRC1||SRC2 (MOVI)
NONE = None


@dataclass(frozen=True)
class Signature:
    """Field kinds for (dest1, dest2, src1, src2)."""

    dest1: Optional[str]
    dest2: Optional[str]
    src1: Optional[str]
    src2: Optional[str]

    #: True when DEST1 is *read* rather than written (SW's store value
    #: travels in the DEST1 field).
    dest1_is_source: bool = False


_ALU_BINARY = Signature(GPR, NONE, FLEX, FLEX)

_SIGNATURES = {
    "MOVE": Signature(GPR, NONE, FLEX, NONE),
    "MOVI": Signature(GPR, NONE, LONG, NONE),
    "LW": Signature(GPR, NONE, FLEX, FLEX),
    "LWS": Signature(GPR, NONE, FLEX, FLEX),
    "SW": Signature(GPR, NONE, FLEX, FLEX, dest1_is_source=True),
    "PBR": Signature(BTR, NONE, LIT, NONE),
    "MOVGBP": Signature(BTR, NONE, FLEX, NONE),
    "BR": Signature(NONE, NONE, BTR, NONE),
    "BRCT": Signature(NONE, NONE, BTR, PRD),
    "BRCF": Signature(NONE, NONE, BTR, PRD),
    "BRL": Signature(GPR, NONE, BTR, NONE),
    "HALT": Signature(NONE, NONE, NONE, NONE),
    "NOP": Signature(NONE, NONE, NONE, NONE),
}


def signature_of(info: OpcodeInfo) -> Signature:
    """Return the operand signature for one opcode."""
    explicit = _SIGNATURES.get(info.mnemonic)
    if explicit is not None:
        return explicit
    if info.fu_class is FuClass.CMPU:
        return Signature(PRD, PRD, FLEX, FLEX)
    if info.fu_class is FuClass.ALU or info.is_custom:
        return _ALU_BINARY
    raise EncodingError(f"no signature known for opcode {info.mnemonic!r}")
