"""Custom instructions (paper §3.3).

"There are mainly two ways to customise the EPIC processor, by creation
of customisable instructions or by the variation of its parameters ...
inclusion or exclusion of a custom instruction only requires
modifications of the concerned functional unit."

A :class:`CustomOpSpec` bundles everything the toolchain needs: the
mnemonic (which the assembler picks up from the configuration without
being recompiled, §4.2), the functional unit that hosts it, its latency,
its combinational semantics, and its FPGA area cost for the resource
model.  Custom operations are pure functions of their two source operands
— the shape §3.3 describes (e.g. replacing "a group of frequently-used
instructions" with one fused operation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigError


@dataclass(frozen=True)
class CustomOpSpec:
    """Specification of one application-specific instruction."""

    mnemonic: str
    #: Combinational semantics: (src1, src2, datapath_mask) -> result.
    func: Callable[[int, int, int], int]
    #: Hosting functional unit; only "alu" custom ops are currently
    #: supported (they occupy an ALU slot and issue like ALU ops).
    fu_class: str = "alu"
    #: Execution latency in processor cycles.
    latency: int = 1
    #: Estimated Virtex-II slice cost of the added datapath logic, fed to
    #: the FPGA resource model (paper §5.1 style accounting).
    slices: int = 150
    description: str = ""

    #: Opcode-table hook: custom latencies are resolved from the spec.
    latency_class: str = "custom"

    def __post_init__(self) -> None:
        if not self.mnemonic or not self.mnemonic.isidentifier():
            raise ConfigError(f"invalid custom mnemonic {self.mnemonic!r}")
        if self.mnemonic != self.mnemonic.upper():
            raise ConfigError("custom mnemonics must be upper-case")
        if self.fu_class != "alu":
            raise ConfigError("only ALU-class custom instructions are supported")
        if self.latency < 1:
            raise ConfigError("custom op latency must be >= 1")
        if self.slices < 0:
            raise ConfigError("custom op slice cost must be >= 0")

    def evaluate(self, a: int, b: int, mask: int) -> int:
        """Run the semantics and clamp the result to the datapath width."""
        return self.func(a, b, mask) & mask
