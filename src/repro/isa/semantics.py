"""Pure two's-complement semantics of the built-in operations.

These functions define the architectural meaning of every opcode on a
``width``-bit datapath.  Both the EPIC core (`repro.core`) and the test
suite use them, so the simulator and its oracle can never drift apart.

Values are represented as *unsigned* Python integers in ``[0, 2**width)``;
``to_signed``/``to_unsigned`` convert at the edges.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import SimulationError


def to_signed(value: int, width: int) -> int:
    """Interpret an unsigned field as a two's-complement number."""
    mask = (1 << width) - 1
    value &= mask
    if value & (1 << (width - 1)):
        value -= 1 << width
    return value


def to_unsigned(value: int, width: int) -> int:
    """Clamp a Python integer onto the datapath."""
    return value & ((1 << width) - 1)


def _shift_amount(b: int, width: int) -> int:
    # Hardware shifters use the low log2(width) bits of the amount.
    return b & (width - 1)


def add(a: int, b: int, width: int) -> int:
    return to_unsigned(a + b, width)


def sub(a: int, b: int, width: int) -> int:
    return to_unsigned(a - b, width)


def mul(a: int, b: int, width: int) -> int:
    # Low word of the full product; identical for signed and unsigned.
    return to_unsigned(a * b, width)


def div(a: int, b: int, width: int) -> int:
    """Signed division truncating toward zero (C semantics)."""
    if to_unsigned(b, width) == 0:
        raise SimulationError("integer division by zero")
    sa, sb = to_signed(a, width), to_signed(b, width)
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return to_unsigned(quotient, width)


def rem(a: int, b: int, width: int) -> int:
    """Signed remainder; sign follows the dividend (C semantics)."""
    if to_unsigned(b, width) == 0:
        raise SimulationError("integer remainder by zero")
    sa, sb = to_signed(a, width), to_signed(b, width)
    remainder = abs(sa) % abs(sb)
    if sa < 0:
        remainder = -remainder
    return to_unsigned(remainder, width)


def and_(a: int, b: int, width: int) -> int:
    return to_unsigned(a & b, width)


def or_(a: int, b: int, width: int) -> int:
    return to_unsigned(a | b, width)


def xor(a: int, b: int, width: int) -> int:
    return to_unsigned(a ^ b, width)


def andcm(a: int, b: int, width: int) -> int:
    """HPL-PD andcm: a AND (complement of b)."""
    return to_unsigned(a & ~b, width)


def shl(a: int, b: int, width: int) -> int:
    return to_unsigned(a << _shift_amount(b, width), width)


def shr(a: int, b: int, width: int) -> int:
    return to_unsigned(a, width) >> _shift_amount(b, width)


def shra(a: int, b: int, width: int) -> int:
    return to_unsigned(to_signed(a, width) >> _shift_amount(b, width), width)


def min_(a: int, b: int, width: int) -> int:
    return a if to_signed(a, width) <= to_signed(b, width) else b


def max_(a: int, b: int, width: int) -> int:
    return a if to_signed(a, width) >= to_signed(b, width) else b


# -- comparison family (CMPP): return 1-bit predicates -------------------

def cmp_eq(a: int, b: int, width: int) -> int:
    return int(to_unsigned(a, width) == to_unsigned(b, width))


def cmp_ne(a: int, b: int, width: int) -> int:
    return int(to_unsigned(a, width) != to_unsigned(b, width))


def cmp_lt(a: int, b: int, width: int) -> int:
    return int(to_signed(a, width) < to_signed(b, width))


def cmp_le(a: int, b: int, width: int) -> int:
    return int(to_signed(a, width) <= to_signed(b, width))


def cmp_gt(a: int, b: int, width: int) -> int:
    return int(to_signed(a, width) > to_signed(b, width))


def cmp_ge(a: int, b: int, width: int) -> int:
    return int(to_signed(a, width) >= to_signed(b, width))


def cmp_ult(a: int, b: int, width: int) -> int:
    return int(to_unsigned(a, width) < to_unsigned(b, width))


def cmp_uge(a: int, b: int, width: int) -> int:
    return int(to_unsigned(a, width) >= to_unsigned(b, width))


#: Dispatch tables keyed by mnemonic.
ALU_SEMANTICS: Dict[str, Callable[[int, int, int], int]] = {
    "ADD": add,
    "SUB": sub,
    "MUL": mul,
    "DIV": div,
    "REM": rem,
    "AND": and_,
    "OR": or_,
    "XOR": xor,
    "ANDCM": andcm,
    "SHL": shl,
    "SHR": shr,
    "SHRA": shra,
    "MIN": min_,
    "MAX": max_,
}

CMP_SEMANTICS: Dict[str, Callable[[int, int, int], int]] = {
    "CMPP_EQ": cmp_eq,
    "CMPP_NE": cmp_ne,
    "CMPP_LT": cmp_lt,
    "CMPP_LE": cmp_le,
    "CMPP_GT": cmp_gt,
    "CMPP_GE": cmp_ge,
    "CMPP_ULT": cmp_ult,
    "CMPP_UGE": cmp_uge,
}
