"""Operand kinds of the EPIC instruction word.

The SRC fields are "either literals or indices to registers" (paper
§3.1); DEST fields index general-purpose registers, predicate registers
(for CMPP) or branch-target registers (for PBR/MOVGBP); the PRED field
names the guarding predicate register.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class Reg:
    """General-purpose register operand (``r<index>``)."""

    index: int

    def __str__(self) -> str:
        return f"r{self.index}"


@dataclass(frozen=True)
class Pred:
    """Predicate register operand (``p<index>``); p0 is hardwired true."""

    index: int

    def __str__(self) -> str:
        return f"p{self.index}"


@dataclass(frozen=True)
class Btr:
    """Branch-target register operand (``b<index>``)."""

    index: int

    def __str__(self) -> str:
        return f"b{self.index}"


@dataclass(frozen=True)
class Lit:
    """Literal operand; the encoder checks it fits the SRC field."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


Operand = Union[Reg, Pred, Btr, Lit]

#: Calling convention of the toolchain (not mandated by the paper; any
#: fixed convention works since compiler and simulator share it).
REG_ZERO = 0   # hardwired zero
REG_SP = 1     # stack pointer
REG_RV = 2     # return value
REG_RA = 3     # return address (written by BRL)
FIRST_ARG_REG = 4
N_ARG_REGS = 6  # r4..r9 carry arguments
FIRST_TEMP_REG = 10

#: Predicate register 0 reads as constant true and ignores writes; it is
#: the default guard meaning "always execute".
PRED_TRUE = 0
