"""Instruction-set architecture of the customisable EPIC processor.

The ISA is "a proper subset of operations specified in the HPL-PD
architecture" (paper §3.1), focused on integer operations including
multiply and divide.  Every instruction is a fixed-width word laid out as
six fields (paper Fig. 1)::

    OPCODE | DEST1 | DEST2 | SRC1 | SRC2 | PRED
    15 bit | 6 bit | 6 bit | 16 b | 16 b | 5 bit   (64 bits, defaults)

Field widths are *parametric* (paper §3.3): a configuration with more than
64 registers automatically widens the register-index fields and therefore
the instruction word, mirroring the paper's "provision ... for such
adjustment".
"""

from repro.isa.opcodes import (
    FuClass,
    Opcode,
    OpcodeInfo,
    OpcodeTable,
    build_opcode_table,
)
from repro.isa.operands import Lit, Pred, Reg, Btr, Operand
from repro.isa.instruction import Instruction, nop
from repro.isa.bundle import Bundle, Program
from repro.isa.encoding import InstructionFormat
from repro.isa.custom import CustomOpSpec

__all__ = [
    "FuClass",
    "Opcode",
    "OpcodeInfo",
    "OpcodeTable",
    "build_opcode_table",
    "Lit",
    "Pred",
    "Reg",
    "Btr",
    "Operand",
    "Instruction",
    "nop",
    "Bundle",
    "Program",
    "InstructionFormat",
    "CustomOpSpec",
]
