"""Issue groups (bundles) and whole programs.

The compiler emits *bundles*: groups of up to ``issue_width`` operations
that the Fetch/Decode/Issue stage launches in one cycle (paper §3.2, "up
to four instructions are issued per clock cycle").  The program counter
addresses bundles; branch targets are bundle indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import EncodingError
from repro.isa.instruction import Instruction, nop


@dataclass(frozen=True)
class Bundle:
    """One issue group: instructions that launch in the same cycle."""

    slots: Tuple[Instruction, ...]

    def __post_init__(self) -> None:
        if not self.slots:
            raise EncodingError("bundle must contain at least one slot")

    def __len__(self) -> int:
        return len(self.slots)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.slots)

    def padded(self, width: int) -> "Bundle":
        """Pad with NOPs to exactly ``width`` slots (assembler duty)."""
        if len(self.slots) > width:
            raise EncodingError(
                f"bundle has {len(self.slots)} slots, exceeds issue width {width}"
            )
        missing = width - len(self.slots)
        return Bundle(self.slots + tuple(nop() for _ in range(missing)))

    @property
    def real_ops(self) -> Tuple[Instruction, ...]:
        """Slots that are not padding."""
        return tuple(instr for instr in self.slots if not instr.is_nop)

    def __str__(self) -> str:
        return " ;; ".join(str(instr) for instr in self.slots)


def make_bundle(instrs: Sequence[Instruction]) -> Bundle:
    return Bundle(tuple(instrs))


@dataclass
class Program:
    """An assembled EPIC program: bundles plus symbol/data images.

    ``labels`` maps symbolic names to bundle indices (code) — retained for
    disassembly and debugging.  ``data`` is the initial data-memory image
    (word-addressed); ``symbols`` maps data symbols to word addresses.
    ``entry`` is the starting bundle index.
    """

    bundles: List[Bundle]
    labels: Dict[str, int] = field(default_factory=dict)
    data: List[int] = field(default_factory=list)
    symbols: Dict[str, int] = field(default_factory=dict)
    entry: int = 0

    def __len__(self) -> int:
        return len(self.bundles)

    def __iter__(self) -> Iterator[Bundle]:
        return iter(self.bundles)

    @property
    def n_operations(self) -> int:
        """Number of non-NOP operations (static code size)."""
        return sum(len(bundle.real_ops) for bundle in self.bundles)

    @property
    def n_slots(self) -> int:
        """Total slots including NOP padding (encoded size / 64 bits)."""
        return sum(len(bundle) for bundle in self.bundles)

    def listing(self) -> str:
        """Human-readable listing with bundle addresses and labels."""
        by_address: Dict[int, List[str]] = {}
        for name, address in self.labels.items():
            by_address.setdefault(address, []).append(name)
        lines = []
        for address, bundle in enumerate(self.bundles):
            for name in sorted(by_address.get(address, [])):
                lines.append(f"{name}:")
            lines.append(f"  {address:5d}: {bundle}")
        return "\n".join(lines)
