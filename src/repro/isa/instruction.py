"""The :class:`Instruction` record shared by assembler, compiler and core.

An instruction is a mnemonic plus up to two destinations, two sources and
a guard predicate — a direct mirror of the six-field format of paper
Fig. 1.  Field interpretation is opcode-dependent:

===========  =======================  =======================  ==========
opcode       DEST1 / DEST2            SRC1 / SRC2              PRED
===========  =======================  =======================  ==========
ALU ops      GPR / unused             GPR or literal           guard
MOVI         GPR / unused             one full-width literal   guard
CMPP_*       predicate / predicate    GPR or literal           guard
LW, LWS      GPR / unused             base GPR, offset         guard
SW           GPR (value) / unused     base GPR, offset         guard
PBR          BTR / unused             literal target           guard
MOVGBP       BTR / unused             GPR                      guard
BR           unused                   BTR / unused             guard
BRCT/BRCF    unused                   BTR / condition pred     guard
BRL          GPR (link) / unused      BTR / unused             guard
===========  =======================  =======================  ==========
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa.operands import Btr, Lit, Operand, Pred, Reg, PRED_TRUE


@dataclass(frozen=True)
class Instruction:
    """One EPIC operation; immutable so bundles can be shared freely."""

    mnemonic: str
    dest1: Optional[Operand] = None
    dest2: Optional[Operand] = None
    src1: Optional[Operand] = None
    src2: Optional[Operand] = None
    guard: Pred = Pred(PRED_TRUE)
    #: Optional label this instruction's SRC1 literal refers to; resolved
    #: by the assembler before encoding (kept for disassembly/round-trip).
    target_label: Optional[str] = None

    def operands(self) -> Tuple[Optional[Operand], ...]:
        return (self.dest1, self.dest2, self.src1, self.src2)

    @property
    def is_nop(self) -> bool:
        return self.mnemonic == "NOP"

    def __str__(self) -> str:
        parts = [self.mnemonic]
        ops = [str(op) for op in (self.dest1, self.dest2) if op is not None]
        srcs = []
        for op in (self.src1, self.src2):
            if op is None:
                continue
            if isinstance(op, Lit) and self.target_label:
                srcs.append(self.target_label)
            else:
                srcs.append(str(op))
        rendered = ", ".join(ops + srcs)
        if rendered:
            parts.append(rendered)
        text = " ".join(parts)
        if self.guard.index != PRED_TRUE:
            text = f"({self.guard}) {text}"
        return text


def nop() -> Instruction:
    """A no-op, used by the assembler to pad issue groups (paper §4.2)."""
    return Instruction("NOP")


def guarded(instr: Instruction, pred: Pred) -> Instruction:
    """Return ``instr`` guarded by ``pred`` (if-conversion helper)."""
    return Instruction(
        mnemonic=instr.mnemonic,
        dest1=instr.dest1,
        dest2=instr.dest2,
        src1=instr.src1,
        src2=instr.src2,
        guard=pred,
        target_label=instr.target_label,
    )
