"""Wall-clock phase timers.

Host-side timing is observability, not simulation: nothing here affects
cycle counts.  A :class:`PhaseTimer` accumulates the wall-clock cost of
named phases (``compile``, ``specialise``, ``simulate``...), so the
benchmarking harness can separate one-time toolchain work from the
steady-state simulation rate.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator


class PhaseTimer:
    """Accumulating wall-clock timers keyed by phase name.

    >>> timer = PhaseTimer()
    >>> with timer.phase("compile"):
    ...     pass
    >>> "compile" in timer.seconds
    True

    Re-entering a phase name accumulates (repeated simulation runs add
    up); phases are remembered in first-use order for reporting.
    """

    def __init__(self) -> None:
        #: Accumulated seconds per phase, in first-use order.
        self.seconds: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one ``with`` block against ``name``."""
        start = perf_counter()
        try:
            yield
        finally:
            elapsed = perf_counter() - start
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    def add(self, name: str, seconds: float) -> None:
        """Fold an externally measured duration into ``name``."""
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def summary(self) -> str:
        """One line per phase, milliseconds, first-use order."""
        if not self.seconds:
            return "(no phases timed)"
        width = max(len(name) for name in self.seconds)
        return "\n".join(
            f"{name:<{width}} : {seconds * 1e3:9.1f} ms"
            for name, seconds in self.seconds.items()
        )


#: Smallest elapsed time treated as a measurement (seconds).  Quick
#: bench cells can finish inside the timer's resolution; dividing by a
#: near-zero elapsed time would report absurd rates, so anything below
#: this is reported as unmeasurable instead.
MIN_MEASURABLE_SECONDS = 1e-6


def kcycles_per_second(cycles: int, seconds: float) -> float:
    """Simulated kilocycles per host second (0.0 for unmeasurable runs).

    Sub-resolution timings (zero or near-zero elapsed, below
    :data:`MIN_MEASURABLE_SECONDS`) yield 0.0 rather than a rate
    dominated by timer noise.
    """
    if seconds < MIN_MEASURABLE_SECONDS:
        return 0.0
    return cycles / seconds / 1e3
