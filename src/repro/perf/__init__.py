"""Host-performance observability for the toolchain and simulator.

The paper's evaluation counts *simulated* clock cycles; this package
watches the other axis — how much host wall-clock the toolchain and the
two simulator paths spend producing those cycles.  It provides

* :class:`PhaseTimer` — named wall-clock phase timers (compile,
  specialise, simulate, ...) with accumulation across repeats, and
* :func:`kcycles_per_second` — the simulated-throughput figure of merit
  (simulated kilocycles per host second),

plus the ``repro-bench`` command (:mod:`repro.perf.bench`), which runs
the Table-1 sweep on both execution engines, asserts they agree
bit-for-bit, and records the speedup in ``BENCH_table1.json``.
"""

from repro.perf.timers import PhaseTimer, kcycles_per_second

__all__ = ["PhaseTimer", "kcycles_per_second"]
