"""``repro-bench``: host-performance benchmark of the simulator paths.

Runs the paper's Table-1 sweep (four workloads x EPIC ALU presets) on
*both* execution engines — the instrumented reference loop and the
pre-specialised fast path — and for every cell:

* asserts the two engines produced bit-identical cycle counts and
  statistics (the cycle-exactness guarantee, re-checked on every
  benchmarking run, not just in the test suite),
* validates the architectural outputs of both runs against the
  workload's golden reference, and
* records wall-clock timings per phase (compile, specialise, simulate)
  plus the fast path's simulated-kcycles-per-host-second rate.

The resulting JSON (``BENCH_table1.json`` by default) is the artifact
behind the "fast path is at least 2x" claim; ``--check`` compares the
simulated cycle counts against a checked-in golden file so CI catches
timing-model drift.

Examples::

    repro-bench                          # full sweep -> BENCH_table1.json
    repro-bench --quick --out BENCH_quick.json
    repro-bench --quick --check benchmarks/golden_bench_quick.json
"""

from __future__ import annotations

import argparse
import json
import sys
from time import perf_counter
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.backend import compile_minic_to_epic
from repro.config import epic_with_alus
from repro.core import EpicProcessor
from repro.core.stats import SimStats
from repro.errors import ReproError, SimulationError
from repro.harness.cli import quick_specs
from repro.harness.runner import check_outputs
from repro.harness.tables import BENCHMARK_ORDER
from repro.perf.timers import PhaseTimer, kcycles_per_second
from repro.workloads import WORKLOADS, WorkloadSpec

#: File the full sweep writes (the repo-root benchmarking artifact).
DEFAULT_OUT = "BENCH_table1.json"


def stats_fingerprint(stats: SimStats) -> Dict[str, object]:
    """Every counter the two engines must agree on, as a dict."""
    return {
        "cycles": stats.cycles,
        "bundles": stats.bundles,
        "ops_executed": stats.ops_executed,
        "ops_squashed": stats.ops_squashed,
        "nops": stats.nops,
        "branches": stats.branches,
        "branches_taken": stats.branches_taken,
        "memory_reads": stats.memory_reads,
        "memory_writes": stats.memory_writes,
        "port_stall_cycles": stats.port_stall_cycles,
        "fetch_stall_cycles": stats.fetch_stall_cycles,
        "branch_bubble_cycles": stats.branch_bubble_cycles,
        "regfile_reads": stats.regfile_reads,
        "regfile_reads_forwarded": stats.regfile_reads_forwarded,
        "regfile_writes": stats.regfile_writes,
        "traps": stats.traps,
        "fu_busy": dict(sorted(stats.fu_busy.items())),
    }


def _validated(spec: WorkloadSpec, machine_name: str, cpu: EpicProcessor,
               symbols: Dict[str, int]) -> None:
    def read_global(name: str, count: int) -> List[int]:
        base = symbols[name]
        return [cpu.memory.read(base + i) for i in range(count)]

    check_outputs(spec.name, machine_name, spec, read_global,
                  cpu.gpr.read(2))


class CompileCache:
    """Memoises MiniC→EPIC compilation per (workload, config) pair.

    Both engines of a bench cell — and any repeat of the same cell in
    one sweep — share a single compilation.  ``compiles``/``hits``
    are the accounting the tests assert on: every distinct (workload
    instance, config digest) pair must compile exactly once.
    """

    def __init__(self) -> None:
        self._store: Dict[tuple, object] = {}
        self.compiles = 0
        self.hits = 0

    def get(self, spec: WorkloadSpec, config) -> object:
        key = (spec.name, tuple(spec.instance_args), config.digest())
        compilation = self._store.get(key)
        if compilation is None:
            compilation = compile_minic_to_epic(spec.source, config)
            self._store[key] = compilation
            self.compiles += 1
        else:
            self.hits += 1
        return compilation

    def stats(self) -> Dict[str, int]:
        return {"compiles": self.compiles, "hits": self.hits,
                "pairs": len(self._store)}


def bench_cell(spec: WorkloadSpec, n_alus: int,
               max_cycles: int = 200_000_000,
               compile_cache: Optional[CompileCache] = None
               ) -> Dict[str, object]:
    """Benchmark one (workload, EPIC preset) cell on both engines."""
    config = epic_with_alus(n_alus)
    machine_name = f"EPIC-{n_alus}ALU"
    timer = PhaseTimer()

    with timer.phase("compile"):
        if compile_cache is not None:
            compilation = compile_cache.get(spec, config)
        else:
            compilation = compile_minic_to_epic(spec.source, config)

    slow = EpicProcessor(config, compilation.program,
                         mem_words=spec.mem_words)
    with timer.phase("simulate-instrumented"):
        slow_result = slow.run(max_cycles=max_cycles, fast=False)
    _validated(spec, machine_name, slow, compilation.symbols)

    fast = EpicProcessor(config, compilation.program,
                         mem_words=spec.mem_words)
    with timer.phase("specialise"):
        engine = fast._fast_sim()
    if engine is None:
        raise SimulationError(
            f"{spec.name} on {machine_name}: compiled program is not "
            "eligible for the fast path (specialiser rejected it)"
        )
    with timer.phase("simulate-fast"):
        fast_result = fast.run(max_cycles=max_cycles, fast=True)
    _validated(spec, machine_name, fast, compilation.symbols)

    slow_print = stats_fingerprint(slow.stats)
    fast_print = stats_fingerprint(fast.stats)
    if slow_result.cycles != fast_result.cycles or slow_print != fast_print:
        raise SimulationError(
            f"{spec.name} on {machine_name}: fast path diverged from the "
            f"instrumented path (cycles {fast_result.cycles} vs "
            f"{slow_result.cycles}) — cycle-exactness violation"
        )

    seconds = timer.seconds
    slow_s = seconds["simulate-instrumented"]
    fast_s = seconds["simulate-fast"]
    return {
        "benchmark": spec.name,
        "machine": machine_name,
        "cycles": slow_result.cycles,
        "ilp": round(slow.stats.ilp, 4),
        "fingerprint": slow_print,
        "compile_seconds": seconds["compile"],
        "specialise_seconds": seconds["specialise"],
        "instrumented_seconds": slow_s,
        "fast_seconds": fast_s,
        "speedup": (slow_s / fast_s) if fast_s > 0.0 else 0.0,
        "fast_kcycles_per_host_second":
            round(kcycles_per_second(fast_result.cycles, fast_s), 1),
        "instrumented_kcycles_per_host_second":
            round(kcycles_per_second(slow_result.cycles, slow_s), 1),
    }


#: Per-cell timing fields measured on the host (never cached, never
#: part of the determinism contract).
TIMING_FIELDS = (
    "compile_seconds", "specialise_seconds", "instrumented_seconds",
    "fast_seconds", "speedup", "fast_kcycles_per_host_second",
    "instrumented_kcycles_per_host_second",
)


def run_bench(specs: Sequence[WorkloadSpec],
              alu_counts: Iterable[int] = (1, 2, 3, 4),
              quick: bool = False,
              max_cycles: int = 200_000_000,
              progress: Optional[Callable[[str], None]] = None,
              on_cell: Optional[Callable[[Dict[str, object]], None]] = None,
              executor=None) -> Dict[str, object]:
    """Run the sweep; returns the JSON-serialisable report payload.

    Compilation is hoisted into a :class:`CompileCache`: each distinct
    (workload, configuration) pair compiles exactly once per process no
    matter how many engines or repeated cells consume it; the counts
    appear under ``summary.compile_cache``.

    ``on_cell`` fires with each finished cell's record (completion
    order under a parallel ``executor``).  With an ``executor`` the
    cells fan out through :mod:`repro.serve`; the deterministic part of
    the report (see :func:`deterministic_report`) is byte-identical to
    a serial run's, while the timing fields are measured inside each
    worker.
    """
    alu_counts = list(alu_counts)
    cells = [(spec, n_alus) for spec in specs for n_alus in alu_counts]
    started = perf_counter()
    compile_cache = CompileCache()

    if executor is None:
        runs: List[Dict[str, object]] = []
        for spec, n_alus in cells:
            if progress:
                progress(f"{spec.name} on EPIC-{n_alus}ALU ...")
            cell = bench_cell(spec, n_alus, max_cycles=max_cycles,
                              compile_cache=compile_cache)
            runs.append(cell)
            if on_cell is not None:
                on_cell(cell)
    else:
        from repro.config import epic_with_alus as _preset
        from repro.serve import bench_job, raise_for_failures, run_jobs

        jobs = [bench_job(spec, _preset(n_alus), max_cycles=max_cycles)
                for spec, n_alus in cells]

        def rebuild(outcome) -> Dict[str, object]:
            cell: Dict[str, object] = dict(outcome.payload)
            meta = outcome.meta or {}
            for field in TIMING_FIELDS:
                cell[field] = meta.get(field)
            return cell

        def handle(outcome) -> None:
            if not outcome.ok:
                return
            cell = rebuild(outcome)
            if progress:
                progress(f"{cell['benchmark']} on {cell['machine']} done")
            if on_cell is not None:
                on_cell(cell)

        job_outcomes = run_jobs(jobs, executor=executor, on_result=handle)
        raise_for_failures(job_outcomes)
        runs = [rebuild(outcome) for outcome in job_outcomes]

    timed = [run for run in runs
             if run.get("fast_seconds") is not None]
    total_slow = sum(run["instrumented_seconds"] for run in timed)
    total_fast = sum(run["fast_seconds"] for run in timed)
    speedups = [run["speedup"] for run in timed]
    geomean = 1.0
    for value in speedups:
        geomean *= value
    geomean **= (1.0 / len(speedups)) if speedups else 1.0
    return {
        "generated_by": "repro-bench",
        "quick": quick,
        "alus": alu_counts,
        "benchmarks": [spec.name for spec in specs],
        "runs": runs,
        "summary": {
            "total_instrumented_seconds": total_slow,
            "total_fast_seconds": total_fast,
            "overall_speedup":
                (total_slow / total_fast) if total_fast > 0.0 else 0.0,
            "min_speedup": min(speedups) if speedups else 0.0,
            "geomean_speedup": geomean,
            "wall_seconds": perf_counter() - started,
            "compile_cache": compile_cache.stats(),
        },
    }


def deterministic_report(payload: Dict[str, object]) -> Dict[str, object]:
    """The scheduling-independent projection of a bench report.

    Exactly the fields the determinism contract covers — simulated
    cycles, ILP and the full statistics fingerprint per cell — sorted
    by cell name.  Serial, parallel and cache-replayed runs of the same
    sweep must produce byte-identical renderings of this projection;
    host timings are deliberately excluded.
    """
    cells = {
        f"{run['benchmark']}/{run['machine']}": {
            "cycles": run["cycles"],
            "ilp": run["ilp"],
            "fingerprint": run["fingerprint"],
        }
        for run in payload["runs"]
    }
    return {
        "quick": bool(payload.get("quick")),
        "cells": {name: cells[name] for name in sorted(cells)},
    }


def cycles_by_cell(payload: Dict[str, object]) -> Dict[str, int]:
    """``"SHA/EPIC-1ALU" -> cycles`` map of a report payload."""
    return {
        f"{run['benchmark']}/{run['machine']}": run["cycles"]
        for run in payload["runs"]
    }


def check_against_golden(payload: Dict[str, object],
                         golden: Dict[str, object]) -> List[str]:
    """Simulated-cycle drift between a report and a golden file.

    Returns human-readable drift descriptions (empty == clean).  Only
    cells present in both are compared, so a golden file for a subset
    of benchmarks also guards a superset run.

    A golden file that records its input sizes (a ``"quick"`` key) is
    only compared against a run of the same size: cell names carry the
    benchmark and machine but not the workload size, so a quick golden
    checked against a full-size sweep would mis-report every cell as
    drifted when nothing but the input size differs.
    """
    if "quick" in golden and bool(golden["quick"]) != bool(
            payload.get("quick")):
        want = "quick" if golden["quick"] else "full-size"
        got = "quick" if payload.get("quick") else "full-size"
        return [
            f"golden file records a {want} sweep but this run is {got}: "
            "cycle counts are not comparable (re-run with matching "
            "input sizes)"
        ]
    measured = cycles_by_cell(payload)
    expected = golden["cycles"] if "cycles" in golden \
        else cycles_by_cell(golden)
    problems = []
    for cell, cycles in sorted(expected.items()):
        if cell not in measured:
            problems.append(f"{cell}: missing from this run")
        elif measured[cell] != cycles:
            problems.append(
                f"{cell}: {measured[cell]} cycles, golden says {cycles}"
            )
    return problems


def render_report(payload: Dict[str, object]) -> str:
    header = (
        f"{'benchmark':<10} {'machine':<11} {'cycles':>10} "
        f"{'slow ms':>9} {'fast ms':>9} {'speedup':>8} {'kcyc/s':>9}"
    )
    lines = [header]
    for run in payload["runs"]:
        if run.get("fast_seconds") is None:
            lines.append(
                f"{run['benchmark']:<10} {run['machine']:<11} "
                f"{run['cycles']:>10} {'(cached — no timings)':>38}"
            )
            continue
        lines.append(
            f"{run['benchmark']:<10} {run['machine']:<11} "
            f"{run['cycles']:>10} "
            f"{run['instrumented_seconds'] * 1e3:>9.1f} "
            f"{run['fast_seconds'] * 1e3:>9.1f} "
            f"{run['speedup']:>7.2f}x "
            f"{run['fast_kcycles_per_host_second']:>9.1f}"
        )
    summary = payload["summary"]
    lines.append(
        f"overall speedup {summary['overall_speedup']:.2f}x "
        f"(min {summary['min_speedup']:.2f}x, "
        f"geomean {summary['geomean_speedup']:.2f}x)"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Benchmark the fast simulator path against the "
                    "instrumented reference on the Table-1 sweep.",
    )
    parser.add_argument("--bench", nargs="*", default=list(BENCHMARK_ORDER),
                        choices=list(BENCHMARK_ORDER),
                        help="benchmarks to run")
    parser.add_argument("--alus", nargs="*", type=int, default=[1, 2, 3, 4],
                        help="ALU counts to evaluate")
    parser.add_argument("--quick", action="store_true",
                        help="use reduced input sizes")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    parser.add_argument("--check", metavar="GOLDEN",
                        help="fail if simulated cycle counts drift from "
                             "this golden JSON file")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan cells out over N worker processes "
                             "via repro.serve (default: serial)")
    parser.add_argument("--verbose", action="store_true",
                        help="print a result line for every finished "
                             "cell (cycles + speedup)")
    arguments = parser.parse_args(argv)

    if arguments.jobs < 1:
        print("repro-bench: --jobs must be >= 1", file=sys.stderr)
        return 2

    if arguments.quick:
        specs = quick_specs(arguments.bench)
    else:
        specs = [WORKLOADS[name]() for name in arguments.bench]

    executor = None
    if arguments.jobs > 1:
        from repro.serve import PoolExecutor

        executor = PoolExecutor(jobs=arguments.jobs)

    def on_cell(cell: Dict[str, object]) -> None:
        if not arguments.verbose:
            return
        speedup = cell.get("speedup")
        timing = f"{speedup:.2f}x" if speedup is not None else "n/a"
        print(f"  {cell['benchmark']} on {cell['machine']}: "
              f"{cell['cycles']} cycles, speedup {timing}",
              file=sys.stderr)

    try:
        payload = run_bench(
            specs, alu_counts=arguments.alus, quick=arguments.quick,
            progress=lambda message: print(f"  {message}", file=sys.stderr),
            on_cell=on_cell,
            executor=executor,
        )
    except ReproError as error:
        print(f"repro-bench: {error}", file=sys.stderr)
        return 1

    with open(arguments.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(render_report(payload))
    print(f"report written to {arguments.out}")

    if arguments.check:
        with open(arguments.check, "r", encoding="utf-8") as handle:
            golden = json.load(handle)
        problems = check_against_golden(payload, golden)
        if problems:
            print(f"repro-bench: cycle drift against {arguments.check}:",
                  file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print(f"cycle counts match {arguments.check}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
