"""``repro-bench``: host-performance benchmark of the simulator paths.

Runs the paper's Table-1 sweep (four workloads x EPIC ALU presets) on
the execution engines — the instrumented reference loop, the
pre-specialised fast path, and the profile-guided trace engine — and
for every cell:

* asserts the engines produced bit-identical cycle counts and
  statistics (the cycle-exactness guarantee, re-checked on every
  benchmarking run, not just in the test suite),
* validates the architectural outputs of every run against the
  workload's golden reference, and
* records wall-clock timings per phase (compile, specialise,
  trace-compile, simulate) plus each engine's
  simulated-kcycles-per-host-second rate.

The trace engine is a JIT: its ``simulate-trace`` timing is taken on a
second, warm run (the warm-up run that compiles the hot superblocks is
reported separately as ``trace_compile_seconds``), mirroring how
``specialise`` is split out for the fast path.

The resulting JSON (``BENCH_table1.json`` by default) is the artifact
behind the "fast path is at least 2x" claim; ``--check`` compares the
simulated cycle counts against a checked-in golden file so CI catches
timing-model drift, and ``--gate-trace-speedup`` turns the
trace-vs-fast ratio into a hard pass/fail criterion.

Examples::

    repro-bench                          # full sweep -> BENCH_table1.json
    repro-bench --quick --out BENCH_quick.json
    repro-bench --quick --check benchmarks/golden_bench_quick.json
    repro-bench --engine all --gate-trace-speedup 1.5
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from time import perf_counter
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.backend import compile_minic_to_epic
from repro.config import epic_with_alus
from repro.core import EpicProcessor
from repro.core.stats import SimStats
from repro.core.tracejit import TraceCache
from repro.errors import ReproError, SimulationError
from repro.harness.cli import quick_specs
from repro.harness.runner import check_outputs
from repro.harness.tables import BENCHMARK_ORDER
from repro.perf.timers import PhaseTimer, kcycles_per_second
from repro.workloads import WORKLOADS, WorkloadSpec

#: File the full sweep writes (the repo-root benchmarking artifact).
DEFAULT_OUT = "BENCH_table1.json"

#: Engines a bench cell can run, in reporting order.
BENCH_ENGINES = ("instrumented", "fast", "trace")


def stats_fingerprint(stats: SimStats) -> Dict[str, object]:
    """Every counter the two engines must agree on, as a dict."""
    return {
        "cycles": stats.cycles,
        "bundles": stats.bundles,
        "ops_executed": stats.ops_executed,
        "ops_squashed": stats.ops_squashed,
        "nops": stats.nops,
        "branches": stats.branches,
        "branches_taken": stats.branches_taken,
        "memory_reads": stats.memory_reads,
        "memory_writes": stats.memory_writes,
        "port_stall_cycles": stats.port_stall_cycles,
        "fetch_stall_cycles": stats.fetch_stall_cycles,
        "branch_bubble_cycles": stats.branch_bubble_cycles,
        "regfile_reads": stats.regfile_reads,
        "regfile_reads_forwarded": stats.regfile_reads_forwarded,
        "regfile_writes": stats.regfile_writes,
        "traps": stats.traps,
        "fu_busy": dict(sorted(stats.fu_busy.items())),
    }


def _validated(spec: WorkloadSpec, machine_name: str, cpu: EpicProcessor,
               symbols: Dict[str, int]) -> None:
    def read_global(name: str, count: int) -> List[int]:
        base = symbols[name]
        return [cpu.memory.read(base + i) for i in range(count)]

    check_outputs(spec.name, machine_name, spec, read_global,
                  cpu.gpr.read(2))


class CompileCache:
    """Memoises MiniC→EPIC compilation per (workload, config) pair.

    Both engines of a bench cell — and any repeat of the same cell in
    one sweep — share a single compilation.  ``compiles``/``hits``
    are the accounting the tests assert on: every distinct (workload
    instance, config digest) pair must compile exactly once.
    """

    def __init__(self) -> None:
        self._store: Dict[tuple, object] = {}
        self._trace_caches: Dict[tuple, TraceCache] = {}
        self.compiles = 0
        self.hits = 0

    def get(self, spec: WorkloadSpec, config) -> object:
        key = (spec.name, tuple(spec.instance_args), config.digest())
        compilation = self._store.get(key)
        if compilation is None:
            compilation = compile_minic_to_epic(spec.source, config)
            self._store[key] = compilation
            self.compiles += 1
        else:
            self.hits += 1
        return compilation

    def trace_cache(self, spec: WorkloadSpec, config) -> TraceCache:
        """The per-(workload, config) superblock cache for trace cells.

        Repeated cells — and the warm-up/timed run pair inside one cell
        — share compiled traces the same way they share a compilation.
        """
        key = (spec.name, tuple(spec.instance_args), config.digest())
        cache = self._trace_caches.get(key)
        if cache is None:
            cache = self._trace_caches[key] = TraceCache()
        return cache

    def stats(self) -> Dict[str, int]:
        return {"compiles": self.compiles, "hits": self.hits,
                "pairs": len(self._store)}

    def trace_stats(self) -> Dict[str, int]:
        """Aggregated :meth:`TraceCache.stats` across all pairs."""
        totals = {"traces": 0, "compiles": 0, "hits": 0, "invalidations": 0}
        for cache in self._trace_caches.values():
            for key, value in cache.stats().items():
                totals[key] += value
        return totals


def _engine_guard(spec: WorkloadSpec, machine_name: str,
                  cpu: EpicProcessor, expected: str) -> None:
    """Warn when the engine that actually ran is not the one asked for.

    ``EpicProcessor.run`` records ``last_engine``; a mismatch means the
    cell's timing column is mislabelled (e.g. a silent fallback), which
    must never pass unnoticed in a benchmarking artifact.
    """
    if cpu.last_engine != expected:
        warnings.warn(
            f"{spec.name} on {machine_name}: requested the {expected} "
            f"engine but {cpu.last_engine!r} ran — timings mislabelled",
            RuntimeWarning,
            stacklevel=2,
        )


def bench_cell(spec: WorkloadSpec, n_alus: int,
               max_cycles: int = 200_000_000,
               compile_cache: Optional[CompileCache] = None,
               engines: Sequence[str] = BENCH_ENGINES
               ) -> Dict[str, object]:
    """Benchmark one (workload, EPIC preset) cell on ``engines``.

    Every engine that runs is validated against the workload's golden
    outputs, and all engines that ran are cross-checked for the
    bit-identical cycles/statistics contract.  Timing fields of engines
    that were not selected come back as ``None``.
    """
    for engine in engines:
        if engine not in BENCH_ENGINES:
            raise SimulationError(
                f"unknown bench engine {engine!r}: expected a subset of "
                f"{', '.join(BENCH_ENGINES)}"
            )
    config = epic_with_alus(n_alus)
    machine_name = f"EPIC-{n_alus}ALU"
    timer = PhaseTimer()

    with timer.phase("compile"):
        if compile_cache is not None:
            compilation = compile_cache.get(spec, config)
        else:
            compilation = compile_minic_to_epic(spec.source, config)

    results: Dict[str, object] = {}
    prints: Dict[str, Dict[str, object]] = {}
    ilp = None

    if "instrumented" in engines:
        slow = EpicProcessor(config, compilation.program,
                             mem_words=spec.mem_words)
        with timer.phase("simulate-instrumented"):
            results["instrumented"] = slow.run(
                max_cycles=max_cycles, engine="reference")
        _engine_guard(spec, machine_name, slow, "instrumented")
        _validated(spec, machine_name, slow, compilation.symbols)
        prints["instrumented"] = stats_fingerprint(slow.stats)
        ilp = slow.stats.ilp

    if "fast" in engines:
        fast = EpicProcessor(config, compilation.program,
                             mem_words=spec.mem_words)
        with timer.phase("specialise"):
            engine = fast._fast_sim()
        if engine is None:
            raise SimulationError(
                f"{spec.name} on {machine_name}: compiled program is not "
                "eligible for the fast path (specialiser rejected it)"
            )
        with timer.phase("simulate-fast"):
            results["fast"] = fast.run(max_cycles=max_cycles, engine="fast")
        _engine_guard(spec, machine_name, fast, "fast")
        _validated(spec, machine_name, fast, compilation.symbols)
        prints["fast"] = stats_fingerprint(fast.stats)
        if ilp is None:
            ilp = fast.stats.ilp

    if "trace" in engines:
        if compile_cache is not None:
            trace_cache = compile_cache.trace_cache(spec, config)
        else:
            trace_cache = TraceCache()
        # Warm-up runs: profile the hot paths and compile superblocks
        # into the shared cache.  A warm start shifts which branches
        # the profiler observes (trace linking discovers side-exit
        # continuations chain by chain), so one run's trace set need
        # not be a fixpoint — iterate until the cache stops growing,
        # keeping the timed run below free of compilation.  Validated
        # like any other run: JIT warm-up is not exempt from the
        # correctness contract.
        with timer.phase("trace-compile"):
            for _ in range(8):
                known = trace_cache.stats()["traces"]
                warm = EpicProcessor(config, compilation.program,
                                     mem_words=spec.mem_words,
                                     trace_cache=trace_cache)
                if warm._trace_sim() is None:
                    raise SimulationError(
                        f"{spec.name} on {machine_name}: compiled program "
                        "is not eligible for the trace engine "
                        "(specialiser rejected it)"
                    )
                warm.run(max_cycles=max_cycles, engine="trace")
                if trace_cache.stats()["traces"] == known:
                    break
        _validated(spec, machine_name, warm, compilation.symbols)
        tracer = EpicProcessor(config, compilation.program,
                               mem_words=spec.mem_words,
                               trace_cache=trace_cache)
        with timer.phase("trace-compile"):
            tracer._trace_sim()  # engine construction stays untimed
        with timer.phase("simulate-trace"):
            results["trace"] = tracer.run(
                max_cycles=max_cycles, engine="trace")
        _engine_guard(spec, machine_name, tracer, "trace")
        _validated(spec, machine_name, tracer, compilation.symbols)
        prints["trace"] = stats_fingerprint(tracer.stats)
        if ilp is None:
            ilp = tracer.stats.ilp

    ran = [name for name in BENCH_ENGINES if name in prints]
    reference_engine = ran[0]
    reference_print = prints[reference_engine]
    for name in ran[1:]:
        if prints[name] != reference_print:
            raise SimulationError(
                f"{spec.name} on {machine_name}: {name} engine diverged "
                f"from the {reference_engine} engine (cycles "
                f"{prints[name]['cycles']} vs {reference_print['cycles']}) "
                "— cycle-exactness violation"
            )

    cycles = results[reference_engine].cycles
    seconds = timer.seconds
    slow_s = seconds.get("simulate-instrumented")
    fast_s = seconds.get("simulate-fast")
    trace_s = seconds.get("simulate-trace")

    def ratio(numerator, denominator):
        if numerator is None or denominator is None:
            return None
        return (numerator / denominator) if denominator > 0.0 else 0.0

    def rate(elapsed):
        if elapsed is None:
            return None
        return round(kcycles_per_second(cycles, elapsed), 1)

    return {
        "benchmark": spec.name,
        "machine": machine_name,
        "cycles": cycles,
        "ilp": round(ilp, 4),
        "fingerprint": reference_print,
        "compile_seconds": seconds["compile"],
        "specialise_seconds": seconds.get("specialise"),
        "trace_compile_seconds": seconds.get("trace-compile"),
        "instrumented_seconds": slow_s,
        "fast_seconds": fast_s,
        "trace_seconds": trace_s,
        "speedup": ratio(slow_s, fast_s),
        "trace_speedup": ratio(slow_s, trace_s),
        "trace_vs_fast_speedup": ratio(fast_s, trace_s),
        "fast_kcycles_per_host_second": rate(fast_s),
        "instrumented_kcycles_per_host_second": rate(slow_s),
        "trace_kcycles_per_host_second": rate(trace_s),
    }


#: Per-cell timing fields measured on the host (never cached, never
#: part of the determinism contract).
TIMING_FIELDS = (
    "compile_seconds", "specialise_seconds", "trace_compile_seconds",
    "instrumented_seconds", "fast_seconds", "trace_seconds",
    "speedup", "trace_speedup", "trace_vs_fast_speedup",
    "fast_kcycles_per_host_second",
    "instrumented_kcycles_per_host_second",
    "trace_kcycles_per_host_second",
)


def _job_engine(engines: Sequence[str]) -> str:
    """The :class:`~repro.serve.jobspec.JobSpec` engine naming a set."""
    selected = tuple(name for name in BENCH_ENGINES if name in engines)
    if selected == BENCH_ENGINES:
        return "all"
    if selected == ("instrumented", "fast"):
        return "both"
    if len(selected) == 1:
        return {"instrumented": "reference"}.get(selected[0], selected[0])
    raise SimulationError(
        f"engine selection {selected!r} has no served spelling: use a "
        "single engine, ('instrumented', 'fast'), or all three"
    )


def run_bench(specs: Sequence[WorkloadSpec],
              alu_counts: Iterable[int] = (1, 2, 3, 4),
              quick: bool = False,
              max_cycles: int = 200_000_000,
              progress: Optional[Callable[[str], None]] = None,
              on_cell: Optional[Callable[[Dict[str, object]], None]] = None,
              executor=None,
              engines: Sequence[str] = BENCH_ENGINES) -> Dict[str, object]:
    """Run the sweep; returns the JSON-serialisable report payload.

    Compilation is hoisted into a :class:`CompileCache`: each distinct
    (workload, configuration) pair compiles exactly once per process no
    matter how many engines or repeated cells consume it; the counts
    appear under ``summary.compile_cache``.

    ``on_cell`` fires with each finished cell's record (completion
    order under a parallel ``executor``).  With an ``executor`` the
    cells fan out through :mod:`repro.serve`; the deterministic part of
    the report (see :func:`deterministic_report`) is byte-identical to
    a serial run's, while the timing fields are measured inside each
    worker.
    """
    alu_counts = list(alu_counts)
    cells = [(spec, n_alus) for spec in specs for n_alus in alu_counts]
    started = perf_counter()
    compile_cache = CompileCache()

    if executor is None:
        runs: List[Dict[str, object]] = []
        for spec, n_alus in cells:
            if progress:
                progress(f"{spec.name} on EPIC-{n_alus}ALU ...")
            cell = bench_cell(spec, n_alus, max_cycles=max_cycles,
                              compile_cache=compile_cache, engines=engines)
            runs.append(cell)
            if on_cell is not None:
                on_cell(cell)
    else:
        from repro.config import epic_with_alus as _preset
        from repro.serve import bench_job, raise_for_failures, run_jobs

        job_engine = _job_engine(engines)
        jobs = [bench_job(spec, _preset(n_alus), max_cycles=max_cycles,
                          engine=job_engine)
                for spec, n_alus in cells]

        def rebuild(outcome) -> Dict[str, object]:
            cell: Dict[str, object] = dict(outcome.payload)
            meta = outcome.meta or {}
            for field in TIMING_FIELDS:
                cell[field] = meta.get(field)
            return cell

        def handle(outcome) -> None:
            if not outcome.ok:
                return
            cell = rebuild(outcome)
            if progress:
                progress(f"{cell['benchmark']} on {cell['machine']} done")
            if on_cell is not None:
                on_cell(cell)

        job_outcomes = run_jobs(jobs, executor=executor, on_result=handle)
        raise_for_failures(job_outcomes)
        runs = [rebuild(outcome) for outcome in job_outcomes]

    def _geomean(values: List[float]) -> float:
        product = 1.0
        for value in values:
            product *= value
        return product ** (1.0 / len(values)) if values else 1.0

    timed = [run for run in runs
             if run.get("fast_seconds") is not None
             and run.get("instrumented_seconds") is not None]
    total_slow = sum(run["instrumented_seconds"] for run in timed)
    total_fast = sum(run["fast_seconds"] for run in timed)
    speedups = [run["speedup"] for run in timed]
    traced = [run for run in runs
              if run.get("trace_seconds") is not None
              and run.get("fast_seconds") is not None]
    total_trace = sum(run["trace_seconds"] for run in traced)
    total_fast_traced = sum(run["fast_seconds"] for run in traced)
    trace_ratios = [run["trace_vs_fast_speedup"] for run in traced]
    return {
        "generated_by": "repro-bench",
        "quick": quick,
        "alus": alu_counts,
        "benchmarks": [spec.name for spec in specs],
        "engines": [name for name in BENCH_ENGINES if name in engines],
        "runs": runs,
        "summary": {
            "total_instrumented_seconds": total_slow,
            "total_fast_seconds": total_fast,
            "total_trace_seconds": total_trace,
            "overall_speedup":
                (total_slow / total_fast) if total_fast > 0.0 else 0.0,
            "min_speedup": min(speedups) if speedups else 0.0,
            "geomean_speedup": _geomean(speedups),
            "overall_trace_vs_fast_speedup":
                (total_fast_traced / total_trace)
                if total_trace > 0.0 else 0.0,
            "min_trace_vs_fast_speedup":
                min(trace_ratios) if trace_ratios else 0.0,
            "geomean_trace_vs_fast_speedup": _geomean(trace_ratios),
            "wall_seconds": perf_counter() - started,
            "compile_cache": compile_cache.stats(),
            "trace_cache": compile_cache.trace_stats(),
        },
    }


def deterministic_report(payload: Dict[str, object]) -> Dict[str, object]:
    """The scheduling-independent projection of a bench report.

    Exactly the fields the determinism contract covers — simulated
    cycles, ILP and the full statistics fingerprint per cell — sorted
    by cell name.  Serial, parallel and cache-replayed runs of the same
    sweep must produce byte-identical renderings of this projection;
    host timings are deliberately excluded.
    """
    cells = {
        f"{run['benchmark']}/{run['machine']}": {
            "cycles": run["cycles"],
            "ilp": run["ilp"],
            "fingerprint": run["fingerprint"],
        }
        for run in payload["runs"]
    }
    return {
        "quick": bool(payload.get("quick")),
        "cells": {name: cells[name] for name in sorted(cells)},
    }


def cycles_by_cell(payload: Dict[str, object]) -> Dict[str, int]:
    """``"SHA/EPIC-1ALU" -> cycles`` map of a report payload."""
    return {
        f"{run['benchmark']}/{run['machine']}": run["cycles"]
        for run in payload["runs"]
    }


def check_against_golden(payload: Dict[str, object],
                         golden: Dict[str, object]) -> List[str]:
    """Simulated-cycle drift between a report and a golden file.

    Returns human-readable drift descriptions (empty == clean).  Only
    cells present in both are compared, so a golden file for a subset
    of benchmarks also guards a superset run.

    A golden file that records its input sizes (a ``"quick"`` key) is
    only compared against a run of the same size: cell names carry the
    benchmark and machine but not the workload size, so a quick golden
    checked against a full-size sweep would mis-report every cell as
    drifted when nothing but the input size differs.
    """
    if "quick" in golden and bool(golden["quick"]) != bool(
            payload.get("quick")):
        want = "quick" if golden["quick"] else "full-size"
        got = "quick" if payload.get("quick") else "full-size"
        return [
            f"golden file records a {want} sweep but this run is {got}: "
            "cycle counts are not comparable (re-run with matching "
            "input sizes)"
        ]
    measured = cycles_by_cell(payload)
    expected = golden["cycles"] if "cycles" in golden \
        else cycles_by_cell(golden)
    problems = []
    for cell, cycles in sorted(expected.items()):
        if cell not in measured:
            problems.append(f"{cell}: missing from this run")
        elif measured[cell] != cycles:
            problems.append(
                f"{cell}: {measured[cell]} cycles, golden says {cycles}"
            )
    return problems


def _column(value, width: int, suffix: str = "") -> str:
    if value is None:
        return f"{'-':>{width}}"
    return f"{value:>{width - len(suffix)}.2f}{suffix}" if suffix \
        else f"{value:>{width}.1f}"


def render_report(payload: Dict[str, object]) -> str:
    header = (
        f"{'benchmark':<10} {'machine':<11} {'cycles':>10} "
        f"{'slow ms':>9} {'fast ms':>9} {'trace ms':>9} "
        f"{'speedup':>8} {'tr/fast':>8} {'kcyc/s':>9}"
    )
    lines = [header]
    for run in payload["runs"]:
        timings = ("instrumented_seconds", "fast_seconds", "trace_seconds")
        if all(run.get(field) is None for field in timings):
            lines.append(
                f"{run['benchmark']:<10} {run['machine']:<11} "
                f"{run['cycles']:>10} {'(cached — no timings)':>38}"
            )
            continue
        milliseconds = [
            None if run.get(field) is None else run[field] * 1e3
            for field in timings
        ]
        rate = run.get("trace_kcycles_per_host_second")
        if rate is None:
            rate = run.get("fast_kcycles_per_host_second")
        if rate is None:
            rate = run.get("instrumented_kcycles_per_host_second")
        lines.append(
            f"{run['benchmark']:<10} {run['machine']:<11} "
            f"{run['cycles']:>10} "
            f"{_column(milliseconds[0], 9)} "
            f"{_column(milliseconds[1], 9)} "
            f"{_column(milliseconds[2], 9)} "
            f"{_column(run.get('speedup'), 8, 'x')} "
            f"{_column(run.get('trace_vs_fast_speedup'), 8, 'x')} "
            f"{_column(rate, 9)}"
        )
    summary = payload["summary"]
    lines.append(
        f"overall speedup {summary['overall_speedup']:.2f}x "
        f"(min {summary['min_speedup']:.2f}x, "
        f"geomean {summary['geomean_speedup']:.2f}x)"
    )
    if summary.get("total_trace_seconds"):
        lines.append(
            "trace vs fast "
            f"{summary['overall_trace_vs_fast_speedup']:.2f}x "
            f"(min {summary['min_trace_vs_fast_speedup']:.2f}x, "
            f"geomean {summary['geomean_trace_vs_fast_speedup']:.2f}x)"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Benchmark the fast simulator path against the "
                    "instrumented reference on the Table-1 sweep.",
    )
    parser.add_argument("--bench", nargs="*", default=list(BENCHMARK_ORDER),
                        choices=list(BENCHMARK_ORDER),
                        help="benchmarks to run")
    parser.add_argument("--alus", nargs="*", type=int, default=[1, 2, 3, 4],
                        help="ALU counts to evaluate")
    parser.add_argument("--quick", action="store_true",
                        help="use reduced input sizes")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    parser.add_argument("--check", metavar="GOLDEN",
                        help="fail if simulated cycle counts drift from "
                             "this golden JSON file")
    parser.add_argument("--engine",
                        choices=["instrumented", "fast", "trace", "all"],
                        default="all",
                        help="execution engines to benchmark "
                             "(default: all)")
    parser.add_argument("--gate-trace-speedup", type=float, metavar="X",
                        help="fail unless the trace engine is at least "
                             "X times faster than the fast path on "
                             "every cell")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan cells out over N worker processes "
                             "via repro.serve (default: serial)")
    parser.add_argument("--verbose", action="store_true",
                        help="print a result line for every finished "
                             "cell (cycles + speedup)")
    arguments = parser.parse_args(argv)

    if arguments.jobs < 1:
        print("repro-bench: --jobs must be >= 1", file=sys.stderr)
        return 2

    engines = BENCH_ENGINES if arguments.engine == "all" \
        else (arguments.engine,)
    if arguments.gate_trace_speedup is not None and not (
            "trace" in engines and "fast" in engines):
        print("repro-bench: --gate-trace-speedup compares the trace and "
              "fast engines (use --engine all)", file=sys.stderr)
        return 2

    if arguments.quick:
        specs = quick_specs(arguments.bench)
    else:
        specs = [WORKLOADS[name]() for name in arguments.bench]

    executor = None
    if arguments.jobs > 1:
        from repro.serve import SupervisedPool

        # Warm persistent workers: repeat (benchmark, machine) cells
        # land on workers whose compile caches are already hot.
        executor = SupervisedPool(jobs=arguments.jobs, warm=True)

    def on_cell(cell: Dict[str, object]) -> None:
        if not arguments.verbose:
            return
        speedup = cell.get("speedup")
        timing = f"{speedup:.2f}x" if speedup is not None else "n/a"
        print(f"  {cell['benchmark']} on {cell['machine']}: "
              f"{cell['cycles']} cycles, speedup {timing}",
              file=sys.stderr)

    try:
        payload = run_bench(
            specs, alu_counts=arguments.alus, quick=arguments.quick,
            progress=lambda message: print(f"  {message}", file=sys.stderr),
            on_cell=on_cell,
            executor=executor,
            engines=engines,
        )
    except ReproError as error:
        print(f"repro-bench: {error}", file=sys.stderr)
        return 1
    finally:
        if executor is not None:
            executor.close()

    with open(arguments.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(render_report(payload))
    print(f"report written to {arguments.out}")

    if arguments.check:
        with open(arguments.check, "r", encoding="utf-8") as handle:
            golden = json.load(handle)
        problems = check_against_golden(payload, golden)
        if problems:
            print(f"repro-bench: cycle drift against {arguments.check}:",
                  file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print(f"cycle counts match {arguments.check}")

    if arguments.gate_trace_speedup is not None:
        floor = arguments.gate_trace_speedup
        violations = [
            f"  {run['benchmark']} on {run['machine']}: "
            f"{run['trace_vs_fast_speedup']:.2f}x"
            for run in payload["runs"]
            if run.get("trace_vs_fast_speedup") is not None
            and run["trace_vs_fast_speedup"] < floor
        ]
        if violations:
            print(f"repro-bench: trace engine below the {floor:.2f}x "
                  "gate on:", file=sys.stderr)
            for line in violations:
                print(line, file=sys.stderr)
            return 1
        print(f"trace engine clears the {floor:.2f}x gate on every cell")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
